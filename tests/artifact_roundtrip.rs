//! Property test pinning the on-disk artifact codec: serializing a
//! [`epgs::Planned`] and deserializing it back must reproduce the exact
//! bit pattern — re-encoding the decoded artifact yields the identical
//! byte string — across all five generator families of the batch corpus.
//!
//! Bit-identity is what makes the store trustworthy: every float crosses
//! the codec as its `to_bits()` hex image, so a disk round trip can never
//! perturb a duration, loss figure, or emission time by even one ULP.

use proptest::prelude::*;

use epgs::{artifact, config_fingerprint, CacheKey, FrameworkConfig, Pipeline};
use epgs_graph::canon::canonical_hash;
use epgs_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_pipeline() -> Pipeline {
    Pipeline::new(
        FrameworkConfig::builder()
            .g_max(5)
            .lc_budget(3)
            .partition_effort(4)
            .orderings_per_subgraph(4)
            .flexible_slack(1)
            .build(),
    )
}

/// One random small instance of the chosen corpus family.
fn family_graph(family: usize, size_sel: u8, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        0 => generators::random_regular(8 + 2 * (size_sel as usize % 3), 3, &mut rng),
        1 => generators::hypercube(2 + (size_sel as u32 % 2)),
        2 => generators::heavy_hex(1, 1 + (size_sel as usize % 2)),
        3 => generators::barabasi_albert(8 + (size_sel as usize % 4), 2, &mut rng),
        _ => generators::watts_strogatz(8 + 2 * (size_sel as usize % 3), 4, 0.2, &mut rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn planned_artifacts_round_trip_bit_identically(
        family in 0usize..5,
        size_sel in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let pipeline = quick_pipeline();
        let g = family_graph(family, size_sel, seed);
        let planned = pipeline.partition(&g).plan_leaves().expect("plans");
        let key = CacheKey {
            canonical: canonical_hash(&g),
            config: config_fingerprint(pipeline.config()),
        };
        let text = artifact::encode(&planned, key);
        let decoded = artifact::decode(&text, key, &pipeline).expect("decodes");
        // Bit-identity: the decoded artifact re-encodes to the same bytes.
        prop_assert_eq!(artifact::encode(&decoded, key), text);
        // And the decoded prefix is a drop-in replacement for the cheap
        // suffix stages.
        let a = planned.schedule(2).recombine().expect("recombine").verify().expect("verify");
        let b = decoded.schedule(2).recombine().expect("recombine").verify().expect("verify");
        prop_assert_eq!(a.circuit, b.circuit);
    }
}
