//! Batch-engine integration tests: the full default corpus compiles and
//! verifies end to end, and the artifact cache behaves across passes.

use epgs::{BatchCompiler, BatchInstance, CacheOutcome, FrameworkConfig};
use epgs_corpus::CorpusSpec;
use epgs_graph::canon::canonical_hash;

fn corpus_jobs() -> Vec<BatchInstance> {
    CorpusSpec::default_corpus()
        .instances()
        .into_iter()
        .map(|i| BatchInstance::new(i.id, i.family, i.graph))
        .collect()
}

fn quick_config() -> FrameworkConfig {
    FrameworkConfig::builder()
        .g_max(5)
        .lc_budget(3)
        .partition_effort(4)
        .orderings_per_subgraph(4)
        .flexible_slack(1)
        .build()
}

#[test]
fn full_default_corpus_compiles_and_verifies() {
    let jobs = corpus_jobs();
    assert!(jobs.len() >= 20, "default corpus meets the 5×4 floor");

    let batch = BatchCompiler::new(quick_config());
    let report = batch.run(&jobs);
    for r in &report.instances {
        assert!(
            r.ok(),
            "{} failed: {}",
            r.id,
            r.error.as_deref().unwrap_or("unknown")
        );
    }
    assert_eq!(report.succeeded, jobs.len());
    assert_eq!(report.failed, 0);
    // The default corpus is content-diverse: no two instances share a
    // canonical hash, so pass 1 runs entirely without cache help.
    assert_eq!(report.distinct_canonical, jobs.len());
    assert_eq!(report.cache_hits, 0);
    // Five family rollups, each fully successful.
    assert_eq!(report.families.len(), 5);
    for f in &report.families {
        assert!(f.instances >= 4, "{}: 4-instance floor", f.family);
        assert_eq!(f.succeeded, f.instances, "{}", f.family);
    }

    // Pass 2 over the same corpus: every expensive prefix is cached, the
    // pipeline's partition/plan counters do not move, and outputs verify
    // identically.
    let partitions_after_pass1 = batch.pipeline().counters().partition;
    let again = batch.run(&jobs);
    assert_eq!(again.succeeded, jobs.len());
    assert_eq!(again.cache_hits, jobs.len(), "repeated run hits every time");
    assert!(again.instances.iter().all(|r| r.cache == CacheOutcome::Hit));
    assert_eq!(
        batch.pipeline().counters().partition,
        partitions_after_pass1,
        "cache hits must skip the partition stage"
    );
}

#[test]
fn corpus_spec_json_round_trip_preserves_canonical_content() {
    // A corpus shipped as JSON (the corpus_run --spec path) regenerates
    // byte-identical targets: same ids, same canonical hashes.
    let spec = CorpusSpec::default_corpus();
    let reloaded = CorpusSpec::from_json(&spec.to_json()).expect("round trip");
    let a = spec.instances();
    let b = reloaded.instances();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.graph, y.graph);
        assert_eq!(canonical_hash(&x.graph), canonical_hash(&y.graph));
    }
}

#[test]
fn batch_report_json_is_loadable() {
    // The emitted report parses with the corpus crate's own JSON reader
    // and carries the headline counters.
    let batch = BatchCompiler::new(quick_config());
    let jobs: Vec<BatchInstance> = corpus_jobs().into_iter().take(6).collect();
    let report = batch.run(&jobs);
    let doc = epgs_corpus::Value::parse(&report.to_json()).expect("report JSON parses");
    assert_eq!(
        doc.get("succeeded").and_then(|v| v.as_usize()),
        Some(report.succeeded)
    );
    assert_eq!(
        doc.get("instances")
            .and_then(|v| v.as_arr())
            .map(|a| a.len()),
        Some(jobs.len())
    );
    let hist = doc.get("wall_histogram").expect("histogram present");
    let total: usize = epgs::batch::WALL_BUCKET_LABELS
        .iter()
        .filter_map(|l| hist.get(l).and_then(|v| v.as_usize()))
        .sum();
    assert_eq!(total, jobs.len(), "histogram covers every instance");
}

#[test]
fn mixed_valid_and_failing_instances_do_not_abort_the_batch() {
    // A strategy-less config fails recombination; the batch must record the
    // failure and keep compiling the rest.
    let bad = FrameworkConfig {
        recombine: vec![],
        ..quick_config()
    };
    let batch = BatchCompiler::new(bad);
    let jobs: Vec<BatchInstance> = corpus_jobs().into_iter().take(3).collect();
    let report = batch.run(&jobs);
    assert_eq!(report.succeeded, 0);
    assert_eq!(report.failed, 3);
    assert!(report
        .instances
        .iter()
        .all(|r| r.error.as_deref().is_some_and(|e| e.contains("strategy"))));
    // And the same instances under a sane config still pass.
    let good = BatchCompiler::new(quick_config());
    assert_eq!(good.run(&jobs).succeeded, 3);
}
