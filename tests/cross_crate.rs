//! Cross-crate oracle tests: the graph-level algebra, the stabilizer
//! semantics, and the circuit layer must agree wherever they overlap.

use epgs_circuit::{simulate, timeline, Circuit, Op, Qubit};
use epgs_graph::{generators, height, ops, Graph};
use epgs_hardware::HardwareModel;
use epgs_solver::cost::estimate_ordering;
use epgs_solver::reverse::{solve_with_ordering, SolveOptions};
use epgs_stabilizer::{verify, Tableau};

#[test]
fn compiled_circuit_emitter_count_respects_height_bound() {
    // The stabilizer-theoretic lower bound (cut rank) is never violated by
    // real circuits.
    let hw = HardwareModel::quantum_dot();
    for g in [
        generators::lattice(3, 3),
        generators::cycle(8),
        generators::tree(10, 2),
    ] {
        let ordering: Vec<usize> = (0..g.vertex_count()).collect();
        let bound = height::min_emitters(&g, &ordering);
        let solved = solve_with_ordering(&g, &ordering, &SolveOptions::default()).unwrap();
        let peak = epgs_circuit::timeline::peak_emitter_usage(&hw, &solved.circuit);
        assert!(
            peak >= bound.min(solved.emitters),
            "peak usage {peak} below the entanglement bound {bound}"
        );
    }
}

#[test]
fn lc_equivalent_targets_compile_to_same_photon_count_different_gates() {
    // LC changes edges, not vertices: circuits for LC-equivalent graphs have
    // the same emissions but may differ in ee-CNOTs (that is the paper's
    // whole point).
    let g = generators::cycle(6);
    let mut h = g.clone();
    ops::local_complement(&mut h, 2).unwrap();
    let a = solve_with_ordering(&g, &[0, 1, 2, 3, 4, 5], &SolveOptions::default()).unwrap();
    let b = solve_with_ordering(&h, &[0, 1, 2, 3, 4, 5], &SolveOptions::default()).unwrap();
    assert_eq!(a.circuit.emission_count(), b.circuit.emission_count());
}

#[test]
fn cost_estimate_is_a_lower_bound_signal_for_real_trms() {
    // stalls counts the *necessary* emitter additions walking backward; the
    // real circuit's measurement count is at least stalls − pool slack.
    for g in [generators::path(8), generators::cycle(8)] {
        let ordering: Vec<usize> = (0..g.vertex_count()).collect();
        let est = estimate_ordering(&g, &ordering);
        let solved = solve_with_ordering(&g, &ordering, &SolveOptions::default()).unwrap();
        assert!(
            solved.circuit.measurement_count() + solved.emitters >= est.stalls,
            "measurements {} + pool {} < stalls {}",
            solved.circuit.measurement_count(),
            solved.emitters,
            est.stalls
        );
    }
}

#[test]
fn manual_cz_circuit_agrees_with_solver_output_state() {
    // Build |G⟩ naively on photon wires of a tableau and compare with the
    // state the compiled circuit produces.
    let g = generators::lattice(2, 3);
    let solved = solve_with_ordering(&g, &[0, 1, 2, 3, 4, 5], &SolveOptions::default()).unwrap();
    let mut outcomes = simulate::ConstantOutcomes(false);
    let t = simulate::run(&solved.circuit, &mut outcomes).unwrap();
    let photon_wires: Vec<usize> = (0..6).map(|p| solved.circuit.num_emitters() + p).collect();
    assert!(verify::is_graph_state_on(&t, &g, &photon_wires));
}

#[test]
fn timeline_duration_lower_bounded_by_gate_sum_over_parallelism() {
    let hw = HardwareModel::quantum_dot();
    let mut c = Circuit::new(2, 2);
    c.push(Op::Cz(0, 1));
    c.push(Op::Emit {
        emitter: 0,
        photon: 0,
    });
    c.push(Op::Emit {
        emitter: 1,
        photon: 1,
    });
    c.push(Op::H(Qubit::Photon(0)));
    let tl = timeline(&hw, &c);
    // Serial lower bound: CZ then one emission.
    assert!(tl.duration >= 1.1 - 1e-12);
    // Parallel upper bound: everything else overlaps.
    assert!(tl.duration <= 1.2 + 1e-12);
}

#[test]
fn graph_state_tableau_equals_cz_constructed_state_for_every_family() {
    for g in [
        generators::lattice(2, 4),
        generators::tree(9, 2),
        generators::repeater_graph_state(2),
        generators::complete(5),
    ] {
        let direct = Tableau::graph_state(&g);
        let mut built = Tableau::zero_state(g.vertex_count());
        for q in 0..g.vertex_count() {
            built.h(q);
        }
        for (a, b) in g.edges() {
            built.cz(a, b);
        }
        assert!(direct.same_state_as(&built));
    }
}

#[test]
fn isolated_vertices_become_plus_states() {
    // A graph with isolated vertices still compiles; isolated photons end in
    // |+⟩ (the 1-vertex graph state).
    let g = Graph::from_edges(4, [(0, 1)]).unwrap();
    let solved = solve_with_ordering(&g, &[0, 1, 2, 3], &SolveOptions::default()).unwrap();
    assert!(simulate::verify_circuit(&solved.circuit, &g).unwrap());
}
