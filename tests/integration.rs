//! End-to-end integration tests spanning every crate: targets from all
//! benchmark families are compiled by both the baseline and the framework,
//! and every circuit is re-verified here (independently of the framework's
//! internal verification).

use rand::rngs::StdRng;
use rand::SeedableRng;

use epgs::{EmitterBudget, Framework, FrameworkConfig};
use epgs_circuit::simulate::verify_circuit;
use epgs_graph::{generators, Graph};
use epgs_hardware::HardwareModel;
use epgs_solver::{solve_baseline, BaselineOptions};

fn quick_framework() -> Framework {
    Framework::new(FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 7,
            lc_budget: 4,
            effort: 5,
            seed: 3,
            ..Default::default()
        },
        orderings_per_subgraph: 5,
        flexible_slack: 1,
        ..FrameworkConfig::default()
    })
}

fn family_targets() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(17);
    vec![
        ("lattice 3x4".into(), generators::lattice(3, 4)),
        ("lattice 4x4".into(), generators::lattice(4, 4)),
        ("tree 15/2".into(), generators::tree(15, 2)),
        ("tree 13/3".into(), generators::tree(13, 3)),
        (
            "waxman 15".into(),
            generators::waxman(15, 0.5, 0.2, &mut rng),
        ),
        (
            "waxman 12 dense".into(),
            generators::waxman(12, 0.9, 0.4, &mut rng),
        ),
        ("cycle 12".into(), generators::cycle(12)),
        ("rgs m=2".into(), generators::repeater_graph_state(2)),
        ("complete 7".into(), generators::complete(7)),
        ("star 12".into(), generators::star(12)),
        (
            "fig1b".into(),
            Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap(),
        ),
    ]
}

#[test]
fn framework_compiles_and_independently_verifies_every_family() {
    let fw = quick_framework();
    for (name, g) in family_targets() {
        let compiled = fw.compile(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            verify_circuit(&compiled.circuit, &g).unwrap(),
            "{name}: independent verification failed"
        );
        assert_eq!(
            compiled.circuit.emission_count(),
            g.vertex_count(),
            "{name}"
        );
    }
}

#[test]
fn baseline_compiles_and_verifies_every_family() {
    let hw = HardwareModel::quantum_dot();
    for (name, g) in family_targets() {
        let solved = solve_baseline(&g, &hw, &BaselineOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            verify_circuit(&solved.circuit, &g).unwrap(),
            "{name}: baseline verification failed"
        );
    }
}

#[test]
fn framework_never_uses_more_ee_cnots_than_edges_plus_overhead() {
    // Every edge can be realized by at most one emitter-emitter interaction
    // plus bounded bookkeeping; a gross violation signals a regression.
    let fw = quick_framework();
    for (name, g) in family_targets() {
        let compiled = fw.compile(&g).unwrap();
        let bound = 2 * g.edge_count() + g.vertex_count();
        assert!(
            compiled.metrics.ee_two_qubit_count <= bound,
            "{name}: {} ee-CNOTs exceeds sanity bound {bound}",
            compiled.metrics.ee_two_qubit_count
        );
    }
}

#[test]
fn bigger_budget_never_slows_the_schedule() {
    let fw = quick_framework();
    for (name, g) in [
        ("lattice 4x4", generators::lattice(4, 4)),
        ("tree 15/2", generators::tree(15, 2)),
    ] {
        let ne_min = fw.ne_min(&g);
        let tight = fw.compile_with_budget(&g, ne_min.max(1)).unwrap();
        let loose = fw.compile_with_budget(&g, 2 * ne_min.max(1)).unwrap();
        assert!(
            loose.schedule.makespan <= tight.schedule.makespan + 1e-9,
            "{name}: schedule got worse with more emitters"
        );
    }
}

#[test]
fn framework_matches_or_beats_baseline_on_cnots_for_most_targets() {
    // The headline claim at small scale: across the families, the framework
    // reduces ee-CNOTs relative to the baseline in aggregate.
    let fw = quick_framework();
    let hw = HardwareModel::quantum_dot();
    let mut base_total = 0usize;
    let mut ours_total = 0usize;
    for (_, g) in family_targets() {
        let base = solve_baseline(&g, &hw, &BaselineOptions::default()).unwrap();
        let ours = fw.compile(&g).unwrap();
        base_total += base.circuit.ee_two_qubit_count();
        ours_total += ours.metrics.ee_two_qubit_count;
    }
    assert!(
        ours_total <= base_total,
        "framework total ee-CNOTs {ours_total} exceeds baseline {base_total}"
    );
}

#[test]
fn factor_budgets_match_paper_settings() {
    let g = generators::lattice(3, 4);
    for factor in [1.5, 2.0] {
        let fw = Framework::new(FrameworkConfig {
            emitter_budget: EmitterBudget::Factor(factor),
            ..quick_framework().config().clone()
        });
        let compiled = fw.compile(&g).unwrap();
        let expect = ((compiled.ne_min as f64 * factor).ceil() as usize).max(1);
        assert_eq!(compiled.ne_limit, expect);
    }
}

#[test]
fn hardware_models_are_interchangeable() {
    for hw in [
        HardwareModel::quantum_dot(),
        HardwareModel::nv_center(),
        HardwareModel::siv_center(),
        HardwareModel::rydberg(),
    ] {
        let fw = Framework::new(FrameworkConfig {
            hardware: hw.clone(),
            ..quick_framework().config().clone()
        });
        let compiled = fw.compile(&generators::tree(10, 2)).unwrap();
        assert!(compiled.metrics.duration > 0.0, "{}", hw.name);
    }
}
