//! Hardware-aware objective layer: bit-identity of the default, platform
//! divergence, determinism, and the loss figures flowing into reports.

use epgs::{BatchCompiler, BatchInstance, CompileObjective, Framework, FrameworkConfig, Pipeline};
use epgs_circuit::simulate::verify_circuit;
use epgs_corpus::{CorpusSpec, FamilyKind};
use epgs_graph::generators;
use epgs_hardware::HardwareModel;

/// The `corpus_framework` configuration of the bench crate, inlined (the
/// root test package does not depend on `epgs-bench`).
fn corpus_config() -> FrameworkConfig {
    FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 6,
            lc_budget: 4,
            effort: 5,
            seed: 0xdac2025,
            ..Default::default()
        },
        orderings_per_subgraph: 6,
        flexible_slack: 1,
        verify: true,
        ..FrameworkConfig::default()
    }
}

/// The default-corpus instance `watts_strogatz-n10-s3` (see
/// `CorpusSpec::default_corpus`), a known strategy-divergence case.
fn divergent_instance() -> epgs_graph::Graph {
    let spec = CorpusSpec::default_corpus();
    let family = spec
        .families
        .iter()
        .find(|f| matches!(f.kind, FamilyKind::WattsStrogatz { .. }))
        .expect("default corpus has a Watts-Strogatz family");
    family.kind.build(10, family.seeds[0])
}

#[test]
fn emitters_objective_is_bit_identical_to_default() {
    // The acceptance bar for the objective layer: making the historic
    // behavior an explicit objective must not change a single bit of it.
    let g = generators::lattice(3, 4);
    let implicit = Framework::new(corpus_config()).compile(&g).unwrap();
    let explicit = Framework::new(FrameworkConfig {
        objective: CompileObjective::Emitters,
        ..corpus_config()
    })
    .compile(&g)
    .unwrap();
    assert_eq!(implicit.circuit, explicit.circuit);
    assert_eq!(implicit.metrics, explicit.metrics);
    assert_eq!(implicit.strategy, explicit.strategy);
    assert_eq!(implicit.global_ordering, explicit.global_ordering);
    assert_eq!(explicit.objective, CompileObjective::Emitters);
}

#[test]
fn presets_select_different_strategies_on_a_default_corpus_instance() {
    // Under a duration objective, the same target compiled for quantum
    // dots and for Rydberg superatoms picks different recombination
    // strategies at the same emitter budget — platform timing, not a
    // hard-coded tiebreak, decides. Both circuits still verify.
    let g = divergent_instance();
    let mut compiled = Vec::new();
    for hw in [HardwareModel::quantum_dot(), HardwareModel::rydberg()] {
        let config = FrameworkConfig {
            hardware: hw.clone(),
            objective: CompileObjective::Duration(hw),
            ..corpus_config()
        };
        let c = Framework::new(config).compile_with_budget(&g, 3).unwrap();
        assert!(verify_circuit(&c.circuit, &g).unwrap());
        compiled.push(c);
    }
    assert_ne!(
        compiled[0].strategy, compiled[1].strategy,
        "presets must drive strategy selection apart on this instance"
    );
    // And the platform metrics differ measurably either way.
    assert!((compiled[0].metrics.duration - compiled[1].metrics.duration).abs() > 0.1);
}

#[test]
fn objective_strategy_selection_is_deterministic() {
    let g = divergent_instance();
    for objective in [
        CompileObjective::Emitters,
        CompileObjective::Duration(HardwareModel::rydberg()),
        CompileObjective::Loss(HardwareModel::nv_center()),
        CompileObjective::Weighted {
            hardware: HardwareModel::quantum_dot(),
            ee: 1.0,
            duration: 0.5,
            loss: 50.0,
        },
    ] {
        let config = FrameworkConfig {
            objective: objective.clone(),
            ..corpus_config()
        };
        let fw = Framework::new(config);
        let a = fw.compile(&g).unwrap();
        let b = fw.compile(&g).unwrap();
        assert_eq!(a.circuit, b.circuit, "{}", objective.kind_name());
        assert_eq!(a.strategy, b.strategy, "{}", objective.kind_name());
        assert_eq!(a.objective, objective);
        assert!(verify_circuit(&a.circuit, &g).unwrap());
    }
}

#[test]
fn duration_objective_never_recombines_slower_than_emitters() {
    // Off one schedule the candidate set is fixed, so the duration
    // objective picks the candidate with the smallest *scored* duration.
    // Scoring happens before the peephole cleanup while the durations
    // compared here are post-cleanup, so this is a seeded regression
    // check of current behavior rather than a theorem: if it ever fails,
    // check whether cleanup shortened the default's winner more — that
    // is legal — before suspecting the objective layer.
    let pipeline = Pipeline::new(corpus_config());
    for g in [
        divergent_instance(),
        generators::lattice(3, 4),
        generators::tree(12, 2),
    ] {
        let scheduled = pipeline.partition(&g).plan_leaves().unwrap().schedule(3);
        let default = scheduled.recombine().unwrap();
        let fast = scheduled
            .recombine_objective(&CompileObjective::Duration(HardwareModel::quantum_dot()))
            .unwrap();
        assert!(fast.metrics().duration <= default.metrics().duration + 1e-9);
        fast.verify().unwrap();
    }
}

#[test]
fn per_call_objective_override_does_not_disturb_the_config() {
    let pipeline = Pipeline::new(corpus_config());
    let g = generators::lattice(3, 3);
    let scheduled = pipeline.partition(&g).plan_leaves().unwrap().schedule(2);
    let override_obj = CompileObjective::Loss(HardwareModel::siv_center());
    let overridden = scheduled.recombine_objective(&override_obj).unwrap();
    assert_eq!(overridden.objective(), &override_obj);
    // A plain recombine afterwards still runs the configured objective.
    let plain = scheduled.recombine().unwrap();
    assert_eq!(plain.objective(), &CompileObjective::Emitters);
}

#[test]
fn batch_reports_carry_hardware_objective_and_loss_figures() {
    let config = FrameworkConfig {
        hardware: HardwareModel::nv_center(),
        objective: CompileObjective::Loss(HardwareModel::nv_center()),
        ..corpus_config()
    };
    let batch = BatchCompiler::new(config);
    let report = batch.run(&[
        BatchInstance::new("l33", "lattice", generators::lattice(3, 3)),
        BatchInstance::new("t9", "tree", generators::tree(9, 2)),
    ]);
    assert_eq!(report.succeeded, 2);
    assert_eq!(report.hardware, "NV color center");
    assert_eq!(report.objective, "loss");
    assert_eq!(
        report.objective_hardware.as_deref(),
        Some("NV color center"),
        "hardware-carrying objectives record their scoring platform"
    );
    for inst in &report.instances {
        let m = inst.metrics.as_ref().expect("succeeded");
        assert!(m.mean_photon_loss >= 0.0 && m.mean_photon_loss < 1.0);
        assert!(m.any_photon_loss >= m.mean_photon_loss - 1e-12);
        assert!(m.t_loss >= 0.0);
    }
    let json = report.to_json();
    assert!(json.contains("\"hardware\":\"NV color center\""));
    assert!(json.contains("\"objective\":\"loss\""));
    assert!(json.contains("\"objective_hardware\":\"NV color center\""));
    assert!(json.contains("\"mean_photon_loss\":"));
    assert!(json.contains("\"any_photon_loss\":"));
    assert!(json.contains("\"t_loss\":"));

    // The default Emitters objective scores under the configured model
    // and therefore records no separate scoring platform or weights.
    let default_report = BatchCompiler::new(corpus_config()).run(&[BatchInstance::new(
        "p5",
        "path",
        generators::path(5),
    )]);
    assert_eq!(default_report.objective_hardware, None);
    assert_eq!(default_report.objective_weights, None);
    assert!(!default_report.to_json().contains("objective_hardware"));

    // Weighted runs record their weights — two weight vectors select
    // different circuits, so they are part of the report's identity.
    let weighted = BatchCompiler::new(FrameworkConfig {
        objective: CompileObjective::Weighted {
            hardware: HardwareModel::quantum_dot(),
            ee: 2.0,
            duration: 0.25,
            loss: 10.0,
        },
        ..corpus_config()
    })
    .run(&[BatchInstance::new("p5", "path", generators::path(5))]);
    assert_eq!(weighted.objective_weights, Some([2.0, 0.25, 10.0]));
    assert!(weighted
        .to_json()
        .contains("\"objective_weights\":{\"ee\":2,\"duration\":0.25,\"loss\":10}"));
}

#[test]
fn distinct_objectives_cache_apart_in_the_batch_engine() {
    // The artifact cache must never serve a plan selected under one
    // objective to a run with another: objectives fingerprint apart.
    let base = corpus_config();
    let a = epgs::config_fingerprint(&base);
    let b = epgs::config_fingerprint(&FrameworkConfig {
        objective: CompileObjective::Duration(HardwareModel::quantum_dot()),
        ..base.clone()
    });
    let c = epgs::config_fingerprint(&FrameworkConfig {
        objective: CompileObjective::Loss(HardwareModel::quantum_dot()),
        ..base.clone()
    });
    let d = epgs::config_fingerprint(&FrameworkConfig {
        objective: CompileObjective::Duration(HardwareModel::rydberg()),
        ..base
    });
    assert_ne!(a, b);
    assert_ne!(b, c, "same hardware, different kind");
    assert_ne!(b, d, "same kind, different hardware");
}

#[test]
fn compiled_loss_report_matches_metrics() {
    let c = Framework::new(corpus_config())
        .compile(&generators::tree(10, 2))
        .unwrap();
    let report = c.loss_report();
    assert_eq!(report, &c.metrics.loss);
    assert_eq!(report.exposures.len(), 10, "one exposure per photon");
    assert!((report.mean_exposure - c.metrics.t_loss).abs() < 1e-12);
}
