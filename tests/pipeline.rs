//! Staged-pipeline contract tests: the explicit Partition → Plan → Schedule
//! → Recombine → Verify path must be equivalent to the monolithic
//! `Framework::compile` wrapper, artifacts must be reusable and
//! deterministic, and a k-budget sweep must run the expensive prefix
//! exactly once.

use rand::rngs::StdRng;
use rand::SeedableRng;

use epgs::{Compiled, Framework, FrameworkConfig, Pipeline, RecombineStrategy};
use epgs_circuit::simulate::verify_circuit;
use epgs_graph::{generators, Graph};

fn quick_config() -> FrameworkConfig {
    FrameworkConfig::builder()
        .g_max(7)
        .lc_budget(4)
        .partition_effort(5)
        .orderings_per_subgraph(5)
        .flexible_slack(1)
        .seed(3)
        .build()
}

fn equivalence_targets() -> Vec<(String, Graph)> {
    let mut rng = StdRng::seed_from_u64(17);
    vec![
        ("lattice 3x4".into(), generators::lattice(3, 4)),
        ("tree 15/2".into(), generators::tree(15, 2)),
        (
            "waxman 14".into(),
            generators::waxman(14, 0.5, 0.2, &mut rng),
        ),
    ]
}

fn assert_same_compiled(name: &str, a: &Compiled, b: &Compiled) {
    assert_eq!(a.circuit, b.circuit, "{name}: circuit ops differ");
    assert_eq!(a.metrics, b.metrics, "{name}: metrics differ");
    assert_eq!(a.partition, b.partition, "{name}: partition differs");
    assert_eq!(
        a.global_ordering, b.global_ordering,
        "{name}: ordering differs"
    );
    assert_eq!(a.ne_limit, b.ne_limit, "{name}: ne_limit differs");
    assert_eq!(a.ne_min, b.ne_min, "{name}: ne_min differs");
    assert_eq!(a.strategy, b.strategy, "{name}: winning strategy differs");
}

#[test]
fn staged_pipeline_equals_monolithic_compile_on_every_family() {
    let config = quick_config();
    let fw = Framework::new(config.clone());
    for (name, g) in equivalence_targets() {
        let monolith = fw.compile(&g).unwrap_or_else(|e| panic!("{name}: {e}"));

        let pipeline = Pipeline::new(config.clone());
        let planned = pipeline
            .partition(&g)
            .plan_leaves()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let staged = planned
            .schedule(config.emitter_budget.resolve(planned.ne_min()))
            .recombine()
            .and_then(|r| r.verify())
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        assert_same_compiled(&name, &staged, &monolith);
        assert!(
            verify_circuit(&staged.circuit, &g).unwrap(),
            "{name}: staged circuit fails independent verification"
        );
    }
}

#[test]
fn budget_sweep_runs_partition_and_leaf_compile_exactly_once() {
    let pipeline = Pipeline::new(quick_config());
    let g = generators::lattice(4, 4);
    let budgets = [2usize, 3, 4, 5];

    let planned = pipeline.partition(&g).plan_leaves().expect("plans");
    let swept: Vec<Compiled> = budgets
        .iter()
        .map(|&b| planned.schedule(b).recombine().unwrap().verify().unwrap())
        .collect();

    let counts = pipeline.counters();
    assert_eq!(counts.partition, 1, "partition must run once for the sweep");
    assert_eq!(
        counts.plan, 1,
        "leaf compilation must run once for the sweep"
    );
    assert_eq!(counts.schedule, budgets.len());
    assert_eq!(counts.recombine, budgets.len());
    assert_eq!(counts.verify, budgets.len());

    // Each sweep point must equal the pointwise full compile at that budget.
    let fw = Framework::new(quick_config());
    for (compiled, &budget) in swept.iter().zip(&budgets) {
        assert_eq!(compiled.ne_limit, budget);
        let pointwise = fw.compile_with_budget(&g, budget).unwrap();
        assert_same_compiled(&format!("budget {budget}"), compiled, &pointwise);
    }
}

#[test]
fn framework_sweep_helper_shares_the_prefix_too() {
    let fw = Framework::new(quick_config());
    let g = generators::tree(15, 2);
    let swept = fw.sweep(&g, &[1, 3]).unwrap();
    assert_eq!(swept.len(), 2);
    for compiled in &swept {
        assert!(verify_circuit(&compiled.circuit, &g).unwrap());
    }
    // More emitters never slow the packed schedule.
    assert!(swept[1].schedule.makespan <= swept[0].schedule.makespan + 1e-9);
}

#[test]
fn rescheduling_a_cached_planned_artifact_is_reproducible() {
    let pipeline = Pipeline::new(quick_config());
    let mut rng = StdRng::seed_from_u64(23);
    let g = generators::waxman(13, 0.5, 0.2, &mut rng);
    let planned = pipeline.partition(&g).plan_leaves().expect("plans");
    let a = planned.schedule(3).recombine().unwrap().verify().unwrap();
    let b = planned.schedule(3).recombine().unwrap().verify().unwrap();
    assert_same_compiled("cached reschedule", &a, &b);
}

#[test]
fn replanning_from_a_cached_partitioned_artifact_is_reproducible() {
    let pipeline = Pipeline::new(quick_config());
    let g = generators::lattice(3, 4);
    let partitioned = pipeline.partition(&g);
    let a = partitioned.plan_leaves().expect("first plan");
    let b = partitioned.plan_leaves().expect("second plan");
    assert_eq!(a.partition(), b.partition());
    for (x, y) in a.plans().iter().zip(b.plans()) {
        assert_eq!(x.vertices, y.vertices);
        for (vx, vy) in x.variants.iter().zip(&y.variants) {
            assert_eq!(vx.solved.circuit, vy.solved.circuit);
        }
    }
}

#[test]
fn two_pipelines_same_seed_agree_end_to_end() {
    let g = generators::cycle(12);
    let a = Pipeline::new(quick_config()).compile(&g).unwrap();
    let b = Pipeline::new(quick_config()).compile(&g).unwrap();
    assert_same_compiled("fresh pipelines", &a, &b);
}

#[test]
fn direct_solve_only_pipeline_skips_partition_benefits_but_still_verifies() {
    let config = FrameworkConfig::builder()
        .recombine(vec![RecombineStrategy::DirectSolve])
        .g_max(7)
        .lc_budget(0)
        .partition_effort(4)
        .orderings_per_subgraph(4)
        .build();
    let g = generators::tree(12, 2);
    let compiled = Pipeline::new(config).compile(&g).unwrap();
    assert_eq!(compiled.strategy, RecombineStrategy::DirectSolve);
    assert!(verify_circuit(&compiled.circuit, &g).unwrap());
}
