//! Partition quality-gate and flat-path byte-identity suite.
//!
//! PR 7 made the multilevel coarsening partitioner the default scheme. Two
//! regressions could sneak past the unit tests: the flat path could drift
//! (it must stay byte-identical to the pre-multilevel pipeline, since it is
//! both the `PartitionScheme::Flat` escape hatch and the delegation target
//! for sub-cutoff instances), and the multilevel path could trade quality
//! for its speed. This suite pins both:
//!
//! * **Byte identity** — every bench-sweep and default-corpus instance is
//!   compiled under `PartitionScheme::Flat` and the FNV-1a hash of its QASM
//!   dump is compared against `tests/data/flat_qasm_fnv.txt`, a file pinned
//!   when the flat engine was the only engine. Any drift in the flat
//!   pipeline shows up as a hash mismatch here.
//! * **Quality gate** — the same instances are compiled under the default
//!   multilevel scheme, and per instance the cut, ee-CNOT count, and peak
//!   emitter count must be no worse than the flat compile. Instances at or
//!   below the coarsening cutoff (48 vertices) delegate to the flat engine
//!   inside the beam scorer, so everything except `lattice-52`/`lattice-60`
//!   must tie *exactly* — asserted as equality, which also re-pins the
//!   delegation contract end to end.
//! * **Direct-engine gates** — on instances far above the cutoff (where the
//!   full pipeline comparison would be too slow for a test), the engines are
//!   compared directly: the multilevel cut must be feasible and no worse
//!   than the flat cut.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;

use epgs::{Compiled, Framework, FrameworkConfig};
use epgs_circuit::qasm::to_qasm;
use epgs_corpus::CorpusSpec;
use epgs_graph::{generators, Graph};
use epgs_partition::fm::fm_partition;
use epgs_partition::{multilevel_partition, MultilevelOptions, PartitionScheme};

/// The evaluation-harness seed (`epgs_bench::SEED`).
const SEED: u64 = 0xdac2025;

/// FNV-1a, 64 bit — matches the hashes pinned in
/// `tests/data/flat_qasm_fnv.txt`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The evaluation-harness configuration (`epgs_bench::bench_framework`)
/// pinned to an explicit scheme.
fn family_framework(scheme: PartitionScheme) -> Framework {
    Framework::new(FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 7,
            lc_budget: 8,
            effort: 8,
            seed: SEED,
            scheme,
        },
        orderings_per_subgraph: 8,
        flexible_slack: 2,
        verify: true,
        ..FrameworkConfig::default()
    })
}

/// The corpus-batch configuration (`epgs_bench::corpus_framework`) pinned
/// to an explicit scheme.
fn corpus_framework(scheme: PartitionScheme) -> Framework {
    Framework::new(FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 6,
            lc_budget: 4,
            effort: 5,
            seed: SEED,
            scheme,
        },
        orderings_per_subgraph: 6,
        flexible_slack: 1,
        verify: true,
        ..FrameworkConfig::default()
    })
}

/// Debug builds drop the two most expensive flat compiles to keep the
/// suite affordable (the same trade `determinism.rs` makes); `lattice-52`
/// stays so an above-cutoff multilevel-vs-flat comparison is always live.
/// Release builds cover every pinned instance.
fn debug_trimmed(label: &str) -> bool {
    cfg!(debug_assertions) && matches!(label, "lattice-44" | "lattice-60")
}

/// The full `epgs_bench` sweeps, reconstructed locally (the test package
/// does not depend on the bench crate): lattices 12–60, trees 10–40,
/// Waxman 10–35 with the bench seeding.
fn sweep_instances() -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    for k in [3usize, 5, 7, 9, 11, 13, 15] {
        out.push((format!("lattice-{}", 4 * k), generators::lattice(4, k)));
    }
    for n in [10usize, 16, 22, 28, 34, 40] {
        out.push((format!("tree-{n}"), generators::tree(n, 2)));
    }
    for n in [10usize, 15, 20, 25, 30, 35] {
        let mut rng = StdRng::seed_from_u64(SEED ^ n as u64);
        out.push((
            format!("random-{n}"),
            generators::waxman(n, 0.5, 0.2, &mut rng),
        ));
    }
    out
}

/// Compiles every sweep instance (family config) and every default-corpus
/// instance (corpus config) under the given scheme.
fn compile_all(scheme: PartitionScheme) -> Vec<(String, Compiled)> {
    let mut out = Vec::new();
    let fw = family_framework(scheme.clone());
    for (label, g) in sweep_instances() {
        if debug_trimmed(&label) {
            continue;
        }
        let compiled = fw.compile(&g).unwrap_or_else(|e| panic!("{label}: {e}"));
        out.push((label, compiled));
    }
    let cfw = corpus_framework(scheme);
    for inst in CorpusSpec::default_corpus().instances() {
        let compiled = cfw
            .compile(&inst.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", inst.id));
        out.push((format!("corpus-{}", inst.id), compiled));
    }
    out
}

/// Both tests below compare against the flat compile; share it across the
/// test binary instead of paying the expensive flat sweep twice.
fn flat_compiles() -> &'static Vec<(String, Compiled)> {
    static FLAT: OnceLock<Vec<(String, Compiled)>> = OnceLock::new();
    FLAT.get_or_init(|| compile_all(PartitionScheme::Flat))
}

/// Labels whose instances exceed the coarsening cutoff under the default
/// options — the only ones where the multilevel scheme may genuinely
/// diverge from (and must not lose to) the flat scheme.
const ABOVE_CUTOFF: [&str; 2] = ["lattice-52", "lattice-60"];

#[test]
fn flat_scheme_qasm_matches_pinned_hashes() {
    let pinned: BTreeMap<String, u64> = {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/data/flat_qasm_fnv.txt"
        ))
        .expect("pinned hash file must exist");
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let (label, hash) = l.split_once(' ').expect("LABEL HASH lines");
                (
                    label.to_string(),
                    u64::from_str_radix(hash.trim(), 16).expect("hex hash"),
                )
            })
            .collect()
    };

    let mut seen = BTreeMap::new();
    for (label, compiled) in flat_compiles() {
        let hash = fnv1a64(to_qasm(&compiled.circuit).as_bytes());
        let expected = *pinned
            .get(label)
            .unwrap_or_else(|| panic!("{label}: missing from pinned hash file"));
        assert_eq!(
            hash, expected,
            "{label}: flat-scheme QASM drifted from the pinned pre-multilevel dump \
             (got {hash:016x}, pinned {expected:016x})"
        );
        seen.insert(label.clone(), hash);
    }
    let expected_count = pinned.keys().filter(|label| !debug_trimmed(label)).count();
    assert_eq!(
        seen.len(),
        expected_count,
        "instance set drifted from the pinned hash file: every pinned label must be compiled"
    );
}

#[test]
fn multilevel_quality_no_worse_than_flat() {
    let flat = flat_compiles();
    let ml = compile_all(PartitionScheme::Multilevel(MultilevelOptions::default()));
    assert_eq!(flat.len(), ml.len());
    assert!(flat.len() >= 30, "sweeps + corpus must all compile");

    for ((label, f), (label_ml, m)) in flat.iter().zip(&ml) {
        assert_eq!(label, label_ml);
        // Quality gate: never worse on the partition objective or the
        // headline circuit costs.
        assert!(
            m.partition.cut <= f.partition.cut,
            "{label}: multilevel cut {} worse than flat {}",
            m.partition.cut,
            f.partition.cut
        );
        assert!(
            m.metrics.ee_two_qubit_count <= f.metrics.ee_two_qubit_count,
            "{label}: multilevel ee-CNOTs {} worse than flat {}",
            m.metrics.ee_two_qubit_count,
            f.metrics.ee_two_qubit_count
        );
        assert!(
            m.metrics.peak_emitters <= f.metrics.peak_emitters,
            "{label}: multilevel peak emitters {} worse than flat {}",
            m.metrics.peak_emitters,
            f.metrics.peak_emitters
        );
        // Sub-cutoff instances delegate to the flat engine inside the beam
        // scorer, so the whole compile must tie byte for byte.
        if !ABOVE_CUTOFF.contains(&label.as_str()) {
            assert_eq!(
                to_qasm(&m.circuit),
                to_qasm(&f.circuit),
                "{label}: sub-cutoff instance must delegate to the flat engine exactly"
            );
        }
    }
}

#[test]
fn multilevel_direct_engine_no_worse_on_large_instances() {
    let instances = [
        ("path-200", generators::path(200)),
        ("lattice-10x50", generators::lattice(10, 50)),
    ];
    let (g_max, effort) = (7usize, 8usize);
    let opts = MultilevelOptions::default();
    for (label, g) in instances {
        let n = g.vertex_count();
        let num_blocks = n.div_ceil(g_max);
        let (ml_assign, ml_cut) = multilevel_partition(&g, num_blocks, g_max, effort, SEED, &opts);
        let (_, fm_cut) = fm_partition(&g, num_blocks, g_max, effort, SEED);

        assert_eq!(ml_assign.len(), n, "{label}: partial assignment");
        let mut sizes = vec![0usize; num_blocks];
        for &b in &ml_assign {
            assert!(b < num_blocks, "{label}: block out of range");
            sizes[b] += 1;
        }
        assert!(
            sizes.iter().all(|&s| s <= g_max),
            "{label}: block over g_max={g_max}: {sizes:?}"
        );
        assert!(
            ml_cut <= fm_cut,
            "{label}: multilevel cut {ml_cut} worse than flat {fm_cut}"
        );
    }
}
