//! Robustness and failure-injection tests: malformed inputs, adversarial
//! configurations, and determinism guarantees across the public API surface.

use epgs::{EmitterBudget, Framework, FrameworkConfig};
use epgs_circuit::simulate::{run, verify_circuit, ListedOutcomes};
use epgs_graph::{generators, Graph};
use epgs_hardware::HardwareModel;
use epgs_partition::PartitionSpec;
use epgs_solver::reverse::{solve_with_ordering, SolveOptions};
use epgs_solver::SolverError;

#[test]
fn framework_is_deterministic_end_to_end() {
    let g = generators::lattice(3, 4);
    let fw = Framework::new(FrameworkConfig::default());
    let a = fw.compile(&g).unwrap();
    let b = fw.compile(&g).unwrap();
    assert_eq!(a.circuit, b.circuit);
    assert_eq!(a.global_ordering, b.global_ordering);
    assert_eq!(a.partition.lc_sequence, b.partition.lc_sequence);
}

#[test]
fn absurdly_small_budget_still_produces_correct_circuits() {
    // An Absolute(1) budget on a graph needing 4 emitters: the solver grows
    // the pool as physics demands; the circuit stays correct.
    let g = generators::lattice(4, 4);
    let fw = Framework::new(FrameworkConfig {
        emitter_budget: EmitterBudget::Absolute(1),
        ..FrameworkConfig::default()
    });
    let c = fw.compile(&g).unwrap();
    assert!(verify_circuit(&c.circuit, &g).unwrap());
}

#[test]
fn huge_budget_does_not_bloat_the_circuit_with_idle_emitter_gates() {
    let g = generators::path(6);
    let fw = Framework::new(FrameworkConfig {
        emitter_budget: EmitterBudget::Absolute(12),
        ..FrameworkConfig::default()
    });
    let c = fw.compile(&g).unwrap();
    // A path needs one working emitter; idle pool wires must stay silent.
    assert_eq!(c.metrics.ee_two_qubit_count, 0);
    assert!(verify_circuit(&c.circuit, &g).unwrap());
}

#[test]
fn one_vertex_and_empty_targets() {
    let fw = Framework::new(FrameworkConfig::default());
    let single = fw.compile(&Graph::new(1)).unwrap();
    assert_eq!(single.circuit.emission_count(), 1);
    let empty4 = fw.compile(&Graph::new(4)).unwrap();
    assert_eq!(empty4.metrics.ee_two_qubit_count, 0);
}

#[test]
fn adversarial_outcome_patterns_all_yield_target() {
    // Exhaustively check every outcome pattern for a circuit with several
    // measurements (stronger than the 6-pattern default verification).
    let g = generators::cycle(8);
    let solved = solve_with_ordering(
        &g,
        &[0, 2, 4, 6, 1, 3, 5, 7], // interleaved: forces TRMs
        &SolveOptions::default(),
    )
    .unwrap();
    let m = solved.circuit.measurement_count();
    assert!(m >= 2, "interleaved cycle ordering should need TRMs");
    let patterns = 1u64 << m.min(8);
    for p in 0..patterns {
        let bits: Vec<bool> = (0..m).map(|k| (p >> k) & 1 == 1).collect();
        let mut pol = ListedOutcomes(bits.clone());
        let t = run(&solved.circuit, &mut pol).unwrap();
        assert!(t.is_valid_state(), "pattern {bits:?} broke the state");
    }
    assert!(verify_circuit(&solved.circuit, &g).unwrap());
}

#[test]
fn degenerate_partition_configs_do_not_crash() {
    let g = generators::lattice(3, 3);
    for (g_max, lc, effort) in [(1usize, 0usize, 1usize), (2, 1, 1), (100, 0, 1)] {
        let fw = Framework::new(FrameworkConfig {
            partition: PartitionSpec {
                g_max,
                lc_budget: lc,
                effort,
                seed: 1,
                ..Default::default()
            },
            orderings_per_subgraph: 2,
            flexible_slack: 0,
            ..FrameworkConfig::default()
        });
        let c = fw
            .compile(&g)
            .unwrap_or_else(|e| panic!("g_max={g_max}: {e}"));
        assert!(verify_circuit(&c.circuit, &g).unwrap(), "g_max={g_max}");
    }
}

#[test]
fn solver_reports_invalid_orderings_not_panics() {
    let g = generators::path(4);
    for bad in [vec![], vec![0, 1, 2], vec![0, 1, 2, 4], vec![0, 0, 1, 2]] {
        assert!(matches!(
            solve_with_ordering(&g, &bad, &SolveOptions::default()),
            Err(SolverError::InvalidOrdering { .. })
        ));
    }
}

#[test]
fn all_hardware_presets_keep_relative_metric_ordering() {
    // The same circuit must have loss monotone in the platform's loss rate.
    let g = generators::tree(10, 2);
    let mut losses: Vec<(f64, f64)> = Vec::new();
    for hw in [
        HardwareModel::nv_center(),
        HardwareModel::siv_center(),
        HardwareModel::quantum_dot(),
        HardwareModel::rydberg(),
    ] {
        let fw = Framework::new(FrameworkConfig {
            hardware: hw.clone(),
            ..FrameworkConfig::default()
        });
        let c = fw.compile(&g).unwrap();
        losses.push((hw.photon_loss_per_tau, c.metrics.loss.mean_photon_loss));
    }
    // Not a strict theorem across different compiled circuits, but the two
    // extreme platforms must order correctly.
    let min = losses
        .iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .unwrap();
    let max = losses
        .iter()
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .unwrap();
    assert!(min.1 <= max.1 * 1.5 + 1e-9);
}

#[test]
fn dense_graph_torture() {
    // Complete bipartite-ish blow-up: every pair connected among 10 vertices
    // minus a perfect matching.
    let mut g = generators::complete(10);
    for v in (0..10).step_by(2) {
        g.remove_edge(v, v + 1).unwrap();
    }
    let fw = Framework::new(FrameworkConfig::default());
    let c = fw.compile(&g).unwrap();
    assert!(verify_circuit(&c.circuit, &g).unwrap());
}
