//! Determinism suite for the parallel compile pipeline.
//!
//! PR 5 parallelized the candidate-ordering search in the leaf compiler,
//! the block-local LC refinement in `Planned::build`, and the LC beam
//! scoring in the partitioner, and threaded reusable `SolverWorkspace`s
//! through the hot solve loops; the multilevel partitioner's proposal pass
//! later joined them. All of that is engineered to be
//! *bit-identical* to the sequential code paths: winners are tie-broken by
//! candidate index, speculative LC chains are replayed sequentially under
//! the global budget, and a workspace carries no state between solves.
//! This suite pins those guarantees down:
//!
//! * compiled circuits (QASM dump) are byte-identical between the default
//!   parallel path and the forced-sequential path (`RAYON_NUM_THREADS=1`)
//!   across instances of all three bench families and the default corpus;
//! * back-to-back solves through one `SolverWorkspace` match one-shot
//!   solves bit for bit, including pool-growth retries and TRM-heavy
//!   orderings.

use rand::rngs::StdRng;
use rand::SeedableRng;

use epgs::{Framework, FrameworkConfig};
use epgs_circuit::qasm::to_qasm;
use epgs_corpus::CorpusSpec;
use epgs_graph::{generators, Graph};
use epgs_solver::reverse::{solve_with_ordering, solve_with_ordering_in, SolveOptions};
use epgs_solver::SolverWorkspace;

/// The evaluation-harness configuration (`epgs_bench::bench_framework`).
fn family_framework() -> Framework {
    Framework::new(FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 7,
            lc_budget: 8,
            effort: 8,
            seed: 0xdac2025,
            ..Default::default()
        },
        orderings_per_subgraph: 8,
        flexible_slack: 2,
        verify: true,
        ..FrameworkConfig::default()
    })
}

/// The corpus-batch configuration (`epgs_bench::corpus_framework`).
fn corpus_framework() -> Framework {
    Framework::new(FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 6,
            lc_budget: 4,
            effort: 5,
            seed: 0xdac2025,
            ..Default::default()
        },
        orderings_per_subgraph: 6,
        flexible_slack: 1,
        verify: true,
        ..FrameworkConfig::default()
    })
}

/// Representative instances of the three bench families (`epgs_bench`
/// sweeps, trimmed to keep the double compile affordable). `lattice-60`
/// sits above the multilevel coarsening cutoff (48 vertices with the
/// default options), so the byte-identity check also covers the coarsen →
/// initial-partition → uncoarsen path, not just the sub-cutoff delegation
/// to the flat engine.
fn family_instances() -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    for k in [3usize, 7, 15] {
        out.push((format!("lattice-{}", 4 * k), generators::lattice(4, k)));
    }
    for n in [10usize, 22] {
        out.push((format!("tree-{n}"), generators::tree(n, 2)));
    }
    for n in [10usize, 25] {
        let mut rng = StdRng::seed_from_u64(0xdac2025 ^ n as u64);
        out.push((
            format!("random-{n}"),
            generators::waxman(n, 0.5, 0.2, &mut rng),
        ));
    }
    out
}

/// Compiles every family instance and every default-corpus instance,
/// returning `(label, qasm)` pairs.
fn compile_all() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let fw = family_framework();
    for (label, g) in family_instances() {
        let compiled = fw.compile(&g).unwrap_or_else(|e| panic!("{label}: {e}"));
        out.push((label, to_qasm(&compiled.circuit)));
    }
    let cfw = corpus_framework();
    for inst in CorpusSpec::default_corpus().instances() {
        let compiled = cfw
            .compile(&inst.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", inst.id));
        out.push((format!("corpus-{}", inst.id), to_qasm(&compiled.circuit)));
    }
    out
}

/// Clears `RAYON_NUM_THREADS` on drop, so a failing assertion cannot leak
/// the forced-sequential mode into other tests of this process.
struct SequentialModeGuard;

impl Drop for SequentialModeGuard {
    fn drop(&mut self) {
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}

#[test]
fn parallel_and_sequential_pipelines_emit_byte_identical_qasm() {
    // Default path: parallel candidate search, parallel LC refinement,
    // parallel beam scoring (however many workers the host offers).
    let parallel = compile_all();
    // Forced-sequential path: the rayon shim honors RAYON_NUM_THREADS=1 by
    // running every stage inline on the calling thread.
    let sequential = {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let _guard = SequentialModeGuard;
        compile_all()
    };

    assert_eq!(parallel.len(), sequential.len());
    assert!(parallel.len() >= 20, "corpus + families must all compile");
    for ((label_p, qasm_p), (label_s, qasm_s)) in parallel.iter().zip(&sequential) {
        assert_eq!(label_p, label_s);
        assert!(!qasm_p.is_empty(), "{label_p}: empty dump");
        assert_eq!(
            qasm_p, qasm_s,
            "{label_p}: parallel and sequential compilations diverged"
        );
    }
}

#[test]
fn workspace_reuse_matches_one_shot_solves_bit_for_bit() {
    // A mix of shapes and orderings, including TRM-heavy interleavings and
    // orderings that force pool growth — everything runs back to back
    // through ONE workspace and must match fresh one-shot solves exactly.
    let mut cases: Vec<(Graph, Vec<usize>, SolveOptions)> = Vec::new();
    let defaults = SolveOptions {
        verify: true,
        ..SolveOptions::default()
    };
    cases.push((generators::path(8), (0..8).collect(), defaults.clone()));
    cases.push((
        generators::path(8),
        vec![0, 2, 4, 6, 1, 3, 5, 7],
        defaults.clone(),
    ));
    cases.push((
        generators::cycle(7),
        (0..7).rev().collect(),
        defaults.clone(),
    ));
    cases.push((generators::star(6), (0..6).collect(), defaults.clone()));
    cases.push((
        generators::lattice(3, 3),
        (0..9).collect(),
        defaults.clone(),
    ));
    cases.push((
        generators::complete(6),
        vec![5, 0, 4, 1, 3, 2],
        defaults.clone(),
    ));
    cases.push((
        generators::path(6),
        (0..6).collect(),
        SolveOptions {
            emitters: Some(3),
            ..defaults.clone()
        },
    ));
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..4 {
        let g = generators::erdos_renyi(8, 0.4, &mut rng);
        let ord = (0..8).collect();
        cases.push((g, ord, defaults.clone()));
    }

    let mut ws = SolverWorkspace::new();
    for (i, (g, ord, opts)) in cases.iter().enumerate() {
        let one_shot =
            solve_with_ordering(g, ord, opts).unwrap_or_else(|e| panic!("case {i}: {e}"));
        let reused = solve_with_ordering_in(&mut ws, g, ord, opts)
            .unwrap_or_else(|e| panic!("case {i}: {e}"));
        assert_eq!(
            one_shot.emitters, reused.emitters,
            "case {i}: pool diverged"
        );
        assert_eq!(one_shot.ordering, reused.ordering, "case {i}");
        assert_eq!(
            one_shot.circuit, reused.circuit,
            "case {i}: circuits diverged"
        );
        assert_eq!(
            to_qasm(&one_shot.circuit),
            to_qasm(&reused.circuit),
            "case {i}: QASM diverged"
        );
    }

    // Error paths reset cleanly too: an invalid ordering must not poison
    // the workspace for the next solve.
    let g = generators::path(5);
    assert!(solve_with_ordering_in(&mut ws, &g, &[0, 0, 1, 2, 3], &defaults).is_err());
    let ok = solve_with_ordering_in(&mut ws, &g, &[4, 3, 2, 1, 0], &defaults).unwrap();
    let fresh = solve_with_ordering(&g, &[4, 3, 2, 1, 0], &defaults).unwrap();
    assert_eq!(ok.circuit, fresh.circuit);
}
