//! Stress and property tests of the time-reversed solver: every compiled
//! circuit is verified against the target by the stabilizer simulator, which
//! is the strongest correctness statement the workspace makes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use epgs_graph::{generators, height, Graph};
use epgs_solver::reverse::{solve, solve_with_ordering, SolveOptions};
use epgs_solver::{ordering, solve_baseline, BaselineOptions};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=10).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for a in 0..n {
                for b in (a + 1)..n {
                    if bits[k] {
                        g.add_edge(a, b).unwrap();
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random graph compiles to a circuit that regenerates it exactly.
    /// `SolveOptions::verify` (on by default) runs the simulator over both
    /// constant outcome branches and pseudorandom patterns.
    #[test]
    fn every_random_graph_compiles_and_verifies(g in arb_graph()) {
        let solved = solve(&g, &SolveOptions::default());
        prop_assert!(solved.is_ok(), "{:?} on {:?}", solved.err(), g);
    }

    /// The emitter pool never falls below the height-function bound, and the
    /// solver succeeds within its bounded pool growth.
    #[test]
    fn pool_respects_height_lower_bound(g in arb_graph()) {
        let ordering: Vec<usize> = (0..g.vertex_count()).collect();
        let solved = solve_with_ordering(&g, &ordering, &SolveOptions::default()).unwrap();
        prop_assert!(solved.emitters >= height::min_emitters(&g, &ordering).max(1));
    }

    /// Reversed orderings compile too (ordering freedom, paper §II.A).
    #[test]
    fn reversed_ordering_compiles(g in arb_graph()) {
        let ordering: Vec<usize> = (0..g.vertex_count()).rev().collect();
        prop_assert!(solve_with_ordering(&g, &ordering, &SolveOptions::default()).is_ok());
    }

    /// Every emission appears exactly once per photon and the emission count
    /// equals the vertex count.
    #[test]
    fn one_emission_per_photon(g in arb_graph()) {
        let solved = solve(&g, &SolveOptions::default()).unwrap();
        prop_assert_eq!(solved.circuit.emission_count(), g.vertex_count());
        prop_assert!(solved.circuit.validate().is_ok());
    }
}

#[test]
fn benchmark_families_compile_at_benchmark_sizes() {
    let mut rng = StdRng::seed_from_u64(2025);
    let cases: Vec<(String, Graph)> = vec![
        ("lattice 4x5".into(), generators::lattice(4, 5)),
        ("tree 20/2".into(), generators::tree(20, 2)),
        ("tree 16/3".into(), generators::tree(16, 3)),
        (
            "waxman 18".into(),
            generators::waxman(18, 0.5, 0.2, &mut rng),
        ),
        ("rgs m=3".into(), generators::repeater_graph_state(3)),
        ("cycle 16".into(), generators::cycle(16)),
        ("complete 8".into(), generators::complete(8)),
    ];
    for (name, g) in cases {
        let solved = solve(&g, &SolveOptions::default());
        assert!(solved.is_ok(), "{name}: {:?}", solved.err());
    }
}

#[test]
fn baseline_and_connected_orderings_verify_on_waxman() {
    let mut rng = StdRng::seed_from_u64(7);
    let hw = epgs_hardware::HardwareModel::quantum_dot();
    for trial in 0..5 {
        let g = generators::waxman(14, 0.5, 0.2, &mut rng);
        let s = solve_baseline(&g, &hw, &BaselineOptions::default());
        assert!(s.is_ok(), "trial {trial}");
        let ord = ordering::random_connected(&g, &mut rng);
        assert!(solve_with_ordering(&g, &ord, &SolveOptions::default()).is_ok());
    }
}

#[test]
fn connected_ordering_never_needs_more_emitters_than_natural_on_lattice() {
    // Connectivity-respecting orders keep the entangled boundary compact on
    // lattices; the solver should exploit that.
    let g = generators::lattice(4, 4);
    let natural = solve(&g, &SolveOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    // Not a per-sample theorem: take the best of a few connected orders.
    let best = (0..5)
        .map(|_| {
            let ord = ordering::random_connected(&g, &mut rng);
            solve_with_ordering(&g, &ord, &SolveOptions::default())
                .unwrap()
                .emitters
        })
        .min()
        .unwrap();
    assert!(best <= natural.emitters + 1);
}

#[test]
fn compiled_circuits_identical_on_both_gf2_kernel_paths() {
    // End-to-end kernel-dispatch differential: the blocked Four-Russians
    // elimination and the 4-lane word kernels must be unobservable from the
    // solver — same circuit, op for op, as the forced-scalar oracle path.
    // Sizes are past the 64-row `rref_small` cutoff so the deterministic
    // sign and element searches really take the blocked path by default.
    use epgs_graph::gf2::kernels;
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for g in [
        generators::lattice(8, 9),
        generators::cycle(70),
        generators::random_tree(66, &mut rng),
    ] {
        kernels::force_scalar(false);
        let blocked = solve(&g, &SolveOptions::default()).unwrap();
        kernels::force_scalar(true);
        let scalar = solve(&g, &SolveOptions::default()).unwrap();
        kernels::force_scalar(false);
        assert_eq!(
            blocked.circuit,
            scalar.circuit,
            "kernel paths compiled different circuits on {} photons",
            g.vertex_count()
        );
        assert_eq!(blocked.emitters, scalar.emitters);
        assert_eq!(blocked.ordering, scalar.ordering);
    }
}

#[test]
fn disconnected_graph_compiles() {
    // Two disjoint edges plus an isolated vertex.
    let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
    let solved = solve(&g, &SolveOptions::default()).unwrap();
    assert_eq!(solved.circuit.emission_count(), 5);
}

#[test]
fn empty_graph_compiles() {
    let g = Graph::new(4);
    let solved = solve(&g, &SolveOptions::default()).unwrap();
    assert_eq!(solved.circuit.ee_two_qubit_count(), 0);
}

#[test]
fn paper_fig1_example_compiles_with_one_emitter_after_lc() {
    // Fig. 1(b): photons p0-p1-p2-p3 with edges {01, 02, 13, 23} — the
    // 4-cycle in disguise. The paper's optimized circuit (Fig. 1d) uses one
    // emitter; the unoptimized one (Fig. 1c) uses two.
    let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
    let two_emitter = solve(&g, &SolveOptions::default()).unwrap();
    assert!(two_emitter.emitters >= 2);
    // An LC-equivalent presentation reduces the requirement: LC at 0 then 3
    // turns C4 into a path-like structure of height 1… verify the compiler
    // benefits from *some* ordering; full LC search lives in epgs-core.
    let mut best = two_emitter.emitters;
    for ord in [vec![0, 1, 3, 2], vec![1, 0, 2, 3], vec![0, 2, 3, 1]] {
        if let Ok(s) = solve_with_ordering(&g, &ord, &SolveOptions::default()) {
            best = best.min(s.emitters);
        }
    }
    assert!(best <= 2);
}
