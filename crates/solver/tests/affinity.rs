//! Tests of the scheduler-facing emitter-affinity mechanism: affinity must
//! never break correctness and should keep work on the preferred emitters
//! when the structure allows it.

use epgs_circuit::simulate::verify_circuit;
use epgs_circuit::{Op, Qubit};
use epgs_graph::{generators, Graph};
use epgs_solver::reverse::{solve_with_ordering, Affinity, SolveOptions};

/// Two disjoint paths compiled as one graph with affinity separating them.
fn two_paths() -> Graph {
    let mut g = Graph::new(8);
    for i in 0..3 {
        g.add_edge(i, i + 1).unwrap();
        g.add_edge(4 + i, 4 + i + 1).unwrap();
    }
    g
}

#[test]
fn affinity_respects_groups_on_disjoint_components() {
    let g = two_paths();
    let ordering: Vec<usize> = vec![0, 4, 1, 5, 2, 6, 3, 7]; // interleaved
    let affinity = Affinity {
        photon_group: vec![0, 0, 0, 0, 1, 1, 1, 1],
        group_emitters: vec![vec![0], vec![1]],
    };
    let opts = SolveOptions {
        emitters: Some(2),
        affinity: Some(affinity),
        verify: true,
        ..SolveOptions::default()
    };
    let solved = solve_with_ordering(&g, &ordering, &opts).expect("solves with affinity");
    // Each component needs one emitter; with affinity the interleaved order
    // must not couple the two emitters.
    assert_eq!(solved.circuit.ee_two_qubit_count(), 0);
    // Every emission of photons 0..4 comes from emitter 0, the rest from 1.
    for op in solved.circuit.ops() {
        if let Op::Emit { emitter, photon } = *op {
            assert_eq!(emitter, if photon < 4 { 0 } else { 1 }, "photon {photon}");
        }
    }
}

#[test]
fn affinity_is_only_a_preference_not_a_constraint() {
    // One connected graph, absurd affinity (everything wants emitter 7 of a
    // 1-sized group list): must still compile and verify.
    let g = generators::cycle(6);
    let affinity = Affinity {
        photon_group: vec![0; 6],
        group_emitters: vec![vec![7]], // does not exist in the pool
    };
    let opts = SolveOptions {
        affinity: Some(affinity),
        verify: true,
        ..SolveOptions::default()
    };
    assert!(solve_with_ordering(&g, &[0, 1, 2, 3, 4, 5], &opts).is_ok());
}

#[test]
fn affinity_with_empty_groups_behaves_like_none() {
    let g = generators::path(5);
    let ordering: Vec<usize> = (0..5).collect();
    let with = solve_with_ordering(
        &g,
        &ordering,
        &SolveOptions {
            affinity: Some(Affinity::default()),
            ..SolveOptions::default()
        },
    )
    .unwrap();
    let without = solve_with_ordering(&g, &ordering, &SolveOptions::default()).unwrap();
    assert_eq!(
        with.circuit.ee_two_qubit_count(),
        without.circuit.ee_two_qubit_count()
    );
}

#[test]
fn interleaved_components_without_affinity_still_verify() {
    // Sanity for the comparison in the first test: no affinity, same order.
    let g = two_paths();
    let ordering: Vec<usize> = vec![0, 4, 1, 5, 2, 6, 3, 7];
    let solved = solve_with_ordering(
        &g,
        &ordering,
        &SolveOptions {
            emitters: Some(2),
            ..SolveOptions::default()
        },
    )
    .unwrap();
    assert!(verify_circuit(&solved.circuit, &g).unwrap());
    // Emissions must target photons in register order per emitter chain.
    let _ = Qubit::Photon(0);
}
