//! Time-reversed GraphState-to-Circuit solvers.
//!
//! The deterministic emitter-photonic scheme generates a photonic graph
//! state from interacting emitters. This crate hosts:
//!
//! * [`reverse`] — the tableau-based time-reversed engine (photon
//!   absorption, time-reversed measurement, emitter disentangling), the
//!   single source of truth for circuit generation;
//! * [`baseline`] — the GraphiQ-style comparison baseline (same protocol,
//!   minimal emitters, bounded restart search over orderings);
//! * [`ordering`] — emission-ordering strategies (natural, BFS, the paper's
//!   low-degree-first DFS, random / random-connected samplers);
//! * [`cost`] — height-function cost estimates used for search pruning.
//!
//! # Examples
//!
//! ```
//! use epgs_graph::generators;
//! use epgs_solver::reverse::{solve, SolveOptions};
//!
//! # fn main() -> Result<(), epgs_solver::SolverError> {
//! let target = generators::path(6);
//! let solved = solve(&target, &SolveOptions::default())?;
//! assert_eq!(solved.emitters, 1); // linear clusters need one emitter
//! assert_eq!(solved.circuit.ee_two_qubit_count(), 0);
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod cost;
pub mod error;
pub mod ordering;
pub mod reverse;

pub use baseline::{solve_baseline, BaselineOptions};
pub use error::SolverError;
pub use reverse::{
    solve, solve_with_ordering, solve_with_ordering_in, SolveOptions, Solved, SolverWorkspace,
};
