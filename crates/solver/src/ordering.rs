//! Emission-ordering strategies.
//!
//! The commutation freedom of graph-state CZs lets photons be emitted in any
//! order (paper §II.A); the order drives the height function and therefore
//! the emitter count, the number of time-reversed measurements, and the
//! emitter-emitter CNOT count. This module provides the deterministic
//! strategies plus the randomized sampler used by the baseline's restart
//! search and the subgraph compiler's DFS seeds.

use rand::seq::SliceRandom;
use rand::Rng;

use epgs_graph::Graph;

/// Natural ordering `0..n`.
pub fn natural(g: &Graph) -> Vec<usize> {
    (0..g.vertex_count()).collect()
}

/// Breadth-first order from the lowest-index vertex of each component.
pub fn bfs(g: &Graph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in g.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order
}

/// Depth-first order that always descends into the lowest-degree unvisited
/// neighbor first — the paper's §IV.B heuristic ("prioritizing the reduction
/// of lower-degree vertices"), read forward.
pub fn degree_dfs(g: &Graph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Start from a minimum-degree vertex of each component.
    let mut starts: Vec<usize> = (0..n).collect();
    starts.sort_by_key(|&v| g.degree(v));
    for &start in &starts {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            order.push(v);
            let mut nbrs: Vec<usize> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| !seen[w])
                .collect();
            // Highest degree deepest in the stack → lowest degree popped first.
            nbrs.sort_by_key(|&w| std::cmp::Reverse(g.degree(w)));
            for w in nbrs {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    order
}

/// A uniformly random permutation.
pub fn random<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Vec<usize> {
    let mut order: Vec<usize> = (0..g.vertex_count()).collect();
    order.shuffle(rng);
    order
}

/// A random *connectivity-respecting* order: grows a connected front,
/// picking the next photon uniformly among neighbors of the emitted prefix.
/// These orders keep the height function low on sparse graphs.
pub fn random_connected<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Vec<usize> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut frontier: Vec<usize> = Vec::new();
    while order.len() < n {
        let v = if frontier.is_empty() {
            // New component: uniformly random unvisited vertex.
            let choices: Vec<usize> = (0..n).filter(|&v| !seen[v]).collect();
            *choices.choose(rng).expect("unvisited vertices remain")
        } else {
            let idx = rng.gen_range(0..frontier.len());
            frontier.swap_remove(idx)
        };
        if seen[v] {
            continue;
        }
        seen[v] = true;
        order.push(v);
        for &w in g.neighbors(v) {
            if !seen[w] {
                frontier.push(w);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_permutation(order: &[usize], n: usize) {
        let mut seen = vec![false; n];
        assert_eq!(order.len(), n);
        for &v in order {
            assert!(v < n && !seen[v], "not a permutation: {order:?}");
            seen[v] = true;
        }
    }

    #[test]
    fn all_strategies_give_permutations() {
        let g = generators::lattice(3, 4);
        let mut rng = StdRng::seed_from_u64(5);
        assert_permutation(&natural(&g), 12);
        assert_permutation(&bfs(&g), 12);
        assert_permutation(&degree_dfs(&g), 12);
        assert_permutation(&random(&g, &mut rng), 12);
        assert_permutation(&random_connected(&g, &mut rng), 12);
    }

    #[test]
    fn bfs_starts_at_zero_and_expands() {
        let g = generators::path(5);
        assert_eq!(bfs(&g), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn degree_dfs_starts_at_a_leaf() {
        let g = generators::star(5);
        let order = degree_dfs(&g);
        assert_ne!(order[0], 0, "hub has max degree, must not start there");
    }

    #[test]
    fn random_connected_prefixes_are_connected() {
        let g = generators::lattice(3, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let order = random_connected(&g, &mut rng);
            assert_permutation(&order, 9);
            for j in 1..order.len() {
                let (sub, _) = g.induced_subgraph(&order[..j]);
                assert!(sub.is_connected(), "prefix {j} of {order:?} disconnected");
            }
        }
    }

    #[test]
    fn disconnected_graphs_are_covered() {
        let mut g = generators::path(3);
        let v = g.add_vertex();
        assert_eq!(v, 3);
        let mut rng = StdRng::seed_from_u64(3);
        assert_permutation(&bfs(&g), 4);
        assert_permutation(&degree_dfs(&g), 4);
        assert_permutation(&random_connected(&g, &mut rng), 4);
    }
}
