//! Cheap, tableau-free cost estimates for emission orderings.
//!
//! The subgraph compiler's DFS (paper §IV.B) needs to rank many candidate
//! orderings before paying for full reverse solves. The height function gives
//! sound signals: its maximum is the emitter count, and every backward step
//! where the height fails to drop forces a time-reversed measurement /
//! emitter interaction in the reverse protocol. These counts are *estimates*
//! used only for pruning — the tableau solve is authoritative.

use epgs_graph::{height, Graph};

/// Height-function-derived estimate for one ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderingEstimate {
    /// Minimal emitter count (exact, from the height function).
    pub emitters: usize,
    /// Number of absorption steps where the height does not drop — each
    /// needs emitter-side work (a TRM or an emitter-emitter interaction).
    pub stalls: usize,
    /// `emitters + stalls`: the pruning score (lower is better).
    pub score: usize,
}

/// Estimates the cost of emitting `g` in `ordering`.
///
/// # Panics
///
/// Panics if `ordering` is not a permutation of the vertices.
///
/// # Examples
///
/// ```
/// use epgs_graph::generators;
/// use epgs_solver::cost::estimate_ordering;
///
/// let g = generators::path(6);
/// let natural: Vec<usize> = (0..6).collect();
/// let e = estimate_ordering(&g, &natural);
/// assert_eq!(e.emitters, 1);
/// assert_eq!(e.stalls, 1); // the emitter is measured out at the end
/// ```
pub fn estimate_ordering(g: &Graph, ordering: &[usize]) -> OrderingEstimate {
    let h = height::height_function(g, ordering);
    let emitters = h.iter().copied().max().unwrap_or(0).max(1);
    // Walking backward from j = n to 1: absorbing the photon at position j
    // needs a time-reversed measurement whenever the boundary entanglement
    // *grows* backward (h[j-1] > h[j]) — an extra emitter must join the
    // entangled set.
    let stalls = (1..h.len()).filter(|&j| h[j - 1] > h[j]).count();
    OrderingEstimate {
        emitters,
        stalls,
        score: emitters + stalls,
    }
}

/// Ranks `orderings` by estimated cost, cheapest first (stable for ties).
///
/// Each ordering is estimated exactly once (`sort_by_key` would re-run the
/// height function on every comparison).
pub fn rank_orderings(g: &Graph, orderings: &mut [Vec<usize>]) {
    orderings.sort_by_cached_key(|ord| estimate_ordering(g, ord).score);
}

/// Objective-dependent weights for the pruning score.
///
/// The unweighted [`OrderingEstimate::score`] treats an extra emitter and
/// an extra stall as equally bad — the right call when minimizing emitter
/// resources. Under a duration- or loss-driven objective the balance
/// shifts: every stall serializes emitter-side work (lengthening the
/// circuit and every photon's storage exposure), while an extra emitter
/// mostly costs hardware. `CostWeights` lets the caller encode that
/// preference without touching the sound underlying counts.
///
/// # Examples
///
/// ```
/// use epgs_graph::generators;
/// use epgs_solver::cost::{estimate_ordering, CostWeights};
///
/// let g = generators::path(6);
/// let natural: Vec<usize> = (0..6).collect();
/// let e = estimate_ordering(&g, &natural);
/// // Default weights reproduce the unweighted score exactly.
/// assert_eq!(CostWeights::default().score(&e), e.score as f64);
/// // Duration-focused weights punish the stall harder.
/// assert!(CostWeights::duration_focused().score(&e) > e.score as f64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight per emitter the ordering needs.
    pub emitters: f64,
    /// Weight per stalled absorption step.
    pub stalls: f64,
}

impl Default for CostWeights {
    /// Unit weights: with [`rank_orderings_weighted`] this reproduces the
    /// subgraph compiler's historic `(score, emitters)` ranking — like
    /// [`rank_orderings`] except that score ties break by emitter demand
    /// rather than input order.
    fn default() -> Self {
        CostWeights {
            emitters: 1.0,
            stalls: 1.0,
        }
    }
}

impl CostWeights {
    /// Weights for duration/loss-driven objectives: stalls (which
    /// serialize the timeline) count three times an emitter.
    pub fn duration_focused() -> Self {
        CostWeights {
            emitters: 1.0,
            stalls: 3.0,
        }
    }

    /// The weighted pruning score of one estimate (lower is better).
    pub fn score(&self, estimate: &OrderingEstimate) -> f64 {
        self.emitters * estimate.emitters as f64 + self.stalls * estimate.stalls as f64
    }
}

/// Ranks `orderings` by the weighted estimate, cheapest first, breaking
/// weighted-score ties by raw emitter demand (stable beyond that). With
/// [`CostWeights::default`] this is exactly the subgraph compiler's
/// historic `(score, emitters)` ranking.
///
/// Each ordering is estimated once (not per comparison).
pub fn rank_orderings_weighted(g: &Graph, orderings: &mut [Vec<usize>], weights: &CostWeights) {
    let mut keyed: Vec<((f64, usize), Vec<usize>)> = orderings
        .iter_mut()
        .map(|ord| {
            let e = estimate_ordering(g, ord);
            ((weights.score(&e), e.emitters), std::mem::take(ord))
        })
        .collect();
    keyed.sort_by(|(ka, _), (kb, _)| {
        ka.0.partial_cmp(&kb.0)
            .expect("finite weighted scores")
            .then(ka.1.cmp(&kb.1))
    });
    for (slot, (_, ord)) in orderings.iter_mut().zip(keyed) {
        *slot = ord;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    #[test]
    fn path_natural_order_is_free() {
        let g = generators::path(8);
        let e = estimate_ordering(&g, &(0..8).collect::<Vec<_>>());
        assert_eq!(e.emitters, 1);
        // One stall: the single emitter is measured out after the last photon.
        assert_eq!(e.stalls, 1);
        assert_eq!(e.score, 2);
    }

    #[test]
    fn interleaved_path_order_is_penalized() {
        let g = generators::path(6);
        let natural = estimate_ordering(&g, &[0, 1, 2, 3, 4, 5]);
        let interleaved = estimate_ordering(&g, &[0, 2, 4, 1, 3, 5]);
        assert!(interleaved.score > natural.score);
        assert!(interleaved.emitters > natural.emitters);
    }

    #[test]
    fn lattice_row_major_needs_width_emitters() {
        let g = generators::lattice(3, 4);
        let e = estimate_ordering(&g, &(0..12).collect::<Vec<_>>());
        assert_eq!(e.emitters, 4);
    }

    #[test]
    fn rank_orders_cheapest_first() {
        let g = generators::path(6);
        let mut orderings = vec![vec![0, 2, 4, 1, 3, 5], vec![0, 1, 2, 3, 4, 5]];
        rank_orderings(&g, &mut orderings);
        assert_eq!(orderings[0], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn default_weights_match_the_historic_subgraph_ranking() {
        let g = generators::lattice(3, 3);
        let orderings = vec![
            (0..9).collect::<Vec<_>>(),
            vec![0, 3, 6, 1, 4, 7, 2, 5, 8],
            vec![8, 7, 6, 5, 4, 3, 2, 1, 0],
            vec![0, 4, 8, 1, 5, 2, 6, 3, 7],
        ];
        let mut legacy = orderings.clone();
        legacy.sort_by_key(|ord| {
            let e = estimate_ordering(&g, ord);
            (e.score, e.emitters)
        });
        let mut weighted = orderings;
        rank_orderings_weighted(&g, &mut weighted, &CostWeights::default());
        assert_eq!(legacy, weighted);
    }

    #[test]
    fn duration_weights_can_flip_a_ranking() {
        // Ordering A: fewer emitters, more stalls; ordering B: the reverse.
        let a = OrderingEstimate {
            emitters: 2,
            stalls: 4,
            score: 6,
        };
        let b = OrderingEstimate {
            emitters: 5,
            stalls: 1,
            score: 6,
        };
        let default = CostWeights::default();
        assert_eq!(default.score(&a), default.score(&b), "tied unweighted");
        let duration = CostWeights::duration_focused();
        assert!(
            duration.score(&b) < duration.score(&a),
            "stall-heavy ordering loses under duration weights"
        );
    }

    #[test]
    fn stalls_track_cycle_closure() {
        // A cycle's last photon closes the loop: height stays flat at some
        // step, so at least one stall appears.
        let g = generators::cycle(6);
        let e = estimate_ordering(&g, &(0..6).collect::<Vec<_>>());
        assert!(e.stalls >= 1);
        assert_eq!(e.emitters, 2);
    }
}
