//! Cheap, tableau-free cost estimates for emission orderings.
//!
//! The subgraph compiler's DFS (paper §IV.B) needs to rank many candidate
//! orderings before paying for full reverse solves. The height function gives
//! sound signals: its maximum is the emitter count, and every backward step
//! where the height fails to drop forces a time-reversed measurement /
//! emitter interaction in the reverse protocol. These counts are *estimates*
//! used only for pruning — the tableau solve is authoritative.

use epgs_graph::{height, Graph};

/// Height-function-derived estimate for one ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderingEstimate {
    /// Minimal emitter count (exact, from the height function).
    pub emitters: usize,
    /// Number of absorption steps where the height does not drop — each
    /// needs emitter-side work (a TRM or an emitter-emitter interaction).
    pub stalls: usize,
    /// `emitters + stalls`: the pruning score (lower is better).
    pub score: usize,
}

/// Estimates the cost of emitting `g` in `ordering`.
///
/// # Panics
///
/// Panics if `ordering` is not a permutation of the vertices.
///
/// # Examples
///
/// ```
/// use epgs_graph::generators;
/// use epgs_solver::cost::estimate_ordering;
///
/// let g = generators::path(6);
/// let natural: Vec<usize> = (0..6).collect();
/// let e = estimate_ordering(&g, &natural);
/// assert_eq!(e.emitters, 1);
/// assert_eq!(e.stalls, 1); // the emitter is measured out at the end
/// ```
pub fn estimate_ordering(g: &Graph, ordering: &[usize]) -> OrderingEstimate {
    let h = height::height_function(g, ordering);
    let emitters = h.iter().copied().max().unwrap_or(0).max(1);
    // Walking backward from j = n to 1: absorbing the photon at position j
    // needs a time-reversed measurement whenever the boundary entanglement
    // *grows* backward (h[j-1] > h[j]) — an extra emitter must join the
    // entangled set.
    let stalls = (1..h.len()).filter(|&j| h[j - 1] > h[j]).count();
    OrderingEstimate {
        emitters,
        stalls,
        score: emitters + stalls,
    }
}

/// Ranks `orderings` by estimated cost, cheapest first (stable for ties).
pub fn rank_orderings(g: &Graph, orderings: &mut [Vec<usize>]) {
    orderings.sort_by_key(|ord| estimate_ordering(g, ord).score);
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    #[test]
    fn path_natural_order_is_free() {
        let g = generators::path(8);
        let e = estimate_ordering(&g, &(0..8).collect::<Vec<_>>());
        assert_eq!(e.emitters, 1);
        // One stall: the single emitter is measured out after the last photon.
        assert_eq!(e.stalls, 1);
        assert_eq!(e.score, 2);
    }

    #[test]
    fn interleaved_path_order_is_penalized() {
        let g = generators::path(6);
        let natural = estimate_ordering(&g, &[0, 1, 2, 3, 4, 5]);
        let interleaved = estimate_ordering(&g, &[0, 2, 4, 1, 3, 5]);
        assert!(interleaved.score > natural.score);
        assert!(interleaved.emitters > natural.emitters);
    }

    #[test]
    fn lattice_row_major_needs_width_emitters() {
        let g = generators::lattice(3, 4);
        let e = estimate_ordering(&g, &(0..12).collect::<Vec<_>>());
        assert_eq!(e.emitters, 4);
    }

    #[test]
    fn rank_orders_cheapest_first() {
        let g = generators::path(6);
        let mut orderings = vec![vec![0, 2, 4, 1, 3, 5], vec![0, 1, 2, 3, 4, 5]];
        rank_orderings(&g, &mut orderings);
        assert_eq!(orderings[0], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn stalls_track_cycle_closure() {
        // A cycle's last photon closes the loop: height stays flat at some
        // step, so at least one stall appears.
        let g = generators::cycle(6);
        let e = estimate_ordering(&g, &(0..6).collect::<Vec<_>>());
        assert!(e.stalls >= 1);
        assert_eq!(e.emitters, 2);
    }
}
