//! Error types for GraphState-to-Circuit solving.

/// Errors raised by the time-reversed solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The emitter pool is too small for the requested ordering: the solver
    /// needed a free emitter and none was available.
    InsufficientEmitters {
        /// Pool size that failed.
        pool: usize,
        /// Photon being absorbed when the failure occurred.
        photon: usize,
    },
    /// The provided emission ordering was not a permutation of the photons.
    InvalidOrdering {
        /// Photon count of the target graph.
        photons: usize,
    },
    /// Every candidate emission ordering of a subgraph search failed to
    /// compile — the search-level counterpart of
    /// [`SolverError::InsufficientEmitters`], carrying what was actually
    /// tried instead of a zeroed-out per-solve sentinel.
    NoCompilableOrdering {
        /// Photon count of the subgraph.
        photons: usize,
        /// Number of candidate orderings that were compiled and failed.
        candidates: usize,
    },
    /// Internal invariant violation — a compiled circuit failed verification.
    /// This indicates a solver bug, never a user error.
    VerificationFailed,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::InsufficientEmitters { pool, photon } => write!(
                f,
                "emitter pool of {pool} exhausted while absorbing photon {photon}"
            ),
            SolverError::InvalidOrdering { photons } => {
                write!(f, "emission ordering is not a permutation of 0..{photons}")
            }
            SolverError::NoCompilableOrdering {
                photons,
                candidates,
            } => write!(
                f,
                "none of the {candidates} candidate orderings compiled the {photons}-photon subgraph"
            ),
            SolverError::VerificationFailed => {
                write!(f, "compiled circuit failed stabilizer verification")
            }
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = SolverError::InsufficientEmitters { pool: 2, photon: 5 };
        assert!(e.to_string().contains("pool of 2"));
        assert!(e.to_string().contains("photon 5"));
    }

    #[test]
    fn no_compilable_ordering_display_names_the_search() {
        let e = SolverError::NoCompilableOrdering {
            photons: 7,
            candidates: 5,
        };
        assert!(e.to_string().contains("5 candidate orderings"));
        assert!(e.to_string().contains("7-photon"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolverError>();
    }
}
