//! The time-reversed GraphState-to-Circuit engine.
//!
//! Following Li, Economou & Barnes (npj QI 8, 11 (2022)) — the algorithm
//! underlying GraphiQ's deterministic solver and the per-subgraph compiler of
//! the paper — the engine starts from the tableau of |G⟩ ⊗ |0⟩^m and undoes
//! it photon by photon in *reverse* emission order:
//!
//! 1. **Photon absorption** — find a stabilizer-group element `g` supported
//!    on the photon and emitters only; rotate the photon's letter to `Z` and
//!    compress `g`'s emitter support to one emitter with emitter-emitter
//!    CNOTs; the reversed emission CNOT then disentangles the photon into
//!    |0⟩. Commutation guarantees the leftover `X_e … X_j` rows are cleaned
//!    by the same CNOT (see the inline invariants).
//! 2. **Time-reversed measurement (TRM)** — when no such `g` exists, a free
//!    emitter `e` is entangled as `X_e Z_j` (forward reading: measure `e`,
//!    apply `Z` on photon `j` on outcome 1). This is what frees emitters for
//!    reuse in forward time.
//! 3. **Emitter disentangling** — after all photons are absorbed, the
//!    emitter-only state is reduced to a graph state, its edges removed with
//!    CZs, and the wires Hadamard-ed back to |0⟩.
//!
//! Reversing the recorded operation list and inverting each op yields the
//! forward circuit, which is verified against the target by the tableau
//! simulator in tests and (optionally) by [`SolveOptions::verify`].

use epgs_circuit::{simulate, Circuit, Op, Qubit};
use epgs_graph::gf2::BitVec;
use epgs_graph::{height, Graph};
use epgs_stabilizer::{to_graph_form, LocalGate, RotGate, Tableau};

use crate::error::SolverError;

/// A primitive recorded while walking backwards in time.
///
/// Forward compilation reverses the list and inverts each entry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RevOp {
    H(usize),
    S(usize),
    X(usize),
    Z(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Emit { emitter: usize, photon: usize },
    Measure { emitter: usize, photon: usize },
}

/// Emitter-affinity hints: which emitters each photon's block was assigned
/// by the scheduler. The solver *prefers* in-group emitters (soft constraint
/// via support weights) so concurrently scheduled blocks stay on disjoint
/// emitters and the parallelism survives into the compiled circuit.
#[derive(Debug, Clone, Default)]
pub struct Affinity {
    /// Group id per photon.
    pub photon_group: Vec<usize>,
    /// Emitter indices assigned to each group.
    pub group_emitters: Vec<Vec<usize>>,
}

impl Affinity {
    /// Weight of emitter `e` for a photon of group `g`: cheap in-group,
    /// expensive outside.
    fn weight(&self, g: usize, e: usize) -> usize {
        if self
            .group_emitters
            .get(g)
            .is_some_and(|set| set.contains(&e))
        {
            1
        } else {
            8
        }
    }
}

/// Tuning knobs for a single reverse solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Emitter pool size; `None` sizes the pool to the height-function
    /// minimum of the ordering.
    pub emitters: Option<usize>,
    /// Extra pool head-room attempts if the first pool size fails.
    pub max_pool_growth: usize,
    /// Verify the compiled circuit with the stabilizer simulator before
    /// returning (cheap at benchmark sizes; indispensable in tests).
    pub verify: bool,
    /// Optional scheduler-provided emitter affinity.
    pub affinity: Option<Affinity>,
    /// Use the vanilla Li-et-al. generator selection (first valid element,
    /// no support-weight minimization). Faithful-baseline mode; the
    /// framework leaves this off.
    pub vanilla_elements: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            emitters: None,
            max_pool_growth: 3,
            verify: true,
            affinity: None,
            vanilla_elements: false,
        }
    }
}

/// A compiled generation circuit plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Solved {
    /// The forward generation circuit.
    pub circuit: Circuit,
    /// Emitter pool size actually used.
    pub emitters: usize,
    /// The emission ordering that was compiled.
    pub ordering: Vec<usize>,
}

/// Compiles `target` into a generation circuit with the given emission
/// `ordering`.
///
/// # Errors
///
/// * [`SolverError::InvalidOrdering`] if `ordering` is not a permutation;
/// * [`SolverError::InsufficientEmitters`] if the pool (after
///   `max_pool_growth` retries) cannot host the ordering;
/// * [`SolverError::VerificationFailed`] if the paranoid self-check fails
///   (a bug, not an input condition).
pub fn solve_with_ordering(
    target: &Graph,
    ordering: &[usize],
    options: &SolveOptions,
) -> Result<Solved, SolverError> {
    let n = target.vertex_count();
    {
        let mut seen = vec![false; n];
        if ordering.len() != n
            || ordering.iter().any(|&p| {
                if p >= n || seen[p] {
                    true
                } else {
                    seen[p] = true;
                    false
                }
            })
        {
            return Err(SolverError::InvalidOrdering { photons: n });
        }
    }
    let base_pool = options
        .emitters
        .unwrap_or_else(|| height::min_emitters(target, ordering).max(1));
    let mut last_err = None;
    for grow in 0..=options.max_pool_growth {
        let pool = base_pool + grow;
        match ReverseSolver::new(
            target,
            ordering,
            pool,
            options.affinity.as_ref(),
            options.vanilla_elements,
        )
        .run()
        {
            Ok(circuit) => {
                if options.verify {
                    let ok = simulate::verify_circuit(&circuit, target)
                        .map_err(|_| SolverError::VerificationFailed)?;
                    if !ok {
                        return Err(SolverError::VerificationFailed);
                    }
                }
                return Ok(Solved {
                    circuit,
                    emitters: pool,
                    ordering: ordering.to_vec(),
                });
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt was made"))
}

/// Compiles `target` with the natural ordering `0..n`.
///
/// # Errors
///
/// See [`solve_with_ordering`].
pub fn solve(target: &Graph, options: &SolveOptions) -> Result<Solved, SolverError> {
    let ordering: Vec<usize> = (0..target.vertex_count()).collect();
    solve_with_ordering(target, &ordering, options)
}

struct ReverseSolver<'g> {
    ordering: &'g [usize],
    n: usize,
    pool: usize,
    t: Tableau,
    ops: Vec<RevOp>,
    affinity: Option<&'g Affinity>,
    vanilla_elements: bool,
}

impl<'g> ReverseSolver<'g> {
    fn new(
        target: &'g Graph,
        ordering: &'g [usize],
        pool: usize,
        affinity: Option<&'g Affinity>,
        vanilla_elements: bool,
    ) -> Self {
        let n = target.vertex_count();
        // Wires: photons 0..n, emitters n..n+pool.
        let mut global = Graph::new(n + pool);
        for (a, b) in target.edges() {
            global.add_edge(a, b).expect("indices in range");
        }
        let mut t = Tableau::graph_state(&global);
        for e in 0..pool {
            t.h(n + e); // emitter wires |+⟩ → |0⟩ (no record: state prep)
        }
        ReverseSolver {
            ordering,
            n,
            pool,
            t,
            ops: Vec::new(),
            affinity,
            vanilla_elements,
        }
    }

    /// Emitter weight for work on photon `j` (1 in-group, 8 out-of-group).
    fn emitter_weight(&self, j: usize, e: usize) -> usize {
        match self.affinity {
            Some(aff) => aff.weight(aff.photon_group.get(j).copied().unwrap_or(0), e),
            None => 1,
        }
    }

    fn emitter_wire(&self, e: usize) -> usize {
        self.n + e
    }

    /// Applies a reverse-time gate to the tableau and records it.
    fn apply(&mut self, op: RevOp) {
        match op {
            RevOp::H(q) => self.t.h(q),
            RevOp::S(q) => self.t.s(q),
            RevOp::X(q) => self.t.px(q),
            RevOp::Z(q) => self.t.pz(q),
            RevOp::Cnot(c, t) => self.t.cnot(c, t),
            RevOp::Cz(a, b) => self.t.cz(a, b),
            RevOp::Emit { emitter, photon } => self.t.cnot(self.n + emitter, photon),
            RevOp::Measure { .. } => {
                unreachable!("TRM mutates the tableau explicitly, not via apply()")
            }
        }
        self.ops.push(op);
    }

    /// Records the gates returned by `rotate_to_z` on wire `q`.
    fn record_rotation(&mut self, gates: &[RotGate], q: usize) {
        for g in gates {
            self.ops.push(match g {
                RotGate::H => RevOp::H(q),
                RotGate::S => RevOp::S(q),
            });
        }
    }

    /// Emitters currently free (disentangled in |0⟩/|1⟩; |1⟩ gets fixed),
    /// preferring emitters assigned to photon `j`'s block.
    fn find_free_emitter(&mut self, j: usize) -> Option<usize> {
        // Visit emitters sorted by (weight, e) without materializing a
        // candidate Vec: sweep one weight tier at a time, deriving the next
        // tier from the observed weights so any future weight scheme keeps
        // working (today's `Affinity::weight` yields only 1 and 8).
        let mut done_below: Option<usize> = None;
        while let Some(tier) = (0..self.pool)
            .map(|e| self.emitter_weight(j, e))
            .filter(|&w| done_below.is_none_or(|d| w > d))
            .min()
        {
            for e in 0..self.pool {
                if self.emitter_weight(j, e) != tier {
                    continue;
                }
                let wire = self.emitter_wire(e);
                if let Some(sign) = self.t.deterministic_z_sign(wire) {
                    if sign {
                        // |1⟩ → |0⟩; forward X at the mirrored position
                        // (legal on emitters at any time).
                        self.apply(RevOp::X(wire));
                    }
                    return Some(e);
                }
            }
            done_below = Some(tier);
        }
        None
    }

    /// Brings the tableau to a gauge where exactly one row is `+Z_wire` and
    /// no other row touches `wire`; returns that row. Only valid for free
    /// wires.
    fn isolate_free_wire_row(&mut self, wire: usize) -> usize {
        let rows = self
            .t
            .find_element_supported_on(&[], wire, &[])
            .expect("wire is free, Z_wire is in the group");
        let row = self.t.combine_rows(&rows);
        debug_assert_eq!(self.t.support(row), vec![wire]);
        // Clear the wire from every other row (z bits only; x bits cannot
        // exist on a free wire) with one word-parallel broadcast over the
        // wire's packed column.
        debug_assert!(
            {
                let mut x = self.t.col_x(wire).clone();
                x.set(row, false);
                x.is_zero()
            },
            "free wire cannot have X support"
        );
        let mut mask = self.t.rows_touching(wire);
        mask.set(row, false);
        self.t.mul_row_into_mask(row, &mask);
        if self.t.phase_of(row) == 2 {
            debug_assert!(
                wire >= self.n,
                "photon rows are sign-fixed at absorption; only emitters may flip here"
            );
            self.apply(RevOp::X(wire));
        }
        debug_assert_eq!(self.t.phase_of(row), 0);
        row
    }

    /// Time-reversed measurement: entangles free emitter `e` as `X_e Z_j`.
    ///
    /// Forward reading: measure `e` in Z; on outcome 1 apply `Z` to photon
    /// `j` (and reset `e`). Afterwards the group contains an element with
    /// photon support `{j}`, so absorption can proceed.
    fn time_reversed_measure(&mut self, e: usize, j: usize) {
        let wire = self.emitter_wire(e);
        let ze_row = self.isolate_free_wire_row(wire);
        // Pair up the generators anticommuting with Z_j (those with X at j),
        // reading the photon's packed X column word-at-a-time.
        let mut anti = self.t.col_x(j).clone();
        anti.set(ze_row, false);
        let s1 = anti
            .first_one()
            .expect("TRM called although Z_j commutes with the group (photon already product)");
        anti.set(s1, false);
        self.t.mul_row_into_mask(s1, &anti);
        // s1 := Z_e · s1 keeps the generating set full rank.
        self.t.row_mul(s1, ze_row);
        // ze_row := X_e Z_j.
        self.t.clear_row(ze_row);
        self.t.set_x_bit(ze_row, wire, true);
        self.t.set_z_bit(ze_row, j, true);
        debug_assert!(self.t.is_valid_state(), "TRM broke the stabilizer group");
        self.ops.push(RevOp::Measure {
            emitter: e,
            photon: j,
        });
    }

    /// Absorbs photon `j` (the last unabsorbed photon of the ordering).
    fn absorb_photon(&mut self, j: usize, unabsorbed: &[usize]) -> Result<(), SolverError> {
        let emitter_wires: Vec<usize> = (0..self.pool).map(|e| self.emitter_wire(e)).collect();
        let all_photons: Vec<usize> = (0..self.n).collect();

        // Find a group element with photon support {j}; TRM first if needed.
        let n_wires = self.n;
        let weight_for_j = {
            let weights: Vec<usize> = (0..self.pool).map(|e| self.emitter_weight(j, e)).collect();
            move |wire: usize| weights[wire - n_wires]
        };
        let find = |t: &Tableau, vanilla: bool| -> Option<Vec<usize>> {
            if vanilla {
                t.find_element_any(&all_photons, j, &emitter_wires)
            } else {
                t.find_element_weighted(&all_photons, j, &emitter_wires, &weight_for_j)
            }
        };
        let rows = match find(&self.t, self.vanilla_elements) {
            Some(rows) => rows,
            None => {
                let free = self
                    .find_free_emitter(j)
                    .ok_or(SolverError::InsufficientEmitters {
                        pool: self.pool,
                        photon: j,
                    })?;
                self.time_reversed_measure(free, j);
                find(&self.t, self.vanilla_elements)
                    .expect("TRM guarantees X_e Z_j is in the group")
            }
        };
        let rg = self.t.combine_rows(&rows);

        // Rotate the photon's letter to Z.
        let gates = self
            .t
            .rotate_to_z(rg, j)
            .expect("rg has support on photon j");
        self.record_rotation(&gates, j);

        // Emitter support of g.
        let mut support_e: Vec<usize> = (0..self.pool)
            .filter(|&e| {
                let w = self.emitter_wire(e);
                self.t.x_bit(rg, w) || self.t.z_bit(rg, w)
            })
            .collect();

        if support_e.is_empty() {
            // Product photon: emit it from a free emitter via g := Z_e · g.
            let free = self
                .find_free_emitter(j)
                .ok_or(SolverError::InsufficientEmitters {
                    pool: self.pool,
                    photon: j,
                })?;
            let wire = self.emitter_wire(free);
            let ze_row = self.isolate_free_wire_row(wire);
            debug_assert_ne!(ze_row, rg, "Z_e row cannot be the photon row");
            self.t.row_mul(rg, ze_row);
            support_e.push(free);
        }

        // Compress emitter support onto a single emitter with ee-CNOTs,
        // preferring an in-group emitter as the survivor.
        support_e.sort_by_key(|&e| (self.emitter_weight(j, e), e));
        let target_e = support_e[0];
        let target_wire = self.emitter_wire(target_e);
        let gates = self
            .t
            .rotate_to_z(rg, target_wire)
            .expect("rg has support on the target emitter");
        self.record_rotation(&gates, target_wire);
        for &other in &support_e[1..] {
            let other_wire = self.emitter_wire(other);
            let gates = self
                .t
                .rotate_to_z(rg, other_wire)
                .expect("rg has support on this emitter");
            self.record_rotation(&gates, other_wire);
            // CNOT(control=other, target=target) maps Z_other Z_target → Z_target.
            self.apply(RevOp::Cnot(other_wire, target_wire));
            debug_assert!(!self.t.x_bit(rg, other_wire) && !self.t.z_bit(rg, other_wire));
        }
        debug_assert_eq!(
            {
                let mut s = self.t.support(rg);
                s.retain(|&w| w != j);
                s
            },
            vec![target_wire],
            "g must be supported on the photon and one emitter"
        );

        // Clean Z_j (and Y_j → X_j) from every other row by multiplying with
        // g — one broadcast over the photon's packed Z column.
        let mut dirty = self.t.col_z(j).clone();
        dirty.set(rg, false);
        self.t.mul_row_into_mask(rg, &dirty);

        // Sign fix *before* the reversed emission so that the forward X
        // lands right after the emission (photon gates are only legal after
        // the photon exists). X_j flips the sign of rows with a Z at j,
        // which is now only g itself.
        if self.t.phase_of(rg) == 2 {
            self.apply(RevOp::X(j));
        }
        debug_assert_eq!(self.t.phase_of(rg), 0);

        // Reversed emission. Commutation with g = Z_e Z_j forces every other
        // row touching j to carry X_j together with X/Y on e, and the CNOT
        // clears both simultaneously.
        self.apply(RevOp::Emit {
            emitter: target_e,
            photon: j,
        });

        // The photon must now be fully disentangled: its row is +Z_j.
        debug_assert_eq!(self.t.support(rg), vec![j]);
        debug_assert_eq!(self.t.phase_of(rg), 0);
        debug_assert!(
            {
                let mut touch = self.t.rows_touching(j);
                touch.set(rg, false);
                touch.is_zero()
            },
            "photon {j} still entangled after reversed emission"
        );
        let _ = unabsorbed;
        Ok(())
    }

    /// Disentangles the emitter register to |0⟩^pool after all photons are
    /// absorbed, paying one CZ per edge of the emitters' residual graph
    /// state.
    fn disentangle_emitters(&mut self) {
        // Gauge: remove photon z-bits from emitter rows using the photon
        // rows (each photon wire is +Z after absorption).
        for p in 0..self.n {
            let _ = self.isolate_free_wire_row(p);
        }
        // Classify emitters: free ones get gauge-isolated (and |1⟩-fixed),
        // entangled ones make up the residual state to reduce. Skipping free
        // emitters keeps idle pool wires gate-free in the forward circuit.
        let mut entangled: Vec<usize> = Vec::new();
        for e in 0..self.pool {
            let wire = self.emitter_wire(e);
            if self.t.deterministic_z_sign(wire).is_some() {
                let _ = self.isolate_free_wire_row(wire);
            } else {
                entangled.push(e);
            }
        }
        if entangled.is_empty() {
            return;
        }
        let entangled_wires: Vec<usize> = entangled.iter().map(|&e| self.emitter_wire(e)).collect();
        // Rows of the residual state: support non-empty and inside the
        // entangled wire set (every other wire owns an isolated ±Z row).
        // Computed word-parallel: OR the per-wire "rows touching" masks into
        // an inside/outside pair and keep rows seen only inside.
        let total = self.t.num_qubits();
        let mut inside = BitVec::zeros(total);
        let mut outside = BitVec::zeros(total);
        for w in 0..total {
            let touch = self.t.rows_touching(w);
            if entangled_wires.binary_search(&w).is_ok() {
                inside.or_with(&touch);
            } else {
                outside.or_with(&touch);
            }
        }
        let residual_rows: Vec<usize> = inside.ones().filter(|&r| !outside.get(r)).collect();
        debug_assert_eq!(
            residual_rows.len(),
            entangled.len(),
            "residual emitter state must have one generator per entangled wire"
        );
        let mut sub = Tableau::zero_state(entangled.len());
        sub.clear_all_rows();
        for (sr, &r) in residual_rows.iter().enumerate() {
            for (k, &w) in entangled_wires.iter().enumerate() {
                sub.set_x_bit(sr, k, self.t.x_bit(r, w));
                sub.set_z_bit(sr, k, self.t.z_bit(r, w));
            }
            sub.set_phase(sr, self.t.phase_of(r));
        }
        debug_assert!(sub.is_valid_state(), "emitter substate must be pure");
        let form = to_graph_form(&mut sub).expect("pure states always reduce");
        for gate in &form.gates {
            match *gate {
                LocalGate::H(k) => self.apply(RevOp::H(entangled_wires[k])),
                LocalGate::S(k) => self.apply(RevOp::S(entangled_wires[k])),
                LocalGate::Z(k) => self.apply(RevOp::Z(entangled_wires[k])),
            }
        }
        for (a, b) in form.graph.edges() {
            self.apply(RevOp::Cz(entangled_wires[a], entangled_wires[b]));
        }
        for &w in &entangled_wires {
            self.apply(RevOp::H(w));
        }
        // Sign fixes: every entangled wire must end at +Z.
        for &w in &entangled_wires {
            let sign = self
                .t
                .deterministic_z_sign(w)
                .expect("emitter is disentangled");
            if sign {
                self.apply(RevOp::X(w));
            }
        }
    }

    fn run(mut self) -> Result<Circuit, SolverError> {
        let mut remaining: Vec<usize> = self.ordering.to_vec();
        while let Some(j) = remaining.pop() {
            self.absorb_photon(j, &remaining)?;
        }
        self.disentangle_emitters();
        debug_assert!(
            self.t
                .same_state_as(&Tableau::zero_state(self.n + self.pool)),
            "reverse walk must terminate in |0…0⟩"
        );
        Ok(self.into_circuit())
    }

    /// Reverses and inverts the recorded ops into the forward circuit.
    fn into_circuit(self) -> Circuit {
        let n = self.n;
        let qubit = |wire: usize| -> Qubit {
            if wire < n {
                Qubit::Photon(wire)
            } else {
                Qubit::Emitter(wire - n)
            }
        };
        let mut c = Circuit::new(self.pool, n);
        for op in self.ops.into_iter().rev() {
            match op {
                RevOp::H(w) => c.push(Op::H(qubit(w))),
                RevOp::S(w) => c.push(Op::Sdg(qubit(w))),
                RevOp::X(w) => c.push(Op::X(qubit(w))),
                RevOp::Z(w) => c.push(Op::Z(qubit(w))),
                RevOp::Cnot(cw, tw) => c.push(Op::Cnot(cw - n, tw - n)),
                RevOp::Cz(a, b) => c.push(Op::Cz(a - n, b - n)),
                RevOp::Emit { emitter, photon } => c.push(Op::Emit { emitter, photon }),
                RevOp::Measure { emitter, photon } => c.push(Op::MeasureZ {
                    emitter,
                    corrections: vec![(Qubit::Photon(photon), epgs_stabilizer::Pauli::Z)],
                }),
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    fn solve_ok(g: &Graph) -> Solved {
        solve(g, &SolveOptions::default()).expect("solve must succeed")
    }

    #[test]
    fn single_vertex() {
        let g = Graph::new(1);
        let s = solve_ok(&g);
        assert_eq!(s.circuit.emission_count(), 1);
    }

    #[test]
    fn two_vertex_edge() {
        let g = generators::path(2);
        let s = solve_ok(&g);
        assert!(s.circuit.validate().is_ok());
    }

    #[test]
    fn linear_clusters_up_to_10() {
        for n in 2..=10 {
            let g = generators::path(n);
            let s = solve_ok(&g);
            assert_eq!(s.emitters, 1, "paths need one emitter (n={n})");
            assert_eq!(
                s.circuit.ee_two_qubit_count(),
                0,
                "single-emitter circuits need no ee gates (n={n})"
            );
        }
    }

    #[test]
    fn ghz_star_needs_one_emitter() {
        let g = generators::star(6);
        let s = solve_ok(&g);
        assert_eq!(s.emitters, 1);
        assert_eq!(s.circuit.ee_two_qubit_count(), 0);
    }

    #[test]
    fn cycles_need_two_emitters() {
        // cycle(3) = K3 is LC-equivalent to GHZ and needs one emitter;
        // proper cycles (n ≥ 4) need two.
        for n in 4..=8 {
            let g = generators::cycle(n);
            let s = solve_ok(&g);
            assert!(s.emitters >= 2, "cycles need ≥ 2 emitters (n={n})");
        }
    }

    #[test]
    fn lattice_solves() {
        let g = generators::lattice(3, 3);
        let s = solve_ok(&g);
        assert!(s.circuit.validate().is_ok());
        assert!(s.circuit.ee_two_qubit_count() >= 1);
    }

    #[test]
    fn complete_graph_solves() {
        let g = generators::complete(5);
        let _ = solve_ok(&g);
    }

    #[test]
    fn trees_solve() {
        let g = generators::tree(10, 2);
        let _ = solve_ok(&g);
    }

    #[test]
    fn rgs_solves() {
        let g = generators::repeater_graph_state(2);
        let _ = solve_ok(&g);
    }

    #[test]
    fn random_graphs_solve_and_verify() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..15 {
            let g = generators::erdos_renyi(8, 0.35, &mut rng);
            let s = solve(&g, &SolveOptions::default());
            assert!(s.is_ok(), "trial {trial}: {s:?}");
        }
    }

    #[test]
    fn custom_ordering_is_respected() {
        let g = generators::path(5);
        let ordering = vec![4, 3, 2, 1, 0];
        let s = solve_with_ordering(&g, &ordering, &SolveOptions::default()).unwrap();
        assert_eq!(s.ordering, ordering);
    }

    #[test]
    fn invalid_ordering_rejected() {
        let g = generators::path(3);
        assert!(matches!(
            solve_with_ordering(&g, &[0, 0, 1], &SolveOptions::default()),
            Err(SolverError::InvalidOrdering { photons: 3 })
        ));
        assert!(matches!(
            solve_with_ordering(&g, &[0, 1], &SolveOptions::default()),
            Err(SolverError::InvalidOrdering { .. })
        ));
    }

    #[test]
    fn explicit_pool_is_honored() {
        let g = generators::path(6);
        let opts = SolveOptions {
            emitters: Some(3),
            ..SolveOptions::default()
        };
        let s = solve(&g, &opts).unwrap();
        assert_eq!(s.emitters, 3);
        assert_eq!(s.circuit.num_emitters(), 3);
    }

    #[test]
    fn bad_ordering_needs_more_emitters() {
        // Interleaved path ordering raises the height function.
        let g = generators::path(6);
        let s = solve_with_ordering(&g, &[0, 2, 4, 1, 3, 5], &SolveOptions::default()).unwrap();
        assert!(s.emitters > 1);
    }

    #[test]
    fn measurements_appear_for_emitter_reuse() {
        // A long path with an interleaved ordering forces TRMs.
        let g = generators::path(8);
        let s =
            solve_with_ordering(&g, &[0, 2, 4, 6, 1, 3, 5, 7], &SolveOptions::default()).unwrap();
        assert!(s.circuit.measurement_count() > 0);
    }
}
