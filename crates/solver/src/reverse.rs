//! The time-reversed GraphState-to-Circuit engine.
//!
//! Following Li, Economou & Barnes (npj QI 8, 11 (2022)) — the algorithm
//! underlying GraphiQ's deterministic solver and the per-subgraph compiler of
//! the paper — the engine starts from the tableau of |G⟩ ⊗ |0⟩^m and undoes
//! it photon by photon in *reverse* emission order:
//!
//! 1. **Photon absorption** — find a stabilizer-group element `g` supported
//!    on the photon and emitters only; rotate the photon's letter to `Z` and
//!    compress `g`'s emitter support to one emitter with emitter-emitter
//!    CNOTs; the reversed emission CNOT then disentangles the photon into
//!    |0⟩. Commutation guarantees the leftover `X_e … X_j` rows are cleaned
//!    by the same CNOT (see the inline invariants).
//! 2. **Time-reversed measurement (TRM)** — when no such `g` exists, a free
//!    emitter `e` is entangled as `X_e Z_j` (forward reading: measure `e`,
//!    apply `Z` on photon `j` on outcome 1). This is what frees emitters for
//!    reuse in forward time.
//! 3. **Emitter disentangling** — after all photons are absorbed, the
//!    emitter-only state is reduced to a graph state, its edges removed with
//!    CZs, and the wires Hadamard-ed back to |0⟩.
//!
//! Reversing the recorded operation list and inverting each op yields the
//! forward circuit, which is verified against the target by the tableau
//! simulator in tests and (optionally) by [`SolveOptions::verify`].

use epgs_circuit::{simulate, Circuit, Op, Qubit};
use epgs_graph::gf2::BitVec;
use epgs_graph::{height, Graph};
use epgs_stabilizer::{to_graph_form, ElementScratch, LocalGate, RotGate, Tableau};

use crate::error::SolverError;

/// Reusable storage for reverse solves.
///
/// A solve needs a tableau, an operation log, a remaining-photon list, a
/// handful of packed scratch vectors, and the constraint-system scratch of
/// the tableau's element queries. One `SolverWorkspace` hosts all of them
/// and is reset (not reallocated) by every [`solve_with_ordering_in`] call,
/// so loops that run thousands of small solves — the subgraph compiler's
/// candidate-ordering search, exhaustive benchmarks — stop paying a few
/// hundred heap allocations per solve.
///
/// A workspace carries no results between solves: `solve_with_ordering_in`
/// through the same workspace returns bit-identical output to the one-shot
/// [`solve_with_ordering`].
#[derive(Debug, Clone)]
pub struct SolverWorkspace {
    /// The solver's tableau, reset in place per attempt.
    t: Tableau,
    /// The reverse-time operation log.
    ops: Vec<RevOp>,
    /// Photons not yet absorbed (a stack in emission order).
    remaining: Vec<usize>,
    /// Ordering-validation mask.
    seen: Vec<bool>,
    /// General row-mask scratch (isolation sweeps, dirty-row cleanup).
    mask: BitVec,
    /// Anticommuting-row scratch for time-reversed measurements.
    anti: BitVec,
    /// Residual-row detection masks.
    inside: BitVec,
    outside: BitVec,
    touch: BitVec,
    /// Emitter wire indices `n..n+pool`.
    emitter_wires: Vec<usize>,
    /// Photon wire indices `0..n`.
    all_photons: Vec<usize>,
    /// Per-emitter affinity weights for the photon being absorbed.
    weights: Vec<usize>,
    /// Emitter support of the absorption element.
    support_e: Vec<usize>,
    /// Entangled emitters (disentangling stage).
    entangled: Vec<usize>,
    entangled_wires: Vec<usize>,
    residual_rows: Vec<usize>,
    /// Constraint-system / RREF / null-space scratch.
    element: ElementScratch,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SolverWorkspace {
            t: Tableau::zero_state(0),
            ops: Vec::new(),
            remaining: Vec::new(),
            seen: Vec::new(),
            mask: BitVec::zeros(0),
            anti: BitVec::zeros(0),
            inside: BitVec::zeros(0),
            outside: BitVec::zeros(0),
            touch: BitVec::zeros(0),
            emitter_wires: Vec::new(),
            all_photons: Vec::new(),
            weights: Vec::new(),
            support_e: Vec::new(),
            entangled: Vec::new(),
            entangled_wires: Vec::new(),
            residual_rows: Vec::new(),
            element: ElementScratch::new(),
        }
    }
}

impl Default for SolverWorkspace {
    fn default() -> Self {
        SolverWorkspace::new()
    }
}

/// A primitive recorded while walking backwards in time.
///
/// Forward compilation reverses the list and inverts each entry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum RevOp {
    H(usize),
    S(usize),
    X(usize),
    Z(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Emit { emitter: usize, photon: usize },
    Measure { emitter: usize, photon: usize },
}

/// Emitter-affinity hints: which emitters each photon's block was assigned
/// by the scheduler. The solver *prefers* in-group emitters (soft constraint
/// via support weights) so concurrently scheduled blocks stay on disjoint
/// emitters and the parallelism survives into the compiled circuit.
#[derive(Debug, Clone, Default)]
pub struct Affinity {
    /// Group id per photon.
    pub photon_group: Vec<usize>,
    /// Emitter indices assigned to each group.
    pub group_emitters: Vec<Vec<usize>>,
}

impl Affinity {
    /// Weight of emitter `e` for a photon of group `g`: cheap in-group,
    /// expensive outside.
    fn weight(&self, g: usize, e: usize) -> usize {
        if self
            .group_emitters
            .get(g)
            .is_some_and(|set| set.contains(&e))
        {
            1
        } else {
            8
        }
    }
}

/// Tuning knobs for a single reverse solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Emitter pool size; `None` sizes the pool to the height-function
    /// minimum of the ordering.
    pub emitters: Option<usize>,
    /// Extra pool head-room attempts if the first pool size fails.
    pub max_pool_growth: usize,
    /// Verify the compiled circuit with the stabilizer simulator before
    /// returning (cheap at benchmark sizes; indispensable in tests).
    pub verify: bool,
    /// Optional scheduler-provided emitter affinity.
    pub affinity: Option<Affinity>,
    /// Use the vanilla Li-et-al. generator selection (first valid element,
    /// no support-weight minimization). Faithful-baseline mode; the
    /// framework leaves this off.
    pub vanilla_elements: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            emitters: None,
            max_pool_growth: 3,
            verify: true,
            affinity: None,
            vanilla_elements: false,
        }
    }
}

/// A compiled generation circuit plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Solved {
    /// The forward generation circuit.
    pub circuit: Circuit,
    /// Emitter pool size actually used.
    pub emitters: usize,
    /// The emission ordering that was compiled.
    pub ordering: Vec<usize>,
}

/// Compiles `target` into a generation circuit with the given emission
/// `ordering`.
///
/// # Errors
///
/// * [`SolverError::InvalidOrdering`] if `ordering` is not a permutation;
/// * [`SolverError::InsufficientEmitters`] if the pool (after
///   `max_pool_growth` retries) cannot host the ordering;
/// * [`SolverError::VerificationFailed`] if the paranoid self-check fails
///   (a bug, not an input condition).
pub fn solve_with_ordering(
    target: &Graph,
    ordering: &[usize],
    options: &SolveOptions,
) -> Result<Solved, SolverError> {
    solve_with_ordering_in(&mut SolverWorkspace::new(), target, ordering, options)
}

/// [`solve_with_ordering`] through a reusable [`SolverWorkspace`]: identical
/// output, but back-to-back solves reuse every buffer instead of
/// reallocating them. The workspace carries no state between calls.
///
/// # Errors
///
/// See [`solve_with_ordering`].
pub fn solve_with_ordering_in(
    ws: &mut SolverWorkspace,
    target: &Graph,
    ordering: &[usize],
    options: &SolveOptions,
) -> Result<Solved, SolverError> {
    let n = target.vertex_count();
    {
        ws.seen.clear();
        ws.seen.resize(n, false);
        let seen = &mut ws.seen;
        if ordering.len() != n
            || ordering.iter().any(|&p| {
                if p >= n || seen[p] {
                    true
                } else {
                    seen[p] = true;
                    false
                }
            })
        {
            return Err(SolverError::InvalidOrdering { photons: n });
        }
    }
    let base_pool = options
        .emitters
        .unwrap_or_else(|| height::min_emitters(target, ordering).max(1));
    let mut last_err = None;
    for grow in 0..=options.max_pool_growth {
        let pool = base_pool + grow;
        match ReverseSolver::new(
            ws,
            target,
            ordering,
            pool,
            options.affinity.as_ref(),
            options.vanilla_elements,
        )
        .run()
        {
            Ok(circuit) => {
                if options.verify {
                    let ok = simulate::verify_circuit(&circuit, target)
                        .map_err(|_| SolverError::VerificationFailed)?;
                    if !ok {
                        return Err(SolverError::VerificationFailed);
                    }
                }
                return Ok(Solved {
                    circuit,
                    emitters: pool,
                    ordering: ordering.to_vec(),
                });
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt was made"))
}

/// Compiles `target` with the natural ordering `0..n`.
///
/// # Errors
///
/// See [`solve_with_ordering`].
pub fn solve(target: &Graph, options: &SolveOptions) -> Result<Solved, SolverError> {
    let ordering: Vec<usize> = (0..target.vertex_count()).collect();
    solve_with_ordering(target, &ordering, options)
}

/// Emitter weight for work on photon `j` (1 in-group, 8 out-of-group).
fn weight_for(affinity: Option<&Affinity>, j: usize, e: usize) -> usize {
    match affinity {
        Some(aff) => aff.weight(aff.photon_group.get(j).copied().unwrap_or(0), e),
        None => 1,
    }
}

struct ReverseSolver<'g> {
    ws: &'g mut SolverWorkspace,
    ordering: &'g [usize],
    n: usize,
    pool: usize,
    affinity: Option<&'g Affinity>,
    vanilla_elements: bool,
}

impl<'g> ReverseSolver<'g> {
    fn new(
        ws: &'g mut SolverWorkspace,
        target: &'g Graph,
        ordering: &'g [usize],
        pool: usize,
        affinity: Option<&'g Affinity>,
        vanilla_elements: bool,
    ) -> Self {
        let n = target.vertex_count();
        // Wires: photons 0..n, emitters n..n+pool — the photon wires carry
        // |G⟩, the emitter wires |0⟩ (state prep, not recorded).
        ws.t.reset_graph_state_padded(target, pool);
        ws.ops.clear();
        ReverseSolver {
            ws,
            ordering,
            n,
            pool,
            affinity,
            vanilla_elements,
        }
    }

    /// Emitter weight for work on photon `j` (1 in-group, 8 out-of-group).
    fn emitter_weight(&self, j: usize, e: usize) -> usize {
        weight_for(self.affinity, j, e)
    }

    fn emitter_wire(&self, e: usize) -> usize {
        self.n + e
    }

    /// Applies a reverse-time gate to the tableau and records it.
    fn apply(&mut self, op: RevOp) {
        match op {
            RevOp::H(q) => self.ws.t.h(q),
            RevOp::S(q) => self.ws.t.s(q),
            RevOp::X(q) => self.ws.t.px(q),
            RevOp::Z(q) => self.ws.t.pz(q),
            RevOp::Cnot(c, t) => self.ws.t.cnot(c, t),
            RevOp::Cz(a, b) => self.ws.t.cz(a, b),
            RevOp::Emit { emitter, photon } => self.ws.t.cnot(self.n + emitter, photon),
            RevOp::Measure { .. } => {
                unreachable!("TRM mutates the tableau explicitly, not via apply()")
            }
        }
        self.ws.ops.push(op);
    }

    /// Records the gates returned by `rotate_to_z` on wire `q`.
    fn record_rotation(&mut self, gates: &[RotGate], q: usize) {
        for g in gates {
            self.ws.ops.push(match g {
                RotGate::H => RevOp::H(q),
                RotGate::S => RevOp::S(q),
            });
        }
    }

    /// Emitters currently free (disentangled in |0⟩/|1⟩; |1⟩ gets fixed),
    /// preferring emitters assigned to photon `j`'s block.
    fn find_free_emitter(&mut self, j: usize) -> Option<usize> {
        // Visit emitters sorted by (weight, e) without materializing a
        // candidate Vec: sweep one weight tier at a time, deriving the next
        // tier from the observed weights so any future weight scheme keeps
        // working (today's `Affinity::weight` yields only 1 and 8).
        let mut done_below: Option<usize> = None;
        while let Some(tier) = (0..self.pool)
            .map(|e| self.emitter_weight(j, e))
            .filter(|&w| done_below.is_none_or(|d| w > d))
            .min()
        {
            for e in 0..self.pool {
                if self.emitter_weight(j, e) != tier {
                    continue;
                }
                let wire = self.emitter_wire(e);
                let ws = &mut *self.ws;
                if let Some(sign) = ws.t.deterministic_z_sign_in(wire, &mut ws.element) {
                    if sign {
                        // |1⟩ → |0⟩; forward X at the mirrored position
                        // (legal on emitters at any time).
                        self.apply(RevOp::X(wire));
                    }
                    return Some(e);
                }
            }
            done_below = Some(tier);
        }
        None
    }

    /// Brings the tableau to a gauge where exactly one row is `+Z_wire` and
    /// no other row touches `wire`; returns that row. Only valid for free
    /// wires.
    fn isolate_free_wire_row(&mut self, wire: usize) -> usize {
        let ws = &mut *self.ws;
        let rows =
            ws.t.find_element_supported_on_in(&[], wire, &[], &mut ws.element)
                .expect("wire is free, Z_wire is in the group");
        let row = ws.t.combine_rows(&rows);
        debug_assert_eq!(ws.t.support(row), vec![wire]);
        // Clear the wire from every other row (z bits only; x bits cannot
        // exist on a free wire) with one word-parallel broadcast over the
        // wire's packed column.
        debug_assert!(
            {
                let mut x = ws.t.col_x(wire).clone();
                x.set(row, false);
                x.is_zero()
            },
            "free wire cannot have X support"
        );
        ws.t.rows_touching_into(wire, &mut ws.mask);
        ws.mask.set(row, false);
        ws.t.mul_row_into_mask(row, &ws.mask);
        if ws.t.phase_of(row) == 2 {
            debug_assert!(
                wire >= self.n,
                "photon rows are sign-fixed at absorption; only emitters may flip here"
            );
            self.apply(RevOp::X(wire));
        }
        debug_assert_eq!(self.ws.t.phase_of(row), 0);
        row
    }

    /// Time-reversed measurement: entangles free emitter `e` as `X_e Z_j`.
    ///
    /// Forward reading: measure `e` in Z; on outcome 1 apply `Z` to photon
    /// `j` (and reset `e`). Afterwards the group contains an element with
    /// photon support `{j}`, so absorption can proceed.
    fn time_reversed_measure(&mut self, e: usize, j: usize) {
        let wire = self.emitter_wire(e);
        let ze_row = self.isolate_free_wire_row(wire);
        let ws = &mut *self.ws;
        // Pair up the generators anticommuting with Z_j (those with X at j),
        // reading the photon's packed X column word-at-a-time.
        ws.anti.copy_from(ws.t.col_x(j));
        ws.anti.set(ze_row, false);
        let s1 = ws
            .anti
            .first_one()
            .expect("TRM called although Z_j commutes with the group (photon already product)");
        ws.anti.set(s1, false);
        ws.t.mul_row_into_mask(s1, &ws.anti);
        // s1 := Z_e · s1 keeps the generating set full rank.
        ws.t.row_mul(s1, ze_row);
        // ze_row := X_e Z_j.
        ws.t.clear_row(ze_row);
        ws.t.set_x_bit(ze_row, wire, true);
        ws.t.set_z_bit(ze_row, j, true);
        debug_assert!(ws.t.is_valid_state(), "TRM broke the stabilizer group");
        ws.ops.push(RevOp::Measure {
            emitter: e,
            photon: j,
        });
    }

    /// Absorbs photon `j` (the last unabsorbed photon of the ordering).
    fn absorb_photon(&mut self, j: usize) -> Result<(), SolverError> {
        let n = self.n;
        let pool = self.pool;
        let vanilla = self.vanilla_elements;
        let affinity = self.affinity;
        {
            let ws = &mut *self.ws;
            ws.emitter_wires.clear();
            ws.emitter_wires.extend(n..n + pool);
            ws.all_photons.clear();
            ws.all_photons.extend(0..n);
            ws.weights.clear();
            ws.weights
                .extend((0..pool).map(|e| weight_for(affinity, j, e)));
        }

        /// Finds a group element with photon support {j}.
        fn find_rows(
            ws: &mut SolverWorkspace,
            vanilla: bool,
            j: usize,
            n: usize,
        ) -> Option<Vec<usize>> {
            if vanilla {
                ws.t.find_element_any_in(&ws.all_photons, j, &ws.emitter_wires, &mut ws.element)
            } else {
                let weights = &ws.weights;
                ws.t.find_element_weighted_in(
                    &ws.all_photons,
                    j,
                    &ws.emitter_wires,
                    |wire| weights[wire - n],
                    &mut ws.element,
                )
            }
        }

        // Find the element; TRM first if needed.
        let rows = match find_rows(self.ws, vanilla, j, n) {
            Some(rows) => rows,
            None => {
                let free = self
                    .find_free_emitter(j)
                    .ok_or(SolverError::InsufficientEmitters {
                        pool: self.pool,
                        photon: j,
                    })?;
                self.time_reversed_measure(free, j);
                find_rows(self.ws, vanilla, j, n).expect("TRM guarantees X_e Z_j is in the group")
            }
        };
        let rg = self.ws.t.combine_rows(&rows);

        // Rotate the photon's letter to Z.
        let gates = self
            .ws
            .t
            .rotate_to_z(rg, j)
            .expect("rg has support on photon j");
        self.record_rotation(&gates, j);

        // Emitter support of g.
        {
            let ws = &mut *self.ws;
            ws.support_e.clear();
            for e in 0..pool {
                let w = n + e;
                if ws.t.x_bit(rg, w) || ws.t.z_bit(rg, w) {
                    ws.support_e.push(e);
                }
            }
        }

        if self.ws.support_e.is_empty() {
            // Product photon: emit it from a free emitter via g := Z_e · g.
            let free = self
                .find_free_emitter(j)
                .ok_or(SolverError::InsufficientEmitters {
                    pool: self.pool,
                    photon: j,
                })?;
            let wire = self.emitter_wire(free);
            let ze_row = self.isolate_free_wire_row(wire);
            debug_assert_ne!(ze_row, rg, "Z_e row cannot be the photon row");
            self.ws.t.row_mul(rg, ze_row);
            self.ws.support_e.push(free);
        }

        // Compress emitter support onto a single emitter with ee-CNOTs,
        // preferring an in-group emitter as the survivor.
        {
            let ws = &mut *self.ws;
            let weights = &ws.weights;
            ws.support_e.sort_by_key(|&e| (weights[e], e));
        }
        let target_e = self.ws.support_e[0];
        let target_wire = self.emitter_wire(target_e);
        let gates = self
            .ws
            .t
            .rotate_to_z(rg, target_wire)
            .expect("rg has support on the target emitter");
        self.record_rotation(&gates, target_wire);
        for k in 1..self.ws.support_e.len() {
            let other_wire = self.emitter_wire(self.ws.support_e[k]);
            let gates = self
                .ws
                .t
                .rotate_to_z(rg, other_wire)
                .expect("rg has support on this emitter");
            self.record_rotation(&gates, other_wire);
            // CNOT(control=other, target=target) maps Z_other Z_target → Z_target.
            self.apply(RevOp::Cnot(other_wire, target_wire));
            debug_assert!(!self.ws.t.x_bit(rg, other_wire) && !self.ws.t.z_bit(rg, other_wire));
        }
        debug_assert_eq!(
            {
                let mut s = self.ws.t.support(rg);
                s.retain(|&w| w != j);
                s
            },
            vec![target_wire],
            "g must be supported on the photon and one emitter"
        );

        // Clean Z_j (and Y_j → X_j) from every other row by multiplying with
        // g — one broadcast over the photon's packed Z column.
        {
            let ws = &mut *self.ws;
            ws.mask.copy_from(ws.t.col_z(j));
            ws.mask.set(rg, false);
            ws.t.mul_row_into_mask(rg, &ws.mask);
        }

        // Sign fix *before* the reversed emission so that the forward X
        // lands right after the emission (photon gates are only legal after
        // the photon exists). X_j flips the sign of rows with a Z at j,
        // which is now only g itself.
        if self.ws.t.phase_of(rg) == 2 {
            self.apply(RevOp::X(j));
        }
        debug_assert_eq!(self.ws.t.phase_of(rg), 0);

        // Reversed emission. Commutation with g = Z_e Z_j forces every other
        // row touching j to carry X_j together with X/Y on e, and the CNOT
        // clears both simultaneously.
        self.apply(RevOp::Emit {
            emitter: target_e,
            photon: j,
        });

        // The photon must now be fully disentangled: its row is +Z_j.
        debug_assert_eq!(self.ws.t.support(rg), vec![j]);
        debug_assert_eq!(self.ws.t.phase_of(rg), 0);
        debug_assert!(
            {
                let mut touch = self.ws.t.rows_touching(j);
                touch.set(rg, false);
                touch.is_zero()
            },
            "photon {j} still entangled after reversed emission"
        );
        Ok(())
    }

    /// Disentangles the emitter register to |0⟩^pool after all photons are
    /// absorbed, paying one CZ per edge of the emitters' residual graph
    /// state.
    fn disentangle_emitters(&mut self) {
        // Gauge: remove photon z-bits from emitter rows using the photon
        // rows (each photon wire is +Z after absorption).
        for p in 0..self.n {
            let _ = self.isolate_free_wire_row(p);
        }
        // Classify emitters: free ones get gauge-isolated (and |1⟩-fixed),
        // entangled ones make up the residual state to reduce. Skipping free
        // emitters keeps idle pool wires gate-free in the forward circuit.
        self.ws.entangled.clear();
        for e in 0..self.pool {
            let wire = self.emitter_wire(e);
            // Free ⟺ no generator has an X on the wire (for a pure state
            // `deterministic_z_sign` is `Some` exactly then) — one packed
            // column test instead of a GF(2) solve whose sign is unused.
            let free = self.ws.t.col_x(wire).is_zero();
            if free {
                let _ = self.isolate_free_wire_row(wire);
            } else {
                self.ws.entangled.push(e);
            }
        }
        if self.ws.entangled.is_empty() {
            return;
        }
        let n = self.n;
        let ws = &mut *self.ws;
        ws.entangled_wires.clear();
        ws.entangled_wires
            .extend(ws.entangled.iter().map(|&e| n + e));
        let entangled_wires = &ws.entangled_wires;
        // Rows of the residual state: support non-empty and inside the
        // entangled wire set (every other wire owns an isolated ±Z row).
        // Computed word-parallel: OR the per-wire "rows touching" masks into
        // an inside/outside pair and keep rows seen only inside.
        let total = ws.t.num_qubits();
        ws.inside.reset(total);
        ws.outside.reset(total);
        for w in 0..total {
            ws.t.rows_touching_into(w, &mut ws.touch);
            if entangled_wires.binary_search(&w).is_ok() {
                ws.inside.or_with(&ws.touch);
            } else {
                ws.outside.or_with(&ws.touch);
            }
        }
        let outside = &ws.outside;
        ws.residual_rows.clear();
        ws.residual_rows
            .extend(ws.inside.ones().filter(|&r| !outside.get(r)));
        debug_assert_eq!(
            ws.residual_rows.len(),
            ws.entangled.len(),
            "residual emitter state must have one generator per entangled wire"
        );
        let mut sub = Tableau::zero_state(ws.entangled.len());
        sub.clear_all_rows();
        for (sr, &r) in ws.residual_rows.iter().enumerate() {
            for (k, &w) in entangled_wires.iter().enumerate() {
                sub.set_x_bit(sr, k, ws.t.x_bit(r, w));
                sub.set_z_bit(sr, k, ws.t.z_bit(r, w));
            }
            sub.set_phase(sr, ws.t.phase_of(r));
        }
        debug_assert!(sub.is_valid_state(), "emitter substate must be pure");
        let form = to_graph_form(&mut sub).expect("pure states always reduce");
        for gate in &form.gates {
            match *gate {
                LocalGate::H(k) => self.apply(RevOp::H(self.ws.entangled_wires[k])),
                LocalGate::S(k) => self.apply(RevOp::S(self.ws.entangled_wires[k])),
                LocalGate::Z(k) => self.apply(RevOp::Z(self.ws.entangled_wires[k])),
            }
        }
        for (a, b) in form.graph.edges() {
            self.apply(RevOp::Cz(
                self.ws.entangled_wires[a],
                self.ws.entangled_wires[b],
            ));
        }
        for k in 0..self.ws.entangled_wires.len() {
            let w = self.ws.entangled_wires[k];
            self.apply(RevOp::H(w));
        }
        // Sign fixes: every entangled wire must end at +Z.
        for k in 0..self.ws.entangled_wires.len() {
            let w = self.ws.entangled_wires[k];
            let sign = {
                let ws = &mut *self.ws;
                ws.t.deterministic_z_sign_in(w, &mut ws.element)
                    .expect("emitter is disentangled")
            };
            if sign {
                self.apply(RevOp::X(w));
            }
        }
    }

    fn run(mut self) -> Result<Circuit, SolverError> {
        self.ws.remaining.clear();
        self.ws.remaining.extend_from_slice(self.ordering);
        while let Some(j) = self.ws.remaining.pop() {
            self.absorb_photon(j)?;
        }
        self.disentangle_emitters();
        debug_assert!(
            self.ws
                .t
                .same_state_as(&Tableau::zero_state(self.n + self.pool)),
            "reverse walk must terminate in |0…0⟩"
        );
        Ok(self.into_circuit())
    }

    /// Reverses and inverts the recorded ops into the forward circuit,
    /// draining the workspace's op log.
    fn into_circuit(self) -> Circuit {
        let n = self.n;
        let qubit = |wire: usize| -> Qubit {
            if wire < n {
                Qubit::Photon(wire)
            } else {
                Qubit::Emitter(wire - n)
            }
        };
        let mut c = Circuit::new(self.pool, n);
        for op in self.ws.ops.drain(..).rev() {
            match op {
                RevOp::H(w) => c.push(Op::H(qubit(w))),
                RevOp::S(w) => c.push(Op::Sdg(qubit(w))),
                RevOp::X(w) => c.push(Op::X(qubit(w))),
                RevOp::Z(w) => c.push(Op::Z(qubit(w))),
                RevOp::Cnot(cw, tw) => c.push(Op::Cnot(cw - n, tw - n)),
                RevOp::Cz(a, b) => c.push(Op::Cz(a - n, b - n)),
                RevOp::Emit { emitter, photon } => c.push(Op::Emit { emitter, photon }),
                RevOp::Measure { emitter, photon } => c.push(Op::MeasureZ {
                    emitter,
                    corrections: vec![(Qubit::Photon(photon), epgs_stabilizer::Pauli::Z)],
                }),
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    fn solve_ok(g: &Graph) -> Solved {
        solve(g, &SolveOptions::default()).expect("solve must succeed")
    }

    #[test]
    fn single_vertex() {
        let g = Graph::new(1);
        let s = solve_ok(&g);
        assert_eq!(s.circuit.emission_count(), 1);
    }

    #[test]
    fn two_vertex_edge() {
        let g = generators::path(2);
        let s = solve_ok(&g);
        assert!(s.circuit.validate().is_ok());
    }

    #[test]
    fn linear_clusters_up_to_10() {
        for n in 2..=10 {
            let g = generators::path(n);
            let s = solve_ok(&g);
            assert_eq!(s.emitters, 1, "paths need one emitter (n={n})");
            assert_eq!(
                s.circuit.ee_two_qubit_count(),
                0,
                "single-emitter circuits need no ee gates (n={n})"
            );
        }
    }

    #[test]
    fn ghz_star_needs_one_emitter() {
        let g = generators::star(6);
        let s = solve_ok(&g);
        assert_eq!(s.emitters, 1);
        assert_eq!(s.circuit.ee_two_qubit_count(), 0);
    }

    #[test]
    fn cycles_need_two_emitters() {
        // cycle(3) = K3 is LC-equivalent to GHZ and needs one emitter;
        // proper cycles (n ≥ 4) need two.
        for n in 4..=8 {
            let g = generators::cycle(n);
            let s = solve_ok(&g);
            assert!(s.emitters >= 2, "cycles need ≥ 2 emitters (n={n})");
        }
    }

    #[test]
    fn lattice_solves() {
        let g = generators::lattice(3, 3);
        let s = solve_ok(&g);
        assert!(s.circuit.validate().is_ok());
        assert!(s.circuit.ee_two_qubit_count() >= 1);
    }

    #[test]
    fn complete_graph_solves() {
        let g = generators::complete(5);
        let _ = solve_ok(&g);
    }

    #[test]
    fn trees_solve() {
        let g = generators::tree(10, 2);
        let _ = solve_ok(&g);
    }

    #[test]
    fn rgs_solves() {
        let g = generators::repeater_graph_state(2);
        let _ = solve_ok(&g);
    }

    #[test]
    fn random_graphs_solve_and_verify() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..15 {
            let g = generators::erdos_renyi(8, 0.35, &mut rng);
            let s = solve(&g, &SolveOptions::default());
            assert!(s.is_ok(), "trial {trial}: {s:?}");
        }
    }

    #[test]
    fn custom_ordering_is_respected() {
        let g = generators::path(5);
        let ordering = vec![4, 3, 2, 1, 0];
        let s = solve_with_ordering(&g, &ordering, &SolveOptions::default()).unwrap();
        assert_eq!(s.ordering, ordering);
    }

    #[test]
    fn invalid_ordering_rejected() {
        let g = generators::path(3);
        assert!(matches!(
            solve_with_ordering(&g, &[0, 0, 1], &SolveOptions::default()),
            Err(SolverError::InvalidOrdering { photons: 3 })
        ));
        assert!(matches!(
            solve_with_ordering(&g, &[0, 1], &SolveOptions::default()),
            Err(SolverError::InvalidOrdering { .. })
        ));
    }

    #[test]
    fn explicit_pool_is_honored() {
        let g = generators::path(6);
        let opts = SolveOptions {
            emitters: Some(3),
            ..SolveOptions::default()
        };
        let s = solve(&g, &opts).unwrap();
        assert_eq!(s.emitters, 3);
        assert_eq!(s.circuit.num_emitters(), 3);
    }

    #[test]
    fn bad_ordering_needs_more_emitters() {
        // Interleaved path ordering raises the height function.
        let g = generators::path(6);
        let s = solve_with_ordering(&g, &[0, 2, 4, 1, 3, 5], &SolveOptions::default()).unwrap();
        assert!(s.emitters > 1);
    }

    #[test]
    fn measurements_appear_for_emitter_reuse() {
        // A long path with an interleaved ordering forces TRMs.
        let g = generators::path(8);
        let s =
            solve_with_ordering(&g, &[0, 2, 4, 6, 1, 3, 5, 7], &SolveOptions::default()).unwrap();
        assert!(s.circuit.measurement_count() > 0);
    }
}
