//! The comparison baseline: a GraphiQ-style deterministic solver.
//!
//! GraphiQ's `AlternateTargetSolver` (Lin et al., arXiv:2402.09285) wraps the
//! Li-et-al. time-reversed protocol in a search over *alternate targets* —
//! LC-equivalent presentations of the goal state — each solved
//! deterministically in the natural emission order at minimal emitter count.
//! The paper's evaluation runs it with a 30-minute timeout instead of
//! exhaustively. Our substitute keeps exactly that structure: the same
//! reverse engine as [`crate::reverse`], the natural ordering, plus a bounded
//! randomized search over LC-equivalent targets that keeps the best circuit
//! (single-qubit corrections included, so the circuit still delivers the
//! original target). See DESIGN.md §5 for the substitution rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use epgs_circuit::{Circuit, Op, Qubit};
use epgs_graph::{ops, Graph};
use epgs_hardware::HardwareModel;

use crate::error::SolverError;
use crate::reverse::{solve_with_ordering, SolveOptions, Solved};

/// Configuration of the baseline solver.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Alternate-target attempts beyond the original presentation
    /// (0 = plain Li-et-al. solve in the natural order).
    pub restarts: usize,
    /// Length of each random LC sequence defining an alternate target.
    pub lc_depth: usize,
    /// RNG seed for the alternate targets.
    pub seed: u64,
    /// Emitter pool override; `None` = the height-function minimum.
    pub emitters: Option<usize>,
    /// Verify compiled circuits against the target.
    pub verify: bool,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            restarts: 8,
            lc_depth: 3,
            seed: 0x5eed,
            emitters: None,
            verify: true,
        }
    }
}

/// Compiles `target` the way the state-of-the-art baseline does:
/// time-reversed solve at minimal emitter count over a bounded set of
/// LC-equivalent alternate targets, choosing the best circuit by
/// emitter-emitter CNOT count (ties broken by duration).
///
/// # Errors
///
/// Returns the last solver error if every alternate target fails (which, at
/// the default pool-growth settings, indicates a malformed input).
pub fn solve_baseline(
    target: &Graph,
    hw: &HardwareModel,
    options: &BaselineOptions,
) -> Result<Solved, SolverError> {
    let n = target.vertex_count();
    let natural: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(options.seed);

    // Alternate targets: the original, plus `restarts` random LC variants.
    let mut alternates: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..options.restarts {
        let depth = rng.gen_range(1..=options.lc_depth.max(1));
        let seq: Vec<usize> = (0..depth).map(|_| rng.gen_range(0..n.max(1))).collect();
        alternates.push(seq);
    }

    let mut best: Option<Solved> = None;
    let mut last_err = None;
    for lc_seq in alternates {
        let mut variant = target.clone();
        let mut applied: Vec<usize> = Vec::new();
        for &v in &lc_seq {
            if variant.degree(v) >= 2 {
                ops::local_complement(&mut variant, v).expect("vertex in range");
                applied.push(v);
            }
        }
        // Each LC variant may need more emitters than the requested budget
        // (its height function differs); the pool is the larger of the two,
        // as real hardware would simply refuse the variant otherwise.
        let solve_opts = SolveOptions {
            emitters: options
                .emitters
                .map(|req| req.max(epgs_graph::height::min_emitters(&variant, &natural).max(1))),
            verify: false, // verified below, after LC corrections are appended
            vanilla_elements: true,
            max_pool_growth: 6,
            ..SolveOptions::default()
        };
        match solve_with_ordering(&variant, &natural, &solve_opts) {
            Ok(mut s) => {
                append_lc_inverse(&mut s.circuit, target, &applied);
                if options.verify
                    && !epgs_circuit::simulate::verify_circuit(&s.circuit, target).unwrap_or(false)
                {
                    last_err = Some(SolverError::VerificationFailed);
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let (sc, bc) = (
                            s.circuit.ee_two_qubit_count(),
                            b.circuit.ee_two_qubit_count(),
                        );
                        let st = epgs_circuit::timeline(hw, &s.circuit).duration;
                        let bt = epgs_circuit::timeline(hw, &b.circuit).duration;
                        sc < bc || (sc == bc && st < bt)
                    }
                };
                if better {
                    best = Some(s);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.ok_or_else(|| last_err.expect("no candidates attempted"))
}

/// Appends the inverse LC unitaries so the circuit yields the original
/// target rather than the LC variant (single-qubit photon gates only).
fn append_lc_inverse(circuit: &mut Circuit, original: &Graph, lc_sequence: &[usize]) {
    if lc_sequence.is_empty() {
        return;
    }
    let mut graphs = Vec::with_capacity(lc_sequence.len());
    let mut cur = original.clone();
    for &v in lc_sequence {
        graphs.push(cur.clone());
        ops::local_complement(&mut cur, v).expect("vertex in range");
    }
    for (i, &v) in lc_sequence.iter().enumerate().rev() {
        let before = &graphs[i];
        circuit.push(Op::H(Qubit::Photon(v)));
        circuit.push(Op::S(Qubit::Photon(v)));
        circuit.push(Op::H(Qubit::Photon(v)));
        for &w in before.neighbors(v) {
            circuit.push(Op::Sdg(Qubit::Photon(w)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    fn hw() -> HardwareModel {
        HardwareModel::quantum_dot()
    }

    #[test]
    fn baseline_solves_paths_with_one_emitter() {
        let g = generators::path(8);
        let s = solve_baseline(&g, &hw(), &BaselineOptions::default()).unwrap();
        assert_eq!(s.emitters, 1);
        assert_eq!(s.circuit.ee_two_qubit_count(), 0);
    }

    #[test]
    fn alternate_targets_never_hurt() {
        let g = generators::lattice(3, 3);
        let plain = solve_baseline(
            &g,
            &hw(),
            &BaselineOptions {
                restarts: 0,
                ..BaselineOptions::default()
            },
        )
        .unwrap();
        let searched = solve_baseline(&g, &hw(), &BaselineOptions::default()).unwrap();
        assert!(searched.circuit.ee_two_qubit_count() <= plain.circuit.ee_two_qubit_count());
    }

    #[test]
    fn zero_restarts_is_deterministic() {
        let g = generators::tree(9, 2);
        let opts = BaselineOptions {
            restarts: 0,
            ..BaselineOptions::default()
        };
        let a = solve_baseline(&g, &hw(), &opts).unwrap();
        let b = solve_baseline(&g, &hw(), &opts).unwrap();
        assert_eq!(a.circuit, b.circuit);
    }

    #[test]
    fn seeds_are_reproducible() {
        let g = generators::erdos_renyi(9, 0.3, &mut StdRng::seed_from_u64(4));
        let opts = BaselineOptions::default();
        let a = solve_baseline(&g, &hw(), &opts).unwrap();
        let b = solve_baseline(&g, &hw(), &opts).unwrap();
        assert_eq!(a.circuit, b.circuit);
    }

    #[test]
    fn lc_variant_circuits_still_deliver_the_original_target() {
        // With verification on (the default), a successful return proves the
        // LC-corrected circuit regenerates the *original* graph.
        let g = generators::cycle(7);
        let s = solve_baseline(
            &g,
            &hw(),
            &BaselineOptions {
                restarts: 6,
                ..BaselineOptions::default()
            },
        )
        .unwrap();
        assert!(epgs_circuit::simulate::verify_circuit(&s.circuit, &g).unwrap());
    }
}
