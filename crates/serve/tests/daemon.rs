//! End-to-end protocol tests against the real `epgs-serve` binary.
//!
//! Each test spawns the compiled daemon (via `CARGO_BIN_EXE_epgs-serve`),
//! drives it over stdin/stdout with line-delimited JSON, and checks the
//! responses — including a full kill-and-restart cycle against one store
//! directory.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use epgs_corpus::json::Value;
use epgs_graph::{generators, Graph};

struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(store: &Path, threads: usize) -> Daemon {
        Daemon::spawn_full(
            &[
                "--store",
                store.to_str().expect("utf-8 path"),
                "--threads",
                &threads.to_string(),
            ],
            &[],
        )
    }

    fn spawn_full(args: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_epgs-serve"))
            .args(args)
            .envs(envs.iter().copied())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn epgs-serve");
        let stdin = child.stdin.take().expect("child stdin");
        let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
    }

    fn read_response(&mut self) -> Value {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed stdout unexpectedly");
        Value::parse(line.trim()).expect("response is JSON")
    }

    /// Reads `n` responses and indexes them by numeric id.
    fn read_batch(&mut self, n: usize) -> HashMap<u64, Value> {
        let mut out = HashMap::new();
        for _ in 0..n {
            let v = self.read_response();
            let id = v.get("id").and_then(Value::as_u64).expect("numeric id");
            out.insert(id, v);
        }
        out
    }

    fn shutdown(mut self) {
        self.send("{\"op\":\"shutdown\",\"id\":999}");
        let ack = self.read_response();
        assert_eq!(ack.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(ack.get("op").and_then(Value::as_str), Some("shutdown"));
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "daemon exited with {status}");
    }
}

fn graph_json(g: &Graph) -> String {
    let edges: Vec<String> = g.edges().map(|(a, b)| format!("[{a},{b}]")).collect();
    format!(
        "{{\"n\":{},\"edges\":[{}]}}",
        g.vertex_count(),
        edges.join(",")
    )
}

fn compile_req(id: u64, g: &Graph) -> String {
    format!(
        "{{\"op\":\"compile\",\"id\":{id},\"graph\":{},\"qasm\":true}}",
        graph_json(g)
    )
}

fn targets() -> Vec<Graph> {
    vec![
        generators::path(6),
        generators::cycle(7),
        generators::tree(9, 2),
    ]
}

#[test]
fn daemon_compiles_reports_outcomes_and_survives_restart() {
    let dir = std::env::temp_dir().join(format!("epgs-daemon-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let graphs = targets();

    // ---- First lifetime: cold compiles + a duplicate + stats. ----
    let mut daemon = Daemon::spawn(&dir, 2);
    for (i, g) in graphs.iter().enumerate() {
        daemon.send(&compile_req(i as u64, g));
    }
    // Duplicate of graph 0: memory hit or coalesced, never a recompile.
    daemon.send(&compile_req(100, &graphs[0]));
    let responses = daemon.read_batch(graphs.len() + 1);

    let mut first_qasm = Vec::new();
    for (i, _g) in graphs.iter().enumerate() {
        let r = &responses[&(i as u64)];
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r}");
        let metrics = r.get("metrics").expect("metrics");
        assert!(metrics.get("ne_min").and_then(Value::as_u64).is_some());
        assert!(r.get("wall_micros").and_then(Value::as_u64).is_some());
        first_qasm.push(
            r.get("qasm")
                .and_then(Value::as_str)
                .expect("qasm requested")
                .to_string(),
        );
    }
    let dup_outcome = responses[&100]
        .get("outcome")
        .and_then(Value::as_str)
        .expect("outcome")
        .to_string();
    assert!(
        ["memory_hit", "coalesced"].contains(&dup_outcome.as_str()),
        "duplicate request outcome was '{dup_outcome}'"
    );

    daemon.send("{\"op\":\"stats\",\"id\":200}");
    let stats = daemon.read_response();
    assert_eq!(
        stats.get("requests").and_then(Value::as_u64),
        Some(graphs.len() as u64 + 1)
    );
    assert_eq!(
        stats
            .get("store")
            .and_then(|s| s.get("writes"))
            .and_then(Value::as_u64),
        Some(graphs.len() as u64)
    );

    // Protocol errors answer without killing the daemon.
    daemon.send("this is not json");
    let err = daemon.read_response();
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));
    assert!(err.get("error").and_then(Value::as_str).is_some());
    daemon.send("{\"op\":\"frobnicate\",\"id\":7}");
    let err = daemon.read_response();
    assert_eq!(err.get("id").and_then(Value::as_u64), Some(7));
    assert_eq!(err.get("ok").and_then(Value::as_bool), Some(false));

    daemon.shutdown();

    // ---- Second lifetime: same store directory → disk hits, identical
    // QASM. ----
    let mut daemon = Daemon::spawn(&dir, 2);
    for (i, g) in graphs.iter().enumerate() {
        daemon.send(&compile_req(i as u64, g));
    }
    let responses = daemon.read_batch(graphs.len());
    let mut disk_hits = 0usize;
    for (i, _g) in graphs.iter().enumerate() {
        let r = &responses[&(i as u64)];
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        let outcome = r.get("outcome").and_then(Value::as_str).expect("outcome");
        disk_hits += usize::from(outcome == "disk_hit");
        assert_eq!(
            r.get("qasm").and_then(Value::as_str),
            Some(first_qasm[i].as_str()),
            "restart changed the QASM of target {i}"
        );
    }
    assert!(
        disk_hits * 10 >= graphs.len() * 9,
        "restart hit rate {disk_hits}/{} below 90%",
        graphs.len()
    );

    // Evict target 0 everywhere, recompile it: a fresh compile again.
    daemon.send(&format!(
        "{{\"op\":\"evict\",\"id\":300,\"graph\":{}}}",
        graph_json(&graphs[0])
    ));
    let evicted = daemon.read_response();
    assert!(evicted.get("dropped").and_then(Value::as_u64).unwrap_or(0) >= 1);
    daemon.send(&compile_req(301, &graphs[0]));
    let r = daemon.read_response();
    assert_eq!(r.get("outcome").and_then(Value::as_str), Some("compiled"));

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_flooded_daemon_sheds_with_structured_overloaded_errors() {
    // One worker, a queue of one, and every compile stalled 150 ms by an
    // injected fault: flooding guarantees shedding, and every request —
    // shed or served — must still get exactly one correlated response.
    let mut daemon = Daemon::spawn_full(
        &["--threads", "1", "--queue-limit", "1"],
        &[("EPGS_FAULT_PLAN", "batch.compile:slow(150)")],
    );
    const FLOOD: u64 = 12;
    let g = generators::cycle(6);
    for i in 0..FLOOD {
        daemon.send(&compile_req(i, &g));
    }
    let responses = daemon.read_batch(FLOOD as usize);

    let mut shed = 0usize;
    let mut served = 0usize;
    for i in 0..FLOOD {
        let r = responses
            .get(&i)
            .unwrap_or_else(|| panic!("request {i} got no response"));
        match r.get("ok").and_then(Value::as_bool) {
            Some(true) => served += 1,
            _ => {
                assert_eq!(
                    r.get("error_kind").and_then(Value::as_str),
                    Some("overloaded"),
                    "failed response must be a structured shed: {r}"
                );
                shed += 1;
            }
        }
    }
    assert!(served >= 1, "the worker must serve at least one request");
    assert!(shed >= 1, "a flood past queue-limit 1 must shed");

    // The shed counter is visible over the protocol.
    daemon.send("{\"op\":\"stats\",\"id\":500}");
    let stats = daemon.read_response();
    assert_eq!(
        stats.get("shed").and_then(Value::as_u64),
        Some(shed as u64),
        "{stats}"
    );
    assert_eq!(
        stats.get("requests").and_then(Value::as_u64),
        Some(FLOOD),
        "{stats}"
    );
    daemon.shutdown();
}
