//! Engine-level service guarantees: request coalescing and restart
//! durability.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use epgs::FrameworkConfig;
use epgs_circuit::qasm;
use epgs_graph::{generators, Graph};
use epgs_serve::{default_config, ServeEngine, ServeOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_config() -> FrameworkConfig {
    FrameworkConfig::builder()
        .g_max(5)
        .lc_budget(3)
        .partition_effort(4)
        .orderings_per_subgraph(4)
        .flexible_slack(1)
        .build()
}

/// One small instance per generator family of the default corpus.
fn family_zoo() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "random_regular",
            generators::random_regular(14, 3, &mut StdRng::seed_from_u64(1)),
        ),
        ("hypercube", generators::hypercube(3)),
        ("heavy_hex", generators::heavy_hex(1, 2)),
        (
            "barabasi_albert",
            generators::barabasi_albert(14, 2, &mut StdRng::seed_from_u64(2)),
        ),
        (
            "watts_strogatz",
            generators::watts_strogatz(14, 4, 0.1, &mut StdRng::seed_from_u64(3)),
        ),
    ]
}

#[test]
fn concurrent_identical_requests_coalesce_into_one_compilation() {
    // The corpus-effort config keeps the leader busy long enough for the
    // waiters to attach; the assertions below do not depend on timing.
    let engine = Arc::new(ServeEngine::new(default_config()));
    let g = generators::lattice(4, 6);

    let leader = {
        let engine = Arc::clone(&engine);
        let g = g.clone();
        thread::spawn(move || engine.compile(&g))
    };
    // Wait until the leader has registered its in-flight slot.
    for _ in 0..10_000 {
        if engine.inflight_len() > 0 || engine.stats().requests > 0 {
            break;
        }
        thread::sleep(Duration::from_micros(100));
    }
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let g = g.clone();
            thread::spawn(move || engine.compile(&g))
        })
        .collect();

    let lead_reply = leader.join().expect("leader thread");
    let waiter_replies: Vec<_> = waiters
        .into_iter()
        .map(|t| t.join().expect("waiter thread"))
        .collect();

    // Exactly one compilation ran — the stage counter is the proof.
    assert_eq!(engine.batch().pipeline().counters().plan, 1);
    assert_eq!(lead_reply.outcome, ServeOutcome::Compiled);
    let stats = engine.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.compiled, 1);
    assert_eq!(stats.coalesced + stats.memory_hits, 3);
    assert!(
        stats.coalesced >= 1,
        "at least one waiter attached to the in-flight compile"
    );
    // Every request got the same circuit.
    let reference = &lead_reply.result.as_ref().expect("leader compiled").circuit;
    for reply in &waiter_replies {
        assert_eq!(
            &reply.result.as_ref().expect("waiter shared result").circuit,
            reference
        );
    }
}

#[test]
fn degenerate_graphs_resolve_and_never_wedge_the_inflight_table() {
    // Whatever an edge-case target produces (the empty graph compiles to
    // an empty circuit), the request must resolve, unregister its
    // in-flight slot, and leave the engine serving.
    let engine = ServeEngine::new(quick_config());
    let reply = engine.compile(&Graph::new(0));
    assert_eq!(engine.inflight_len(), 0);
    assert_eq!(engine.stats().requests, 1);
    drop(reply);
    assert!(engine.compile(&generators::path(5)).result.is_ok());
    assert_eq!(engine.inflight_len(), 0);
}

#[test]
fn restart_serves_the_corpus_from_disk_with_byte_identical_qasm() {
    let dir = std::env::temp_dir().join(format!("epgs-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let zoo = family_zoo();

    // First service lifetime: everything compiles fresh and persists.
    let mut first_qasm = Vec::new();
    {
        let engine = ServeEngine::with_store(quick_config(), &dir).expect("open store");
        for (family, g) in &zoo {
            let reply = engine.compile(g);
            assert_eq!(reply.outcome, ServeOutcome::Compiled, "{family}");
            let compiled = reply.result.expect("compiles");
            first_qasm.push(qasm::to_qasm(&compiled.circuit));
        }
        assert_eq!(engine.batch().store().unwrap().stats().writes, zoo.len());
    }

    // "Restart": a fresh engine on the same directory. ≥90% of the corpus
    // must come off disk (here: all of it), with byte-identical output.
    let engine = ServeEngine::with_store(quick_config(), &dir).expect("reopen store");
    let mut disk_hits = 0usize;
    for ((family, g), expected) in zoo.iter().zip(&first_qasm) {
        let reply = engine.compile(g);
        disk_hits += usize::from(reply.outcome == ServeOutcome::DiskHit);
        let compiled = reply.result.expect("compiles after restart");
        assert_eq!(
            &qasm::to_qasm(&compiled.circuit),
            expected,
            "{family}: restart changed the emitted QASM"
        );
    }
    assert!(
        disk_hits * 10 >= zoo.len() * 9,
        "restart hit rate {disk_hits}/{} below 90%",
        zoo.len()
    );
    // Disk adoption skipped the expensive stages entirely.
    assert_eq!(engine.batch().pipeline().counters().plan, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evict_clears_both_layers_and_forces_a_recompile() {
    let dir = std::env::temp_dir().join(format!("epgs-serve-evict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = ServeEngine::with_store(quick_config(), &dir).expect("open store");
    let g = generators::cycle(8);
    assert_eq!(engine.compile(&g).outcome, ServeOutcome::Compiled);
    assert_eq!(engine.compile(&g).outcome, ServeOutcome::MemoryHit);
    // Memory entry + disk artifact.
    assert_eq!(engine.evict(&g), 2);
    assert_eq!(engine.compile(&g).outcome, ServeOutcome::Compiled);
    let _ = std::fs::remove_dir_all(&dir);
}
