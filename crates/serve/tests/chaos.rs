//! Chaos suite: the serve engine under deterministic fault injection.
//!
//! Every test arms a seeded [`FaultPlan`] (the `EPGS_FAULT_PLAN` grammar)
//! across the full stack — store reads/writes, batch compiles, the serve
//! leader, and the multilevel partitioner — and asserts the service
//! guarantees from `ARCHITECTURE.md`'s failure model: no deadlocks, every
//! request reaches a terminal reply, panics are contained, deadlines
//! produce structured errors, degraded answers are labeled and never
//! cached, quarantined store entries are never served, and fault-free
//! replies stay byte-identical to the QASM hashes pinned in
//! `tests/data/flat_qasm_fnv.txt`.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use epgs::faults::FaultPlan;
use epgs::FrameworkConfig;
use epgs_circuit::qasm::to_qasm;
use epgs_corpus::CorpusSpec;
use epgs_graph::generators;
use epgs_serve::{default_config, ServeEngine, ServeErrorKind, ServeOutcome};

/// Silences the default panic hook for *injected* panics only (they are
/// caught by the engine, but the hook would still spam stderr); real
/// panics — including test assertion failures — pass through untouched.
fn quiet_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected fault:"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// FNV-1a, 64 bit — matches `tests/data/flat_qasm_fnv.txt`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The repo-level pinned QASM hashes (`corpus-*` labels match the serve
/// daemon's `default_config`, which mirrors the corpus bench framework;
/// every default-corpus instance sits below the multilevel coarsening
/// cutoff, where the scheme is byte-identical to the pinned flat engine).
fn pinned_hashes() -> BTreeMap<String, u64> {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/flat_qasm_fnv.txt"
    ))
    .expect("pinned hash file must exist");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let (label, hash) = l.split_once(' ').expect("LABEL HASH lines");
            (
                label.to_string(),
                u64::from_str_radix(hash.trim(), 16).expect("hex hash"),
            )
        })
        .collect()
}

fn quick_config() -> FrameworkConfig {
    FrameworkConfig::builder()
        .g_max(5)
        .lc_budget(3)
        .partition_effort(4)
        .orderings_per_subgraph(4)
        .flexible_slack(1)
        .build()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("epgs-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole soak: a worker pool hammers the corpus through one engine
/// while faults fire at every layer. No request may wedge, the in-flight
/// table must drain, and every fault-free success must be byte-identical
/// to the pinned QASM.
#[test]
fn chaos_soak_terminates_and_fault_free_replies_match_pinned_qasm() {
    quiet_injected_panics();
    const WORKERS: usize = 6;
    const REQUESTS_PER_WORKER: usize = 8;

    let dir = temp_dir("soak");
    let plan = Arc::new(
        FaultPlan::parse(
            "seed=0xc4a05;\
             serve.compile:panic@1/12;\
             batch.compile:panic@1/16;\
             batch.compile:slow(2)@1/8;\
             store.read:io@1/6;\
             store.read:bitflip@1/8;\
             store.write:io@1/6;\
             store.write:bitflip@1/10;\
             partition.multilevel:fail@1/4",
        )
        .expect("soak plan parses"),
    );
    let mut engine = ServeEngine::with_store(default_config(), &dir).expect("open store");
    engine.set_fault_plan(Arc::clone(&plan));
    let engine = Arc::new(engine);

    let instances = Arc::new(CorpusSpec::default_corpus().instances());
    let pinned = pinned_hashes();
    assert!(
        instances
            .iter()
            .all(|i| pinned.contains_key(&format!("corpus-{}", i.id))),
        "every corpus instance must have a pinned hash"
    );

    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let engine = Arc::clone(&engine);
        let instances = Arc::clone(&instances);
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            for r in 0..REQUESTS_PER_WORKER {
                // Stagger the walk per worker so identical requests overlap
                // (coalescing) while the whole corpus still gets coverage.
                let idx = (w * 3 + r) % instances.len();
                let reply = engine.compile(&instances[idx].graph);
                tx.send((idx, reply)).expect("collector alive");
            }
        }));
    }
    drop(tx);

    // Watchdog: a wedged engine shows up as a receive timeout here, not as
    // a hung test binary.
    let mut replies = Vec::new();
    for _ in 0..WORKERS * REQUESTS_PER_WORKER {
        let msg = rx
            .recv_timeout(Duration::from_secs(180))
            .expect("soak wedged: a request never reached a terminal reply");
        replies.push(msg);
    }
    for h in handles {
        h.join().expect("worker thread");
    }

    assert_eq!(replies.len(), WORKERS * REQUESTS_PER_WORKER);
    assert_eq!(engine.inflight_len(), 0, "in-flight table must drain");
    assert!(plan.total_hits() > 0, "the plan must actually fire");

    // Fault-free successes are byte-identical to the pinned flat QASM.
    // There is deliberately no lower bound on how many such replies exist:
    // the plan fires at fixed invocation indices per point, but thread
    // interleaving decides which *request* consumes which index, so under
    // heavy load every success in the armed phase may legitimately be
    // degraded. The disarmed epilogue below supplies the deterministic
    // byte-identity coverage for the full corpus.
    for (idx, reply) in &replies {
        if reply.degraded {
            continue;
        }
        if let Ok(compiled) = &reply.result {
            let label = format!("corpus-{}", instances[*idx].id);
            assert_eq!(
                fnv1a64(to_qasm(&compiled.circuit).as_bytes()),
                pinned[&label],
                "{label}: QASM drifted under fault injection"
            );
        }
    }

    // Disarmed epilogue: the same engine serves the whole corpus cleanly.
    plan.disarm();
    for inst in instances.iter() {
        let reply = engine.compile(&inst.graph);
        let compiled = reply.result.unwrap_or_else(|e| {
            panic!("{}: disarmed compile failed: {e}", inst.id);
        });
        assert!(!reply.degraded, "{}: disarmed reply degraded", inst.id);
        assert_eq!(
            fnv1a64(to_qasm(&compiled.circuit).as_bytes()),
            pinned[&format!("corpus-{}", inst.id)],
            "{}: disarmed QASM drifted",
            inst.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Leader death: a panicking leader publishes a structured `panic` error
/// to its whole coalesced herd, the in-flight table drains, and the next
/// request for the same graph recompiles successfully.
#[test]
fn a_panicking_leader_fails_its_herd_and_the_next_request_recovers() {
    quiet_injected_panics();
    // The leader sleeps at the serve point (letting the herd attach), then
    // panics at the batch point inside `catch_unwind`.
    let plan =
        Arc::new(FaultPlan::parse("serve.compile:slow(200)#0;batch.compile:panic#0").unwrap());
    let mut engine = ServeEngine::new(quick_config());
    engine.set_fault_plan(Arc::clone(&plan));
    let engine = Arc::new(engine);
    let g = generators::lattice(3, 4);

    let leader = {
        let engine = Arc::clone(&engine);
        let g = g.clone();
        thread::spawn(move || engine.compile(&g))
    };
    for _ in 0..10_000 {
        if engine.inflight_len() > 0 {
            break;
        }
        thread::sleep(Duration::from_micros(100));
    }
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let g = g.clone();
            thread::spawn(move || engine.compile(&g))
        })
        .collect();

    let lead_reply = leader.join().expect("leader thread");
    let err = lead_reply.result.expect_err("leader must fail");
    assert_eq!(err.kind, ServeErrorKind::Panic);
    assert!(err.message.contains("injected fault"), "{}", err.message);
    for waiter in waiters {
        let reply = waiter.join().expect("waiter thread");
        // A waiter either attached to the doomed leader (shared panic
        // error) or arrived after publication and re-led a clean compile.
        match reply.result {
            Err(e) => assert_eq!(e.kind, ServeErrorKind::Panic),
            Ok(_) => assert_eq!(reply.outcome, ServeOutcome::Compiled),
        }
    }
    assert_eq!(engine.inflight_len(), 0, "dead leader must unregister");
    let stats = engine.stats();
    assert_eq!(stats.panics, 1);
    assert!(stats.failures >= 1);

    // The panic left nothing poisoned and no bad entry cached: a fresh
    // request succeeds (compiled, or a memory hit if a late waiter re-led
    // a clean compile above).
    let reply = engine.compile(&g);
    assert!(reply.result.is_ok(), "recovery compile failed");
    assert_eq!(engine.compile(&g).outcome, ServeOutcome::MemoryHit);
}

/// Deadlines are structured errors, not hangs: a forced-slow compile past
/// its deadline, an already-expired request (even against a warm cache),
/// and a waiter whose leader outlives the waiter's own deadline all get
/// `deadline_exceeded`.
#[test]
fn deadlines_produce_structured_errors_for_leaders_and_waiters() {
    quiet_injected_panics();
    let plan = Arc::new(FaultPlan::parse("batch.compile:slow(400)").unwrap());
    let mut engine = ServeEngine::new(quick_config());
    engine.set_fault_plan(Arc::clone(&plan));
    let engine = Arc::new(engine);
    let g = generators::cycle(8);

    // Leader: the injected 400 ms stall blows the 50 ms budget.
    let reply = engine.compile_with_deadline(&g, Some(Duration::from_millis(50)));
    let err = reply.result.expect_err("stalled compile must time out");
    assert_eq!(err.kind, ServeErrorKind::DeadlineExceeded);

    // Waiter: attach to a slow leader with a tiny budget of one's own.
    let leader = {
        let engine = Arc::clone(&engine);
        let g = g.clone();
        thread::spawn(move || engine.compile(&g))
    };
    for _ in 0..10_000 {
        if engine.inflight_len() > 0 {
            break;
        }
        thread::sleep(Duration::from_micros(100));
    }
    let waiter = engine.compile_with_deadline(&g, Some(Duration::from_millis(30)));
    assert_eq!(waiter.outcome, ServeOutcome::Coalesced);
    assert_eq!(
        waiter.result.expect_err("waiter must time out").kind,
        ServeErrorKind::DeadlineExceeded
    );
    // The leader is unhurried and completes normally.
    assert!(leader.join().expect("leader thread").result.is_ok());

    // An expired deadline cancels even a warm cache hit: the request is
    // dead regardless of how cheap the answer would have been.
    plan.disarm();
    assert!(engine.compile(&g).result.is_ok());
    let expired = engine.compile_with_deadline(&g, Some(Duration::ZERO));
    assert_eq!(
        expired.result.expect_err("expired request must fail").kind,
        ServeErrorKind::DeadlineExceeded
    );
    assert!(engine.stats().deadline_exceeded >= 3);
}

/// Graceful degradation: a failing multilevel partitioner falls back to
/// the flat scheme per request — the reply is labeled, never cached, and
/// full quality returns as soon as the fault clears.
#[test]
fn multilevel_failures_degrade_per_request_and_are_never_cached() {
    quiet_injected_panics();
    let plan = Arc::new(FaultPlan::parse("partition.multilevel:fail").unwrap());
    let mut engine = ServeEngine::new(quick_config());
    engine.set_fault_plan(Arc::clone(&plan));
    let g = generators::lattice(3, 3);

    let first = engine.compile(&g);
    assert!(first.degraded, "fallback must be labeled");
    assert!(first.result.is_ok(), "degraded is still a valid answer");
    // Degraded plans are never cached: the next request recompiles.
    let second = engine.compile(&g);
    assert_eq!(second.outcome, ServeOutcome::Compiled);
    assert!(second.degraded);
    assert!(engine.stats().degraded >= 2);

    // Fault clears → full-quality compile, which does get cached.
    plan.disarm();
    let healed = engine.compile(&g);
    assert_eq!(healed.outcome, ServeOutcome::Compiled);
    assert!(!healed.degraded);
    assert_eq!(engine.compile(&g).outcome, ServeOutcome::MemoryHit);
}

/// Quarantine: a store entry that fails its checksum twice is renamed to
/// `*.quarantine` and never served again — not in this lifetime, not
/// after a restart — while requests keep succeeding via recompiles.
#[test]
fn twice_corrupt_store_entries_are_quarantined_and_never_served() {
    quiet_injected_panics();
    let dir = temp_dir("quarantine");
    let g = generators::cycle(9);

    // Lifetime 1: persist the artifact cleanly.
    {
        let engine = ServeEngine::with_store(quick_config(), &dir).expect("open store");
        assert_eq!(engine.compile(&g).outcome, ServeOutcome::Compiled);
        assert_eq!(engine.batch().store().unwrap().stats().writes, 1);
    }

    // Lifetime 2: every disk read is bit-flipped. Two read strikes on the
    // same entry (with a clean rewrite in between) trigger quarantine.
    let plan = Arc::new(FaultPlan::parse("store.read:bitflip").unwrap());
    let mut engine = ServeEngine::with_store(quick_config(), &dir).expect("reopen store");
    engine.set_fault_plan(Arc::clone(&plan));

    // Strike 1: corrupt read → discard → recompile → rewrite.
    let reply = engine.compile(&g);
    assert_eq!(reply.outcome, ServeOutcome::Compiled, "corrupt read served");
    assert!(reply.result.is_ok());
    // Clear only the memory layer so the next request hits the disk again.
    assert_eq!(engine.batch().evict(&g), 1);
    // Strike 2: corrupt again → quarantined, then recompiled.
    let reply = engine.compile(&g);
    assert_eq!(reply.outcome, ServeOutcome::Compiled);
    assert!(reply.result.is_ok());
    let stats = engine.batch().store().unwrap().stats();
    assert_eq!(stats.quarantined, 1);
    assert!(
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().ends_with(".quarantine")),
        "quarantined file must exist on disk"
    );

    // Even fault-free, the quarantined name is never read or rewritten.
    plan.disarm();
    assert_eq!(engine.batch().evict(&g), 1);
    let reply = engine.compile(&g);
    assert_eq!(
        reply.outcome,
        ServeOutcome::Compiled,
        "a quarantined entry must never be served from disk"
    );

    // Lifetime 3: quarantine survives the restart.
    let engine = ServeEngine::with_store(quick_config(), &dir).expect("reopen after quarantine");
    assert_eq!(
        engine.compile(&g).outcome,
        ServeOutcome::Compiled,
        "quarantine must survive a daemon restart"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
