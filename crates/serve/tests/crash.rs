//! Crash-consistency harness: the real `epgs-serve` binary killed at
//! every armed crash point, then audited.
//!
//! Each matrix leg spawns the daemon with a seeded `crash` fault plan
//! (`EPGS_FAULT_PLAN`, see `epgs::faults`), lets `std::process::abort()`
//! fire at one store boundary — tmp written, artifact renamed, manifest
//! mid-commit, eviction mid-unlink, quarantine mid-rename — and then
//! asserts the crash-consistency contract from `ARCHITECTURE.md`:
//!
//! * reopening the store runs `fsck` and repairs the damage (the repair
//!   shows up in the expected [`RecoveryReport`] counter);
//! * a second `fsck` pass is clean, and LRU byte accounting matches an
//!   independent directory walk;
//! * a fresh daemon on the recovered store serves the full default corpus
//!   with QASM byte-identical to the hashes pinned in
//!   `tests/data/flat_qasm_fnv.txt` — no torn or stale artifact is ever
//!   served.
//!
//! The supervision legs drive `epgs-serve --supervise`: a mid-corpus
//! worker crash is warm-restarted and the pending request replayed to a
//! successful answer, while a poison-pill request (one that crashes the
//! worker every time) trips the per-graph circuit breaker into a
//! structured `compile_failed` instead of a crash loop.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use epgs::{ArtifactStore, RecoveryReport};
use epgs_corpus::json::Value;
use epgs_corpus::CorpusSpec;
use epgs_graph::{generators, Graph};

struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn_full(args: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_epgs-serve"))
            .args(args)
            .envs(envs.iter().copied())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn epgs-serve");
        let stdin = child.stdin.take().expect("child stdin");
        let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
    }

    /// Like [`Daemon::send`], but tolerates a daemon that has already
    /// crashed (the pipe write fails instead of panicking the test).
    fn try_send(&mut self, line: &str) {
        let _ = writeln!(self.stdin, "{line}").and_then(|()| self.stdin.flush());
    }

    fn read_response(&mut self) -> Value {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed stdout unexpectedly");
        Value::parse(line.trim()).expect("response is JSON")
    }

    /// Waits for the process to die and asserts it did NOT exit cleanly —
    /// the injected `crash` fault must abort, not return. Responses that
    /// raced out before the abort are discarded.
    fn wait_crashed(self) {
        let Daemon {
            mut child,
            stdin,
            mut stdout,
        } = self;
        drop(stdin);
        loop {
            let mut line = String::new();
            match stdout.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let status = child.wait().expect("daemon exit");
        assert!(!status.success(), "daemon must abort at the crash point");
    }

    fn shutdown(mut self) {
        self.send("{\"op\":\"shutdown\",\"id\":999}");
        let ack = self.read_response();
        assert_eq!(ack.get("ok").and_then(Value::as_bool), Some(true), "{ack}");
        assert_eq!(ack.get("op").and_then(Value::as_str), Some("shutdown"));
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "daemon exited with {status}");
    }
}

fn graph_json(g: &Graph) -> String {
    let edges: Vec<String> = g.edges().map(|(a, b)| format!("[{a},{b}]")).collect();
    format!(
        "{{\"n\":{},\"edges\":[{}]}}",
        g.vertex_count(),
        edges.join(",")
    )
}

fn compile_req(id: u64, g: &Graph) -> String {
    format!(
        "{{\"op\":\"compile\",\"id\":{id},\"graph\":{},\"qasm\":true}}",
        graph_json(g)
    )
}

/// FNV-1a, 64 bit — matches `tests/data/flat_qasm_fnv.txt`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pinned_hashes() -> BTreeMap<String, u64> {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/flat_qasm_fnv.txt"
    ))
    .expect("pinned hash file must exist");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let (label, hash) = l.split_once(' ').expect("LABEL HASH lines");
            (
                label.to_string(),
                u64::from_str_radix(hash.trim(), 16).expect("hex hash"),
            )
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("epgs-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sums the live artifact bytes by walking the directory — the ground
/// truth the store's in-memory accounting must match after recovery.
fn disk_accounting(dir: &Path) -> (usize, u64) {
    let mut files = 0usize;
    let mut bytes = 0u64;
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".art.json") {
            files += 1;
            bytes += entry.metadata().expect("metadata").len();
        }
    }
    (files, bytes)
}

/// Reopens the crashed store, audits the recovery pass, and asserts the
/// post-conditions every kill point shares: the expected repair fired, a
/// second `fsck` is clean, and accounting matches the directory walk.
fn audit_recovery(dir: &Path, point: &str, expected_repair: fn(&RecoveryReport) -> bool) {
    let store = ArtifactStore::open(dir).expect("reopen crashed store");
    let report = store.recovery();
    assert!(
        expected_repair(&report),
        "{point}: recovery pass missed the expected repair: {report:?}"
    );
    let second = store.fsck().expect("second fsck");
    assert!(
        second.is_clean(),
        "{point}: store dirty after recovery: {second:?}"
    );
    let (files, bytes) = disk_accounting(dir);
    assert_eq!(store.len(), files, "{point}: file accounting drifted");
    assert_eq!(
        store.total_bytes(),
        bytes,
        "{point}: byte accounting drifted"
    );
}

/// One kill-point matrix row: fault point, armed crash plan, and the
/// repair the recovery report must show after reopening.
type KillPoint = (&'static str, &'static str, fn(&RecoveryReport) -> bool);

/// The kill-point matrix: abort the daemon inside each store write
/// boundary, audit the recovery, then prove a fresh daemon serves the
/// whole corpus byte-identical to the pinned QASM.
#[test]
fn every_write_kill_point_recovers_to_a_byte_identical_corpus() {
    let instances = CorpusSpec::default_corpus().instances();
    let pinned = pinned_hashes();
    let matrix: [KillPoint; 3] = [
        // Crash with the artifact tmp written but never renamed: the tmp
        // is swept, the entry was never visible.
        ("store.write.tmp", "store.write.tmp:crash#0", |r| {
            r.tmp_swept >= 1
        }),
        // Crash after the artifact rename, before the manifest commit:
        // the whole artifact is re-indexed as an orphan.
        ("store.write.rename", "store.write.rename:crash#0", |r| {
            r.orphans_reindexed >= 1
        }),
        // Crash with the manifest tmp written but never renamed (#1: the
        // open itself commits generation 1 first): the stale tmp is swept
        // and the artifact behind it re-indexed.
        ("store.manifest", "store.manifest:crash#1", |r| {
            r.tmp_swept >= 1
        }),
    ];

    for (point, plan, expected_repair) in matrix {
        let dir = temp_dir(&point.replace('.', "-"));
        let dir_str = dir.to_str().expect("utf-8 path").to_string();

        let mut daemon = Daemon::spawn_full(
            &["--store", &dir_str, "--threads", "1"],
            &[("EPGS_FAULT_PLAN", plan)],
        );
        for (i, inst) in instances.iter().enumerate() {
            daemon.try_send(&compile_req(i as u64, &inst.graph));
        }
        daemon.wait_crashed();

        audit_recovery(&dir, point, expected_repair);

        // A fresh daemon on the recovered store serves the full corpus —
        // and every answer is byte-identical to the pinned QASM, so no
        // torn or stale artifact survived into service.
        let mut daemon = Daemon::spawn_full(&["--store", &dir_str, "--threads", "2"], &[]);
        for (i, inst) in instances.iter().enumerate() {
            daemon.send(&compile_req(i as u64, &inst.graph));
        }
        for _ in 0..instances.len() {
            let r = daemon.read_response();
            let id = r.get("id").and_then(Value::as_u64).expect("numeric id") as usize;
            assert_eq!(
                r.get("ok").and_then(Value::as_bool),
                Some(true),
                "{point}: corpus-{} failed after recovery: {r}",
                instances[id].id
            );
            let qasm = r.get("qasm").and_then(Value::as_str).expect("qasm");
            let label = format!("corpus-{}", instances[id].id);
            assert_eq!(
                fnv1a64(qasm.as_bytes()),
                pinned[&label],
                "{point}: {label}: QASM drifted across the crash"
            );
        }
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash mid-eviction: the file is unlinked but the manifest still
/// expects it. Recovery drops the phantom entry and accounting heals.
#[test]
fn a_crash_between_unlink_and_manifest_commit_drops_the_phantom_entry() {
    let dir = temp_dir("evict");
    let dir_str = dir.to_str().expect("utf-8 path").to_string();
    let g = generators::cycle(9);

    let mut daemon = Daemon::spawn_full(&["--store", &dir_str, "--threads", "1"], &[]);
    daemon.send(&compile_req(1, &g));
    assert_eq!(
        daemon.read_response().get("ok").and_then(Value::as_bool),
        Some(true)
    );
    daemon.shutdown();

    let mut daemon = Daemon::spawn_full(
        &["--store", &dir_str, "--threads", "1"],
        &[("EPGS_FAULT_PLAN", "store.evict:crash#0")],
    );
    daemon.try_send(&format!(
        "{{\"op\":\"evict\",\"id\":2,\"graph\":{}}}",
        graph_json(&g)
    ));
    daemon.wait_crashed();

    audit_recovery(&dir, "store.evict", |r| r.missing_dropped >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash mid-quarantine: the corrupt entry was renamed to its
/// `.quarantine` marker but the manifest never heard. Recovery keeps the
/// quarantine (the marker wins) and the entry is never served again.
#[test]
fn a_crash_during_quarantine_keeps_the_entry_quarantined_after_recovery() {
    let dir = temp_dir("quarantine");
    let dir_str = dir.to_str().expect("utf-8 path").to_string();
    let g = generators::cycle(9);

    // Lifetime 1: persist the artifact cleanly.
    let mut daemon = Daemon::spawn_full(&["--store", &dir_str, "--threads", "1"], &[]);
    daemon.send(&compile_req(1, &g));
    assert_eq!(
        daemon.read_response().get("ok").and_then(Value::as_bool),
        Some(true)
    );
    daemon.shutdown();

    // Lifetime 2: every disk read is bit-flipped; the second strike on
    // the same entry triggers the quarantine rename, which crashes.
    let mut daemon = Daemon::spawn_full(
        &["--store", &dir_str, "--threads", "1"],
        &[(
            "EPGS_FAULT_PLAN",
            "store.read:bitflip;store.quarantine:crash#0",
        )],
    );
    // Strike 1: corrupt read → discard → recompile → rewrite.
    daemon.send(&compile_req(2, &g));
    assert_eq!(
        daemon.read_response().get("ok").and_then(Value::as_bool),
        Some(true)
    );
    // Drop only the memory layer so the next request reads disk again.
    daemon.send(&format!(
        "{{\"op\":\"evict\",\"id\":3,\"graph\":{},\"layer\":\"memory\"}}",
        graph_json(&g)
    ));
    assert!(
        daemon
            .read_response()
            .get("dropped")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 1
    );
    // Strike 2: the quarantine rename fires the crash point.
    daemon.try_send(&compile_req(4, &g));
    daemon.wait_crashed();

    assert!(
        std::fs::read_dir(&dir)
            .expect("read store dir")
            .filter_map(Result::ok)
            .any(|e| e.file_name().to_string_lossy().ends_with(".quarantine")),
        "quarantine marker must exist on disk"
    );
    // The manifest still lists the entry; the file behind it is now the
    // quarantine marker, so recovery reports it missing — and keeps it
    // out of the index for good.
    audit_recovery(&dir, "store.quarantine", |r| r.missing_dropped >= 1);

    // A fresh daemon never serves the quarantined artifact: the request
    // recompiles (and the quarantine marker survives).
    let mut daemon = Daemon::spawn_full(&["--store", &dir_str, "--threads", "1"], &[]);
    daemon.send(&compile_req(5, &g));
    let r = daemon.read_response();
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r}");
    assert_eq!(
        r.get("outcome").and_then(Value::as_str),
        Some("compiled"),
        "a quarantined entry must never be served from disk: {r}"
    );
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Supervised warm restart: the worker crashes mid-corpus, the supervisor
/// respawns it and replays the unanswered request to a successful answer,
/// and `health` reports the restart on the wire.
#[test]
fn a_supervised_daemon_warm_restarts_and_replays_the_pending_request() {
    let dir = temp_dir("supervise");
    let dir_str = dir.to_str().expect("utf-8 path").to_string();
    let graphs = [
        generators::path(6),
        generators::cycle(7),
        generators::tree(9, 2),
    ];

    // The third artifact write crashes the worker (after the rename, so
    // the artifact is on disk and the replay lands as a disk hit).
    let mut daemon = Daemon::spawn_full(
        &["--supervise", "--store", &dir_str, "--threads", "1"],
        &[("EPGS_FAULT_PLAN", "store.write.rename:crash#2")],
    );
    for (i, g) in graphs.iter().enumerate() {
        daemon.send(&compile_req(i as u64, g));
        let r = daemon.read_response();
        assert_eq!(
            r.get("ok").and_then(Value::as_bool),
            Some(true),
            "request {i} must succeed (replayed after the crash if needed): {r}"
        );
        assert_eq!(r.get("id").and_then(Value::as_u64), Some(i as u64));
    }

    // The crash is visible in health: the worker was relaunched once and
    // reports its restart count; the supervisor annotates its own view.
    daemon.send("{\"op\":\"health\",\"id\":10}");
    let health = daemon.read_response();
    assert_eq!(health.get("op").and_then(Value::as_str), Some("health"));
    assert_eq!(
        health.get("supervised").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(health.get("restarts").and_then(Value::as_u64), Some(1));
    let sup = health.get("supervisor").expect("supervisor annotation");
    assert_eq!(sup.get("state").and_then(Value::as_str), Some("ready"));
    assert_eq!(sup.get("restarts").and_then(Value::as_u64), Some(1));
    assert_eq!(sup.get("breaker_open").and_then(Value::as_u64), Some(0));

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Poison pill: a request that crashes the worker on every attempt trips
/// the per-graph circuit breaker — a structured `compile_failed`, not a
/// crash loop — while other protocol traffic keeps flowing.
#[test]
fn a_poison_pill_request_trips_the_circuit_breaker() {
    let g = generators::lattice(3, 3);
    let mut daemon = Daemon::spawn_full(
        &["--supervise", "--threads", "1"],
        &[("EPGS_FAULT_PLAN", "batch.compile:crash")],
    );

    // Attempt 1 crashes the worker (strike 1); the replay crashes again
    // (strike 2) and the breaker opens with a structured error.
    daemon.send(&compile_req(1, &g));
    let r = daemon.read_response();
    assert_eq!(r.get("id").and_then(Value::as_u64), Some(1));
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false), "{r}");
    assert_eq!(
        r.get("error_kind").and_then(Value::as_str),
        Some("compile_failed"),
        "{r}"
    );
    assert!(
        r.get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("circuit breaker")),
        "{r}"
    );

    // The open breaker answers immediately — the worker is never asked.
    daemon.send(&compile_req(2, &g));
    let r = daemon.read_response();
    assert_eq!(r.get("id").and_then(Value::as_u64), Some(2));
    assert_eq!(
        r.get("error_kind").and_then(Value::as_str),
        Some("compile_failed"),
        "{r}"
    );

    // Healthy traffic still flows through the respawned worker, and the
    // supervisor reports the open breaker.
    daemon.send("{\"op\":\"status\",\"id\":3}");
    let status = daemon.read_response();
    assert_eq!(status.get("ok").and_then(Value::as_bool), Some(true));
    daemon.send("{\"op\":\"health\",\"id\":4}");
    let health = daemon.read_response();
    let sup = health.get("supervisor").expect("supervisor annotation");
    assert_eq!(sup.get("restarts").and_then(Value::as_u64), Some(2));
    assert_eq!(sup.get("breaker_open").and_then(Value::as_u64), Some(1));

    daemon.shutdown();
}

/// S4: every recovery, manifest, and health counter is visible over the
/// wire — and reflects the fsck repairs after a hard kill plus manual
/// damage, across a daemon restart.
#[test]
fn stats_and_health_expose_recovery_counters_across_a_hard_restart() {
    let dir = temp_dir("wire");
    let dir_str = dir.to_str().expect("utf-8 path").to_string();
    let graphs = [generators::path(6), generators::cycle(7)];

    let mut daemon = Daemon::spawn_full(&["--store", &dir_str, "--threads", "1"], &[]);
    for (i, g) in graphs.iter().enumerate() {
        daemon.send(&compile_req(i as u64, g));
        daemon.read_response();
    }
    daemon.send("{\"op\":\"stats\",\"id\":20}");
    let stats = daemon.read_response();
    let store = stats.get("store").expect("store block");
    // Open commits generation 1; each save commits another.
    assert!(
        store
            .get("manifest_commits")
            .and_then(Value::as_u64)
            .expect("manifest_commits on the wire")
            >= 3,
        "{stats}"
    );
    let recovery = store.get("recovery").expect("recovery block");
    for key in [
        "stale_manifests_deleted",
        "entries_expected",
        "orphans_reindexed",
        "orphans_discarded",
        "missing_dropped",
        "torn_quarantined",
        "tmp_swept",
        "recovered_bytes",
    ] {
        assert!(
            recovery.get(key).and_then(Value::as_u64).is_some(),
            "recovery counter '{key}' missing from the wire: {recovery}"
        );
    }
    assert_eq!(recovery.get("clean").and_then(Value::as_bool), Some(true));
    // The very first open had no manifest to find.
    assert_eq!(
        recovery.get("manifest_found").and_then(Value::as_bool),
        Some(false)
    );
    daemon.send("{\"op\":\"health\",\"id\":21}");
    let health = daemon.read_response();
    assert_eq!(health.get("state").and_then(Value::as_str), Some("ready"));
    assert_eq!(
        health.get("supervised").and_then(Value::as_bool),
        Some(false)
    );
    assert_eq!(health.get("restarts").and_then(Value::as_u64), Some(0));
    assert!(health.get("recovery").is_some());

    // Hard kill (no shutdown handshake), then damage the store: one
    // artifact vanishes behind the manifest's back.
    daemon.child.kill().expect("kill daemon");
    let _ = daemon.child.wait();
    let victim = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().ends_with(".art.json"))
        .expect("an artifact to delete");
    std::fs::remove_file(victim.path()).expect("delete artifact");

    // The restarted daemon's fsck repairs the damage and says so.
    let mut daemon = Daemon::spawn_full(&["--store", &dir_str, "--threads", "1"], &[]);
    daemon.send("{\"op\":\"health\",\"id\":22}");
    let health = daemon.read_response();
    assert_eq!(
        health.get("state").and_then(Value::as_str),
        Some("degraded"),
        "a repaired store must report degraded: {health}"
    );
    let recovery = health.get("recovery").expect("recovery block");
    assert_eq!(
        recovery.get("manifest_found").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(recovery.get("clean").and_then(Value::as_bool), Some(false));
    assert_eq!(
        recovery.get("missing_dropped").and_then(Value::as_u64),
        Some(1),
        "{recovery}"
    );
    // The dropped artifact recompiles; service is unaffected.
    daemon.send(&compile_req(30, &graphs[0]));
    daemon.send(&compile_req(31, &graphs[1]));
    for _ in 0..2 {
        let r = daemon.read_response();
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r}");
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
