//! The wire protocol: line-delimited JSON over stdin/stdout.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests carry a client-chosen `id` that the
//! response echoes verbatim, so clients can correlate out-of-order
//! responses (the daemon serves requests on a worker pool). The grammar:
//!
//! ```text
//! request  := compile | status | stats | health | evict | shutdown
//! compile  := {"op":"compile", "id":<json>, "graph":GRAPH, "qasm":bool?}
//! status   := {"op":"status", "id":<json>}
//! stats    := {"op":"stats", "id":<json>}
//! health   := {"op":"health", "id":<json>}
//! evict    := {"op":"evict", "id":<json>, "graph":GRAPH, "layer":"all"|"memory"?}
//! shutdown := {"op":"shutdown", "id":<json>}
//! GRAPH    := {"n":uint, "edges":[[uint,uint],...]}
//! ```
//!
//! `health` reports the crash-recovery view: a `state` of `ready` or
//! `degraded` (quarantined artifacts or a dirty `fsck` pass), the store's
//! [`RecoveryReport`](epgs::RecoveryReport) counters, and — when the daemon
//! runs under `--supervise` — the supervisor annotates the response with its
//! own restart and circuit-breaker counters (state `recovering` while a
//! crashed worker is being respawned).
//!
//! A successful response always carries `"ok":true` and repeats the `op`;
//! failures carry `"ok":false`, an `"error"` string, and a machine-readable
//! `"error_kind"` (`bad_request` for unparsable requests — answered with
//! `"id":null` when even the id is lost — plus the engine's
//! `compile_failed` / `deadline_exceeded` / `overloaded` / `panic`).
//! Compile responses report the cache `outcome` (`memory_hit` / `disk_hit`
//! / `compiled` / `coalesced`), the request wall time, whether the answer
//! came from a `degraded` partition search, the compiled metrics, and —
//! when the request set `"qasm":true` — the full OpenQASM 3 text of the
//! generation circuit.

use epgs::Compiled;
use epgs_circuit::qasm;
use epgs_corpus::json::{Value, Writer};
use epgs_graph::Graph;

use crate::engine::{ServeEngine, ServeReply, ServeStats};

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile a target graph (optionally returning its QASM).
    Compile {
        /// Echo id.
        id: Value,
        /// The target graph state.
        graph: Graph,
        /// Whether to include the circuit's OpenQASM 3 text.
        want_qasm: bool,
    },
    /// Liveness probe: request counters and in-flight depth.
    Status {
        /// Echo id.
        id: Value,
    },
    /// Full counter dump: engine, memory cache, and disk store.
    Stats {
        /// Echo id.
        id: Value,
    },
    /// Crash-recovery view: readiness state plus fsck/restart counters.
    Health {
        /// Echo id.
        id: Value,
    },
    /// Drop one graph's artifacts from the caches.
    Evict {
        /// Echo id.
        id: Value,
        /// The graph whose artifacts to drop.
        graph: Graph,
        /// Drop only the in-memory layer, leaving the disk store intact
        /// (wire field `"layer":"memory"`; the default `"all"` drops both).
        memory_only: bool,
    },
    /// Acknowledge and stop the daemon.
    Shutdown {
        /// Echo id.
        id: Value,
    },
}

impl Request {
    /// The request's echo id.
    pub fn id(&self) -> &Value {
        match self {
            Request::Compile { id, .. }
            | Request::Status { id }
            | Request::Stats { id }
            | Request::Health { id }
            | Request::Evict { id, .. }
            | Request::Shutdown { id } => id,
        }
    }
}

fn parse_graph(v: &Value) -> Result<Graph, String> {
    let n = v
        .get("n")
        .and_then(Value::as_usize)
        .ok_or("graph needs an unsigned 'n'")?;
    let edges_val = v
        .get("edges")
        .and_then(Value::as_arr)
        .ok_or("graph needs an 'edges' array")?;
    let mut edges = Vec::with_capacity(edges_val.len());
    for e in edges_val {
        let pair = e.as_arr().filter(|p| p.len() == 2);
        let (a, b) = match pair {
            Some(p) => match (p[0].as_usize(), p[1].as_usize()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err("edge endpoints must be unsigned integers".to_string()),
            },
            None => return Err("each edge must be a two-element array".to_string()),
        };
        edges.push((a, b));
    }
    Graph::from_edges(n, edges).map_err(|e| format!("invalid graph: {e}"))
}

/// Parses one request line. Errors carry the request's `id` when the line
/// was at least well-formed JSON (`Value::Null` otherwise), so the error
/// response still correlates.
pub fn parse_request(line: &str) -> Result<Request, (Value, String)> {
    let doc = Value::parse(line).map_err(|e| (Value::Null, format!("malformed request: {e}")))?;
    let id = doc.get("id").cloned().unwrap_or(Value::Null);
    let fail = |msg: String| (id.clone(), msg);
    let op = doc
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("request needs a string 'op'".to_string()))?;
    match op {
        "compile" => {
            let graph_val = doc
                .get("graph")
                .ok_or_else(|| fail("compile needs a 'graph'".to_string()))?;
            let graph = parse_graph(graph_val).map_err(&fail)?;
            let want_qasm = doc.get("qasm").and_then(Value::as_bool).unwrap_or(false);
            Ok(Request::Compile {
                id,
                graph,
                want_qasm,
            })
        }
        "status" => Ok(Request::Status { id }),
        "stats" => Ok(Request::Stats { id }),
        "health" => Ok(Request::Health { id }),
        "evict" => {
            let graph_val = doc
                .get("graph")
                .ok_or_else(|| fail("evict needs a 'graph'".to_string()))?;
            let graph = parse_graph(graph_val).map_err(&fail)?;
            let memory_only = match doc.get("layer").and_then(Value::as_str) {
                None | Some("all") => false,
                Some("memory") => true,
                Some(other) => {
                    return Err(fail(format!(
                        "unknown evict layer '{other}' (expected 'all' or 'memory')"
                    )))
                }
            };
            Ok(Request::Evict {
                id,
                graph,
                memory_only,
            })
        }
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(fail(format!("unknown op '{other}'"))),
    }
}

fn begin_response(id: &Value, ok: bool) -> Writer {
    let mut w = Writer::with_capacity(256);
    w.begin_obj();
    w.key("id");
    w.value(id);
    w.field_bool("ok", ok);
    w
}

/// Renders a protocol-level error response. `kind` is the machine-readable
/// `error_kind` (`bad_request` for parse failures and bad graphs, or a
/// [`ServeErrorKind`](crate::ServeErrorKind) wire name for failed
/// compiles).
pub fn render_error(id: &Value, error: &str, kind: &str) -> String {
    let mut w = begin_response(id, false);
    w.field_str("error", error);
    w.field_str("error_kind", kind);
    w.end_obj();
    w.finish()
}

/// Renders the load-shedding response: the daemon's bounded queue is full
/// and the request was never dispatched. Clients should back off and
/// retry.
pub fn render_overloaded(id: &Value) -> String {
    render_error(
        id,
        "server overloaded: request shed at queue limit",
        "overloaded",
    )
}

fn write_metrics(w: &mut Writer, graph: &Graph, c: &Compiled) {
    w.key("metrics");
    w.begin_obj();
    w.field_uint("vertices", graph.vertex_count() as u64);
    w.field_uint("edges", graph.edge_count() as u64);
    w.field_uint("ne_min", c.ne_min as u64);
    w.field_uint("ne_limit", c.ne_limit as u64);
    w.field_uint("peak_emitters", c.metrics.peak_emitters as u64);
    w.field_uint("ee_cnots", c.metrics.ee_two_qubit_count as u64);
    w.field_fixed("duration", c.metrics.duration, 3);
    w.field_fixed("t_loss", c.metrics.t_loss, 3);
    w.field_fixed("mean_photon_loss", c.metrics.loss.mean_photon_loss, 6);
    w.field_fixed("any_photon_loss", c.metrics.loss.any_photon_loss, 6);
    w.field_str("strategy", &format!("{:?}", c.strategy));
    w.end_obj();
}

/// Renders the response to a compile request (`graph` is the request's
/// target, echoed into the metrics for self-describing responses).
pub fn render_compile(id: &Value, graph: &Graph, reply: &ServeReply, want_qasm: bool) -> String {
    match &reply.result {
        Ok(compiled) => {
            let mut w = begin_response(id, true);
            w.field_str("op", "compile");
            w.field_str("outcome", reply.outcome.as_str());
            w.field_raw("wall_micros", &reply.wall_micros.to_string());
            w.field_bool("degraded", reply.degraded);
            write_metrics(&mut w, graph, compiled);
            if want_qasm {
                w.field_str("qasm", &qasm::to_qasm(&compiled.circuit));
            }
            w.end_obj();
            w.finish()
        }
        Err(e) => render_error(id, &e.message, e.kind.as_str()),
    }
}

fn write_serve_stats(w: &mut Writer, s: &ServeStats) {
    w.field_uint("requests", s.requests as u64);
    w.field_uint("memory_hits", s.memory_hits as u64);
    w.field_uint("disk_hits", s.disk_hits as u64);
    w.field_uint("compiled", s.compiled as u64);
    w.field_uint("coalesced", s.coalesced as u64);
    w.field_uint("failures", s.failures as u64);
    w.field_uint("shed", s.shed as u64);
    w.field_uint("panics", s.panics as u64);
    w.field_uint("deadline_exceeded", s.deadline_exceeded as u64);
    w.field_uint("degraded", s.degraded as u64);
}

/// Renders the response to a status request.
pub fn render_status(id: &Value, engine: &ServeEngine) -> String {
    let mut w = begin_response(id, true);
    w.field_str("op", "status");
    w.field_uint("inflight", engine.inflight_len() as u64);
    write_serve_stats(&mut w, &engine.stats());
    w.end_obj();
    w.finish()
}

/// Renders the response to a stats request: engine counters plus each
/// cache layer's own counters.
pub fn render_stats(id: &Value, engine: &ServeEngine) -> String {
    let mut w = begin_response(id, true);
    w.field_str("op", "stats");
    write_serve_stats(&mut w, &engine.stats());
    let cache = engine.batch().cache_stats();
    w.key("cache");
    w.begin_obj();
    w.field_uint("hits", cache.hits as u64);
    w.field_uint("misses", cache.misses as u64);
    w.field_uint("bucket_collisions", cache.bucket_collisions as u64);
    w.field_uint("evictions", cache.evictions as u64);
    w.field_uint("corrupt_discarded", cache.corrupt_discarded as u64);
    w.end_obj();
    if let Some(store) = engine.batch().store() {
        let s = store.stats();
        w.key("store");
        w.begin_obj();
        w.field_uint("artifacts", store.len() as u64);
        w.field_uint("total_bytes", store.total_bytes());
        w.field_uint("disk_hits", s.disk_hits as u64);
        w.field_uint("disk_misses", s.disk_misses as u64);
        w.field_uint("corrupt_discarded", s.corrupt_discarded as u64);
        w.field_uint("version_rejected", s.version_rejected as u64);
        w.field_uint("evictions", s.evictions as u64);
        w.field_uint("writes", s.writes as u64);
        w.field_uint("write_errors", s.write_errors as u64);
        w.field_uint("quarantined", s.quarantined as u64);
        w.field_uint("tmp_swept", s.tmp_swept as u64);
        w.field_uint("read_retries", s.read_retries as u64);
        w.field_uint("write_retries", s.write_retries as u64);
        w.field_uint("manifest_commits", s.manifest_commits as u64);
        write_recovery(&mut w, &store.recovery());
        w.end_obj();
    }
    w.end_obj();
    w.finish()
}

fn write_recovery(w: &mut Writer, r: &epgs::RecoveryReport) {
    w.key("recovery");
    w.begin_obj();
    w.field_bool("clean", r.is_clean());
    w.field_bool("manifest_found", r.manifest_found);
    w.field_hex("manifest_generation", r.manifest_generation);
    w.field_uint("stale_manifests_deleted", r.stale_manifests_deleted as u64);
    w.field_uint("entries_expected", r.entries_expected as u64);
    w.field_uint("orphans_reindexed", r.orphans_reindexed as u64);
    w.field_uint("orphans_discarded", r.orphans_discarded as u64);
    w.field_uint("missing_dropped", r.missing_dropped as u64);
    w.field_uint("torn_quarantined", r.torn_quarantined as u64);
    w.field_uint("tmp_swept", r.tmp_swept as u64);
    w.field_uint("recovered_bytes", r.recovered_bytes);
    w.end_obj();
}

/// Renders the response to a health request: the worker's readiness state
/// (`ready`, or `degraded` when artifacts sit in quarantine or the last
/// `fsck` pass had to repair something) plus the store's recovery
/// counters. `restarts` is the supervisor-provided respawn count the
/// worker was launched with (`None` when unsupervised); the supervising
/// process additionally annotates the response in flight with breaker and
/// backoff counters, and answers `recovering` itself while no worker is
/// alive.
pub fn render_health(id: &Value, engine: &ServeEngine, restarts: Option<u64>) -> String {
    let mut w = begin_response(id, true);
    w.field_str("op", "health");
    let store = engine.batch().store();
    let degraded = store
        .as_ref()
        .is_some_and(|s| !s.recovery().is_clean() || s.stats().quarantined > 0);
    w.field_str("state", if degraded { "degraded" } else { "ready" });
    w.field_bool("supervised", restarts.is_some());
    w.field_uint("restarts", restarts.unwrap_or(0));
    if let Some(store) = store {
        write_recovery(&mut w, &store.recovery());
    }
    w.end_obj();
    w.finish()
}

/// Renders the response to an evict request.
pub fn render_evict(id: &Value, dropped: usize) -> String {
    let mut w = begin_response(id, true);
    w.field_str("op", "evict");
    w.field_uint("dropped", dropped as u64);
    w.end_obj();
    w.finish()
}

/// Renders the shutdown acknowledgement.
pub fn render_shutdown(id: &Value) -> String {
    let mut w = begin_response(id, true);
    w.field_str("op", "shutdown");
    w.end_obj();
    w.finish()
}
