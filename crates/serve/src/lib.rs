//! # epgs-serve — the persistent compile service
//!
//! The batch engine (`epgs::BatchCompiler`) amortizes compilation within
//! one process; this crate amortizes it across processes and over time.
//! It has two layers:
//!
//! * [`ServeEngine`] — wraps a `BatchCompiler` (in-memory cache → on-disk
//!   [`epgs::ArtifactStore`] → compile) and **coalesces** concurrent
//!   requests for the same exact target into a single compilation, so a
//!   thundering herd of identical requests costs one pipeline run;
//! * [`protocol`] + the `epgs-serve` binary — a long-running daemon
//!   speaking line-delimited JSON over stdin/stdout: `compile` / `status`
//!   / `stats` / `evict` / `shutdown`, each response reporting the cache
//!   outcome (`memory_hit` / `disk_hit` / `compiled` / `coalesced`) and
//!   wall time alongside the compiled circuit's metrics.
//!
//! Persistence comes from the content-addressed artifact store in the
//! `epgs` crate: every fresh compile is written through to disk, so a
//! daemon restart against the same `--store` directory serves its corpus
//! from disk instead of recompiling.
//!
//! # Examples
//!
//! Engine-level use (the daemon is the same engine behind a protocol):
//!
//! ```
//! use epgs_serve::{default_config, ServeEngine, ServeOutcome};
//! use epgs_graph::generators;
//!
//! let engine = ServeEngine::new(epgs::FrameworkConfig::builder().g_max(4).build());
//! let g = generators::cycle(6);
//! assert_eq!(engine.compile(&g).outcome, ServeOutcome::Compiled);
//! assert_eq!(engine.compile(&g).outcome, ServeOutcome::MemoryHit);
//! assert_eq!(engine.stats().requests, 2);
//! # let _ = default_config();
//! ```

pub mod engine;
pub mod protocol;
pub mod supervise;

pub use engine::{ServeEngine, ServeError, ServeErrorKind, ServeOutcome, ServeReply, ServeStats};
pub use protocol::Request;
pub use supervise::SupervisorOptions;

/// The daemon's framework configuration — the corpus-bench settings
/// (mirrors `epgs_bench::corpus_framework`, which this crate cannot depend
/// on without a cycle: the bench crate's `serve_bench` drives this one).
pub fn default_config() -> epgs::FrameworkConfig {
    epgs::FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 6,
            lc_budget: 4,
            effort: 5,
            seed: 0xdac2025,
            ..Default::default()
        },
        orderings_per_subgraph: 6,
        flexible_slack: 1,
        verify: true,
        ..epgs::FrameworkConfig::default()
    }
}
