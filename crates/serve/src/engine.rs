//! The compile engine behind the daemon: layered caching plus request
//! coalescing.
//!
//! [`ServeEngine`] wraps a [`BatchCompiler`] (memory cache → optional disk
//! store → compile) and adds the one property a long-running service needs
//! that a batch run does not: when several clients submit the *same* target
//! concurrently, exactly one compilation runs and every other request
//! blocks until it finishes, then shares the result. Requests are
//! coalesced per exact labeled graph — the same identity the cache layers
//! hit on — so coalescing can never conflate two targets the compiler
//! would distinguish.
//!
//! # Fault tolerance
//!
//! Leader compiles run under `catch_unwind`: a panicking compile publishes
//! a [`ServeErrorKind::Panic`] error to its coalesced herd instead of
//! deadlocking the condvar slot, and every lock in the engine recovers
//! from poisoning. Per-request deadlines are cooperative — checked between
//! pipeline stages by the batch layer, and by waiters via a timed condvar
//! wait — and produce structured [`ServeErrorKind::DeadlineExceeded`]
//! errors. A partition search that degrades (deadline truncation or
//! multilevel → flat fallback) still answers, with
//! [`ServeReply::degraded`] set. See `ARCHITECTURE.md`, "Failure model".

use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use epgs::faults::{self, lock_recover, panic_message, FaultKind, FaultPlan, RequestCtx};
use epgs::store::exact_graph_hash;
use epgs::{BatchCompiler, CacheKey, CacheOutcome, Compiled, FrameworkConfig};
use epgs_graph::canon::canonical_hash;
use epgs_graph::Graph;

/// How a serve request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Served from the in-memory artifact cache.
    MemoryHit,
    /// Served from the on-disk artifact store.
    DiskHit,
    /// The full pipeline ran for this request.
    Compiled,
    /// Attached to an identical in-flight request and shared its result.
    Coalesced,
}

impl ServeOutcome {
    /// Stable wire name used in protocol responses.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeOutcome::MemoryHit => "memory_hit",
            ServeOutcome::DiskHit => "disk_hit",
            ServeOutcome::Compiled => "compiled",
            ServeOutcome::Coalesced => "coalesced",
        }
    }
}

/// Category of a failed serve request — the protocol's `error_kind` field,
/// so clients can distinguish retry-later conditions (deadline, overload)
/// from hard failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// The compilation itself failed.
    Compile,
    /// The request's deadline passed before a result was ready.
    DeadlineExceeded,
    /// The daemon shed the request at its queue limit; retry later.
    Overloaded,
    /// The compile panicked; the panic was contained and the daemon lives.
    Panic,
}

impl ServeErrorKind {
    /// Stable wire name used in protocol responses.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeErrorKind::Compile => "compile_failed",
            ServeErrorKind::DeadlineExceeded => "deadline_exceeded",
            ServeErrorKind::Overloaded => "overloaded",
            ServeErrorKind::Panic => "panic",
        }
    }
}

/// A failed serve request: a machine-readable kind plus the human-readable
/// rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Failure category (the protocol's `error_kind`).
    pub kind: ServeErrorKind,
    /// Human-readable description (the protocol's `error`).
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServeError {}

/// Result of one [`ServeEngine::compile`] call.
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// Which layer (or peer request) satisfied this request.
    pub outcome: ServeOutcome,
    /// Wall time of this request (µs), including any time spent blocked on
    /// a coalesced peer.
    pub wall_micros: u128,
    /// The compiled artifact, shared across coalesced requests, or the
    /// structured serve error.
    pub result: Result<Arc<Compiled>, ServeError>,
    /// The result came from a degraded partition search (deadline
    /// truncation or multilevel → flat fallback): valid, possibly lower
    /// quality, and not persisted.
    pub degraded: bool,
}

/// Cumulative request counters of one [`ServeEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Compile requests received (shed requests included).
    pub requests: usize,
    /// Requests served from the in-memory cache.
    pub memory_hits: usize,
    /// Requests served from the on-disk store.
    pub disk_hits: usize,
    /// Requests that ran the full pipeline.
    pub compiled: usize,
    /// Requests that shared an in-flight peer's result.
    pub coalesced: usize,
    /// Requests that returned an error of any kind.
    pub failures: usize,
    /// Requests shed at the daemon's queue limit — counted within
    /// `requests`, never dispatched to the engine.
    pub shed: usize,
    /// Leader compiles that panicked (contained by `catch_unwind`).
    pub panics: usize,
    /// Requests that failed with `deadline_exceeded` — counted within
    /// `failures`.
    pub deadline_exceeded: usize,
    /// Requests answered from a degraded partition search.
    pub degraded: usize,
}

#[derive(Default)]
struct Counters {
    requests: AtomicUsize,
    memory_hits: AtomicUsize,
    disk_hits: AtomicUsize,
    compiled: AtomicUsize,
    coalesced: AtomicUsize,
    failures: AtomicUsize,
    shed: AtomicUsize,
    panics: AtomicUsize,
    deadline_exceeded: AtomicUsize,
    degraded: AtomicUsize,
}

/// One in-flight compilation: the leader publishes into `ready` and wakes
/// every waiter. The payload carries the shared result plus its degraded
/// flag.
#[derive(Default)]
struct Slot {
    #[allow(clippy::type_complexity)]
    ready: Mutex<Option<(Result<Arc<Compiled>, ServeError>, bool)>>,
    cv: Condvar,
}

/// Identity requests coalesce on: WL content hash × exact labeled graph.
type InflightKey = (u64, u64);

/// The layered, coalescing compile engine. See the [module docs](self).
pub struct ServeEngine {
    batch: BatchCompiler,
    inflight: Mutex<HashMap<InflightKey, Arc<Slot>>>,
    counters: Counters,
    faults: Option<Arc<FaultPlan>>,
    default_deadline: Option<Duration>,
}

impl ServeEngine {
    /// An engine with only the in-memory cache layer.
    pub fn new(config: FrameworkConfig) -> Self {
        Self::from_batch(BatchCompiler::new(config))
    }

    /// An engine whose artifacts persist in the store at `dir` (created if
    /// absent): lookups layer memory → disk → compile.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from opening the store directory.
    pub fn with_store(config: FrameworkConfig, dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::from_batch(BatchCompiler::with_store(config, dir)?))
    }

    /// An engine over an already-configured [`BatchCompiler`] (e.g. one
    /// with a custom cache capacity or byte-budgeted store).
    pub fn from_batch(batch: BatchCompiler) -> Self {
        ServeEngine {
            batch,
            inflight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            faults: None,
            default_deadline: None,
        }
    }

    /// Arms a fault-injection plan across the whole stack: the engine's
    /// `serve.compile` point plus the batch compiler's and store's points.
    /// Chaos testing only; engines without a plan pay nothing.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.batch.set_fault_plan(Arc::clone(&plan));
        self.faults = Some(plan);
    }

    /// Sets the deadline applied to every [`ServeEngine::compile`] call
    /// (`None` = unbounded, the default). Per-call deadlines via
    /// [`ServeEngine::compile_with_deadline`] override it.
    pub fn set_default_deadline(&mut self, deadline: Option<Duration>) {
        self.default_deadline = deadline;
    }

    /// The underlying batch compiler (cache stats, store handle, stage
    /// counters).
    pub fn batch(&self) -> &BatchCompiler {
        &self.batch
    }

    /// Snapshot of the request counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            memory_hits: self.counters.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            compiled: self.counters.compiled.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            failures: self.counters.failures.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
            deadline_exceeded: self.counters.deadline_exceeded.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
        }
    }

    /// Records a request shed by the daemon's bounded queue (the request
    /// never reaches [`ServeEngine::compile`], but must still appear in
    /// the request and shed counters).
    pub fn note_shed(&self) {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
        self.counters.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of compilations currently in flight.
    pub fn inflight_len(&self) -> usize {
        lock_recover(&self.inflight).len()
    }

    /// Drops `graph`'s artifacts from every layer (memory cache and, when
    /// attached, the disk store); returns how many entries were removed.
    pub fn evict(&self, graph: &Graph) -> usize {
        let mut dropped = self.batch.evict(graph);
        if let Some(store) = self.batch.store() {
            let key = CacheKey {
                canonical: canonical_hash(graph),
                config: self.batch.config_fingerprint(),
            };
            dropped += store.evict(key);
        }
        dropped
    }

    /// Drops `graph`'s artifacts from the in-memory cache only, leaving the
    /// disk store intact; returns how many entries were removed. The next
    /// request for the graph exercises the disk-read path end to end.
    pub fn evict_memory(&self, graph: &Graph) -> usize {
        self.batch.evict(graph)
    }

    /// Tallies a finished request's error/degradation counters (shared by
    /// the leader and waiter paths; outcome counters are tallied
    /// separately because shed requests have none).
    fn note_result(&self, result: &Result<Arc<Compiled>, ServeError>, degraded: bool) {
        if degraded {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        }
        if let Err(e) = result {
            self.counters.failures.fetch_add(1, Ordering::Relaxed);
            if e.kind == ServeErrorKind::DeadlineExceeded {
                self.counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Compiles `graph` under the engine's default deadline, coalescing
    /// with any identical in-flight request.
    ///
    /// The first request for a given exact graph becomes the *leader*: it
    /// runs the layered lookup/compile and publishes the result. Requests
    /// arriving while the leader runs block and return the shared result
    /// with [`ServeOutcome::Coalesced`]. Requests arriving after the
    /// leader finishes hit the memory cache.
    pub fn compile(&self, graph: &Graph) -> ServeReply {
        self.compile_with_deadline(graph, self.default_deadline)
    }

    /// [`ServeEngine::compile`] with an explicit per-request deadline
    /// (`None` = unbounded). The deadline is cooperative: it is checked
    /// between pipeline stages (structured
    /// [`ServeErrorKind::DeadlineExceeded`] on expiry), bounds the
    /// partition search (which truncates to a degraded-but-valid answer),
    /// and bounds the time a coalesced waiter blocks on its leader.
    pub fn compile_with_deadline(&self, graph: &Graph, deadline: Option<Duration>) -> ServeReply {
        let start = Instant::now();
        let deadline_at = deadline.map(|d| start + d);
        let canonical = canonical_hash(graph);
        let key: InflightKey = (canonical, exact_graph_hash(graph));

        let (slot, leader) = {
            let mut map = lock_recover(&self.inflight);
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot::default());
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        // Counted only after the leader/waiter decision: tests (and
        // clients polling `status`) use a nonzero request count as "the
        // slot is registered".
        self.counters.requests.fetch_add(1, Ordering::Relaxed);

        if !leader {
            return self.wait_for_leader(&slot, deadline_at, start);
        }

        // The leader compile runs under catch_unwind: whatever happens —
        // including an injected or genuine panic — something terminal is
        // published to the slot and the key is unregistered, so a herd of
        // waiters can never deadlock on a dead leader.
        let ctx = RequestCtx {
            deadline: deadline_at,
        };
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            match self.faults.as_ref().and_then(|f| f.at(faults::POINT_SERVE)) {
                Some(FaultKind::Panic) => panic!("injected fault: serve.compile"),
                Some(FaultKind::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                Some(FaultKind::Fail | FaultKind::IoError) => return None,
                // Crash aborts inside the probe; BitFlip has no bytes here.
                Some(FaultKind::BitFlip | FaultKind::Crash) | None => {}
            }
            Some(self.batch.compile_instance_ctx(
                &format!("{canonical:016x}"),
                "serve",
                graph,
                &ctx,
            ))
        }));
        let (result, degraded, outcome) = match attempt {
            Ok(Some((report, compiled))) => {
                let outcome = match report.cache {
                    CacheOutcome::Hit => ServeOutcome::MemoryHit,
                    CacheOutcome::DiskHit => ServeOutcome::DiskHit,
                    CacheOutcome::Miss => ServeOutcome::Compiled,
                };
                let result = match compiled {
                    Some(c) => Ok(Arc::new(c)),
                    None => Err(ServeError {
                        kind: if report.timed_out {
                            ServeErrorKind::DeadlineExceeded
                        } else {
                            ServeErrorKind::Compile
                        },
                        message: report
                            .error
                            .clone()
                            .unwrap_or_else(|| "compilation failed".to_string()),
                    }),
                };
                (result, report.degraded, outcome)
            }
            Ok(None) => (
                Err(ServeError {
                    kind: ServeErrorKind::Compile,
                    message: "injected fault: serve.compile".to_string(),
                }),
                false,
                ServeOutcome::Compiled,
            ),
            Err(payload) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                (
                    Err(ServeError {
                        kind: ServeErrorKind::Panic,
                        message: format!("compile panicked: {}", panic_message(&*payload)),
                    }),
                    false,
                    ServeOutcome::Compiled,
                )
            }
        };
        // Publish before unregistering: every waiter that found this slot
        // observes the result; requests arriving after removal hit the
        // now-populated memory cache (or re-lead and re-compile after a
        // failure) instead.
        *lock_recover(&slot.ready) = Some((result.clone(), degraded));
        slot.cv.notify_all();
        lock_recover(&self.inflight).remove(&key);

        let counter = match outcome {
            ServeOutcome::MemoryHit => &self.counters.memory_hits,
            ServeOutcome::DiskHit => &self.counters.disk_hits,
            _ => &self.counters.compiled,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.note_result(&result, degraded);
        ServeReply {
            outcome,
            wall_micros: start.elapsed().as_micros(),
            result,
            degraded,
        }
    }

    /// The coalesced-waiter path: blocks on the leader's slot until the
    /// result is published or the waiter's own deadline passes (the leader
    /// keeps running — later waiters and the cache still get its result).
    fn wait_for_leader(
        &self,
        slot: &Slot,
        deadline_at: Option<Instant>,
        start: Instant,
    ) -> ServeReply {
        let mut guard = lock_recover(&slot.ready);
        let (result, degraded) = loop {
            if let Some(published) = guard.clone() {
                break published;
            }
            match deadline_at {
                None => {
                    guard = slot.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
                }
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        break (
                            Err(ServeError {
                                kind: ServeErrorKind::DeadlineExceeded,
                                message: "deadline exceeded while waiting on a coalesced compile"
                                    .to_string(),
                            }),
                            false,
                        );
                    }
                    guard = slot
                        .cv
                        .wait_timeout(guard, at - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        };
        drop(guard);
        self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
        self.note_result(&result, degraded);
        ServeReply {
            outcome: ServeOutcome::Coalesced,
            wall_micros: start.elapsed().as_micros(),
            result,
            degraded,
        }
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("stats", &self.stats())
            .field("inflight", &self.inflight_len())
            .finish()
    }
}
