//! The compile engine behind the daemon: layered caching plus request
//! coalescing.
//!
//! [`ServeEngine`] wraps a [`BatchCompiler`] (memory cache → optional disk
//! store → compile) and adds the one property a long-running service needs
//! that a batch run does not: when several clients submit the *same* target
//! concurrently, exactly one compilation runs and every other request
//! blocks until it finishes, then shares the result. Requests are
//! coalesced per exact labeled graph — the same identity the cache layers
//! hit on — so coalescing can never conflate two targets the compiler
//! would distinguish.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use epgs::store::exact_graph_hash;
use epgs::{BatchCompiler, CacheKey, CacheOutcome, Compiled, FrameworkConfig};
use epgs_graph::canon::canonical_hash;
use epgs_graph::Graph;

/// How a serve request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Served from the in-memory artifact cache.
    MemoryHit,
    /// Served from the on-disk artifact store.
    DiskHit,
    /// The full pipeline ran for this request.
    Compiled,
    /// Attached to an identical in-flight request and shared its result.
    Coalesced,
}

impl ServeOutcome {
    /// Stable wire name used in protocol responses.
    pub fn as_str(self) -> &'static str {
        match self {
            ServeOutcome::MemoryHit => "memory_hit",
            ServeOutcome::DiskHit => "disk_hit",
            ServeOutcome::Compiled => "compiled",
            ServeOutcome::Coalesced => "coalesced",
        }
    }
}

/// Result of one [`ServeEngine::compile`] call.
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// Which layer (or peer request) satisfied this request.
    pub outcome: ServeOutcome,
    /// Wall time of this request (µs), including any time spent blocked on
    /// a coalesced peer.
    pub wall_micros: u128,
    /// The compiled artifact, shared across coalesced requests, or the
    /// compilation error rendering.
    pub result: Result<Arc<Compiled>, String>,
}

/// Cumulative request counters of one [`ServeEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Compile requests received.
    pub requests: usize,
    /// Requests served from the in-memory cache.
    pub memory_hits: usize,
    /// Requests served from the on-disk store.
    pub disk_hits: usize,
    /// Requests that ran the full pipeline.
    pub compiled: usize,
    /// Requests that shared an in-flight peer's result.
    pub coalesced: usize,
    /// Requests whose compilation failed.
    pub failures: usize,
}

#[derive(Default)]
struct Counters {
    requests: AtomicUsize,
    memory_hits: AtomicUsize,
    disk_hits: AtomicUsize,
    compiled: AtomicUsize,
    coalesced: AtomicUsize,
    failures: AtomicUsize,
}

/// One in-flight compilation: the leader publishes into `ready` and wakes
/// every waiter.
#[derive(Default)]
struct Slot {
    ready: Mutex<Option<Result<Arc<Compiled>, String>>>,
    cv: Condvar,
}

/// Identity requests coalesce on: WL content hash × exact labeled graph.
type InflightKey = (u64, u64);

/// The layered, coalescing compile engine. See the [module docs](self).
pub struct ServeEngine {
    batch: BatchCompiler,
    inflight: Mutex<HashMap<InflightKey, Arc<Slot>>>,
    counters: Counters,
}

impl ServeEngine {
    /// An engine with only the in-memory cache layer.
    pub fn new(config: FrameworkConfig) -> Self {
        ServeEngine {
            batch: BatchCompiler::new(config),
            inflight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// An engine whose artifacts persist in the store at `dir` (created if
    /// absent): lookups layer memory → disk → compile.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from opening the store directory.
    pub fn with_store(config: FrameworkConfig, dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(ServeEngine {
            batch: BatchCompiler::with_store(config, dir)?,
            inflight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        })
    }

    /// An engine over an already-configured [`BatchCompiler`] (e.g. one
    /// with a custom cache capacity or byte-budgeted store).
    pub fn from_batch(batch: BatchCompiler) -> Self {
        ServeEngine {
            batch,
            inflight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// The underlying batch compiler (cache stats, store handle, stage
    /// counters).
    pub fn batch(&self) -> &BatchCompiler {
        &self.batch
    }

    /// Snapshot of the request counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            memory_hits: self.counters.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            compiled: self.counters.compiled.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            failures: self.counters.failures.load(Ordering::Relaxed),
        }
    }

    /// Number of compilations currently in flight.
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().expect("inflight lock").len()
    }

    /// Drops `graph`'s artifacts from every layer (memory cache and, when
    /// attached, the disk store); returns how many entries were removed.
    pub fn evict(&self, graph: &Graph) -> usize {
        let mut dropped = self.batch.evict(graph);
        if let Some(store) = self.batch.store() {
            let key = CacheKey {
                canonical: canonical_hash(graph),
                config: self.batch.config_fingerprint(),
            };
            dropped += store.evict(key);
        }
        dropped
    }

    /// Compiles `graph`, coalescing with any identical in-flight request.
    ///
    /// The first request for a given exact graph becomes the *leader*: it
    /// runs the layered lookup/compile and publishes the result. Requests
    /// arriving while the leader runs block and return the shared result
    /// with [`ServeOutcome::Coalesced`]. Requests arriving after the
    /// leader finishes hit the memory cache.
    pub fn compile(&self, graph: &Graph) -> ServeReply {
        let start = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let canonical = canonical_hash(graph);
        let key: InflightKey = (canonical, exact_graph_hash(graph));

        let (slot, leader) = {
            let mut map = self.inflight.lock().expect("inflight lock");
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot::default());
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };

        if !leader {
            let mut guard = slot.ready.lock().expect("slot lock");
            while guard.is_none() {
                guard = slot.cv.wait(guard).expect("slot lock");
            }
            let result = guard.clone().expect("published result");
            self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            if result.is_err() {
                self.counters.failures.fetch_add(1, Ordering::Relaxed);
            }
            return ServeReply {
                outcome: ServeOutcome::Coalesced,
                wall_micros: start.elapsed().as_micros(),
                result,
            };
        }

        let (report, compiled) =
            self.batch
                .compile_instance(&format!("{canonical:016x}"), "serve", graph);
        let result: Result<Arc<Compiled>, String> = match compiled {
            Some(c) => Ok(Arc::new(c)),
            None => Err(report
                .error
                .clone()
                .unwrap_or_else(|| "compilation failed".to_string())),
        };
        // Publish before unregistering: every waiter that found this slot
        // observes the result; requests arriving after removal hit the
        // now-populated memory cache instead.
        *slot.ready.lock().expect("slot lock") = Some(result.clone());
        slot.cv.notify_all();
        self.inflight.lock().expect("inflight lock").remove(&key);

        let outcome = match report.cache {
            CacheOutcome::Hit => ServeOutcome::MemoryHit,
            CacheOutcome::DiskHit => ServeOutcome::DiskHit,
            CacheOutcome::Miss => ServeOutcome::Compiled,
        };
        let counter = match outcome {
            ServeOutcome::MemoryHit => &self.counters.memory_hits,
            ServeOutcome::DiskHit => &self.counters.disk_hits,
            _ => &self.counters.compiled,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if result.is_err() {
            self.counters.failures.fetch_add(1, Ordering::Relaxed);
        }
        ServeReply {
            outcome,
            wall_micros: start.elapsed().as_micros(),
            result,
        }
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("stats", &self.stats())
            .field("inflight", &self.inflight_len())
            .finish()
    }
}
