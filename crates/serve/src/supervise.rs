//! Daemon supervision: `epgs-serve --supervise` warm-restart loop.
//!
//! The supervisor owns the real stdin/stdout and proxies the wire protocol
//! to a spawned worker process (the same binary without `--supervise`).
//! Its job is the crash-and-recover phase transition:
//!
//! * **Warm restart** — when the worker dies (an injected `crash` fault, a
//!   real abort, a kill), the supervisor respawns it with capped
//!   exponential backoff and replays every request that never got a
//!   response. The worker's `fsck`-at-open pass recovers the artifact
//!   store, so replayed compiles usually land as disk hits.
//! * **Per-key circuit breaker** — every unanswered compile in flight at a
//!   crash earns its graph key a strike. A key that reaches the strike cap
//!   is never dispatched again: the client gets a structured
//!   `compile_failed` ("circuit breaker open") instead of crash-looping
//!   the worker. Healthy traffic keeps flowing.
//! * **Health annotation** — worker `health` responses pass through with a
//!   `supervisor` object appended (restarts, open breaker keys, backoff).
//!   While no worker is alive the supervisor answers `health` itself with
//!   state `recovering`.
//!
//! The supervisor exits when the worker exits cleanly (a `shutdown`
//! request) or when stdin closes and every pending request is answered.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use epgs::faults::lock_recover;
use epgs::store::exact_graph_hash;
use epgs_corpus::json::Value;
use epgs_graph::canon::canonical_hash;

use crate::protocol::{self, Request};

/// Supervisor tuning knobs (see the binary's usage text).
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// Worker argv: program path followed by its arguments.
    pub worker_cmd: Vec<String>,
    /// First respawn delay; doubles per consecutive crash.
    pub backoff_base: Duration,
    /// Upper bound on the respawn delay.
    pub backoff_cap: Duration,
    /// Crash strikes before a graph key's breaker opens.
    pub breaker_strikes: u32,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            worker_cmd: Vec::new(),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(2000),
            breaker_strikes: 2,
        }
    }
}

/// One request awaiting its response.
struct PendingReq {
    /// Replay order (monotonic submission sequence).
    seq: u64,
    /// The raw request line, replayed verbatim after a crash.
    line: String,
    /// Parsed echo id, for synthesizing breaker errors.
    id: Value,
    /// Compile graph key `(canonical, exact)`; only compiles earn strikes.
    key: Option<(u64, u64)>,
}

/// State shared between the stdin pump and the respawn loop.
struct Shared {
    /// Unanswered requests, keyed by rendered id.
    pending: Mutex<HashMap<String, PendingReq>>,
    /// The live worker's stdin (`None` while crashed/respawning).
    child_in: Mutex<Option<ChildStdin>>,
    /// Crash strikes per graph key.
    strikes: Mutex<HashMap<(u64, u64), u32>>,
    /// Worker respawns so far.
    restarts: AtomicU64,
    /// Current backoff delay in milliseconds (for health reporting).
    backoff_ms: AtomicU64,
    /// Set when real stdin reached EOF.
    eof: AtomicBool,
    /// Set when a shutdown request was seen.
    shutting_down: AtomicBool,
    seq: AtomicU64,
    stdout: Mutex<io::Stdout>,
    breaker_strikes: u32,
}

impl Shared {
    fn write_out(&self, response: &str) {
        let mut out = lock_recover(&self.stdout);
        let _ = writeln!(out, "{response}");
        let _ = out.flush();
    }

    fn breaker_open_keys(&self) -> usize {
        lock_recover(&self.strikes)
            .values()
            .filter(|&&s| s >= self.breaker_strikes)
            .count()
    }

    /// Appends the supervisor's own counters to a worker response object
    /// (only `health` responses are annotated).
    fn annotate_health(&self, line: &str) -> Option<String> {
        let doc = Value::parse(line).ok()?;
        if doc.get("op").and_then(Value::as_str) != Some("health") {
            return None;
        }
        let Value::Obj(mut fields) = doc else {
            return None;
        };
        fields.push((
            "supervisor".to_string(),
            Value::Obj(vec![
                ("state".to_string(), Value::Str("ready".to_string())),
                (
                    "restarts".to_string(),
                    Value::Num(self.restarts.load(Ordering::Relaxed) as f64),
                ),
                (
                    "breaker_open".to_string(),
                    Value::Num(self.breaker_open_keys() as f64),
                ),
                (
                    "backoff_ms".to_string(),
                    Value::Num(self.backoff_ms.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ));
        Some(Value::Obj(fields).to_string())
    }

    /// The supervisor's own health answer, used while no worker is alive.
    fn render_recovering(&self, id: &Value) -> String {
        Value::Obj(vec![
            ("id".to_string(), id.clone()),
            ("ok".to_string(), Value::Bool(true)),
            ("op".to_string(), Value::Str("health".to_string())),
            ("state".to_string(), Value::Str("recovering".to_string())),
            ("supervised".to_string(), Value::Bool(true)),
            (
                "restarts".to_string(),
                Value::Num(self.restarts.load(Ordering::Relaxed) as f64),
            ),
            (
                "supervisor".to_string(),
                Value::Obj(vec![
                    ("state".to_string(), Value::Str("recovering".to_string())),
                    (
                        "restarts".to_string(),
                        Value::Num(self.restarts.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "breaker_open".to_string(),
                        Value::Num(self.breaker_open_keys() as f64),
                    ),
                    (
                        "backoff_ms".to_string(),
                        Value::Num(self.backoff_ms.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
        ])
        .to_string()
    }

    /// Forwards a raw line to the worker if one is alive; a write failure
    /// (worker died mid-send) is absorbed — the request stays pending and
    /// is replayed into the next worker.
    fn forward(&self, line: &str) {
        let mut guard = lock_recover(&self.child_in);
        if let Some(stdin) = guard.as_mut() {
            let _ = writeln!(stdin, "{line}").and_then(|()| stdin.flush());
        }
    }
}

/// The stdin pump: reads real stdin until EOF, applying the breaker and
/// registering every forwarded request as pending.
fn pump_stdin(shared: &Shared) {
    for line in io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let parsed = protocol::parse_request(&line);
        let (id, key) = match &parsed {
            Ok(Request::Compile { id, graph, .. }) => (
                id.clone(),
                Some((canonical_hash(graph), exact_graph_hash(graph))),
            ),
            Ok(req) => (req.id().clone(), None),
            Err((id, _)) => (id.clone(), None),
        };
        if let Some(key) = key {
            let open = lock_recover(&shared.strikes)
                .get(&key)
                .copied()
                .unwrap_or(0)
                >= shared.breaker_strikes;
            if open {
                shared.write_out(&protocol::render_error(
                    &id,
                    "circuit breaker open: this graph repeatedly crashed the worker",
                    "compile_failed",
                ));
                continue;
            }
        }
        if matches!(parsed, Ok(Request::Shutdown { .. })) {
            shared.shutting_down.store(true, Ordering::SeqCst);
            let alive = lock_recover(&shared.child_in).is_some();
            if alive {
                shared.forward(&line);
            } else {
                // No worker to ack: the supervisor acknowledges and stops.
                shared.write_out(&protocol::render_shutdown(&id));
                std::process::exit(0);
            }
            break;
        }
        if matches!(parsed, Ok(Request::Health { .. })) && lock_recover(&shared.child_in).is_none()
        {
            shared.write_out(&shared.render_recovering(&id));
            continue;
        }
        let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
        lock_recover(&shared.pending).insert(
            id.to_string(),
            PendingReq {
                seq,
                line: line.clone(),
                id,
                key,
            },
        );
        shared.forward(&line);
    }
    shared.eof.store(true, Ordering::SeqCst);
    // Closing the worker's stdin lets it drain its queue and exit cleanly.
    lock_recover(&shared.child_in).take();
}

/// Runs the supervision loop; returns the supervisor's exit code.
pub fn run(opts: SupervisorOptions) -> ExitCode {
    let shared = Arc::new(Shared {
        pending: Mutex::new(HashMap::new()),
        child_in: Mutex::new(None),
        strikes: Mutex::new(HashMap::new()),
        restarts: AtomicU64::new(0),
        backoff_ms: AtomicU64::new(opts.backoff_base.as_millis() as u64),
        eof: AtomicBool::new(false),
        shutting_down: AtomicBool::new(false),
        seq: AtomicU64::new(0),
        stdout: Mutex::new(io::stdout()),
        breaker_strikes: opts.breaker_strikes,
    });
    {
        let shared = Arc::clone(&shared);
        thread::spawn(move || pump_stdin(&shared));
    }

    let mut backoff = opts.backoff_base;
    loop {
        let mut child = match spawn_worker(&opts, &shared) {
            Ok(child) => child,
            Err(e) => {
                eprintln!("epgs-serve supervisor: cannot spawn worker: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Replay unanswered requests in submission order, then, if stdin
        // is already gone, close the worker's stdin so it drains and exits.
        {
            let pending = lock_recover(&shared.pending);
            let mut lines: Vec<(u64, String)> =
                pending.values().map(|p| (p.seq, p.line.clone())).collect();
            drop(pending);
            lines.sort_unstable();
            for (_, line) in lines {
                shared.forward(&line);
            }
        }
        if shared.eof.load(Ordering::SeqCst) {
            lock_recover(&shared.child_in).take();
        }

        // Proxy worker stdout until it exits; any response settles its
        // pending slot.
        let mut answered = 0u64;
        if let Some(out) = child.stdout.take() {
            for line in BufReader::new(out).lines() {
                let Ok(line) = line else { break };
                let id = Value::parse(&line)
                    .ok()
                    .and_then(|doc| doc.get("id").cloned())
                    .unwrap_or(Value::Null);
                lock_recover(&shared.pending).remove(&id.to_string());
                answered += 1;
                match shared.annotate_health(&line) {
                    Some(annotated) => shared.write_out(&annotated),
                    None => shared.write_out(&line),
                }
            }
        }
        lock_recover(&shared.child_in).take();
        let status = child.wait();

        if status.map(|s| s.success()).unwrap_or(false) {
            // Clean worker exit: shutdown ack sent or stdin drained.
            return ExitCode::SUCCESS;
        }
        // Crash. Every unanswered compile in flight is a suspect: strike
        // its key, and open the breaker for keys at the cap instead of
        // replaying them into the next worker.
        shared.restarts.fetch_add(1, Ordering::SeqCst);
        let mut pending = lock_recover(&shared.pending);
        let mut strikes = lock_recover(&shared.strikes);
        let mut tripped: Vec<String> = Vec::new();
        for (id_text, req) in pending.iter() {
            if let Some(key) = req.key {
                let s = strikes.entry(key).or_insert(0);
                *s += 1;
                if *s >= opts.breaker_strikes {
                    tripped.push(id_text.clone());
                }
            }
        }
        drop(strikes);
        for id_text in tripped {
            if let Some(req) = pending.remove(&id_text) {
                shared.write_out(&protocol::render_error(
                    &req.id,
                    "circuit breaker open: this graph repeatedly crashed the worker",
                    "compile_failed",
                ));
            }
        }
        let drained = pending.is_empty();
        drop(pending);
        if (shared.eof.load(Ordering::SeqCst) || shared.shutting_down.load(Ordering::SeqCst))
            && drained
        {
            // Nothing left to answer and no more input is coming.
            return ExitCode::SUCCESS;
        }
        if answered > 0 {
            backoff = opts.backoff_base; // the worker was healthy for a while
        }
        shared
            .backoff_ms
            .store(backoff.as_millis() as u64, Ordering::Relaxed);
        thread::sleep(backoff);
        backoff = (backoff * 2).min(opts.backoff_cap);
    }
}

fn spawn_worker(opts: &SupervisorOptions, shared: &Shared) -> io::Result<Child> {
    let (program, args) = opts
        .worker_cmd
        .split_first()
        .ok_or_else(|| io::Error::other("empty worker command"))?;
    let mut child = Command::new(program)
        .args(args)
        .env("EPGS_SUPERVISED", "1")
        .env(
            "EPGS_WORKER_RESTARTS",
            shared.restarts.load(Ordering::SeqCst).to_string(),
        )
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    *lock_recover(&shared.child_in) = child.stdin.take();
    Ok(child)
}
