//! `epgs-serve` — the persistent compile daemon.
//!
//! Reads line-delimited JSON requests from stdin, serves them on a worker
//! pool through a shared [`ServeEngine`], and writes one JSON response per
//! line to stdout (order follows completion, not submission — correlate by
//! `id`). Exits when stdin closes or on a `shutdown` request, which should
//! be the client's last request: its acknowledgement is flushed and the
//! process stops immediately, so responses still in flight on other
//! workers are dropped.
//!
//! ```text
//! usage: epgs-serve [--store DIR] [--store-budget-mb MB] [--threads N]
//! ```
//!
//! See `epgs_serve::protocol` for the request/response grammar.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use epgs::{ArtifactStore, BatchCompiler};
use epgs_serve::protocol::{self, Request};
use epgs_serve::{default_config, ServeEngine};

fn usage() -> ExitCode {
    eprintln!("usage: epgs-serve [--store DIR] [--store-budget-mb MB] [--threads N]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut store_dir: Option<String> = None;
    let mut budget_mb: Option<u64> = None;
    let mut threads = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => match args.next() {
                Some(dir) => store_dir = Some(dir),
                None => {
                    eprintln!("--store needs a directory");
                    return usage();
                }
            },
            "--store-budget-mb" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(mb)) if mb >= 1 => budget_mb = Some(mb),
                _ => {
                    eprintln!("--store-budget-mb needs a positive integer");
                    return usage();
                }
            },
            "--threads" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    if budget_mb.is_some() && store_dir.is_none() {
        eprintln!("--store-budget-mb needs --store");
        return usage();
    }

    let config = default_config();
    let engine = match &store_dir {
        None => ServeEngine::new(config),
        Some(dir) => {
            let opened = match budget_mb {
                None => ArtifactStore::open(dir),
                Some(mb) => ArtifactStore::open_with_budget(dir, mb << 20),
            };
            match opened {
                Ok(store) => {
                    let mut batch = BatchCompiler::new(config);
                    batch.attach_store(store);
                    ServeEngine::from_batch(batch)
                }
                Err(e) => {
                    eprintln!("cannot open store {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let engine = Arc::new(engine);
    let stdout = Arc::new(Mutex::new(io::stdout()));

    let (tx, rx) = mpsc::channel::<String>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        let stdout = Arc::clone(&stdout);
        workers.push(thread::spawn(move || loop {
            // Hold the queue lock only for the dequeue, not the request.
            let line = match rx.lock().expect("queue lock").recv() {
                Ok(l) => l,
                Err(_) => return,
            };
            let (response, stop) = match protocol::parse_request(&line) {
                Err((id, e)) => (protocol::render_error(&id, &e), false),
                Ok(Request::Compile {
                    id,
                    graph,
                    want_qasm,
                }) => {
                    let reply = engine.compile(&graph);
                    (
                        protocol::render_compile(&id, &graph, &reply, want_qasm),
                        false,
                    )
                }
                Ok(Request::Status { id }) => (protocol::render_status(&id, &engine), false),
                Ok(Request::Stats { id }) => (protocol::render_stats(&id, &engine), false),
                Ok(Request::Evict { id, graph }) => {
                    (protocol::render_evict(&id, engine.evict(&graph)), false)
                }
                Ok(Request::Shutdown { id }) => (protocol::render_shutdown(&id), true),
            };
            {
                let mut out = stdout.lock().expect("stdout lock");
                let _ = writeln!(out, "{response}");
                let _ = out.flush();
            }
            if stop {
                std::process::exit(0);
            }
        }));
    }

    for line in io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        if tx.send(line).is_err() {
            break;
        }
    }
    // EOF: close the queue, let the workers drain it, then exit.
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
    ExitCode::SUCCESS
}
