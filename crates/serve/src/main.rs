//! `epgs-serve` — the persistent compile daemon.
//!
//! Reads line-delimited JSON requests from stdin, serves them on a worker
//! pool through a shared [`ServeEngine`], and writes one JSON response per
//! line to stdout (order follows completion, not submission — correlate by
//! `id`). Exits when stdin closes or on a `shutdown` request, which should
//! be the client's last request: its acknowledgement is flushed and the
//! process stops immediately, so responses still in flight on other
//! workers are dropped.
//!
//! ```text
//! usage: epgs-serve [--store DIR] [--store-budget-mb MB] [--threads N]
//!                   [--deadline-ms MS] [--queue-limit N] [--supervise]
//! ```
//!
//! `--deadline-ms` bounds every compile request (expired requests get a
//! structured `deadline_exceeded` error); `--queue-limit` bounds the
//! request queue — requests arriving while it is full are shed immediately
//! with an `overloaded` error instead of building unbounded latency. The
//! `EPGS_FAULT_PLAN` environment variable arms deterministic fault
//! injection for chaos testing (see `epgs::faults` for the grammar).
//!
//! `--supervise` runs the process as a supervisor instead: it spawns this
//! same binary (minus the flag) as a worker, proxies the protocol, and
//! warm-restarts the worker after a crash with capped exponential backoff,
//! replaying unanswered requests and tripping a per-graph circuit breaker
//! for requests that repeatedly crash the worker (see
//! `epgs_serve::supervise`).
//!
//! See `epgs_serve::protocol` for the request/response grammar.

use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::process::ExitCode;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use epgs::faults::{lock_recover, FaultPlan};
use epgs::{ArtifactStore, BatchCompiler};
use epgs_corpus::json::Value;
use epgs_serve::protocol::{self, Request};
use epgs_serve::{default_config, ServeEngine};

fn usage() -> ExitCode {
    eprintln!(
        "usage: epgs-serve [--store DIR] [--store-budget-mb MB] [--threads N] \
         [--deadline-ms MS] [--queue-limit N] [--supervise]"
    );
    ExitCode::FAILURE
}

/// The bounded request queue: a deque plus a closed flag under one mutex.
/// (`mpsc` has no capacity bound and no way to reject-at-enqueue; load
/// shedding needs both.)
struct Queue {
    state: Mutex<(VecDeque<String>, bool)>,
    cv: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    /// Enqueues `line` unless the queue holds `limit` requests already;
    /// returns whether the request was shed.
    fn push_or_shed(&self, line: String, limit: usize) -> bool {
        let mut guard = lock_recover(&self.state);
        if guard.0.len() >= limit {
            return true;
        }
        guard.0.push_back(line);
        drop(guard);
        self.cv.notify_one();
        false
    }

    /// Blocks for the next request; `None` once the queue is closed and
    /// drained.
    fn pop(&self) -> Option<String> {
        let mut guard = lock_recover(&self.state);
        loop {
            if let Some(line) = guard.0.pop_front() {
                return Some(line);
            }
            if guard.1 {
                return None;
            }
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks the queue closed (workers drain what is left, then exit).
    fn close(&self) {
        lock_recover(&self.state).1 = true;
        self.cv.notify_all();
    }
}

fn write_line(stdout: &Mutex<io::Stdout>, response: &str) {
    let mut out = lock_recover(stdout);
    let _ = writeln!(out, "{response}");
    let _ = out.flush();
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--supervise") {
        // Supervisor mode: re-invoke this binary (minus the flag) as the
        // worker; all other arguments are validated by the worker itself.
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot resolve own executable path: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut worker_cmd = vec![exe.to_string_lossy().into_owned()];
        worker_cmd.extend(argv.iter().filter(|a| *a != "--supervise").cloned());
        return epgs_serve::supervise::run(epgs_serve::SupervisorOptions {
            worker_cmd,
            ..Default::default()
        });
    }
    // A supervised worker reports its restart count through `health`.
    let restarts: Option<u64> = std::env::var("EPGS_WORKER_RESTARTS")
        .ok()
        .and_then(|v| v.parse().ok());

    let mut store_dir: Option<String> = None;
    let mut budget_mb: Option<u64> = None;
    let mut threads = 4usize;
    let mut deadline_ms: Option<u64> = None;
    let mut queue_limit = 1024usize;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => match args.next() {
                Some(dir) => store_dir = Some(dir),
                None => {
                    eprintln!("--store needs a directory");
                    return usage();
                }
            },
            "--store-budget-mb" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(mb)) if mb >= 1 => budget_mb = Some(mb),
                _ => {
                    eprintln!("--store-budget-mb needs a positive integer");
                    return usage();
                }
            },
            "--threads" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return usage();
                }
            },
            "--deadline-ms" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) if ms >= 1 => deadline_ms = Some(ms),
                _ => {
                    eprintln!("--deadline-ms needs a positive integer");
                    return usage();
                }
            },
            "--queue-limit" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => queue_limit = n,
                _ => {
                    eprintln!("--queue-limit needs a positive integer");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    if budget_mb.is_some() && store_dir.is_none() {
        eprintln!("--store-budget-mb needs --store");
        return usage();
    }

    let config = default_config();
    let mut engine = match &store_dir {
        None => ServeEngine::new(config),
        Some(dir) => {
            let opened = match budget_mb {
                None => ArtifactStore::open(dir),
                Some(mb) => ArtifactStore::open_with_budget(dir, mb << 20),
            };
            match opened {
                Ok(store) => {
                    let mut batch = BatchCompiler::new(config);
                    batch.attach_store(store);
                    ServeEngine::from_batch(batch)
                }
                Err(e) => {
                    eprintln!("cannot open store {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    engine.set_default_deadline(deadline_ms.map(Duration::from_millis));
    match std::env::var("EPGS_FAULT_PLAN") {
        Ok(spec) if !spec.trim().is_empty() => match FaultPlan::parse(&spec) {
            Ok(plan) => engine.set_fault_plan(Arc::new(plan)),
            Err(e) => {
                eprintln!("invalid EPGS_FAULT_PLAN: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {}
    }
    let engine = Arc::new(engine);
    let stdout = Arc::new(Mutex::new(io::stdout()));

    let queue = Arc::new(Queue::new());
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let queue = Arc::clone(&queue);
        let engine = Arc::clone(&engine);
        let stdout = Arc::clone(&stdout);
        workers.push(thread::spawn(move || {
            while let Some(line) = queue.pop() {
                let (response, stop) = match protocol::parse_request(&line) {
                    Err((id, e)) => (protocol::render_error(&id, &e, "bad_request"), false),
                    Ok(Request::Compile {
                        id,
                        graph,
                        want_qasm,
                    }) => {
                        let reply = engine.compile(&graph);
                        (
                            protocol::render_compile(&id, &graph, &reply, want_qasm),
                            false,
                        )
                    }
                    Ok(Request::Status { id }) => (protocol::render_status(&id, &engine), false),
                    Ok(Request::Stats { id }) => (protocol::render_stats(&id, &engine), false),
                    Ok(Request::Health { id }) => {
                        (protocol::render_health(&id, &engine, restarts), false)
                    }
                    Ok(Request::Evict {
                        id,
                        graph,
                        memory_only,
                    }) => {
                        let dropped = if memory_only {
                            engine.evict_memory(&graph)
                        } else {
                            engine.evict(&graph)
                        };
                        (protocol::render_evict(&id, dropped), false)
                    }
                    Ok(Request::Shutdown { id }) => (protocol::render_shutdown(&id), true),
                };
                write_line(&stdout, &response);
                if stop {
                    std::process::exit(0);
                }
            }
        }));
    }

    for line in io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        if queue.push_or_shed(line.clone(), queue_limit) {
            // Shed at the queue limit: answer immediately from the reader
            // thread so the client learns to back off; the engine never
            // sees the request.
            engine.note_shed();
            let id = Value::parse(&line)
                .ok()
                .and_then(|doc| doc.get("id").cloned())
                .unwrap_or(Value::Null);
            write_line(&stdout, &protocol::render_overloaded(&id));
        }
    }
    // EOF: close the queue, let the workers drain it, then exit.
    queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    ExitCode::SUCCESS
}
