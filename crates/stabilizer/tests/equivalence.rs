//! Layout-equivalence suite: the word-parallel bit-sliced [`Tableau`] must be
//! indistinguishable, step by step, from the scalar row-major
//! [`RefTableau`] it replaced.
//!
//! Each property draws a random program over the full mutating surface
//! (Clifford gates, row operations, forced-outcome measurements), replays it
//! through both engines, and after **every** step compares all X/Z bits, all
//! phase exponents, and any [`MeasureOutcome`] the step produced.

use proptest::prelude::*;

use epgs_graph::gf2::kernels;
use epgs_stabilizer::reference::RefTableau;
use epgs_stabilizer::{MeasureOutcome, Tableau};

/// One mutating step of the driving program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    H(usize),
    S(usize),
    Sdg(usize),
    Px(usize),
    Pz(usize),
    Py(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    RowMul(usize, usize),
    SwapRows(usize, usize),
    MeasureZ { q: usize, forced: bool },
}

/// Decodes a raw `(op, a, b, flag)` draw into a valid step for `n` qubits.
fn decode(n: usize, op: u8, a: usize, b: usize, flag: bool) -> Step {
    let a = a % n;
    // Distinct second index for the two-index ops.
    let b = (a + 1 + b % (n.max(2) - 1)) % n;
    match op % 11 {
        0 => Step::H(a),
        1 => Step::S(a),
        2 => Step::Sdg(a),
        3 => Step::Px(a),
        4 => Step::Pz(a),
        5 => Step::Py(a),
        6 => Step::Cnot(a, b),
        7 => Step::Cz(a, b),
        8 => Step::RowMul(a, b),
        9 => Step::SwapRows(a, b),
        _ => Step::MeasureZ { q: a, forced: flag },
    }
}

/// Applies one step to both engines, returning the measurement outcomes (if
/// the step measures) so the caller can compare them.
fn apply_both(
    t: &mut Tableau,
    r: &mut RefTableau,
    step: Step,
) -> Option<(MeasureOutcome, MeasureOutcome)> {
    match step {
        Step::H(q) => {
            t.h(q);
            r.h(q);
        }
        Step::S(q) => {
            t.s(q);
            r.s(q);
        }
        Step::Sdg(q) => {
            t.sdg(q);
            r.sdg(q);
        }
        Step::Px(q) => {
            t.px(q);
            r.px(q);
        }
        Step::Pz(q) => {
            t.pz(q);
            r.pz(q);
        }
        Step::Py(q) => {
            t.py(q);
            r.py(q);
        }
        Step::Cnot(c, tq) => {
            t.cnot(c, tq);
            r.cnot(c, tq);
        }
        Step::Cz(a, b) => {
            t.cz(a, b);
            r.cz(a, b);
        }
        Step::RowMul(d, s) => {
            t.row_mul(d, s);
            r.row_mul(d, s);
        }
        Step::SwapRows(a, b) => {
            t.swap_rows(a, b);
            r.swap_rows(a, b);
        }
        Step::MeasureZ { q, forced } => {
            return Some((t.measure_z(q, forced), r.measure_z(q, forced)));
        }
    }
    None
}

/// Asserts every stored bit and phase matches between the two layouts.
fn assert_layouts_match(t: &Tableau, r: &RefTableau, context: &str) -> Result<(), TestCaseError> {
    let n = t.num_qubits();
    prop_assert_eq!(n, r.num_qubits());
    for row in 0..n {
        prop_assert_eq!(
            t.phase_of(row),
            r.phase_of(row),
            "phase of row {} diverged {}",
            row,
            context
        );
        for q in 0..n {
            prop_assert_eq!(
                t.x_bit(row, q),
                r.x_bit(row, q),
                "x bit ({}, {}) diverged {}",
                row,
                q,
                context
            );
            prop_assert_eq!(
                t.z_bit(row, q),
                r.z_bit(row, q),
                "z bit ({}, {}) diverged {}",
                row,
                q,
                context
            );
        }
    }
    Ok(())
}

/// Raw program draw: per-step `(op, a, b, flag)` tuples.
fn arb_program(steps: usize) -> impl Strategy<Value = Vec<(u8, usize, usize, bool)>> {
    proptest::collection::vec(
        (any::<u8>(), any::<usize>(), any::<usize>(), any::<bool>()),
        steps,
    )
}

proptest! {
    /// Gate/measurement programs from |0…0⟩: bits, phases, and outcomes
    /// match after every step, across word-boundary sizes.
    #[test]
    fn random_programs_match_reference(
        n_seed in 1usize..=70,
        raw in arb_program(60)
    ) {
        // Bias toward word-boundary sizes where packing bugs live.
        let n = match n_seed {
            61.. => 63 + (n_seed - 61), // 63..=72 qubits: straddle one word
            _ => n_seed,
        };
        let mut t = Tableau::zero_state(n);
        let mut r = RefTableau::zero_state(n);
        for (i, &(op, a, b, flag)) in raw.iter().enumerate() {
            let step = decode(n, op, a, b, flag);
            // row_mul/swap need distinct rows; decode guarantees it for n ≥ 2,
            // so skip those steps on a single qubit.
            if n < 2 {
                if let Step::RowMul(..) | Step::SwapRows(..) | Step::Cnot(..) | Step::Cz(..) = step {
                    continue;
                }
            }
            let outcomes = apply_both(&mut t, &mut r, step);
            if let Some((new, reference)) = outcomes {
                prop_assert_eq!(
                    new, reference,
                    "measurement outcome diverged at step {} ({:?})", i, step
                );
            }
            assert_layouts_match(&t, &r, &format!("after step {i} ({step:?})"))?;
        }
    }

    /// Deterministic-sign queries agree on every wire of a post-program
    /// state (the solver's free-emitter probe).
    #[test]
    fn deterministic_sign_matches_reference(
        n in 2usize..=40,
        raw in arb_program(40)
    ) {
        let mut t = Tableau::zero_state(n);
        let mut r = RefTableau::zero_state(n);
        for &(op, a, b, flag) in &raw {
            apply_both(&mut t, &mut r, decode(n, op, a, b, flag));
        }
        for q in 0..n {
            prop_assert_eq!(
                t.deterministic_z_sign(q),
                r.deterministic_z_sign(q),
                "deterministic sign diverged at qubit {}", q
            );
        }
    }

    /// The GF(2) kernel toggle must be unobservable: deterministic-sign
    /// queries (whose ≥ 65-row constraint systems take the Four-Russians
    /// path by default) give the same answer as the reference under both
    /// the blocked and the forced-scalar elimination, on the same state.
    ///
    /// The toggle is process-global, which is safe here precisely because
    /// the two paths are bit-identical (asserted by the gf2 differential
    /// suite) — flipping it mid-run changes which kernel executes, never
    /// any result.
    #[test]
    fn deterministic_sign_identical_on_both_kernel_paths(
        n in 33usize..=70,
        raw in arb_program(30)
    ) {
        let mut t = Tableau::zero_state(n);
        let mut r = RefTableau::zero_state(n);
        for &(op, a, b, flag) in &raw {
            apply_both(&mut t, &mut r, decode(n, op, a, b, flag));
        }
        for q in 0..n {
            kernels::force_scalar(false);
            let blocked = t.deterministic_z_sign(q);
            kernels::force_scalar(true);
            let scalar = t.deterministic_z_sign(q);
            kernels::force_scalar(false);
            prop_assert_eq!(
                blocked, scalar,
                "kernel paths diverged at qubit {}", q
            );
            prop_assert_eq!(
                blocked, r.deterministic_z_sign(q),
                "blocked path diverged from reference at qubit {}", q
            );
        }
    }
}

#[test]
fn graph_state_construction_matches_reference() {
    use epgs_graph::generators;
    for g in [
        generators::path(7),
        generators::cycle(9),
        generators::star(6),
        generators::lattice(4, 5),
        generators::complete(5),
    ] {
        let t = Tableau::graph_state(&g);
        let r = RefTableau::graph_state(&g);
        let n = t.num_qubits();
        for row in 0..n {
            assert_eq!(t.phase_of(row), r.phase_of(row));
            for q in 0..n {
                assert_eq!(t.x_bit(row, q), r.x_bit(row, q), "x ({row}, {q})");
                assert_eq!(t.z_bit(row, q), r.z_bit(row, q), "z ({row}, {q})");
            }
        }
    }
}
