//! Property tests tying the tableau semantics to the graph-level rules of
//! `epgs-graph`. These are the oracles the compiler's correctness rests on.

use proptest::prelude::*;

use epgs_graph::{generators, ops, Graph};
use epgs_stabilizer::{to_graph_form, verify, Tableau};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=9).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for a in 0..n {
                for b in (a + 1)..n {
                    if bits[k] {
                        g.add_edge(a, b).unwrap();
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

/// Applies the local-complementation unitary at `v`:
/// `√(-iX)` on `v` (here H·S†·H) and `√(iZ)` (here S) on each neighbor.
fn apply_lc_unitary(t: &mut Tableau, g: &Graph, v: usize) {
    t.h(v);
    t.sdg(v);
    t.h(v);
    for &w in g.neighbors(v) {
        t.s(w);
    }
}

proptest! {
    /// The LC unitary maps |G⟩ exactly (including signs) to |LC_v(G)⟩.
    #[test]
    fn lc_unitary_matches_graph_rule(g in arb_graph(), v_seed in any::<u64>()) {
        let v = (v_seed as usize) % g.vertex_count();
        let mut t = Tableau::graph_state(&g);
        apply_lc_unitary(&mut t, &g, v);
        let mut expected = g.clone();
        ops::local_complement(&mut expected, v).unwrap();
        prop_assert!(
            verify::is_graph_state(&t, &expected),
            "LC unitary at {} disagrees with graph rule", v
        );
    }

    /// Pivot = three LC unitaries; the composite must match the graph pivot.
    #[test]
    fn pivot_unitary_matches_graph_rule(g in arb_graph()) {
        let edges: Vec<(usize, usize)> = g.edges().collect();
        if let Some(&(a, b)) = edges.first() {
            let mut t = Tableau::graph_state(&g);
            let mut cur = g.clone();
            for &v in &[a, b, a] {
                apply_lc_unitary(&mut t, &cur, v);
                ops::local_complement(&mut cur, v).unwrap();
            }
            let mut expected = g.clone();
            ops::pivot(&mut expected, a, b).unwrap();
            prop_assert_eq!(&cur, &expected);
            prop_assert!(verify::is_graph_state(&t, &expected));
        }
    }

    /// Z-measurement with outcome 0 leaves exactly |G∖v⟩ with v in |0⟩
    /// (no corrections needed on that branch).
    #[test]
    fn z_measurement_outcome0_matches_graph_rule(g in arb_graph(), v_seed in any::<u64>()) {
        let v = (v_seed as usize) % g.vertex_count();
        let mut t = Tableau::graph_state(&g);
        let outcome = t.measure_z(v, false);
        prop_assert!(!outcome.bit());
        let mut expected_graph = g.clone();
        ops::measure_z(&mut expected_graph, v).unwrap();
        // Expected state: |G∖v⟩ on the others, |0⟩ on v.
        let mut expected = Tableau::graph_state(&expected_graph);
        expected.h(v); // isolated vertex of a graph state is |+⟩; flip to |0⟩
        prop_assert!(t.same_state_as(&expected));
    }

    /// Z-measurement outcome 1 equals the graph rule up to Z corrections on
    /// the old neighborhood.
    #[test]
    fn z_measurement_outcome1_needs_z_corrections(g in arb_graph(), v_seed in any::<u64>()) {
        let v = (v_seed as usize) % g.vertex_count();
        if g.degree(v) == 0 {
            return Ok(()); // isolated vertex: outcome deterministic
        }
        let nbrs: Vec<usize> = g.neighbors(v).iter().copied().collect();
        let mut t = Tableau::graph_state(&g);
        let outcome = t.measure_z(v, true);
        prop_assert!(outcome.bit());
        // Correct: X on v (|1⟩ → |0⟩), Z on each old neighbor.
        t.px(v);
        for &w in &nbrs {
            t.pz(w);
        }
        let mut expected_graph = g.clone();
        ops::measure_z(&mut expected_graph, v).unwrap();
        let mut expected = Tableau::graph_state(&expected_graph);
        expected.h(v);
        prop_assert!(t.same_state_as(&expected));
    }

    /// Row operations never change the state.
    #[test]
    fn gauge_moves_preserve_state(g in arb_graph(), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reference = Tableau::graph_state(&g);
        let mut t = reference.clone();
        let n = t.num_qubits();
        for _ in 0..20 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                if rng.gen() {
                    t.row_mul(a, b);
                } else {
                    t.swap_rows(a, b);
                }
            }
        }
        prop_assert!(t.is_valid_state());
        prop_assert!(t.same_state_as(&reference));
    }

    /// graph_state → to_graph_form is the identity on graphs.
    #[test]
    fn graph_form_roundtrip(g in arb_graph()) {
        let mut t = Tableau::graph_state(&g);
        let form = to_graph_form(&mut t).unwrap();
        prop_assert_eq!(form.graph, g);
        prop_assert!(form.gates.is_empty());
    }

    /// Echelon gauge preserves the state for any qubit order.
    #[test]
    fn echelon_gauge_preserves_state(g in arb_graph(), rot in any::<u64>()) {
        let n = g.vertex_count();
        let shift = (rot as usize) % n;
        let order: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
        let reference = Tableau::graph_state(&g);
        let mut t = reference.clone();
        t.echelon_gauge(&order);
        prop_assert!(t.is_valid_state());
        prop_assert!(t.same_state_as(&reference));
    }
}

#[test]
fn lc_unitary_specific_example_from_paper_fig4() {
    // Paper Fig. 4: square 0-1-2-3 plus chords on 1's neighborhood; LC at 1
    // toggles edges among {0, 2, 3}. Use the 4-cycle: N(1) = {0, 2}.
    let g = generators::cycle(4);
    let mut t = Tableau::graph_state(&g);
    let mut expected = g.clone();
    ops::local_complement(&mut expected, 1).unwrap();
    t.h(1);
    t.sdg(1);
    t.h(1);
    t.s(0);
    t.s(2);
    assert!(verify::is_graph_state(&t, &expected));
    assert!(expected.has_edge(0, 2));
}
