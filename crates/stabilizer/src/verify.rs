//! State-equality oracles used throughout the workspace's tests and the
//! compiler's final verification pass.

use epgs_graph::Graph;

use crate::tableau::Tableau;

/// True if `t` is exactly the graph state |G⟩ (including stabilizer signs).
///
/// # Examples
///
/// ```
/// use epgs_graph::generators;
/// use epgs_stabilizer::{verify, Tableau};
///
/// let g = generators::path(3);
/// let t = Tableau::graph_state(&g);
/// assert!(verify::is_graph_state(&t, &g));
/// ```
pub fn is_graph_state(t: &Tableau, g: &Graph) -> bool {
    t.same_state_as(&Tableau::graph_state(g))
}

/// True if the sub-register `qubits` of `t` is exactly |G⟩ on those qubits
/// (in the order given) **and** every other qubit is disentangled in |0⟩.
///
/// This is the compiler's acceptance criterion: photons carry |G⟩, emitters
/// are back in |0⟩.
pub fn is_graph_state_on(t: &Tableau, g: &Graph, qubits: &[usize]) -> bool {
    let n = t.num_qubits();
    assert_eq!(
        g.vertex_count(),
        qubits.len(),
        "graph order must match the register size"
    );
    // Build the expected global state: |G⟩ on `qubits`, |0⟩ elsewhere.
    let mut global = Graph::new(n);
    for (i, &qi) in qubits.iter().enumerate() {
        for (j, &qj) in qubits.iter().enumerate() {
            if i < j && g.has_edge(i, j) {
                global.add_edge(qi, qj).expect("indices in range");
            }
        }
    }
    let mut expected = Tableau::graph_state(&global);
    // Non-register qubits must be |0⟩, not |+⟩: apply H to flip X_q → Z_q.
    let in_register: std::collections::BTreeSet<usize> = qubits.iter().copied().collect();
    for q in 0..n {
        if !in_register.contains(&q) {
            expected.h(q);
        }
    }
    t.same_state_as(&expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    #[test]
    fn graph_state_detected() {
        let g = generators::cycle(4);
        assert!(is_graph_state(&Tableau::graph_state(&g), &g));
        assert!(!is_graph_state(
            &Tableau::graph_state(&generators::path(4)),
            &g
        ));
    }

    #[test]
    fn sign_flip_rejected() {
        let g = generators::path(3);
        let mut t = Tableau::graph_state(&g);
        t.pz(1);
        assert!(!is_graph_state(&t, &g));
    }

    #[test]
    fn embedded_register_detected() {
        // 2 photons in a Bell-graph + 1 emitter in |0⟩ on qubit index 1.
        let g = generators::path(2);
        let mut t = Tableau::zero_state(3);
        t.h(0);
        t.h(2);
        t.cz(0, 2);
        assert!(is_graph_state_on(&t, &g, &[0, 2]));
        assert!(!is_graph_state_on(&t, &g, &[0, 1]));
    }

    #[test]
    fn leftover_emitter_in_plus_rejected() {
        let g = generators::path(2);
        let mut t = Tableau::zero_state(3);
        t.h(0);
        t.h(2);
        t.cz(0, 2);
        t.h(1); // emitter left in |+⟩ instead of |0⟩
        assert!(!is_graph_state_on(&t, &g, &[0, 2]));
    }

    #[test]
    fn register_order_matters() {
        // Path 0-1-2 embedded reversed: graph edges must follow register order.
        let g = generators::path(3);
        let t = Tableau::graph_state(&g);
        assert!(is_graph_state_on(&t, &g, &[0, 1, 2]));
        assert!(is_graph_state_on(&t, &g, &[2, 1, 0])); // path is symmetric
        let star = generators::star(3);
        let t = Tableau::graph_state(&star);
        assert!(is_graph_state_on(&t, &star, &[0, 1, 2]));
        assert!(!is_graph_state_on(&t, &star, &[1, 0, 2])); // hub moved
    }
}
