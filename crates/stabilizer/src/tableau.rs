//! Phase-tracked stabilizer tableaux.
//!
//! A [`Tableau`] holds `n` commuting Hermitian Pauli generators on `n`
//! qubits — a pure stabilizer state. Rows are stored as X/Z bit matrices plus
//! a phase exponent `r ∈ Z₄` per row, with the convention described in
//! [`crate::pauli`]: row = `i^r · Π_q X_q^{x_q} Z_q^{z_q}`.
//!
//! The gate set is the Clifford generators used by the emitter-photonic
//! compiler: `H`, `S`/`S†`, Paulis, `CNOT`, `CZ`, plus row operations and a
//! forced-outcome Z measurement (the compiler chooses the branch it encodes
//! corrections for; verification exercises both branches).

use epgs_graph::gf2::BitMatrix;
use epgs_graph::Graph;

use crate::error::StabilizerError;
use crate::pauli::Pauli;

/// A pure stabilizer state on `n` qubits as `n` phase-tracked generators.
///
/// # Examples
///
/// ```
/// use epgs_stabilizer::Tableau;
///
/// // |00⟩ → Bell pair.
/// let mut t = Tableau::zero_state(2);
/// t.h(0);
/// t.cnot(0, 1);
/// assert!(t.is_valid_state());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    x: BitMatrix,
    z: BitMatrix,
    /// Phase exponent per row, mod 4.
    phase: Vec<u8>,
}

/// Result of a Z-basis measurement on a stabilizer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureOutcome {
    /// The outcome was already determined by the state.
    Deterministic(bool),
    /// The outcome was random; the tableau was collapsed onto the outcome
    /// that was forced by the caller.
    Random(bool),
}

impl MeasureOutcome {
    /// The measured bit regardless of determinism.
    pub fn bit(self) -> bool {
        match self {
            MeasureOutcome::Deterministic(b) | MeasureOutcome::Random(b) => b,
        }
    }
}

impl Tableau {
    /// The all-|0⟩ state: generators `Z_q`.
    pub fn zero_state(n: usize) -> Self {
        let mut t = Tableau {
            n,
            x: BitMatrix::zeros(n, n),
            z: BitMatrix::zeros(n, n),
            phase: vec![0; n],
        };
        for q in 0..n {
            t.z.set(q, q, true);
        }
        t
    }

    /// The graph state |G⟩: generators `X_v Z_{N(v)}`.
    pub fn graph_state(g: &Graph) -> Self {
        let n = g.vertex_count();
        let mut t = Tableau {
            n,
            x: BitMatrix::zeros(n, n),
            z: BitMatrix::zeros(n, n),
            phase: vec![0; n],
        };
        for v in 0..n {
            t.x.set(v, v, true);
            for &w in g.neighbors(v) {
                t.z.set(v, w, true);
            }
        }
        t
    }

    /// Number of qubits (and generators).
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The Pauli letter of row `row` at qubit `q` (phase ignored).
    pub fn pauli_at(&self, row: usize, q: usize) -> Pauli {
        Pauli::from_bits(self.x.get(row, q), self.z.get(row, q))
    }

    /// The phase exponent `r ∈ Z₄` of row `row`.
    pub fn phase_of(&self, row: usize) -> u8 {
        self.phase[row]
    }

    /// X bit of row `row` at qubit `q`.
    #[inline]
    pub fn x_bit(&self, row: usize, q: usize) -> bool {
        self.x.get(row, q)
    }

    /// Z bit of row `row` at qubit `q`.
    #[inline]
    pub fn z_bit(&self, row: usize, q: usize) -> bool {
        self.z.get(row, q)
    }

    /// Qubits where row `row` acts non-trivially, in increasing order.
    pub fn support(&self, row: usize) -> Vec<usize> {
        (0..self.n)
            .filter(|&q| self.x.get(row, q) || self.z.get(row, q))
            .collect()
    }

    /// True if row `row` is the identity Pauli (possibly with phase).
    pub fn row_is_identity(&self, row: usize) -> bool {
        self.x.row_is_zero(row) && self.z.row_is_zero(row)
    }

    // ---- Clifford gates (conjugation of every generator) -----------------

    /// Hadamard on qubit `q` (`X ↔ Z`).
    pub fn h(&mut self, q: usize) {
        for row in 0..self.n {
            let xb = self.x.get(row, q);
            let zb = self.z.get(row, q);
            if xb && zb {
                // XZ → ZX = −XZ.
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
            self.x.set(row, q, zb);
            self.z.set(row, q, xb);
        }
    }

    /// Phase gate S on qubit `q` (`X → Y`).
    pub fn s(&mut self, q: usize) {
        for row in 0..self.n {
            if self.x.get(row, q) {
                // X → i·XZ ; XZ → i·X (since S·XZ·S† = i X Z Z = iX).
                self.z.flip(row, q);
                self.phase[row] = (self.phase[row] + 1) % 4;
            }
        }
    }

    /// Inverse phase gate S† on qubit `q` (`X → −Y`).
    pub fn sdg(&mut self, q: usize) {
        for row in 0..self.n {
            if self.x.get(row, q) {
                self.z.flip(row, q);
                self.phase[row] = (self.phase[row] + 3) % 4;
            }
        }
    }

    /// Pauli X on qubit `q` (flips the sign of rows with a Z there).
    pub fn px(&mut self, q: usize) {
        for row in 0..self.n {
            if self.z.get(row, q) {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
        }
    }

    /// Pauli Z on qubit `q` (flips the sign of rows with an X there).
    pub fn pz(&mut self, q: usize) {
        for row in 0..self.n {
            if self.x.get(row, q) {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
        }
    }

    /// Pauli Y on qubit `q`.
    pub fn py(&mut self, q: usize) {
        for row in 0..self.n {
            if self.x.get(row, q) != self.z.get(row, q) {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
        }
    }

    /// CNOT with control `c`, target `t`.
    ///
    /// In the literal X-before-Z phase convention CNOT introduces no phase:
    /// `x_t ^= x_c`, `z_c ^= z_t` only.
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "cnot requires distinct qubits");
        for row in 0..self.n {
            if self.x.get(row, c) {
                self.x.flip(row, t);
            }
            if self.z.get(row, t) {
                self.z.flip(row, c);
            }
        }
    }

    /// CZ on qubits `a`, `b`.
    ///
    /// `z_b ^= x_a`, `z_a ^= x_b`, with a sign flip when both X bits are set
    /// (from reordering `Z_b X_b → −X_b Z_b`).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "cz requires distinct qubits");
        for row in 0..self.n {
            let xa = self.x.get(row, a);
            let xb = self.x.get(row, b);
            if xa && xb {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
            if xa {
                self.z.flip(row, b);
            }
            if xb {
                self.z.flip(row, a);
            }
        }
    }

    // ---- Row (gauge) operations ------------------------------------------

    /// Replaces row `dst` with the product `row_dst · row_src` (same group,
    /// different generating set).
    ///
    /// # Panics
    ///
    /// Panics if `dst == src`.
    pub fn row_mul(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "row_mul requires distinct rows");
        // Reordering sign: moving each Z of dst past each X of src on the
        // same qubit contributes −1, i.e. phase += 2·|{q : z_dst[q] & x_src[q]}|.
        let mut swaps = 0u8;
        for q in 0..self.n {
            if self.z.get(dst, q) && self.x.get(src, q) {
                swaps ^= 1;
            }
        }
        self.phase[dst] = (self.phase[dst] + self.phase[src] + if swaps == 1 { 2 } else { 0 }) % 4;
        self.x.xor_rows(dst, src);
        self.z.xor_rows(dst, src);
    }

    /// Swaps two generator rows (pure bookkeeping).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.x.swap_rows(a, b);
        self.z.swap_rows(a, b);
        self.phase.swap(a, b);
    }

    /// True if rows `a` and `b` commute as Pauli operators.
    pub fn rows_commute(&self, a: usize, b: usize) -> bool {
        let mut acc = false;
        for q in 0..self.n {
            let t = (self.x.get(a, q) & self.z.get(b, q)) ^ (self.z.get(a, q) & self.x.get(b, q));
            acc ^= t;
        }
        !acc
    }

    /// Validates the state: all rows Hermitian, mutually commuting, and
    /// linearly independent. O(n³); intended for tests and debug assertions.
    pub fn is_valid_state(&self) -> bool {
        // Hermiticity: r ≡ #Y (mod 2) per row.
        for row in 0..self.n {
            let ys = (0..self.n)
                .filter(|&q| self.x.get(row, q) && self.z.get(row, q))
                .count();
            if !(self.phase[row] as usize + ys).is_multiple_of(2) {
                return false;
            }
        }
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if !self.rows_commute(a, b) {
                    return false;
                }
            }
        }
        // Independence: the n×2n symplectic matrix has rank n.
        let mut m = BitMatrix::zeros(self.n, 2 * self.n);
        for r in 0..self.n {
            for q in 0..self.n {
                m.set(r, q, self.x.get(r, q));
                m.set(r, self.n + q, self.z.get(r, q));
            }
        }
        m.rank() == self.n
    }

    /// Measures qubit `q` in the Z basis.
    ///
    /// If the outcome is random, the state collapses onto the branch given by
    /// `forced`; if deterministic, `forced` is ignored and the true outcome is
    /// reported.
    pub fn measure_z(&mut self, q: usize, forced: bool) -> MeasureOutcome {
        // A generator anticommuting with Z_q is one with an X there.
        let pivot = (0..self.n).find(|&r| self.x.get(r, q));
        match pivot {
            Some(p) => {
                let rows: Vec<usize> = (0..self.n)
                    .filter(|&r| r != p && self.x.get(r, q))
                    .collect();
                for r in rows {
                    self.row_mul(r, p);
                }
                // Replace the pivot row with ±Z_q.
                for col in 0..self.n {
                    self.x.set(p, col, false);
                    self.z.set(p, col, col == q);
                }
                self.phase[p] = if forced { 2 } else { 0 };
                MeasureOutcome::Random(forced)
            }
            None => {
                // Deterministic: express Z_q over the generators and read the
                // accumulated phase.
                let sign = self
                    .deterministic_z_sign(q)
                    .expect("no X at q implies Z_q is in the group for a pure state");
                MeasureOutcome::Deterministic(sign)
            }
        }
    }

    /// If no generator has an X at `q`, `Z_q` is in the stabilizer group of a
    /// pure state. Returns `Some(bit)` where `bit = true` means `−Z_q` (i.e.
    /// a measurement yields 1), or `None` if an X is present.
    pub fn deterministic_z_sign(&self, q: usize) -> Option<bool> {
        if (0..self.n).any(|r| self.x.get(r, q)) {
            return None;
        }
        // Solve over GF(2): which subset of rows multiplies to Z_q?
        // Build the 2n×n system A c = e (columns are generators).
        let mut a = BitMatrix::zeros(2 * self.n, self.n);
        for r in 0..self.n {
            for col in 0..self.n {
                a.set(col, r, self.x.get(r, col));
                a.set(self.n + col, r, self.z.get(r, col));
            }
        }
        let mut target = vec![false; 2 * self.n];
        target[self.n + q] = true;
        let combo = a.solve(&target)?;
        // Multiply out the chosen rows on a scratch accumulator to get the sign.
        let mut acc_x = vec![false; self.n];
        let mut acc_z = vec![false; self.n];
        let mut phase: u8 = 0;
        for (r, &take) in combo.iter().enumerate() {
            if !take {
                continue;
            }
            let mut swaps = 0u8;
            for (col, &az) in acc_z.iter().enumerate() {
                if az && self.x.get(r, col) {
                    swaps ^= 1;
                }
            }
            phase = (phase + self.phase[r] + if swaps == 1 { 2 } else { 0 }) % 4;
            for col in 0..self.n {
                acc_x[col] ^= self.x.get(r, col);
                acc_z[col] ^= self.z.get(r, col);
            }
        }
        debug_assert!(acc_x.iter().all(|&b| !b));
        debug_assert!((0..self.n).all(|col| acc_z[col] == (col == q)));
        debug_assert!(phase.is_multiple_of(2));
        Some(phase == 2)
    }

    /// Canonicalizes the tableau in place: symplectic RREF over the column
    /// order `x_0, z_0, x_1, z_1, …` with rows sorted by pivot. Two tableaux
    /// describe the same state iff their canonical forms are identical.
    pub fn canonicalize(&mut self) {
        let mut pivot_row = 0;
        for q in 0..self.n {
            for is_z in [false, true] {
                if pivot_row >= self.n {
                    return;
                }
                let get = |t: &Tableau, r: usize| {
                    if is_z {
                        // Only rows without an X at q qualify for the Z pivot,
                        // since X pivots were already cleared below pivot_row.
                        t.z.get(r, q)
                    } else {
                        t.x.get(r, q)
                    }
                };
                let found = (pivot_row..self.n).find(|&r| get(self, r));
                let Some(r) = found else { continue };
                self.swap_rows(pivot_row, r);
                for other in 0..self.n {
                    if other != pivot_row && get(self, other) {
                        self.row_mul(other, pivot_row);
                    }
                }
                pivot_row += 1;
            }
        }
    }

    /// Returns true if `self` and `other` describe the same quantum state.
    pub fn same_state_as(&self, other: &Tableau) -> bool {
        if self.n != other.n {
            return false;
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.canonicalize();
        b.canonicalize();
        a == b
    }

    /// Reduces rows `rows` to echelon form over the *qubit-pair* column order
    /// restricted to `qubit_order`, returning nothing but leaving the tableau
    /// in the echelon gauge. Used by the time-reversed solver.
    pub fn echelon_gauge(&mut self, qubit_order: &[usize]) {
        let mut pivot_row = 0;
        for &q in qubit_order {
            for is_z in [false, true] {
                if pivot_row >= self.n {
                    return;
                }
                let get = |t: &Tableau, r: usize| {
                    if is_z {
                        t.z.get(r, q)
                    } else {
                        t.x.get(r, q)
                    }
                };
                let found = (pivot_row..self.n).find(|&r| get(self, r));
                let Some(r) = found else { continue };
                self.swap_rows(pivot_row, r);
                for other in 0..self.n {
                    if other != pivot_row && get(self, other) {
                        self.row_mul(other, pivot_row);
                    }
                }
                pivot_row += 1;
            }
        }
    }

    /// Finds a group element (as a row-combination) whose support, restricted
    /// to `restrict`, is exactly `{target}` and whose support outside
    /// `restrict ∪ allowed` is empty. Returns the indices of rows to multiply,
    /// or `None`.
    ///
    /// `restrict` are the photon columns, `allowed` the emitter columns, in
    /// solver terms: "find a stabilizer touching photon `target` and no other
    /// photon". Among all valid elements, one with (locally) minimal support
    /// on `allowed` is returned — fewer supported emitters means fewer
    /// emitter-emitter CNOTs downstream, so the solution is post-optimized
    /// over the constraint null space with a greedy descent.
    pub fn find_element_supported_on(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
    ) -> Option<Vec<usize>> {
        self.find_element_weighted(restrict, target, allowed, |_| 1)
    }

    /// Like [`Tableau::find_element_supported_on`], but returning the *first*
    /// valid element without any support-weight optimization — the behavior
    /// of the vanilla Li-et-al. protocol (and of GraphiQ's deterministic
    /// solver), which works in an echelon gauge and takes whichever emission
    /// generator appears. Kept for faithful baseline comparisons.
    pub fn find_element_any(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
    ) -> Option<Vec<usize>> {
        self.find_element_impl(restrict, target, allowed, None::<fn(usize) -> usize>)
    }

    /// Like [`Tableau::find_element_supported_on`], but minimizing a custom
    /// per-qubit support weight over `allowed` instead of plain support
    /// count. Solvers use this to steer work onto preferred emitters.
    pub fn find_element_weighted(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
        weight_of: impl Fn(usize) -> usize,
    ) -> Option<Vec<usize>> {
        self.find_element_impl(restrict, target, allowed, Some(weight_of))
    }

    fn find_element_impl(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
        weight_of: Option<impl Fn(usize) -> usize>,
    ) -> Option<Vec<usize>> {
        // Unknowns: row combination c ∈ GF(2)^n.
        // Constraints: for every q in restrict with q != target, both x and z
        // components of the product vanish; for target, at least one is
        // non-zero (we try (x,z) target patterns in turn); for every qubit not
        // in restrict/allowed, both components vanish.
        let restrict_set: std::collections::BTreeSet<usize> = restrict.iter().copied().collect();
        let allowed_set: std::collections::BTreeSet<usize> = allowed.iter().copied().collect();
        let forbidden: Vec<usize> = (0..self.n)
            .filter(|&q| q != target && (restrict_set.contains(&q) || !allowed_set.contains(&q)))
            .collect();
        // Build constraint matrix: rows = 2·|forbidden| + 2 (target pattern),
        // cols = n generators.
        let mut a = BitMatrix::zeros(2 * forbidden.len() + 2, self.n);
        for (i, &q) in forbidden.iter().enumerate() {
            for r in 0..self.n {
                a.set(2 * i, r, self.x.get(r, q));
                a.set(2 * i + 1, r, self.z.get(r, q));
            }
        }
        let base = 2 * forbidden.len();
        for r in 0..self.n {
            a.set(base, r, self.x.get(r, target));
            a.set(base + 1, r, self.z.get(r, target));
        }
        let mut best: Option<(usize, Vec<bool>)> = None;
        for (tx, tz) in [(true, false), (false, true), (true, true)] {
            let mut b = vec![false; 2 * forbidden.len() + 2];
            b[base] = tx;
            b[base + 1] = tz;
            let Some(mut c) = a.solve(&b) else { continue };
            if c.iter().all(|&bit| !bit) {
                continue;
            }
            let Some(weight_of) = &weight_of else {
                // Vanilla mode: first valid element wins.
                return Some((0..self.n).filter(|&r| c[r]).collect());
            };
            // Greedy weight reduction over the homogeneous solutions.
            let null = a.null_space();
            let weight =
                |c: &[bool]| -> usize { self.combo_allowed_weight(c, &allowed_set, weight_of) };
            let mut w = weight(&c);
            let mut improved = true;
            while improved {
                improved = false;
                for v in &null {
                    let cand: Vec<bool> = c.iter().zip(v).map(|(&a, &b)| a ^ b).collect();
                    if cand.iter().all(|&bit| !bit) {
                        continue;
                    }
                    let cw = weight(&cand);
                    if cw < w {
                        c = cand;
                        w = cw;
                        improved = true;
                    }
                }
            }
            if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                best = Some((w, c));
            }
        }
        let (_, c) = best?;
        Some((0..self.n).filter(|&r| c[r]).collect())
    }

    /// Support weight of the row-combination `c` restricted to `allowed`.
    fn combo_allowed_weight(
        &self,
        c: &[bool],
        allowed: &std::collections::BTreeSet<usize>,
        weight_of: &impl Fn(usize) -> usize,
    ) -> usize {
        allowed
            .iter()
            .filter(|&&q| {
                let mut x = false;
                let mut z = false;
                for (r, &take) in c.iter().enumerate() {
                    if take {
                        x ^= self.x.get(r, q);
                        z ^= self.z.get(r, q);
                    }
                }
                x || z
            })
            .map(|&q| weight_of(q))
            .sum()
    }

    /// Multiplies the listed rows into the first of them, making that row the
    /// desired group element, and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn combine_rows(&mut self, rows: &[usize]) -> usize {
        let (&dst, rest) = rows
            .split_first()
            .expect("combine_rows needs at least one row");
        for &src in rest {
            self.row_mul(dst, src);
        }
        dst
    }

    // ---- Raw row editing (for solvers that rebuild generators) -----------

    /// Zeroes row `row` (letters and phase). The tableau is *invalid* until
    /// the caller installs a new independent generator; intended for solver
    /// internals that replace a generator wholesale.
    pub fn clear_row(&mut self, row: usize) {
        for q in 0..self.n {
            self.x.set(row, q, false);
            self.z.set(row, q, false);
        }
        self.phase[row] = 0;
    }

    /// Zeroes every row. See [`Tableau::clear_row`] for the validity caveat.
    pub fn clear_all_rows(&mut self) {
        for r in 0..self.n {
            self.clear_row(r);
        }
    }

    /// Sets the X bit of (`row`, `q`).
    pub fn set_x_bit(&mut self, row: usize, q: usize, value: bool) {
        self.x.set(row, q, value);
    }

    /// Sets the Z bit of (`row`, `q`).
    pub fn set_z_bit(&mut self, row: usize, q: usize, value: bool) {
        self.z.set(row, q, value);
    }

    /// Sets the phase exponent of `row` (mod 4).
    pub fn set_phase(&mut self, row: usize, phase: u8) {
        self.phase[row] = phase % 4;
    }

    /// Applies the single-qubit Clifford that maps the Pauli letter of
    /// (`row`, `q`) to `Z`, returning the gate names applied (in application
    /// order) so a circuit can record them. Identity letters are an error.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizerError::IdentityPauli`] if the row acts trivially
    /// on `q`.
    pub fn rotate_to_z(&mut self, row: usize, q: usize) -> Result<Vec<RotGate>, StabilizerError> {
        let mut gates = Vec::new();
        match self.pauli_at(row, q) {
            Pauli::I => return Err(StabilizerError::IdentityPauli { row, qubit: q }),
            Pauli::X => {
                self.h(q);
                gates.push(RotGate::H);
            }
            Pauli::Y => {
                // XZ → S: X-bit set so z flips: Y → X, then H: X → Z.
                self.s(q);
                self.h(q);
                gates.push(RotGate::S);
                gates.push(RotGate::H);
            }
            Pauli::Z => {}
        }
        debug_assert_eq!(self.pauli_at(row, q), Pauli::Z);
        Ok(gates)
    }
}

/// Elementary single-qubit gate emitted by [`Tableau::rotate_to_z`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotGate {
    /// Hadamard.
    H,
    /// Phase gate.
    S,
}

impl std::fmt::Debug for Tableau {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Tableau on {} qubits [", self.n)?;
        for row in 0..self.n {
            let sign = match self.phase[row] {
                0 => "+",
                1 => "i",
                2 => "-",
                3 => "-i",
                _ => unreachable!(),
            };
            write!(f, "  {sign:>2} ")?;
            for q in 0..self.n {
                write!(f, "{}", self.pauli_at(row, q))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    #[test]
    fn zero_state_is_valid() {
        assert!(Tableau::zero_state(5).is_valid_state());
    }

    #[test]
    fn graph_state_is_valid() {
        let g = generators::lattice(2, 3);
        assert!(Tableau::graph_state(&g).is_valid_state());
    }

    #[test]
    fn h_twice_is_identity() {
        let g = generators::path(3);
        let mut t = Tableau::graph_state(&g);
        let orig = t.clone();
        t.h(1);
        t.h(1);
        assert_eq!(t, orig);
    }

    #[test]
    fn s_four_times_is_identity() {
        let mut t = Tableau::graph_state(&generators::path(3));
        let orig = t.clone();
        for _ in 0..4 {
            t.s(1);
        }
        assert_eq!(t, orig);
    }

    #[test]
    fn s_then_sdg_is_identity() {
        let mut t = Tableau::graph_state(&generators::cycle(4));
        let orig = t.clone();
        t.s(2);
        t.sdg(2);
        assert_eq!(t, orig);
    }

    #[test]
    fn cnot_self_inverse() {
        let mut t = Tableau::graph_state(&generators::path(4));
        let orig = t.clone();
        t.cnot(0, 2);
        assert!(t.is_valid_state());
        t.cnot(0, 2);
        assert_eq!(t, orig);
    }

    #[test]
    fn cz_self_inverse_and_symmetric() {
        let mut t1 = Tableau::graph_state(&generators::path(4));
        let mut t2 = t1.clone();
        t1.cz(1, 3);
        t2.cz(3, 1);
        assert_eq!(t1, t2, "CZ is symmetric");
        t1.cz(1, 3);
        assert_eq!(t1, Tableau::graph_state(&generators::path(4)));
    }

    #[test]
    fn bell_state_structure() {
        let mut t = Tableau::zero_state(2);
        t.h(0);
        t.cnot(0, 1);
        // Stabilizers of the Bell state: XX and ZZ.
        t.canonicalize();
        assert!(t.is_valid_state());
        let mut expected = Tableau::zero_state(2);
        // Build XX, ZZ directly.
        expected.x.set(0, 0, true);
        expected.x.set(0, 1, true);
        expected.z.set(0, 0, false);
        expected.z.set(0, 1, false);
        expected.z.set(1, 0, true);
        expected.z.set(1, 1, true);
        expected.phase = vec![0, 0];
        expected.canonicalize();
        assert_eq!(t, expected);
    }

    #[test]
    fn cz_on_plus_states_builds_graph_state() {
        // H on all qubits then CZ per edge must equal Tableau::graph_state.
        let g = generators::cycle(5);
        let mut t = Tableau::zero_state(5);
        for q in 0..5 {
            t.h(q);
        }
        for (a, b) in g.edges() {
            t.cz(a, b);
        }
        assert!(t.same_state_as(&Tableau::graph_state(&g)));
    }

    #[test]
    fn row_mul_keeps_state_valid() {
        let mut t = Tableau::graph_state(&generators::lattice(2, 2));
        t.row_mul(0, 1);
        assert!(t.is_valid_state());
    }

    #[test]
    fn row_mul_y_sign_bookkeeping() {
        // Z·X = iY in operator terms: row1=Z, row0=X on one qubit... build a
        // 1-qubit scenario via 2 qubits to keep the group abelian: rows X⊗X
        // and Z⊗Z multiply to (XZ)⊗(XZ) = (−iY)(−iY) = −Y⊗Y, i.e. phase 2 in
        // our convention means r = 2 + (#Y=2) → operator (i²)·(XZ)(XZ) = −(−iY)(−iY)
        let mut t = Tableau::zero_state(2);
        // row0 = X X, row1 = Z Z (Bell pair stabilizers).
        t.h(0);
        t.cnot(0, 1);
        t.canonicalize();
        t.row_mul(0, 1);
        assert!(t.is_valid_state(), "product row must stay Hermitian: {t:?}");
    }

    #[test]
    fn measure_z_deterministic_on_zero_state() {
        let mut t = Tableau::zero_state(3);
        assert_eq!(t.measure_z(1, true), MeasureOutcome::Deterministic(false));
    }

    #[test]
    fn measure_z_deterministic_minus() {
        let mut t = Tableau::zero_state(1);
        t.px(0); // |1⟩
        assert_eq!(t.measure_z(0, false), MeasureOutcome::Deterministic(true));
    }

    #[test]
    fn measure_z_random_collapses() {
        let mut t = Tableau::zero_state(1);
        t.h(0); // |+⟩
        let out = t.measure_z(0, true);
        assert_eq!(out, MeasureOutcome::Random(true));
        // Now |1⟩.
        assert_eq!(t.measure_z(0, false), MeasureOutcome::Deterministic(true));
        assert!(t.is_valid_state());
    }

    #[test]
    fn measure_z_on_bell_pair_correlates() {
        for forced in [false, true] {
            let mut t = Tableau::zero_state(2);
            t.h(0);
            t.cnot(0, 1);
            let first = t.measure_z(0, forced);
            assert_eq!(first, MeasureOutcome::Random(forced));
            let second = t.measure_z(1, !forced);
            assert_eq!(second, MeasureOutcome::Deterministic(forced));
        }
    }

    #[test]
    fn same_state_ignores_generator_presentation() {
        let g = generators::path(4);
        let mut a = Tableau::graph_state(&g);
        let b = Tableau::graph_state(&g);
        a.row_mul(0, 1);
        a.swap_rows(2, 3);
        assert!(a.same_state_as(&b));
    }

    #[test]
    fn different_states_differ() {
        let a = Tableau::graph_state(&generators::path(4));
        let b = Tableau::graph_state(&generators::cycle(4));
        assert!(!a.same_state_as(&b));
        let mut c = Tableau::graph_state(&generators::path(4));
        c.pz(0); // sign flip on one stabilizer
        assert!(!a.same_state_as(&c));
    }

    #[test]
    fn rotate_to_z_all_letters() {
        // Prepare rows with X, Y, Z at qubit 0 via |+⟩, |+i⟩, |0⟩.
        let mut t = Tableau::zero_state(1);
        t.h(0); // stabilizer X
        assert_eq!(t.pauli_at(0, 0), Pauli::X);
        let gates = t.rotate_to_z(0, 0).unwrap();
        assert_eq!(gates, vec![RotGate::H]);
        assert_eq!(t.pauli_at(0, 0), Pauli::Z);

        let mut t = Tableau::zero_state(1);
        t.h(0);
        t.s(0); // stabilizer Y
        assert_eq!(t.pauli_at(0, 0), Pauli::Y);
        let gates = t.rotate_to_z(0, 0).unwrap();
        assert_eq!(gates, vec![RotGate::S, RotGate::H]);
        assert!(t.is_valid_state());

        let mut t = Tableau::zero_state(1);
        assert!(t.rotate_to_z(0, 0).unwrap().is_empty());
    }

    #[test]
    fn find_element_on_leaf_photon() {
        // Path 0-1-2: is there a group element touching only vertex 2 among
        // photons {0,1,2}? X_2 Z_1 touches 1 too; Z_2-only? The element
        // X_1 Z_0 Z_2 · … — for a path the answer is no element is supported
        // on {2} alone, so the solver must use an emitter; with vertex 1
        // allowed, g = X_2 Z_1 qualifies.
        let t = Tableau::graph_state(&generators::path(3));
        assert!(t.find_element_supported_on(&[0, 1, 2], 2, &[]).is_none());
        let rows = t
            .find_element_supported_on(&[0, 2], 2, &[1])
            .expect("X_2 Z_1 exists");
        assert!(!rows.is_empty());
    }

    #[test]
    fn pauli_gates_flip_phases_only() {
        let g = generators::path(3);
        let mut t = Tableau::graph_state(&g);
        t.px(1);
        // X_1 commutes with X-type generator of vertex 1 but flips rows with
        // Z at 1 (the neighbors' generators).
        assert_eq!(t.phase_of(0), 2);
        assert_eq!(t.phase_of(1), 0);
        assert_eq!(t.phase_of(2), 2);
        assert!(t.is_valid_state());
    }

    #[test]
    fn debug_output_shows_paulis() {
        let t = Tableau::graph_state(&generators::path(2));
        let s = format!("{t:?}");
        assert!(s.contains("XZ"), "{s}");
        assert!(s.contains("ZX"), "{s}");
    }
}
