//! Phase-tracked stabilizer tableaux.
//!
//! A [`Tableau`] holds `n` commuting Hermitian Pauli generators on `n`
//! qubits — a pure stabilizer state. The convention is described in
//! [`crate::pauli`]: row = `i^r · Π_q X_q^{x_q} Z_q^{z_q}` with `r ∈ Z₄`.
//!
//! # Data layout
//!
//! Storage is *bit-sliced* (column-major): each qubit `q` owns two packed
//! [`BitVec`] columns, `xs[q]` and `zs[q]`, whose bit `r` is the X/Z
//! component of generator row `r` at `q`. Phases are packed the same way —
//! two sign bit-vectors `phase_lo`/`phase_hi` over rows encode
//! `r = lo + 2·hi` — so a Clifford gate on one or two qubits updates all `n`
//! generators with `O(n/64)` word operations and the phase bookkeeping is a
//! handful of bitwise formulas instead of per-row `% 4` arithmetic:
//!
//! * `+1 (mod 4)` on a row mask `m`: `hi ^= lo & m; lo ^= m` (carry),
//! * `+2 (mod 4)`: `hi ^= m`,
//! * `+3 (mod 4)`: `hi ^= !lo & m; lo ^= m` (borrow).
//!
//! Row products use the same trick in the other direction:
//! [`Tableau::mul_row_into_mask`] multiplies one source row into *every*
//! row of a mask simultaneously, with the reordering signs accumulated as a
//! packed parity vector. Gauge sweeps (measurement, canonicalization,
//! echelon form, graph-form reduction, the solver's wire isolation) are all
//! built on that broadcast. The scalar original is preserved in
//! [`crate::reference`] as the oracle the equivalence suite tests against.
//!
//! The gate set is the Clifford generators used by the emitter-photonic
//! compiler: `H`, `S`/`S†`, Paulis, `CNOT`, `CZ`, plus row operations and a
//! forced-outcome Z measurement (the compiler chooses the branch it encodes
//! corrections for; verification exercises both branches).

use epgs_graph::gf2::{kernels, BitMatrix, BitVec};
use epgs_graph::Graph;

use crate::error::StabilizerError;
use crate::pauli::Pauli;

/// A pure stabilizer state on `n` qubits as `n` phase-tracked generators.
///
/// # Examples
///
/// ```
/// use epgs_stabilizer::Tableau;
///
/// // |00⟩ → Bell pair.
/// let mut t = Tableau::zero_state(2);
/// t.h(0);
/// t.cnot(0, 1);
/// assert!(t.is_valid_state());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    /// Per-qubit X columns: bit `r` of `xs[q]` is the X bit of row `r` at `q`.
    xs: Vec<BitVec>,
    /// Per-qubit Z columns, same packing.
    zs: Vec<BitVec>,
    /// Low bit of the phase exponent, packed over rows.
    phase_lo: BitVec,
    /// High bit of the phase exponent, packed over rows.
    phase_hi: BitVec,
}

/// Result of a Z-basis measurement on a stabilizer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureOutcome {
    /// The outcome was already determined by the state.
    Deterministic(bool),
    /// The outcome was random; the tableau was collapsed onto the outcome
    /// that was forced by the caller.
    Random(bool),
}

impl MeasureOutcome {
    /// The measured bit regardless of determinism.
    pub fn bit(self) -> bool {
        match self {
            MeasureOutcome::Deterministic(b) | MeasureOutcome::Random(b) => b,
        }
    }
}

/// `phase += 1 (mod 4)` for every row in `mask`.
#[inline]
fn phase_add1(lo: &mut BitVec, hi: &mut BitVec, mask: &[u64]) {
    for ((l, h), &m) in lo
        .words_mut()
        .iter_mut()
        .zip(hi.words_mut().iter_mut())
        .zip(mask)
    {
        *h ^= *l & m;
        *l ^= m;
    }
}

/// `phase += 2 (mod 4)` for every row in `mask`.
#[inline]
fn phase_add2(hi: &mut BitVec, mask: &[u64]) {
    for (h, &m) in hi.words_mut().iter_mut().zip(mask) {
        *h ^= m;
    }
}

/// `phase += 3 (mod 4)` for every row in `mask`.
#[inline]
fn phase_add3(lo: &mut BitVec, hi: &mut BitVec, mask: &[u64]) {
    for ((l, h), &m) in lo
        .words_mut()
        .iter_mut()
        .zip(hi.words_mut().iter_mut())
        .zip(mask)
    {
        *h ^= !*l & m;
        *l ^= m;
    }
}

/// Mutable references to two distinct columns of the store.
#[inline]
fn pair_mut(cols: &mut [BitVec], a: usize, b: usize) -> (&mut BitVec, &mut BitVec) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = cols.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = cols.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

impl Tableau {
    fn blank(n: usize) -> Self {
        Tableau {
            n,
            xs: vec![BitVec::zeros(n); n],
            zs: vec![BitVec::zeros(n); n],
            phase_lo: BitVec::zeros(n),
            phase_hi: BitVec::zeros(n),
        }
    }

    /// The all-|0⟩ state: generators `Z_q`.
    pub fn zero_state(n: usize) -> Self {
        let mut t = Tableau::blank(n);
        for q in 0..n {
            t.zs[q].set(q, true);
        }
        t
    }

    /// The graph state |G⟩: generators `X_v Z_{N(v)}`.
    pub fn graph_state(g: &Graph) -> Self {
        let n = g.vertex_count();
        let mut t = Tableau::blank(n);
        for v in 0..n {
            t.xs[v].set(v, true);
            for &w in g.neighbors(v) {
                t.zs[w].set(v, true);
            }
        }
        t
    }

    /// Resets the tableau in place to |G⟩ ⊗ |0⟩^pad: photon wires `0..n`
    /// carry the graph-state generators `X_v Z_{N(v)}`, the `pad` trailing
    /// wires carry `Z_w` (fresh |0⟩ ancillas). Reuses the existing storage
    /// when the qubit count matches — the workspace-reuse entry point for
    /// solvers that run thousands of small solves back to back.
    ///
    /// Equivalent to building [`Tableau::graph_state`] of `g` embedded in
    /// `n + pad` wires and applying `H` to each pad wire, bit for bit.
    pub fn reset_graph_state_padded(&mut self, g: &Graph, pad: usize) {
        let n = g.vertex_count();
        let total = n + pad;
        if self.n != total {
            *self = Tableau::blank(total);
        } else {
            self.clear_all_rows();
        }
        for v in 0..n {
            self.xs[v].set(v, true);
            for &w in g.neighbors(v) {
                self.zs[w].set(v, true);
            }
        }
        for w in n..total {
            self.zs[w].set(w, true);
        }
    }

    /// Number of qubits (and generators).
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The Pauli letter of row `row` at qubit `q` (phase ignored).
    pub fn pauli_at(&self, row: usize, q: usize) -> Pauli {
        Pauli::from_bits(self.xs[q].get(row), self.zs[q].get(row))
    }

    /// The phase exponent `r ∈ Z₄` of row `row`.
    pub fn phase_of(&self, row: usize) -> u8 {
        self.phase_lo.get(row) as u8 + 2 * self.phase_hi.get(row) as u8
    }

    /// X bit of row `row` at qubit `q`.
    #[inline]
    pub fn x_bit(&self, row: usize, q: usize) -> bool {
        self.xs[q].get(row)
    }

    /// Z bit of row `row` at qubit `q`.
    #[inline]
    pub fn z_bit(&self, row: usize, q: usize) -> bool {
        self.zs[q].get(row)
    }

    /// The packed X column of qubit `q` (bit `r` = X bit of row `r`).
    ///
    /// Column views are the word-parallel query interface: "which rows have
    /// an X at `q`" is `col_x(q).ones()` rather than an `n`-step bit scan.
    #[inline]
    pub fn col_x(&self, q: usize) -> &BitVec {
        &self.xs[q]
    }

    /// The packed Z column of qubit `q` (bit `r` = Z bit of row `r`).
    #[inline]
    pub fn col_z(&self, q: usize) -> &BitVec {
        &self.zs[q]
    }

    /// Mask of rows acting non-trivially on qubit `q` (`col_x | col_z`).
    pub fn rows_touching(&self, q: usize) -> BitVec {
        let mut m = self.xs[q].clone();
        m.or_with(&self.zs[q]);
        m
    }

    /// Allocation-free [`Tableau::rows_touching`]: writes the mask into
    /// `out`, reusing its storage.
    pub fn rows_touching_into(&self, q: usize, out: &mut BitVec) {
        out.copy_from(&self.xs[q]);
        out.or_with(&self.zs[q]);
    }

    /// Qubits where row `row` acts non-trivially, in increasing order.
    pub fn support(&self, row: usize) -> Vec<usize> {
        let (rw, rm) = (row / 64, 1u64 << (row % 64));
        (0..self.n)
            .filter(|&q| (self.xs[q].words()[rw] | self.zs[q].words()[rw]) & rm != 0)
            .collect()
    }

    /// True if row `row` is the identity Pauli (possibly with phase).
    pub fn row_is_identity(&self, row: usize) -> bool {
        let (rw, rm) = (row / 64, 1u64 << (row % 64));
        (0..self.n).all(|q| (self.xs[q].words()[rw] | self.zs[q].words()[rw]) & rm == 0)
    }

    // ---- Clifford gates (conjugation of every generator) -----------------

    /// Hadamard on qubit `q` (`X ↔ Z`).
    pub fn h(&mut self, q: usize) {
        // XZ → ZX = −XZ on rows with both bits set.
        let xq = &self.xs[q];
        let zq = &self.zs[q];
        for ((h, &x), &z) in self
            .phase_hi
            .words_mut()
            .iter_mut()
            .zip(xq.words())
            .zip(zq.words())
        {
            *h ^= x & z;
        }
        std::mem::swap(&mut self.xs[q], &mut self.zs[q]);
    }

    /// Phase gate S on qubit `q` (`X → Y`).
    pub fn s(&mut self, q: usize) {
        // X → i·XZ ; XZ → i·X on rows with an X: z ^= x, phase += 1.
        let xq = &self.xs[q];
        let zq = &mut self.zs[q];
        for (z, &x) in zq.words_mut().iter_mut().zip(xq.words()) {
            *z ^= x;
        }
        phase_add1(&mut self.phase_lo, &mut self.phase_hi, xq.words());
    }

    /// Inverse phase gate S† on qubit `q` (`X → −Y`).
    pub fn sdg(&mut self, q: usize) {
        let xq = &self.xs[q];
        let zq = &mut self.zs[q];
        for (z, &x) in zq.words_mut().iter_mut().zip(xq.words()) {
            *z ^= x;
        }
        phase_add3(&mut self.phase_lo, &mut self.phase_hi, xq.words());
    }

    /// Pauli X on qubit `q` (flips the sign of rows with a Z there).
    pub fn px(&mut self, q: usize) {
        phase_add2(&mut self.phase_hi, self.zs[q].words());
    }

    /// Pauli Z on qubit `q` (flips the sign of rows with an X there).
    pub fn pz(&mut self, q: usize) {
        phase_add2(&mut self.phase_hi, self.xs[q].words());
    }

    /// Pauli Y on qubit `q`.
    pub fn py(&mut self, q: usize) {
        let xq = &self.xs[q];
        let zq = &self.zs[q];
        for ((h, &x), &z) in self
            .phase_hi
            .words_mut()
            .iter_mut()
            .zip(xq.words())
            .zip(zq.words())
        {
            *h ^= x ^ z;
        }
    }

    /// CNOT with control `c`, target `t`.
    ///
    /// In the literal X-before-Z phase convention CNOT introduces no phase:
    /// `x_t ^= x_c`, `z_c ^= z_t` only.
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "cnot requires distinct qubits");
        let (xt, xc) = pair_mut(&mut self.xs, t, c);
        xt.xor_with(xc);
        let (zc, zt) = pair_mut(&mut self.zs, c, t);
        zc.xor_with(zt);
    }

    /// CZ on qubits `a`, `b`.
    ///
    /// `z_b ^= x_a`, `z_a ^= x_b`, with a sign flip when both X bits are set
    /// (from reordering `Z_b X_b → −X_b Z_b`).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "cz requires distinct qubits");
        let xa = &self.xs[a];
        let xb = &self.xs[b];
        for ((h, &wa), &wb) in self
            .phase_hi
            .words_mut()
            .iter_mut()
            .zip(xa.words())
            .zip(xb.words())
        {
            *h ^= wa & wb;
        }
        let (za, zb) = pair_mut(&mut self.zs, a, b);
        zb.xor_with(xa);
        za.xor_with(xb);
    }

    // ---- Row (gauge) operations ------------------------------------------

    /// Replaces row `dst` with the product `row_dst · row_src` (same group,
    /// different generating set).
    ///
    /// # Panics
    ///
    /// Panics if `dst == src`.
    pub fn row_mul(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "row_mul requires distinct rows");
        // Reordering sign: moving each Z of dst past each X of src on the
        // same qubit contributes −1, i.e. phase += 2·|{q : z_dst[q] & x_src[q]}|.
        //
        // A single row is strided across the column store, so this walk
        // touches every column regardless; what it must NOT do is branch on
        // the (uniformly random) src bits — three mispredicted branches per
        // column once made this the one class slower than the row-major
        // reference (see the `row_mul` baseline note in BENCH_tableau.json).
        // The loop below is fully branchless — src bits are extracted as
        // 0/1 words and XORed in shifted, the reordering parity accumulates
        // in bit 0 of `swaps` — which holds the class at ≥ 2× the reference.
        // (A transpose-tile batch path was measured and rejected for the
        // single-row case: one row is O(n) to extract either way, and the
        // tile only pays when many rows share a band — that is what
        // `gather_rows_batch` is for.)
        let (dw, db) = (dst / 64, (dst % 64) as u32);
        let (sw, sb) = (src / 64, (src % 64) as u32);
        let mut swaps = 0u64;
        if sw == dw {
            // Rows share a storage word (always true for n ≤ 64): one
            // load/store per column and plane.
            for (xcol, zcol) in self.xs.iter_mut().zip(self.zs.iter_mut()) {
                let xw = &mut xcol.words_mut()[dw];
                let x_src = (*xw >> sb) & 1;
                *xw ^= x_src << db;
                let zw = &mut zcol.words_mut()[dw];
                // z_dst is read before its own update; the x update above
                // never touches the Z plane.
                swaps ^= x_src & (*zw >> db);
                *zw ^= ((*zw >> sb) & 1) << db;
            }
        } else {
            for (xcol, zcol) in self.xs.iter_mut().zip(self.zs.iter_mut()) {
                let xw = xcol.words_mut();
                let x_src = (xw[sw] >> sb) & 1;
                xw[dw] ^= x_src << db;
                let zw = zcol.words_mut();
                swaps ^= x_src & (zw[dw] >> db);
                zw[dw] ^= ((zw[sw] >> sb) & 1) << db;
            }
        }
        let p = (self.phase_of(dst) + self.phase_of(src) + if swaps & 1 == 1 { 2 } else { 0 }) % 4;
        self.set_phase(dst, p);
    }

    /// Multiplies row `src` into **every** row of `mask` simultaneously — the
    /// word-parallel broadcast behind all gauge sweeps (measurement collapse,
    /// canonicalization, echelon reduction, the solver's wire isolation).
    ///
    /// Equivalent to `for dst in mask.ones() { self.row_mul(dst, src) }` but
    /// with the letter updates done one whole column at a time and the
    /// reordering signs accumulated as a packed parity vector.
    ///
    /// # Panics
    ///
    /// Panics if `mask` contains `src` or has the wrong length.
    pub fn mul_row_into_mask(&mut self, src: usize, mask: &BitVec) {
        assert_eq!(mask.len(), self.n, "mask length must match row count");
        assert!(!mask.get(src), "mask must not contain the source row");
        if mask.is_zero() {
            return;
        }
        let (sw, sm) = (src / 64, 1u64 << (src % 64));
        // parity[r] = ⊕_q z_r[q] & x_src[q], over the *pre-update* Z bits.
        let mut parity = vec![0u64; mask.words().len()];
        for q in 0..self.n {
            if self.xs[q].words()[sw] & sm != 0 {
                for (p, &z) in parity.iter_mut().zip(self.zs[q].words()) {
                    *p ^= z;
                }
            }
        }
        // phase[dst] += phase[src] + 2·parity[dst] for dst in mask.
        for ((h, &p), &m) in self
            .phase_hi
            .words_mut()
            .iter_mut()
            .zip(&parity)
            .zip(mask.words())
        {
            *h ^= p & m;
        }
        match self.phase_of(src) {
            0 => {}
            1 => phase_add1(&mut self.phase_lo, &mut self.phase_hi, mask.words()),
            2 => phase_add2(&mut self.phase_hi, mask.words()),
            _ => phase_add3(&mut self.phase_lo, &mut self.phase_hi, mask.words()),
        }
        // Letters: every column in src's support gets the whole mask XORed in.
        for q in 0..self.n {
            if self.xs[q].words()[sw] & sm != 0 {
                self.xs[q].xor_with(mask);
            }
            if self.zs[q].words()[sw] & sm != 0 {
                self.zs[q].xor_with(mask);
            }
        }
    }

    /// Swaps two generator rows (pure bookkeeping).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for q in 0..self.n {
            self.xs[q].swap_bits(a, b);
            self.zs[q].swap_bits(a, b);
        }
        self.phase_lo.swap_bits(a, b);
        self.phase_hi.swap_bits(a, b);
    }

    /// True if rows `a` and `b` commute as Pauli operators.
    pub fn rows_commute(&self, a: usize, b: usize) -> bool {
        let (aw, am) = (a / 64, 1u64 << (a % 64));
        let (bw, bm) = (b / 64, 1u64 << (b % 64));
        let mut acc = false;
        for q in 0..self.n {
            let xa = self.xs[q].words()[aw] & am != 0;
            let za = self.zs[q].words()[aw] & am != 0;
            let xb = self.xs[q].words()[bw] & bm != 0;
            let zb = self.zs[q].words()[bw] & bm != 0;
            acc ^= (xa & zb) ^ (za & xb);
        }
        !acc
    }

    /// Mask of rows that *anticommute* with row `a`, computed word-parallel:
    /// `⊕_{q ∈ suppX(a)} col_z(q) ⊕ ⊕_{q ∈ suppZ(a)} col_x(q)`.
    fn anticommute_mask(&self, a: usize) -> BitVec {
        let (aw, am) = (a / 64, 1u64 << (a % 64));
        let mut acc = BitVec::zeros(self.n);
        for q in 0..self.n {
            if self.xs[q].words()[aw] & am != 0 {
                acc.xor_with(&self.zs[q]);
            }
            if self.zs[q].words()[aw] & am != 0 {
                acc.xor_with(&self.xs[q]);
            }
        }
        acc
    }

    /// Validates the state: all rows Hermitian, mutually commuting, and
    /// linearly independent. O(n³) worst case; intended for tests and debug
    /// assertions.
    pub fn is_valid_state(&self) -> bool {
        // Hermiticity: r ≡ #Y (mod 2) per row, i.e. the packed low phase bit
        // must equal the packed per-row Y-parity.
        let mut ypar = BitVec::zeros(self.n);
        for q in 0..self.n {
            for (y, (&x, &z)) in ypar
                .words_mut()
                .iter_mut()
                .zip(self.xs[q].words().iter().zip(self.zs[q].words()))
            {
                *y ^= x & z;
            }
        }
        if ypar != self.phase_lo {
            return false;
        }
        // Commutation: the anticommute mask of every row must be empty.
        for a in 0..self.n {
            if !self.anticommute_mask(a).is_zero() {
                return false;
            }
        }
        // Independence: the n×2n symplectic matrix has rank n.
        let mut m = BitMatrix::zeros(self.n, 2 * self.n);
        for q in 0..self.n {
            for r in self.xs[q].ones() {
                m.set(r, q, true);
            }
            for r in self.zs[q].ones() {
                m.set(r, self.n + q, true);
            }
        }
        m.rank() == self.n
    }

    /// Measures qubit `q` in the Z basis.
    ///
    /// If the outcome is random, the state collapses onto the branch given by
    /// `forced`; if deterministic, `forced` is ignored and the true outcome is
    /// reported.
    pub fn measure_z(&mut self, q: usize, forced: bool) -> MeasureOutcome {
        // A generator anticommuting with Z_q is one with an X there.
        match self.xs[q].first_one() {
            Some(p) => {
                let mut mask = self.xs[q].clone();
                mask.set(p, false);
                self.mul_row_into_mask(p, &mask);
                // Replace the pivot row with ±Z_q.
                self.clear_row(p);
                self.zs[q].set(p, true);
                self.set_phase(p, if forced { 2 } else { 0 });
                MeasureOutcome::Random(forced)
            }
            None => {
                // Deterministic: express Z_q over the generators and read the
                // accumulated phase.
                let sign = self
                    .deterministic_z_sign(q)
                    .expect("no X at q implies Z_q is in the group for a pure state");
                MeasureOutcome::Deterministic(sign)
            }
        }
    }

    /// Gathers the letters of every row in `rows` into the rows of `gx` /
    /// `gz`, packed over *qubits* (the transpose direction of the column
    /// store), in increasing row order.
    ///
    /// Extracting one row from the bit-sliced store costs a strided bit-read
    /// per column no matter what; extracting a *set* of rows does not: each
    /// 64-row band of each 64-column group is loaded once into a 64×64 tile,
    /// bit-transposed in registers
    /// ([`epgs_graph::gf2::kernels::transpose_64x64`]), and the wanted rows
    /// are then whole words of the transposed tile. For the ~n/2-row
    /// combinations [`Tableau::deterministic_z_sign_in`] multiplies out,
    /// this replaces `O(n)` strided single-bit reads per row with amortized
    /// `O(n/64)` word reads plus one transpose per tile.
    fn gather_rows_batch(&self, rows: &BitVec, gx: &mut BitMatrix, gz: &mut BitMatrix) {
        debug_assert_eq!(rows.len(), self.n);
        let m = rows.count_ones();
        gx.reset(m, self.n);
        gz.reset(m, self.n);
        let groups = self.n.div_ceil(64);
        let mut tile = [0u64; 64];
        let mut out_base = 0usize;
        for (band, &band_bits) in rows.words().iter().enumerate() {
            if band_bits == 0 {
                continue;
            }
            for g in 0..groups {
                let q0 = g * 64;
                let width = (self.n - q0).min(64);
                for (plane, out) in [(&self.xs, &mut *gx), (&self.zs, &mut *gz)] {
                    for (j, t) in tile[..width].iter_mut().enumerate() {
                        *t = plane[q0 + j].words()[band];
                    }
                    tile[width..].fill(0);
                    kernels::transpose_64x64(&mut tile);
                    let mut bits = band_bits;
                    let mut idx = out_base;
                    while bits != 0 {
                        let i = bits.trailing_zeros() as usize;
                        out.row_words_mut(idx)[g] = tile[i];
                        idx += 1;
                        bits &= bits - 1;
                    }
                }
            }
            out_base += band_bits.count_ones() as usize;
        }
    }

    /// If no generator has an X at `q`, `Z_q` is in the stabilizer group of a
    /// pure state. Returns `Some(bit)` where `bit = true` means `−Z_q` (i.e.
    /// a measurement yields 1), or `None` if an X is present.
    pub fn deterministic_z_sign(&self, q: usize) -> Option<bool> {
        self.deterministic_z_sign_in(q, &mut ElementScratch::new())
    }

    /// Allocation-free [`Tableau::deterministic_z_sign`]: all intermediate
    /// storage lives in `scratch` and is reused across calls.
    pub fn deterministic_z_sign_in(&self, q: usize, scratch: &mut ElementScratch) -> Option<bool> {
        if !self.xs[q].is_zero() {
            return None;
        }
        // Solve over GF(2): which subset of rows multiplies to Z_q?
        // Build the 2n×(n+1) augmented system A c = e (columns are
        // generators, rhs in the trailing column). In the bit-sliced layout
        // each system row *is* a stored column: word copies. The generators
        // of a pure state are independent, so the solution is unique and any
        // consistent elimination returns the same combination.
        let s = scratch;
        s.a.reset(2 * self.n, self.n + 1);
        // All-zero constraint rows are skipped (see `find_element_impl`);
        // the rhs row — `q`'s Z component — is always kept so an
        // inconsistent (impure) system still reads as such.
        let mut rows = 0;
        for col in 0..self.n {
            if !self.xs[col].is_zero() {
                s.a.copy_row_from(rows, &self.xs[col]);
                rows += 1;
            }
            if col == q || !self.zs[col].is_zero() {
                s.a.copy_row_from(rows, &self.zs[col]);
                if col == q {
                    s.a.set(rows, self.n, true);
                }
                rows += 1;
            }
        }
        s.a.truncate_rows(rows);
        s.a.rref_within_into(self.n, &mut s.pivots);
        if !s
            .a
            .solution_from_reduced_into(&s.pivots, self.n, 0, &mut s.c)
        {
            return None;
        }
        // Multiply out the chosen rows on packed accumulators to get the
        // sign. The rows are gathered in one transpose-tile batch pass; the
        // sequential sweep below then works on row-major words.
        self.gather_rows_batch(&s.c, &mut s.gather_x, &mut s.gather_z);
        s.acc_x.reset(self.n);
        s.acc_z.reset(self.n);
        let mut phase: u8 = 0;
        for (i, r) in s.c.ones().enumerate() {
            let swaps = s.gather_x.row_parity_and(i, &s.acc_z);
            phase = (phase + self.phase_of(r) + if swaps { 2 } else { 0 }) % 4;
            s.gather_x.xor_row_into(i, &mut s.acc_x);
            s.gather_z.xor_row_into(i, &mut s.acc_z);
        }
        debug_assert!(s.acc_x.is_zero());
        debug_assert!((0..self.n).all(|col| s.acc_z.get(col) == (col == q)));
        debug_assert!(phase.is_multiple_of(2));
        Some(phase == 2)
    }

    /// Canonicalizes the tableau in place: symplectic RREF over the column
    /// order `x_0, z_0, x_1, z_1, …` with rows sorted by pivot. Two tableaux
    /// describe the same state iff their canonical forms are identical.
    pub fn canonicalize(&mut self) {
        let order: Vec<usize> = (0..self.n).collect();
        self.echelon_gauge(&order);
    }

    /// Returns true if `self` and `other` describe the same quantum state.
    pub fn same_state_as(&self, other: &Tableau) -> bool {
        if self.n != other.n {
            return false;
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.canonicalize();
        b.canonicalize();
        a == b
    }

    /// Reduces rows to echelon form over the *qubit-pair* column order
    /// restricted to `qubit_order`, returning nothing but leaving the tableau
    /// in the echelon gauge. Used by the time-reversed solver (and, over the
    /// full order, by [`Tableau::canonicalize`]).
    pub fn echelon_gauge(&mut self, qubit_order: &[usize]) {
        let mut pivot_row = 0;
        for &q in qubit_order {
            for is_z in [false, true] {
                if pivot_row >= self.n {
                    return;
                }
                // For the Z pass only rows without an X at q qualify, since X
                // pivots were already cleared below pivot_row.
                let col = if is_z { &self.zs[q] } else { &self.xs[q] };
                let Some(r) = col.first_one_at_or_after(pivot_row) else {
                    continue;
                };
                self.swap_rows(pivot_row, r);
                let col = if is_z { &self.zs[q] } else { &self.xs[q] };
                let mut mask = col.clone();
                mask.set(pivot_row, false);
                self.mul_row_into_mask(pivot_row, &mask);
                pivot_row += 1;
            }
        }
    }

    /// Finds a group element (as a row-combination) whose support, restricted
    /// to `restrict`, is exactly `{target}` and whose support outside
    /// `restrict ∪ allowed` is empty. Returns the indices of rows to multiply,
    /// or `None`.
    ///
    /// `restrict` are the photon columns, `allowed` the emitter columns, in
    /// solver terms: "find a stabilizer touching photon `target` and no other
    /// photon". Among all valid elements, one with (locally) minimal support
    /// on `allowed` is returned — fewer supported emitters means fewer
    /// emitter-emitter CNOTs downstream, so the solution is post-optimized
    /// over the constraint null space with a greedy descent.
    pub fn find_element_supported_on(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
    ) -> Option<Vec<usize>> {
        self.find_element_weighted(restrict, target, allowed, |_| 1)
    }

    /// Allocation-reusing [`Tableau::find_element_supported_on`]: the
    /// constraint system, RREF pivots, null-space basis, and candidate
    /// vectors all live in `scratch`.
    pub fn find_element_supported_on_in(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
        scratch: &mut ElementScratch,
    ) -> Option<Vec<usize>> {
        self.find_element_weighted_in(restrict, target, allowed, |_| 1, scratch)
    }

    /// Like [`Tableau::find_element_supported_on`], but returning the *first*
    /// valid element without any support-weight optimization — the behavior
    /// of the vanilla Li-et-al. protocol (and of GraphiQ's deterministic
    /// solver), which works in an echelon gauge and takes whichever emission
    /// generator appears. Kept for faithful baseline comparisons.
    pub fn find_element_any(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
    ) -> Option<Vec<usize>> {
        self.find_element_any_in(restrict, target, allowed, &mut ElementScratch::new())
    }

    /// Allocation-reusing [`Tableau::find_element_any`].
    pub fn find_element_any_in(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
        scratch: &mut ElementScratch,
    ) -> Option<Vec<usize>> {
        self.find_element_impl(
            restrict,
            target,
            allowed,
            None::<fn(usize) -> usize>,
            scratch,
        )
    }

    /// Like [`Tableau::find_element_supported_on`], but minimizing a custom
    /// per-qubit support weight over `allowed` instead of plain support
    /// count. Solvers use this to steer work onto preferred emitters.
    pub fn find_element_weighted(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
        weight_of: impl Fn(usize) -> usize,
    ) -> Option<Vec<usize>> {
        self.find_element_impl(
            restrict,
            target,
            allowed,
            Some(weight_of),
            &mut ElementScratch::new(),
        )
    }

    /// Allocation-reusing [`Tableau::find_element_weighted`].
    pub fn find_element_weighted_in(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
        weight_of: impl Fn(usize) -> usize,
        scratch: &mut ElementScratch,
    ) -> Option<Vec<usize>> {
        self.find_element_impl(restrict, target, allowed, Some(weight_of), scratch)
    }

    fn find_element_impl(
        &self,
        restrict: &[usize],
        target: usize,
        allowed: &[usize],
        weight_of: Option<impl Fn(usize) -> usize>,
        s: &mut ElementScratch,
    ) -> Option<Vec<usize>> {
        // Unknowns: row combination c ∈ GF(2)^n.
        // Constraints: for every q in restrict with q != target, both x and z
        // components of the product vanish; for target, at least one is
        // non-zero (we try (x,z) target patterns in turn); for every qubit not
        // in restrict/allowed, both components vanish.
        s.in_restrict.clear();
        s.in_restrict.resize(self.n, false);
        for &q in restrict {
            if q < self.n {
                s.in_restrict[q] = true;
            }
        }
        s.in_allowed.clear();
        s.in_allowed.resize(self.n, false);
        for &q in allowed {
            if q < self.n {
                s.in_allowed[q] = true;
            }
        }
        s.allowed_sorted.clear();
        s.allowed_sorted
            .extend((0..self.n).filter(|&q| s.in_allowed[q]));
        s.forbidden.clear();
        s.forbidden
            .extend((0..self.n).filter(|&q| q != target && (s.in_restrict[q] || !s.in_allowed[q])));
        // Build the constraint matrix. Each constraint row is a stored X/Z
        // column of the tableau, so assembly is pure word copies:
        // rows ≤ 2·|forbidden| + 2 (target pattern), cols = n generators —
        // augmented with the three (x, z) target patterns as extra columns
        // so ONE elimination serves every pattern solve and the null space,
        // instead of the four independent RREFs the scalar engine ran.
        // All-zero constraint rows (qubits nobody touches in that component)
        // are skipped outright: they can never pivot, never change, and
        // never carry a rhs bit, so dropping them leaves the reduction — and
        // every solution read from it — bit-identical while shrinking each
        // elimination scan.
        s.a.reset(2 * s.forbidden.len() + 2, self.n + 3);
        let mut base = 0;
        for &q in &s.forbidden {
            if !self.xs[q].is_zero() {
                s.a.copy_row_from(base, &self.xs[q]);
                base += 1;
            }
            if !self.zs[q].is_zero() {
                s.a.copy_row_from(base, &self.zs[q]);
                base += 1;
            }
        }
        s.a.truncate_rows(base + 2);
        s.a.copy_row_from(base, &self.xs[target]);
        s.a.copy_row_from(base + 1, &self.zs[target]);
        // Pattern rhs columns: (x, z) = (1,0), (0,1), (1,1).
        s.a.set(base, self.n, true);
        s.a.set(base + 1, self.n + 1, true);
        s.a.set(base, self.n + 2, true);
        s.a.set(base + 1, self.n + 2, true);
        s.a.rref_within_into(self.n, &mut s.pivots);
        // The null space is shared by every pattern; its dimension is known
        // from the pivot count, so the basis is materialized only when a
        // greedy descent can actually use it.
        let null_dim = self.n - s.pivots.len();
        let mut have_null = false;
        let mut best_w: Option<usize> = None;
        for pattern in 0..3 {
            if !s
                .a
                .solution_from_reduced_into(&s.pivots, self.n, pattern, &mut s.c)
            {
                continue;
            }
            if s.c.is_zero() {
                continue;
            }
            let Some(weight_of) = &weight_of else {
                // Vanilla mode: first valid element wins.
                return Some(s.c.ones().collect());
            };
            // Greedy weight reduction over the homogeneous solutions, with
            // packed candidate combinations: candidate = c ⊕ basis row, and
            // the weight check is a popcount-parity per allowed qubit. A
            // weight of zero cannot improve, so the descent (and the basis
            // construction) is skipped outright at the floor.
            let mut w = self.combo_allowed_weight(&s.c, &s.allowed_sorted, weight_of);
            let mut improved = w > 0 && null_dim > 0;
            while improved {
                if !have_null {
                    s.a.null_space_from_reduced_into(&s.pivots, self.n, &mut s.null);
                    have_null = true;
                }
                improved = false;
                for v in 0..s.null.rows() {
                    s.cand.copy_from(&s.c);
                    s.null.xor_row_into(v, &mut s.cand);
                    if s.cand.is_zero() {
                        continue;
                    }
                    let cw = self.combo_allowed_weight(&s.cand, &s.allowed_sorted, weight_of);
                    if cw < w {
                        std::mem::swap(&mut s.c, &mut s.cand);
                        w = cw;
                        improved = true;
                    }
                }
                improved = improved && w > 0;
            }
            if best_w.is_none_or(|bw| w < bw) {
                best_w = Some(w);
                s.best.copy_from(&s.c);
            }
        }
        best_w?;
        Some(s.best.ones().collect())
    }

    /// Support weight of the row-combination `c` (a packed row mask)
    /// restricted to `allowed` (ascending, deduplicated): the product's
    /// letter at `q` is non-trivial iff an odd number of taken rows has an X
    /// (resp. Z) there, which is one word-parallel [`BitVec::parity_and`]
    /// per component.
    fn combo_allowed_weight(
        &self,
        c: &BitVec,
        allowed: &[usize],
        weight_of: &impl Fn(usize) -> usize,
    ) -> usize {
        allowed
            .iter()
            .filter(|&&q| self.xs[q].parity_and(c) || self.zs[q].parity_and(c))
            .map(|&q| weight_of(q))
            .sum()
    }

    /// Multiplies the listed rows into the first of them, making that row the
    /// desired group element, and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn combine_rows(&mut self, rows: &[usize]) -> usize {
        let (&dst, rest) = rows
            .split_first()
            .expect("combine_rows needs at least one row");
        for &src in rest {
            self.row_mul(dst, src);
        }
        dst
    }

    // ---- Raw row editing (for solvers that rebuild generators) -----------

    /// Zeroes row `row` (letters and phase). The tableau is *invalid* until
    /// the caller installs a new independent generator; intended for solver
    /// internals that replace a generator wholesale.
    pub fn clear_row(&mut self, row: usize) {
        for q in 0..self.n {
            self.xs[q].set(row, false);
            self.zs[q].set(row, false);
        }
        self.phase_lo.set(row, false);
        self.phase_hi.set(row, false);
    }

    /// Zeroes every row. See [`Tableau::clear_row`] for the validity caveat.
    pub fn clear_all_rows(&mut self) {
        for q in 0..self.n {
            self.xs[q].clear();
            self.zs[q].clear();
        }
        self.phase_lo.clear();
        self.phase_hi.clear();
    }

    /// Sets the X bit of (`row`, `q`).
    pub fn set_x_bit(&mut self, row: usize, q: usize, value: bool) {
        self.xs[q].set(row, value);
    }

    /// Sets the Z bit of (`row`, `q`).
    pub fn set_z_bit(&mut self, row: usize, q: usize, value: bool) {
        self.zs[q].set(row, value);
    }

    /// Sets the phase exponent of `row` (mod 4).
    pub fn set_phase(&mut self, row: usize, phase: u8) {
        let p = phase % 4;
        self.phase_lo.set(row, p & 1 != 0);
        self.phase_hi.set(row, p & 2 != 0);
    }

    /// Applies the single-qubit Clifford that maps the Pauli letter of
    /// (`row`, `q`) to `Z`, returning the gate names applied (in application
    /// order) so a circuit can record them. Identity letters are an error.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizerError::IdentityPauli`] if the row acts trivially
    /// on `q`.
    pub fn rotate_to_z(&mut self, row: usize, q: usize) -> Result<Vec<RotGate>, StabilizerError> {
        let mut gates = Vec::new();
        match self.pauli_at(row, q) {
            Pauli::I => return Err(StabilizerError::IdentityPauli { row, qubit: q }),
            Pauli::X => {
                self.h(q);
                gates.push(RotGate::H);
            }
            Pauli::Y => {
                // XZ → S: X-bit set so z flips: Y → X, then H: X → Z.
                self.s(q);
                self.h(q);
                gates.push(RotGate::S);
                gates.push(RotGate::H);
            }
            Pauli::Z => {}
        }
        debug_assert_eq!(self.pauli_at(row, q), Pauli::Z);
        Ok(gates)
    }
}

/// Reusable scratch storage for the tableau's linear-algebra queries
/// ([`Tableau::find_element_weighted_in`],
/// [`Tableau::deterministic_z_sign_in`] and friends).
///
/// One scratch serves any number of tableaux of any size: every query
/// reshapes the buffers it needs via [`BitVec::reset`] /
/// [`BitMatrix::reset`], which reuse the underlying allocations. Solvers
/// that run thousands of small solves hold one `ElementScratch` (inside
/// `epgs_solver`'s `SolverWorkspace`) instead of allocating a constraint
/// system, pivot list, and null-space basis per call.
#[derive(Debug, Clone)]
pub struct ElementScratch {
    /// Constraint system (also the augmented solve matrix).
    a: BitMatrix,
    /// Null-space basis of `a`'s leading block.
    null: BitMatrix,
    /// RREF pivot columns.
    pivots: Vec<usize>,
    /// Current solution / row combination.
    c: BitVec,
    /// Greedy-descent candidate.
    cand: BitVec,
    /// Best combination across target patterns.
    best: BitVec,
    /// Packed product accumulators (sign computation).
    acc_x: BitVec,
    acc_z: BitVec,
    /// Transpose-tile batch gather outputs (rows of the chosen combination,
    /// packed over qubits).
    gather_x: BitMatrix,
    gather_z: BitMatrix,
    /// Membership masks over qubits.
    in_restrict: Vec<bool>,
    in_allowed: Vec<bool>,
    /// `allowed`, ascending and deduplicated.
    allowed_sorted: Vec<usize>,
    /// Qubits whose product component must vanish.
    forbidden: Vec<usize>,
}

impl ElementScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        ElementScratch {
            a: BitMatrix::zeros(0, 0),
            null: BitMatrix::zeros(0, 0),
            pivots: Vec::new(),
            c: BitVec::zeros(0),
            cand: BitVec::zeros(0),
            best: BitVec::zeros(0),
            acc_x: BitVec::zeros(0),
            acc_z: BitVec::zeros(0),
            gather_x: BitMatrix::zeros(0, 0),
            gather_z: BitMatrix::zeros(0, 0),
            in_restrict: Vec::new(),
            in_allowed: Vec::new(),
            allowed_sorted: Vec::new(),
            forbidden: Vec::new(),
        }
    }
}

impl Default for ElementScratch {
    fn default() -> Self {
        ElementScratch::new()
    }
}

/// Elementary single-qubit gate emitted by [`Tableau::rotate_to_z`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotGate {
    /// Hadamard.
    H,
    /// Phase gate.
    S,
}

impl std::fmt::Debug for Tableau {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Tableau on {} qubits [", self.n)?;
        for row in 0..self.n {
            let sign = match self.phase_of(row) {
                0 => "+",
                1 => "i",
                2 => "-",
                3 => "-i",
                _ => unreachable!(),
            };
            write!(f, "  {sign:>2} ")?;
            for q in 0..self.n {
                write!(f, "{}", self.pauli_at(row, q))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    #[test]
    fn zero_state_is_valid() {
        assert!(Tableau::zero_state(5).is_valid_state());
    }

    #[test]
    fn graph_state_is_valid() {
        let g = generators::lattice(2, 3);
        assert!(Tableau::graph_state(&g).is_valid_state());
    }

    #[test]
    fn h_twice_is_identity() {
        let g = generators::path(3);
        let mut t = Tableau::graph_state(&g);
        let orig = t.clone();
        t.h(1);
        t.h(1);
        assert_eq!(t, orig);
    }

    #[test]
    fn s_four_times_is_identity() {
        let mut t = Tableau::graph_state(&generators::path(3));
        let orig = t.clone();
        for _ in 0..4 {
            t.s(1);
        }
        assert_eq!(t, orig);
    }

    #[test]
    fn s_then_sdg_is_identity() {
        let mut t = Tableau::graph_state(&generators::cycle(4));
        let orig = t.clone();
        t.s(2);
        t.sdg(2);
        assert_eq!(t, orig);
    }

    #[test]
    fn cnot_self_inverse() {
        let mut t = Tableau::graph_state(&generators::path(4));
        let orig = t.clone();
        t.cnot(0, 2);
        assert!(t.is_valid_state());
        t.cnot(0, 2);
        assert_eq!(t, orig);
    }

    #[test]
    fn cz_self_inverse_and_symmetric() {
        let mut t1 = Tableau::graph_state(&generators::path(4));
        let mut t2 = t1.clone();
        t1.cz(1, 3);
        t2.cz(3, 1);
        assert_eq!(t1, t2, "CZ is symmetric");
        t1.cz(1, 3);
        assert_eq!(t1, Tableau::graph_state(&generators::path(4)));
    }

    #[test]
    fn bell_state_structure() {
        let mut t = Tableau::zero_state(2);
        t.h(0);
        t.cnot(0, 1);
        // Stabilizers of the Bell state: XX and ZZ.
        t.canonicalize();
        assert!(t.is_valid_state());
        let mut expected = Tableau::zero_state(2);
        expected.clear_all_rows();
        // Build XX, ZZ directly.
        expected.set_x_bit(0, 0, true);
        expected.set_x_bit(0, 1, true);
        expected.set_z_bit(1, 0, true);
        expected.set_z_bit(1, 1, true);
        expected.canonicalize();
        assert_eq!(t, expected);
    }

    #[test]
    fn cz_on_plus_states_builds_graph_state() {
        // H on all qubits then CZ per edge must equal Tableau::graph_state.
        let g = generators::cycle(5);
        let mut t = Tableau::zero_state(5);
        for q in 0..5 {
            t.h(q);
        }
        for (a, b) in g.edges() {
            t.cz(a, b);
        }
        assert!(t.same_state_as(&Tableau::graph_state(&g)));
    }

    #[test]
    fn row_mul_keeps_state_valid() {
        let mut t = Tableau::graph_state(&generators::lattice(2, 2));
        t.row_mul(0, 1);
        assert!(t.is_valid_state());
    }

    #[test]
    fn row_mul_y_sign_bookkeeping() {
        // Rows X⊗X and Z⊗Z (Bell stabilizers) multiply to −Y⊗Y; the packed
        // phase bits must absorb the two reordering signs correctly.
        let mut t = Tableau::zero_state(2);
        t.h(0);
        t.cnot(0, 1);
        t.canonicalize();
        t.row_mul(0, 1);
        assert!(t.is_valid_state(), "product row must stay Hermitian: {t:?}");
    }

    #[test]
    fn mul_row_into_mask_matches_sequential_row_mul() {
        let g = generators::lattice(3, 3);
        let mut a = Tableau::graph_state(&g);
        let mut b = a.clone();
        // Multiply row 4 into rows {0, 2, 7, 8} both ways.
        let rows = [0usize, 2, 7, 8];
        let mut mask = epgs_graph::gf2::BitVec::zeros(a.num_qubits());
        for &r in &rows {
            mask.set(r, true);
        }
        a.mul_row_into_mask(4, &mask);
        for &r in &rows {
            b.row_mul(r, 4);
        }
        assert_eq!(a, b);
        assert!(a.is_valid_state());
    }

    #[test]
    fn measure_z_deterministic_on_zero_state() {
        let mut t = Tableau::zero_state(3);
        assert_eq!(t.measure_z(1, true), MeasureOutcome::Deterministic(false));
    }

    #[test]
    fn measure_z_deterministic_minus() {
        let mut t = Tableau::zero_state(1);
        t.px(0); // |1⟩
        assert_eq!(t.measure_z(0, false), MeasureOutcome::Deterministic(true));
    }

    #[test]
    fn measure_z_random_collapses() {
        let mut t = Tableau::zero_state(1);
        t.h(0); // |+⟩
        let out = t.measure_z(0, true);
        assert_eq!(out, MeasureOutcome::Random(true));
        // Now |1⟩.
        assert_eq!(t.measure_z(0, false), MeasureOutcome::Deterministic(true));
        assert!(t.is_valid_state());
    }

    #[test]
    fn measure_z_on_bell_pair_correlates() {
        for forced in [false, true] {
            let mut t = Tableau::zero_state(2);
            t.h(0);
            t.cnot(0, 1);
            let first = t.measure_z(0, forced);
            assert_eq!(first, MeasureOutcome::Random(forced));
            let second = t.measure_z(1, !forced);
            assert_eq!(second, MeasureOutcome::Deterministic(forced));
        }
    }

    #[test]
    fn same_state_ignores_generator_presentation() {
        let g = generators::path(4);
        let mut a = Tableau::graph_state(&g);
        let b = Tableau::graph_state(&g);
        a.row_mul(0, 1);
        a.swap_rows(2, 3);
        assert!(a.same_state_as(&b));
    }

    #[test]
    fn different_states_differ() {
        let a = Tableau::graph_state(&generators::path(4));
        let b = Tableau::graph_state(&generators::cycle(4));
        assert!(!a.same_state_as(&b));
        let mut c = Tableau::graph_state(&generators::path(4));
        c.pz(0); // sign flip on one stabilizer
        assert!(!a.same_state_as(&c));
    }

    #[test]
    fn rotate_to_z_all_letters() {
        // Prepare rows with X, Y, Z at qubit 0 via |+⟩, |+i⟩, |0⟩.
        let mut t = Tableau::zero_state(1);
        t.h(0); // stabilizer X
        assert_eq!(t.pauli_at(0, 0), Pauli::X);
        let gates = t.rotate_to_z(0, 0).unwrap();
        assert_eq!(gates, vec![RotGate::H]);
        assert_eq!(t.pauli_at(0, 0), Pauli::Z);

        let mut t = Tableau::zero_state(1);
        t.h(0);
        t.s(0); // stabilizer Y
        assert_eq!(t.pauli_at(0, 0), Pauli::Y);
        let gates = t.rotate_to_z(0, 0).unwrap();
        assert_eq!(gates, vec![RotGate::S, RotGate::H]);
        assert!(t.is_valid_state());

        let mut t = Tableau::zero_state(1);
        assert!(t.rotate_to_z(0, 0).unwrap().is_empty());
    }

    #[test]
    fn find_element_on_leaf_photon() {
        // Path 0-1-2: is there a group element touching only vertex 2 among
        // photons {0,1,2}? X_2 Z_1 touches 1 too; Z_2-only? The element
        // X_1 Z_0 Z_2 · … — for a path the answer is no element is supported
        // on {2} alone, so the solver must use an emitter; with vertex 1
        // allowed, g = X_2 Z_1 qualifies.
        let t = Tableau::graph_state(&generators::path(3));
        assert!(t.find_element_supported_on(&[0, 1, 2], 2, &[]).is_none());
        let rows = t
            .find_element_supported_on(&[0, 2], 2, &[1])
            .expect("X_2 Z_1 exists");
        assert!(!rows.is_empty());
    }

    #[test]
    fn pauli_gates_flip_phases_only() {
        let g = generators::path(3);
        let mut t = Tableau::graph_state(&g);
        t.px(1);
        // X_1 commutes with X-type generator of vertex 1 but flips rows with
        // Z at 1 (the neighbors' generators).
        assert_eq!(t.phase_of(0), 2);
        assert_eq!(t.phase_of(1), 0);
        assert_eq!(t.phase_of(2), 2);
        assert!(t.is_valid_state());
    }

    #[test]
    fn column_views_match_bits() {
        let g = generators::star(5);
        let t = Tableau::graph_state(&g);
        for q in 0..t.num_qubits() {
            for r in 0..t.num_qubits() {
                assert_eq!(t.col_x(q).get(r), t.x_bit(r, q));
                assert_eq!(t.col_z(q).get(r), t.z_bit(r, q));
                assert_eq!(t.rows_touching(q).get(r), t.x_bit(r, q) || t.z_bit(r, q),);
            }
        }
    }

    #[test]
    fn debug_output_shows_paulis() {
        let t = Tableau::graph_state(&generators::path(2));
        let s = format!("{t:?}");
        assert!(s.contains("XZ"), "{s}");
        assert!(s.contains("ZX"), "{s}");
    }
}
