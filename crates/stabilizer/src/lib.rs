//! Stabilizer formalism for the `epgs` workspace.
//!
//! This crate is the semantic ground truth of the compiler: a phase-tracked
//! stabilizer [`Tableau`] with the Clifford gate set, forced-outcome Z
//! measurements, canonical forms for state equality, and the constructive
//! reduction of any pure stabilizer state to an LC-equivalent graph state
//! ([`graph_form`]). The time-reversed solver in `epgs-solver` manipulates
//! these tableaux, and every compiled circuit is verified against them.
//!
//! # Examples
//!
//! ```
//! use epgs_graph::generators;
//! use epgs_stabilizer::{verify, Tableau};
//!
//! // Build a 5-ring graph state by hand and check it.
//! let ring = generators::cycle(5);
//! let mut t = Tableau::zero_state(5);
//! for q in 0..5 {
//!     t.h(q);
//! }
//! for (a, b) in ring.edges() {
//!     t.cz(a, b);
//! }
//! assert!(verify::is_graph_state(&t, &ring));
//! ```

pub mod error;
pub mod graph_form;
pub mod pauli;
pub mod reference;
pub mod tableau;
pub mod verify;

pub use error::StabilizerError;
pub use graph_form::{to_graph_form, GraphForm, LocalGate};
pub use pauli::Pauli;
pub use tableau::{ElementScratch, MeasureOutcome, RotGate, Tableau};
