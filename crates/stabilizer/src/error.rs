//! Error types for stabilizer-state manipulation.

/// Errors raised by tableau transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StabilizerError {
    /// A rotation was requested on a qubit where the row acts as identity.
    IdentityPauli {
        /// Generator row index.
        row: usize,
        /// Qubit index.
        qubit: usize,
    },
    /// The graph-form reduction failed to reach a full-rank X block.
    GraphFormDiverged {
        /// Iterations spent before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for StabilizerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StabilizerError::IdentityPauli { row, qubit } => {
                write!(f, "row {row} acts as identity on qubit {qubit}")
            }
            StabilizerError::GraphFormDiverged { iterations } => {
                write!(
                    f,
                    "graph-form reduction did not reach a full-rank X block after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for StabilizerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = StabilizerError::IdentityPauli { row: 3, qubit: 1 };
        assert_eq!(e.to_string(), "row 3 acts as identity on qubit 1");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StabilizerError>();
    }
}
