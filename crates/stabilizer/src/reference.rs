//! The scalar (row-major) reference tableau.
//!
//! This is the original, straightforward implementation of the phase-tracked
//! stabilizer tableau: X/Z bits in row-major [`BitMatrix`] storage, one `u8`
//! phase exponent per row, and gates that visit every generator row with
//! single-bit reads. The production [`crate::Tableau`] replaced it with a
//! bit-sliced word-parallel engine; this copy is kept for two jobs:
//!
//! * **Semantic oracle** — the randomized equivalence tests drive identical
//!   gate/measurement sequences through both engines and require every X/Z
//!   bit, phase exponent, and measurement outcome to match.
//! * **Benchmark baseline** — `tableau_bench` measures the word-parallel
//!   engine's gate throughput against this one, so the recorded speedup is a
//!   like-for-like comparison on the same workload.
//!
//! Keep this module dumb on purpose: any optimization applied here would
//! erode its value as ground truth.

use epgs_graph::gf2::BitMatrix;
use epgs_graph::Graph;

use crate::tableau::MeasureOutcome;

/// Row-major, per-bit reference implementation of the stabilizer tableau.
///
/// Semantics (phase convention, gate set, forced-outcome measurement) are
/// identical to [`crate::Tableau`]; only the data layout and loop structure
/// differ.
#[derive(Clone, PartialEq, Eq)]
pub struct RefTableau {
    n: usize,
    x: BitMatrix,
    z: BitMatrix,
    /// Phase exponent per row, mod 4.
    phase: Vec<u8>,
}

impl RefTableau {
    /// The all-|0⟩ state: generators `Z_q`.
    pub fn zero_state(n: usize) -> Self {
        let mut t = RefTableau {
            n,
            x: BitMatrix::zeros(n, n),
            z: BitMatrix::zeros(n, n),
            phase: vec![0; n],
        };
        for q in 0..n {
            t.z.set(q, q, true);
        }
        t
    }

    /// The graph state |G⟩: generators `X_v Z_{N(v)}`.
    pub fn graph_state(g: &Graph) -> Self {
        let n = g.vertex_count();
        let mut t = RefTableau {
            n,
            x: BitMatrix::zeros(n, n),
            z: BitMatrix::zeros(n, n),
            phase: vec![0; n],
        };
        for v in 0..n {
            t.x.set(v, v, true);
            for &w in g.neighbors(v) {
                t.z.set(v, w, true);
            }
        }
        t
    }

    /// Number of qubits (and generators).
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// X bit of row `row` at qubit `q`.
    pub fn x_bit(&self, row: usize, q: usize) -> bool {
        self.x.get(row, q)
    }

    /// Z bit of row `row` at qubit `q`.
    pub fn z_bit(&self, row: usize, q: usize) -> bool {
        self.z.get(row, q)
    }

    /// The phase exponent `r ∈ Z₄` of row `row`.
    pub fn phase_of(&self, row: usize) -> u8 {
        self.phase[row]
    }

    /// Hadamard on qubit `q` (`X ↔ Z`).
    pub fn h(&mut self, q: usize) {
        for row in 0..self.n {
            let xb = self.x.get(row, q);
            let zb = self.z.get(row, q);
            if xb && zb {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
            self.x.set(row, q, zb);
            self.z.set(row, q, xb);
        }
    }

    /// Phase gate S on qubit `q` (`X → Y`).
    pub fn s(&mut self, q: usize) {
        for row in 0..self.n {
            if self.x.get(row, q) {
                self.z.flip(row, q);
                self.phase[row] = (self.phase[row] + 1) % 4;
            }
        }
    }

    /// Inverse phase gate S† on qubit `q` (`X → −Y`).
    pub fn sdg(&mut self, q: usize) {
        for row in 0..self.n {
            if self.x.get(row, q) {
                self.z.flip(row, q);
                self.phase[row] = (self.phase[row] + 3) % 4;
            }
        }
    }

    /// Pauli X on qubit `q`.
    pub fn px(&mut self, q: usize) {
        for row in 0..self.n {
            if self.z.get(row, q) {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
        }
    }

    /// Pauli Z on qubit `q`.
    pub fn pz(&mut self, q: usize) {
        for row in 0..self.n {
            if self.x.get(row, q) {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
        }
    }

    /// Pauli Y on qubit `q`.
    pub fn py(&mut self, q: usize) {
        for row in 0..self.n {
            if self.x.get(row, q) != self.z.get(row, q) {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
        }
    }

    /// CNOT with control `c`, target `t` (no phase in this convention).
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "cnot requires distinct qubits");
        for row in 0..self.n {
            if self.x.get(row, c) {
                self.x.flip(row, t);
            }
            if self.z.get(row, t) {
                self.z.flip(row, c);
            }
        }
    }

    /// CZ on qubits `a`, `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "cz requires distinct qubits");
        for row in 0..self.n {
            let xa = self.x.get(row, a);
            let xb = self.x.get(row, b);
            if xa && xb {
                self.phase[row] = (self.phase[row] + 2) % 4;
            }
            if xa {
                self.z.flip(row, b);
            }
            if xb {
                self.z.flip(row, a);
            }
        }
    }

    /// Replaces row `dst` with the product `row_dst · row_src`.
    ///
    /// # Panics
    ///
    /// Panics if `dst == src`.
    pub fn row_mul(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "row_mul requires distinct rows");
        let mut swaps = 0u8;
        for q in 0..self.n {
            if self.z.get(dst, q) && self.x.get(src, q) {
                swaps ^= 1;
            }
        }
        self.phase[dst] = (self.phase[dst] + self.phase[src] + if swaps == 1 { 2 } else { 0 }) % 4;
        self.x.xor_rows(dst, src);
        self.z.xor_rows(dst, src);
    }

    /// Swaps two generator rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.x.swap_rows(a, b);
        self.z.swap_rows(a, b);
        self.phase.swap(a, b);
    }

    /// Measures qubit `q` in the Z basis, collapsing random outcomes onto
    /// `forced`. Same contract as [`crate::Tableau::measure_z`].
    pub fn measure_z(&mut self, q: usize, forced: bool) -> MeasureOutcome {
        let pivot = (0..self.n).find(|&r| self.x.get(r, q));
        match pivot {
            Some(p) => {
                let rows: Vec<usize> = (0..self.n)
                    .filter(|&r| r != p && self.x.get(r, q))
                    .collect();
                for r in rows {
                    self.row_mul(r, p);
                }
                for col in 0..self.n {
                    self.x.set(p, col, false);
                    self.z.set(p, col, col == q);
                }
                self.phase[p] = if forced { 2 } else { 0 };
                MeasureOutcome::Random(forced)
            }
            None => {
                let sign = self
                    .deterministic_z_sign(q)
                    .expect("no X at q implies Z_q is in the group for a pure state");
                MeasureOutcome::Deterministic(sign)
            }
        }
    }

    /// Deterministic-measurement sign of `Z_q`, or `None` if an X is present
    /// at `q`. Same contract as [`crate::Tableau::deterministic_z_sign`].
    pub fn deterministic_z_sign(&self, q: usize) -> Option<bool> {
        if (0..self.n).any(|r| self.x.get(r, q)) {
            return None;
        }
        let mut a = BitMatrix::zeros(2 * self.n, self.n);
        for r in 0..self.n {
            for col in 0..self.n {
                a.set(col, r, self.x.get(r, col));
                a.set(self.n + col, r, self.z.get(r, col));
            }
        }
        let mut target = vec![false; 2 * self.n];
        target[self.n + q] = true;
        let combo = a.solve(&target)?;
        let mut acc_x = vec![false; self.n];
        let mut acc_z = vec![false; self.n];
        let mut phase: u8 = 0;
        for (r, &take) in combo.iter().enumerate() {
            if !take {
                continue;
            }
            let mut swaps = 0u8;
            for (col, &az) in acc_z.iter().enumerate() {
                if az && self.x.get(r, col) {
                    swaps ^= 1;
                }
            }
            phase = (phase + self.phase[r] + if swaps == 1 { 2 } else { 0 }) % 4;
            for col in 0..self.n {
                acc_x[col] ^= self.x.get(r, col);
                acc_z[col] ^= self.z.get(r, col);
            }
        }
        debug_assert!(acc_x.iter().all(|&b| !b));
        debug_assert!(phase.is_multiple_of(2));
        Some(phase == 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    #[test]
    fn reference_zero_state_measures_deterministically() {
        let mut t = RefTableau::zero_state(3);
        assert_eq!(t.measure_z(1, true), MeasureOutcome::Deterministic(false));
    }

    #[test]
    fn reference_bell_pair_correlates() {
        let mut t = RefTableau::zero_state(2);
        t.h(0);
        t.cnot(0, 1);
        assert_eq!(t.measure_z(0, true), MeasureOutcome::Random(true));
        assert_eq!(t.measure_z(1, false), MeasureOutcome::Deterministic(true));
    }

    #[test]
    fn reference_graph_state_bits() {
        let g = generators::path(3);
        let t = RefTableau::graph_state(&g);
        assert!(t.x_bit(0, 0) && t.z_bit(0, 1) && !t.z_bit(0, 2));
        assert_eq!(t.phase_of(0), 0);
    }
}
