//! Reduction of a pure stabilizer state to graph form.
//!
//! Every pure stabilizer state is local-Clifford-equivalent to a graph state
//! (Van den Nest, Dehaene, De Moor 2004). This module performs that reduction
//! constructively: Gaussian elimination brings the X block to the identity
//! (inserting Hadamards where the X block is rank-deficient), S gates clear
//! the diagonal of the Z block, and Pauli Z gates normalize signs. The
//! recorded single-qubit gates map the *input* state to the returned graph
//! state.

use epgs_graph::Graph;

use crate::error::StabilizerError;
use crate::tableau::Tableau;

/// A single-qubit Clifford gate applied during graph-form reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalGate {
    /// Hadamard on the qubit.
    H(usize),
    /// Phase gate on the qubit.
    S(usize),
    /// Pauli Z on the qubit.
    Z(usize),
}

/// Outcome of [`to_graph_form`]: the graph and the local gates that were
/// applied to reach it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphForm {
    /// Adjacency of the LC-equivalent graph state.
    pub graph: Graph,
    /// Gates applied to the input state, in order, to produce |graph⟩.
    pub gates: Vec<LocalGate>,
}

/// Reduces `t` in place to the graph state it is LC-equivalent to, returning
/// the graph and the gates applied.
///
/// # Errors
///
/// Returns [`StabilizerError::GraphFormDiverged`] if the X block cannot be
/// completed (which indicates an invalid tableau; valid pure states always
/// reduce).
pub fn to_graph_form(t: &mut Tableau) -> Result<GraphForm, StabilizerError> {
    let n = t.num_qubits();
    let mut gates = Vec::new();

    // Phase 1: make the X block invertible, inserting H where needed.
    let max_iters = 4 * n + 4;
    let mut iters = 0;
    loop {
        iters += 1;
        if iters > max_iters {
            return Err(StabilizerError::GraphFormDiverged { iterations: iters });
        }
        // Row-reduce the X block: pivots found by word-scanning the X
        // column, elimination done as one broadcast row product per pivot.
        let mut pivot_row = 0;
        let mut pivot_cols = Vec::new();
        for q in 0..n {
            if pivot_row >= n {
                break;
            }
            let Some(r) = t.col_x(q).first_one_at_or_after(pivot_row) else {
                continue;
            };
            t.swap_rows(pivot_row, r);
            let mut mask = t.col_x(q).clone();
            mask.set(pivot_row, false);
            t.mul_row_into_mask(pivot_row, &mask);
            pivot_cols.push(q);
            pivot_row += 1;
        }
        if pivot_row == n {
            break;
        }
        // Some row below the X-rank has a zero X part; it is a pure-Z row.
        // Hadamard one of its support qubits to convert a Z into an X. Pick a
        // column that is not already an X pivot so the rank strictly grows.
        let deficient = pivot_row;
        let col = (0..n)
            .find(|&q| t.z_bit(deficient, q) && !pivot_cols.contains(&q))
            .or_else(|| (0..n).find(|&q| t.z_bit(deficient, q)));
        let Some(q) = col else {
            // Identity row: invalid state (not full rank).
            return Err(StabilizerError::GraphFormDiverged { iterations: iters });
        };
        t.h(q);
        gates.push(LocalGate::H(q));
    }

    // X block is now the identity after full RREF (pivots in column order).
    // Phase 2: clear the Z diagonal with S gates.
    for q in 0..n {
        debug_assert!(t.x_bit(q, q), "X block must be the identity");
        if t.z_bit(q, q) {
            t.s(q);
            gates.push(LocalGate::S(q));
        }
    }

    // Phase 3: normalize signs with Pauli Z gates (row q is X_q Z_N(q), which
    // contains no Y, so its phase is 0 or 2).
    for q in 0..n {
        debug_assert!(t.phase_of(q).is_multiple_of(2), "rows must be Hermitian");
        if t.phase_of(q) == 2 {
            t.pz(q);
            gates.push(LocalGate::Z(q));
        }
    }

    // Read off the adjacency, one packed Z column at a time.
    let mut graph = Graph::new(n);
    for q in 0..n {
        for r in t.col_z(q).ones() {
            if r != q {
                debug_assert!(t.z_bit(q, r), "Z block of a graph form is symmetric");
                if r < q {
                    graph.add_edge(r, q).expect("indices in range");
                }
            }
        }
    }
    Ok(GraphForm { graph, gates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn graph_state_reduces_to_itself() {
        let g = generators::lattice(2, 3);
        let mut t = Tableau::graph_state(&g);
        let form = to_graph_form(&mut t).unwrap();
        assert_eq!(form.graph, g);
        assert!(form.gates.is_empty());
    }

    #[test]
    fn zero_state_reduces_to_empty_graph() {
        let mut t = Tableau::zero_state(4);
        let form = to_graph_form(&mut t).unwrap();
        assert_eq!(form.graph.edge_count(), 0);
        // One H per qubit turns |0⟩ into |+⟩ = empty graph state.
        assert_eq!(form.gates.len(), 4);
    }

    #[test]
    fn ghz_reduces_to_star_or_lc_equivalent() {
        // GHZ = (|000⟩+|111⟩)/√2, stabilizers XXX, ZZI, IZZ.
        let mut t = Tableau::zero_state(3);
        t.h(0);
        t.cnot(0, 1);
        t.cnot(1, 2);
        let snapshot = t.clone();
        let form = to_graph_form(&mut t).unwrap();
        // GHZ is LC-equivalent to the star (and to K3).
        assert!(form.graph.is_connected());
        assert!(form.graph.edge_count() == 2 || form.graph.edge_count() == 3);
        // Replaying the recorded gates on the snapshot gives |graph⟩.
        let mut replay = snapshot;
        for gate in &form.gates {
            match *gate {
                LocalGate::H(q) => replay.h(q),
                LocalGate::S(q) => replay.s(q),
                LocalGate::Z(q) => replay.pz(q),
            }
        }
        assert!(replay.same_state_as(&Tableau::graph_state(&form.graph)));
    }

    #[test]
    fn random_clifford_states_reduce_and_replay() {
        let mut rng = StdRng::seed_from_u64(12345);
        for trial in 0..30 {
            let n = rng.gen_range(2..7);
            let mut t = Tableau::zero_state(n);
            for _ in 0..40 {
                match rng.gen_range(0..5) {
                    0 => t.h(rng.gen_range(0..n)),
                    1 => t.s(rng.gen_range(0..n)),
                    2 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + rng.gen_range(1..n)) % n;
                        t.cnot(a, b);
                    }
                    3 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + rng.gen_range(1..n)) % n;
                        t.cz(a, b);
                    }
                    _ => t.px(rng.gen_range(0..n)),
                }
            }
            assert!(t.is_valid_state(), "trial {trial}");
            let snapshot = t.clone();
            let form = to_graph_form(&mut t).expect("valid states always reduce");
            let mut replay = snapshot;
            for gate in &form.gates {
                match *gate {
                    LocalGate::H(q) => replay.h(q),
                    LocalGate::S(q) => replay.s(q),
                    LocalGate::Z(q) => replay.pz(q),
                }
            }
            assert!(
                replay.same_state_as(&Tableau::graph_state(&form.graph)),
                "trial {trial}: replay must match extracted graph"
            );
        }
    }
}
