//! Single-qubit Pauli letters and phase bookkeeping conventions.
//!
//! Throughout this crate a Pauli-string generator is stored as
//! `i^r · Π_q X_q^{x_q} Z_q^{z_q}` with the X factor written *before* the Z
//! factor on each qubit and `r ∈ Z₄`. In this convention `(x, z) = (1, 1)`
//! with `r = 1` is the Hermitian `Y` (because `XZ = −iY`), and a generator is
//! Hermitian exactly when `r ≡ |{q : x_q = z_q = 1}| (mod 2)`.

/// A single-qubit Pauli letter (ignoring phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// The `(x, z)` bit pair of this letter in the symplectic representation.
    pub fn bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Reconstructs a letter from its `(x, z)` bit pair.
    pub fn from_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// True for the identity letter.
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }

    /// Whether this letter anticommutes with `other`.
    pub fn anticommutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.bits();
        let (x2, z2) = other.bits();
        (x1 & z2) ^ (z1 & x2)
    }
}

impl std::fmt::Display for Pauli {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            let (x, z) = p.bits();
            assert_eq!(Pauli::from_bits(x, z), p);
        }
    }

    #[test]
    fn anticommutation_table() {
        use Pauli::*;
        // Distinct non-identity letters anticommute; everything commutes
        // with itself and with I.
        for p in [X, Y, Z] {
            assert!(!p.anticommutes_with(p));
            assert!(!p.anticommutes_with(I));
            assert!(!I.anticommutes_with(p));
        }
        assert!(X.anticommutes_with(Y));
        assert!(Y.anticommutes_with(Z));
        assert!(Z.anticommutes_with(X));
    }

    #[test]
    fn display_letters() {
        assert_eq!(Pauli::Y.to_string(), "Y");
        assert_eq!(Pauli::I.to_string(), "I");
    }
}
