//! # epgs — a scalable compilation framework for emitter-photonic graph states
//!
//! Rust reproduction of the DAC 2025 paper *"A Scalable and Robust
//! Compilation Framework for Emitter-Photonic Graph State"* (Ren, Huang,
//! Liang, Barbalace). Given a target graph state, the framework produces a
//! verified generation circuit for the deterministic (emitter-based) scheme.
//!
//! # The staged pipeline
//!
//! Compilation is an explicit five-stage pipeline (paper Fig. 6), one typed
//! artifact per stage:
//!
//! | Stage | Call | Artifact | Paper |
//! |-------|------|----------|-------|
//! | 1. Partition | [`Pipeline::partition`] | [`Partitioned`] | §IV.A |
//! | 2. Leaf compile | [`Partitioned::plan_leaves`] | [`Planned`] | §IV.B |
//! | 3. Schedule | [`Planned::schedule`] | [`Scheduled`] | §IV.C |
//! | 4. Recombine | [`Scheduled::recombine`] | [`Recombined`] | §IV.D |
//! | 5. Verify | [`Recombined::verify`] | [`Compiled`] | §IV.E |
//!
//! Stage methods take `&self` and artifacts share heavy state behind `Arc`,
//! so one expensive prefix fans out into many cheap suffixes. The paper's
//! §V.B.2 emitter-budget sweeps are the motivating case: hold one
//! [`Planned`] and call [`Planned::schedule`] per budget — partitioning and
//! every leaf solve run exactly once. Leaf compilation runs in parallel
//! across blocks.
//!
//! ```
//! use epgs::{FrameworkConfig, Pipeline};
//! use epgs_graph::generators;
//!
//! # fn main() -> Result<(), epgs::FrameworkError> {
//! let pipeline = Pipeline::new(
//!     FrameworkConfig::builder().g_max(5).lc_budget(4).build(),
//! );
//! let planned = pipeline.partition(&generators::lattice(3, 3)).plan_leaves()?;
//! // Sweep Ne_limit without re-partitioning or re-solving leaves:
//! for budget in [2, 3] {
//!     let compiled = planned.schedule(budget).recombine()?.verify()?;
//!     assert_eq!(compiled.ne_limit, budget);
//!     assert_eq!(compiled.circuit.emission_count(), 9);
//! }
//! assert_eq!(pipeline.counters().plan, 1, "leaves compiled once");
//! # Ok(())
//! # }
//! ```
//!
//! # The one-shot front-end
//!
//! [`Framework`] wraps the pipeline for the common single-compile case and
//! produces output identical to the staged path:
//!
//! ```
//! use epgs::{Framework, FrameworkConfig};
//! use epgs_graph::generators;
//!
//! # fn main() -> Result<(), epgs::FrameworkError> {
//! // Compile a 3×3 MBQC lattice graph state.
//! let fw = Framework::new(FrameworkConfig::default());
//! let compiled = fw.compile(&generators::lattice(3, 3))?;
//! println!("{}", epgs::report::render(&compiled));
//! assert_eq!(compiled.circuit.emission_count(), 9);
//! # Ok(())
//! # }
//! ```
//!
//! Recombination is pluggable: [`RecombineStrategy`] selects which global
//! assembly candidates compete (scheduled interleave, block-sequential,
//! direct solve), configured per run via
//! [`FrameworkConfig::recombine`] or per call via
//! [`Scheduled::recombine_with`].
//!
//! # The hardware-aware objective layer
//!
//! What candidates compete *on* is itself configurable:
//! [`FrameworkConfig::objective`] holds a [`CompileObjective`] consumed by
//! leaf-variant selection and recombination scoring alike. The default,
//! [`CompileObjective::Emitters`], is the paper's lexicographic
//! (#ee-CNOT, `T_loss`, duration) order; `Duration(hw)` / `Loss(hw)` /
//! `Weighted { .. }` re-target the competition at a concrete platform's
//! timing and loss numbers, so the same graph can compile to different
//! strategies on different hardware:
//!
//! ```
//! use epgs::{CompileObjective, Framework, FrameworkConfig};
//! use epgs_graph::generators;
//! use epgs_hardware::HardwareModel;
//!
//! # fn main() -> Result<(), epgs::FrameworkError> {
//! let rydberg = HardwareModel::rydberg();
//! let fw = Framework::new(
//!     FrameworkConfig::builder()
//!         .objective(CompileObjective::Duration(rydberg.clone()))
//!         .platform(rydberg)
//!         .build(),
//! );
//! let compiled = fw.compile(&generators::lattice(3, 3))?;
//! assert_eq!(compiled.objective.kind_name(), "duration");
//! assert!(compiled.loss_report().mean_photon_loss < 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! # The batch engine
//!
//! [`BatchCompiler`] (module [`batch`]) scales the pipeline from one target
//! to a corpus: instances compile in parallel, and a content-addressed
//! [`ArtifactCache`] — keyed by the label-invariant canonical graph hash
//! plus a configuration fingerprint — lets repeated content skip the
//! partition and leaf-planning stages entirely:
//!
//! ```
//! use epgs::{BatchCompiler, BatchInstance, FrameworkConfig};
//! use epgs_graph::generators;
//!
//! let batch = BatchCompiler::new(FrameworkConfig::builder().g_max(4).build());
//! let jobs = vec![
//!     BatchInstance::new("ring-8", "cycle", generators::cycle(8)),
//!     BatchInstance::new("ring-8-dup", "cycle", generators::cycle(8)),
//! ];
//! let report = batch.run(&jobs);
//! assert_eq!((report.succeeded, report.cache_hits), (2, 1));
//! ```

pub mod artifact;
pub mod batch;
pub mod config;
pub mod error;
pub mod faults;
pub mod framework;
pub mod report;
pub mod schedule;
pub mod stages;
pub mod store;
pub mod subgraph;

pub use artifact::ArtifactError;
pub use batch::{
    config_fingerprint, ArtifactCache, BatchCompiler, BatchInstance, BatchReport, CacheKey,
    CacheOutcome, CacheStats, FamilySummary, InstanceMetrics, InstanceReport,
};
pub use config::{EmitterBudget, FrameworkConfig, FrameworkConfigBuilder};
pub use epgs_hardware::{CompileObjective, ObjectiveFigures, ObjectiveScore};
pub use epgs_partition::{MultilevelOptions, PartitionScheme, PartitionSpec};
pub use error::FrameworkError;
pub use faults::{
    lock_recover, panic_message, FaultKind, FaultPlan, FaultRule, PlanError, PlanErrorKind,
    RequestCtx, Trigger,
};
pub use framework::{compile, Compiled, Framework};
pub use schedule::{schedule, Placement, Schedule, StepFn};
pub use stages::{
    Partitioned, Pipeline, Planned, RecombineStrategy, Recombined, Scheduled, StageCounts,
};
pub use store::{ArtifactStore, RecoveryReport, StoreStats};
pub use subgraph::{compile_subgraph, SubgraphPlan, SubgraphVariant};
