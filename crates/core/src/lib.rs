//! # epgs — a scalable compilation framework for emitter-photonic graph states
//!
//! Rust reproduction of the DAC 2025 paper *"A Scalable and Robust
//! Compilation Framework for Emitter-Photonic Graph State"* (Ren, Huang,
//! Liang, Barbalace). Given a target graph state, the framework produces a
//! verified generation circuit for the deterministic (emitter-based) scheme:
//!
//! 1. partition the graph into subgraphs with depth-limited local
//!    complementation (minimizing inter-subgraph entanglement);
//! 2. compile each subgraph near-optimally under a flexible emitter budget;
//! 3. schedule the subgraph circuits as-late-as-possible under the global
//!    emitter budget, maximizing emitter utilization;
//! 4. recombine into one global circuit and verify it with a stabilizer
//!    simulator.
//!
//! # Examples
//!
//! ```
//! use epgs::{Framework, FrameworkConfig};
//! use epgs_graph::generators;
//!
//! # fn main() -> Result<(), epgs::FrameworkError> {
//! // Compile a 3×3 MBQC lattice graph state.
//! let fw = Framework::new(FrameworkConfig::default());
//! let compiled = fw.compile(&generators::lattice(3, 3))?;
//! println!("{}", epgs::report::render(&compiled));
//! assert_eq!(compiled.circuit.emission_count(), 9);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod error;
pub mod framework;
pub mod report;
pub mod schedule;
pub mod subgraph;

pub use config::{EmitterBudget, FrameworkConfig};
pub use error::FrameworkError;
pub use framework::{compile, Compiled, Framework};
pub use schedule::{schedule, Placement, Schedule, StepFn};
pub use subgraph::{compile_subgraph, SubgraphPlan, SubgraphVariant};
