//! The batch compilation engine: corpus-scale compilation with a
//! content-addressed artifact cache.
//!
//! [`crate::Framework::compile`] handles one target; production evaluation
//! sweeps hundreds. [`BatchCompiler`] compiles a whole instance list in
//! parallel, deduplicating work through an [`ArtifactCache`] keyed by the
//! *content* of each job — the label-invariant [`canonical_hash`] of the
//! target graph plus a [`config_fingerprint`] of the framework
//! configuration. A
//! cache hit reuses the stored [`Planned`] artifact, skipping the two
//! expensive pipeline stages (partition search and per-leaf solving) and
//! rerunning only the cheap suffix (schedule → recombine → verify).
//!
//! Because Weisfeiler–Lehman hashing is one-sided (equal hashes do not
//! prove equal graphs), every lookup confirms the candidate entry by exact
//! graph comparison before reuse: a hash bucket shared by two distinct
//! labelings is observable in [`CacheStats::bucket_collisions`] but can
//! never leak a wrong artifact. A corrupted entry — one whose stored
//! artifact no longer matches its own graph — is discarded on lookup and
//! the instance recompiles.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rayon::prelude::*;

use epgs_corpus::json::Writer;
use epgs_graph::canon::{canonical_hash, fnv1a_all};
use epgs_graph::Graph;
use epgs_hardware::{CompileObjective, HardwareModel};
use epgs_partition::{FaultHook, InjectedFault, SearchControl};

use crate::config::{EmitterBudget, FrameworkConfig};
use crate::error::FrameworkError;
use crate::faults::{self, lock_recover, FaultKind, FaultPlan, RequestCtx};
use crate::framework::Compiled;
use crate::stages::{Pipeline, Planned, RecombineStrategy};
use crate::store::{ArtifactStore, StoreStats};

/// Stable 64-bit fingerprint of every compilation-relevant configuration
/// knob (FNV-1a; float knobs enter via their bit patterns).
///
/// Two configurations with equal fingerprints compile any graph
/// identically, so the fingerprint is the config half of the cache key.
pub fn config_fingerprint(cfg: &FrameworkConfig) -> u64 {
    let strategy_code = |s: &RecombineStrategy| -> u64 {
        match s {
            RecombineStrategy::ScheduledInterleave => 1,
            RecombineStrategy::BlockSequential => 2,
            RecombineStrategy::DirectSolve => 3,
        }
    };
    let hardware_words = |hw: &HardwareModel| -> [u64; 8] {
        [
            fnv1a_all(hw.name.bytes().map(u64::from)),
            hw.ee_two_qubit.to_bits(),
            hw.emission.to_bits(),
            hw.emitter_single.to_bits(),
            hw.photon_single.to_bits(),
            hw.measurement.to_bits(),
            hw.photon_loss_per_tau.to_bits(),
            hw.ee_fidelity.to_bits(),
        ]
    };
    let budget_words = match cfg.emitter_budget {
        EmitterBudget::Factor(f) => [1u64, f.to_bits()],
        EmitterBudget::Absolute(n) => [2u64, n as u64],
    };
    // Kind discriminant, then weights, then the objective's own hardware
    // model (if any): objectives that differ in any scored dimension must
    // fingerprint apart, because they can select different circuits.
    let objective_words: Vec<u64> = match &cfg.objective {
        CompileObjective::Emitters => vec![1],
        CompileObjective::Duration(hw) => std::iter::once(2).chain(hardware_words(hw)).collect(),
        CompileObjective::Loss(hw) => std::iter::once(3).chain(hardware_words(hw)).collect(),
        CompileObjective::Weighted {
            hardware,
            ee,
            duration,
            loss,
        } => [4, ee.to_bits(), duration.to_bits(), loss.to_bits()]
            .into_iter()
            .chain(hardware_words(hardware))
            .collect(),
    };
    // Scheme discriminant plus every multilevel knob: two configs that can
    // partition a graph differently must key cached artifacts apart.
    let scheme_words: Vec<u64> = match &cfg.partition.scheme {
        epgs_partition::PartitionScheme::Flat => vec![1],
        epgs_partition::PartitionScheme::Multilevel(opts) => vec![
            2,
            opts.coarsen_cutoff as u64,
            opts.matching_rounds as u64,
            opts.refine_passes as u64,
        ],
    };
    let words = [
        cfg.partition.g_max as u64,
        cfg.partition.lc_budget as u64,
        cfg.partition.effort as u64,
        cfg.partition.seed,
        cfg.orderings_per_subgraph as u64,
        cfg.flexible_slack as u64,
        u64::from(cfg.verify),
        cfg.seed,
    ]
    .into_iter()
    .chain(scheme_words)
    .chain(hardware_words(&cfg.hardware))
    .chain(budget_words)
    .chain(objective_words)
    .chain(cfg.recombine.iter().map(strategy_code));
    fnv1a_all(words)
}

/// Cache key: content hash of the target × fingerprint of the config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Label-invariant graph hash ([`canonical_hash`]).
    pub canonical: u64,
    /// Configuration fingerprint ([`config_fingerprint`]).
    pub config: u64,
}

/// One cached prefix: the exact graph it was computed for and its
/// [`Planned`] artifact.
#[derive(Debug, Clone)]
struct CacheEntry {
    graph: Graph,
    planned: Planned,
    last_used: u64,
}

/// Cumulative counters of one [`ArtifactCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that reused a stored artifact.
    pub hits: usize,
    /// Lookups that found nothing reusable.
    pub misses: usize,
    /// Lookups whose hash bucket held only differently-labeled graphs
    /// (isomorphic or WL-colliding) — counted within `misses`.
    pub bucket_collisions: usize,
    /// Entries dropped — by the LRU capacity bound or by explicit
    /// [`ArtifactCache::evict`] / [`ArtifactCache::clear`] calls.
    pub evictions: usize,
    /// Entries discarded because their artifact no longer matched their
    /// graph (corruption guard) — counted within `misses`.
    pub corrupt_discarded: usize,
}

/// Content-addressed store of [`Planned`] artifacts with an LRU capacity
/// bound.
///
/// Buckets are keyed by [`CacheKey`]; each bucket holds the entries for the
/// distinct exact graphs that share the key (normally one). Lookup is
/// hit-only-on-exact-match, so the cache can never substitute an artifact
/// across labelings, and a corrupted entry degrades to a recompile instead
/// of a panic.
#[derive(Debug)]
pub struct ArtifactCache {
    buckets: HashMap<CacheKey, Vec<CacheEntry>>,
    /// Running entry count across all buckets — kept so `len()` (and the
    /// capacity check every `insert` performs) is O(1), not a bucket walk.
    entries: usize,
    capacity: usize,
    clock: u64,
    stats: CacheStats,
}

impl ArtifactCache {
    /// An empty cache holding at most `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            buckets: HashMap::new(),
            entries: 0,
            capacity: capacity.max(1),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up the artifact for exactly `graph` under `key`.
    ///
    /// Entries under the right key but for a different exact graph (a
    /// relabeling or WL collision) do not hit; an entry whose artifact
    /// fails the self-consistency check is discarded.
    pub fn lookup(&mut self, key: CacheKey, graph: &Graph) -> Option<Planned> {
        self.clock += 1;
        let clock = self.clock;
        let bucket = match self.buckets.get_mut(&key) {
            Some(b) => b,
            None => {
                self.stats.misses += 1;
                return None;
            }
        };
        // Corruption guard: an entry must still describe its own graph.
        let before = bucket.len();
        bucket.retain(|e| e.planned.target() == &e.graph);
        self.stats.corrupt_discarded += before - bucket.len();
        self.entries -= before - bucket.len();
        if let Some(entry) = bucket.iter_mut().find(|e| &e.graph == graph) {
            entry.last_used = clock;
            self.stats.hits += 1;
            return Some(entry.planned.clone());
        }
        if !bucket.is_empty() {
            self.stats.bucket_collisions += 1;
        } else {
            self.buckets.remove(&key);
        }
        self.stats.misses += 1;
        None
    }

    /// Stores `planned` for `graph` under `key`, evicting the
    /// least-recently-used entry when the capacity bound is exceeded.
    ///
    /// Inserting an artifact that does not belong to `graph` is not an
    /// error here: the lookup-time corruption guard will discard it.
    pub fn insert(&mut self, key: CacheKey, graph: Graph, planned: Planned) {
        self.clock += 1;
        let bucket = self.buckets.entry(key).or_default();
        if let Some(entry) = bucket.iter_mut().find(|e| e.graph == graph) {
            entry.planned = planned;
            entry.last_used = self.clock;
            return;
        }
        bucket.push(CacheEntry {
            graph,
            planned,
            last_used: self.clock,
        });
        self.entries += 1;
        while self.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Removes every entry stored under `key`; returns how many were
    /// dropped.
    pub fn evict(&mut self, key: CacheKey) -> usize {
        let dropped = self.buckets.remove(&key).map_or(0, |b| b.len());
        self.stats.evictions += dropped;
        self.entries -= dropped;
        dropped
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&mut self) {
        self.stats.evictions += self.len();
        self.buckets.clear();
        self.entries = 0;
    }

    fn evict_lru(&mut self) {
        let victim = self
            .buckets
            .iter()
            .flat_map(|(k, b)| b.iter().map(move |e| (*k, e.last_used)))
            .min_by_key(|&(_, used)| used)
            .map(|(k, _)| k);
        if let Some(key) = victim {
            let bucket = self.buckets.get_mut(&key).expect("victim bucket exists");
            let oldest = bucket
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("victim bucket is non-empty");
            bucket.remove(oldest);
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
            self.entries -= 1;
            self.stats.evictions += 1;
        }
    }
}

/// One named compilation job for [`BatchCompiler::run`].
#[derive(Debug, Clone)]
pub struct BatchInstance {
    /// Stable identifier carried into the per-instance report.
    pub id: String,
    /// Family name used for the aggregate rollups.
    pub family: String,
    /// The target graph.
    pub graph: Graph,
}

impl BatchInstance {
    /// Builds a job from its parts.
    pub fn new(id: impl Into<String>, family: impl Into<String>, graph: Graph) -> Self {
        BatchInstance {
            id: id.into(),
            family: family.into(),
            graph,
        }
    }
}

/// Whether an instance reused a cached prefix or compiled it fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Partition + leaf planning were served from the in-memory cache.
    Hit,
    /// Served from the on-disk [`ArtifactStore`] (and promoted into the
    /// in-memory cache).
    DiskHit,
    /// The full pipeline ran.
    Miss,
}

impl CacheOutcome {
    /// Stable wire name used in JSON reports and the serve protocol.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::DiskHit => "disk_hit",
            CacheOutcome::Miss => "miss",
        }
    }

    /// Whether the expensive prefix was reused from *any* layer.
    pub fn reused(self) -> bool {
        self != CacheOutcome::Miss
    }
}

/// Success metrics of one compiled instance.
#[derive(Debug, Clone)]
pub struct InstanceMetrics {
    /// Minimal emitter count of the target.
    pub ne_min: usize,
    /// Resolved emitter budget the schedule ran under.
    pub ne_limit: usize,
    /// Peak simultaneously-active emitters in the final circuit.
    pub peak_emitters: usize,
    /// Emitter-emitter CNOT count of the final circuit.
    pub ee_cnots: usize,
    /// Circuit duration in τ.
    pub duration: f64,
    /// Mean photon storage time `T_loss` in τ.
    pub t_loss: f64,
    /// Mean per-photon loss probability under the configured hardware.
    pub mean_photon_loss: f64,
    /// Probability at least one photon is lost under the configured
    /// hardware.
    pub any_photon_loss: f64,
    /// Recombination strategy that won.
    pub strategy: RecombineStrategy,
}

/// Everything recorded about one instance of a batch run.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Instance id (from [`BatchInstance::id`]).
    pub id: String,
    /// Family name (from [`BatchInstance::family`]).
    pub family: String,
    /// Vertex count of the target.
    pub vertices: usize,
    /// Edge count of the target.
    pub edges: usize,
    /// Label-invariant content hash of the target.
    pub canonical_hash: u64,
    /// Whether the expensive prefix came from the cache.
    pub cache: CacheOutcome,
    /// Compilation metrics, present on success.
    pub metrics: Option<InstanceMetrics>,
    /// Error rendering, present on failure.
    pub error: Option<String>,
    /// Wall time of this instance (µs), cache lookup included.
    pub wall_micros: u128,
    /// The partition search degraded (deadline truncation or multilevel →
    /// flat fallback); the result is valid but possibly lower quality and
    /// was not cached or persisted.
    pub degraded: bool,
    /// The compile was cancelled at its deadline
    /// ([`FrameworkError::DeadlineExceeded`]).
    pub timed_out: bool,
}

impl InstanceReport {
    /// Whether the instance compiled and verified.
    pub fn ok(&self) -> bool {
        self.metrics.is_some()
    }
}

/// Wall-time histogram bucket upper bounds (µs): 1 ms, 10 ms, 100 ms, 1 s,
/// and the open overflow bucket.
pub const WALL_BUCKET_BOUNDS: [u128; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Labels aligned with [`WALL_BUCKET_BOUNDS`] plus the overflow bucket.
pub const WALL_BUCKET_LABELS: [&str; 5] = ["lt_1ms", "lt_10ms", "lt_100ms", "lt_1s", "ge_1s"];

/// Per-family rollup inside a [`BatchReport`].
#[derive(Debug, Clone)]
pub struct FamilySummary {
    /// Family name.
    pub family: String,
    /// Instances of this family in the run.
    pub instances: usize,
    /// How many compiled and verified.
    pub succeeded: usize,
    /// How many reused a cached prefix.
    pub cache_hits: usize,
    /// Mean emitter-emitter CNOTs over the successful instances.
    pub mean_ee_cnots: f64,
    /// Mean circuit duration (τ) over the successful instances.
    pub mean_duration: f64,
}

/// Aggregate result of one [`BatchCompiler::run`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Name of the hardware model every instance compiled under.
    pub hardware: String,
    /// Wire name of the objective candidates competed under.
    pub objective: String,
    /// Name of the platform the objective scored under, when it carries
    /// its own (`None` for [`CompileObjective::Emitters`], which scores
    /// under [`BatchReport::hardware`]). Two runs with equal `hardware` +
    /// `objective` but different scoring platforms select different
    /// circuits; this field keeps them distinguishable.
    pub objective_hardware: Option<String>,
    /// The `(ee, duration, loss)` weights of a
    /// [`CompileObjective::Weighted`] run (`None` otherwise) — two
    /// weighted runs with different weights select different circuits, so
    /// the weights are part of the report's identity too.
    pub objective_weights: Option<[f64; 3]>,
    /// Per-instance reports, in input order.
    pub instances: Vec<InstanceReport>,
    /// Instances that compiled and verified.
    pub succeeded: usize,
    /// Instances that failed.
    pub failed: usize,
    /// In-memory cache hits within this run.
    pub cache_hits: usize,
    /// On-disk store hits within this run (only possible when the compiler
    /// was built with [`BatchCompiler::with_store`]).
    pub disk_hits: usize,
    /// Instances that ran the full pipeline.
    pub cache_misses: usize,
    /// Distinct canonical graph hashes in this run — the run's content
    /// diversity.
    pub distinct_canonical: usize,
    /// Rollups per family, in first-appearance order.
    pub families: Vec<FamilySummary>,
    /// Instance-wall-time histogram over
    /// [`WALL_BUCKET_LABELS`](constant@WALL_BUCKET_LABELS).
    pub wall_histogram: [usize; 5],
    /// Sum of instance wall times (µs). The run's own wall clock is lower
    /// under parallel execution.
    pub total_wall_micros: u128,
    /// Cumulative cache counters at the end of the run.
    pub cache: CacheStats,
    /// Cumulative on-disk store counters at the end of the run, when a
    /// store is attached.
    pub store: Option<StoreStats>,
}

impl BatchReport {
    fn from_instances(
        config: &FrameworkConfig,
        instances: Vec<InstanceReport>,
        cache: CacheStats,
        store: Option<StoreStats>,
    ) -> Self {
        let succeeded = instances.iter().filter(|r| r.ok()).count();
        let cache_hits = instances
            .iter()
            .filter(|r| r.cache == CacheOutcome::Hit)
            .count();
        let disk_hits = instances
            .iter()
            .filter(|r| r.cache == CacheOutcome::DiskHit)
            .count();
        let mut canonical: Vec<u64> = instances.iter().map(|r| r.canonical_hash).collect();
        canonical.sort_unstable();
        canonical.dedup();

        let mut families: Vec<FamilySummary> = Vec::new();
        for r in &instances {
            if !families.iter().any(|f| f.family == r.family) {
                families.push(FamilySummary {
                    family: r.family.clone(),
                    instances: 0,
                    succeeded: 0,
                    cache_hits: 0,
                    mean_ee_cnots: 0.0,
                    mean_duration: 0.0,
                });
            }
            let f = families
                .iter_mut()
                .find(|f| f.family == r.family)
                .expect("just inserted");
            f.instances += 1;
            f.succeeded += usize::from(r.ok());
            f.cache_hits += usize::from(r.cache.reused());
            if let Some(m) = &r.metrics {
                f.mean_ee_cnots += m.ee_cnots as f64;
                f.mean_duration += m.duration;
            }
        }
        for f in &mut families {
            if f.succeeded > 0 {
                f.mean_ee_cnots /= f.succeeded as f64;
                f.mean_duration /= f.succeeded as f64;
            }
        }

        let mut wall_histogram = [0usize; 5];
        let mut total_wall_micros = 0u128;
        for r in &instances {
            total_wall_micros += r.wall_micros;
            let slot = WALL_BUCKET_BOUNDS
                .iter()
                .position(|&b| r.wall_micros < b)
                .unwrap_or(WALL_BUCKET_BOUNDS.len());
            wall_histogram[slot] += 1;
        }

        BatchReport {
            hardware: config.hardware.name.to_string(),
            objective: config.objective.kind_name().to_string(),
            objective_hardware: config.objective.hardware().map(|hw| hw.name.to_string()),
            objective_weights: match &config.objective {
                CompileObjective::Weighted {
                    ee, duration, loss, ..
                } => Some([*ee, *duration, *loss]),
                _ => None,
            },
            failed: instances.len() - succeeded,
            succeeded,
            cache_hits,
            disk_hits,
            cache_misses: instances.len() - cache_hits - disk_hits,
            distinct_canonical: canonical.len(),
            families,
            wall_histogram,
            total_wall_micros,
            cache,
            store,
            instances,
        }
    }

    /// Renders the report as a JSON document (instances included).
    pub fn to_json(&self) -> String {
        let mut w = Writer::with_capacity(4096 + 256 * self.instances.len());
        w.begin_obj();
        w.field_str("hardware", &self.hardware);
        w.field_str("objective", &self.objective);
        if let Some(oh) = &self.objective_hardware {
            w.field_str("objective_hardware", oh);
        }
        if let Some([ee, duration, loss]) = self.objective_weights {
            w.key("objective_weights");
            w.begin_obj();
            w.field_number("ee", ee);
            w.field_number("duration", duration);
            w.field_number("loss", loss);
            w.end_obj();
        }
        w.field_uint("succeeded", self.succeeded as u64);
        w.field_uint("failed", self.failed as u64);
        w.field_uint("cache_hits", self.cache_hits as u64);
        w.field_uint("disk_hits", self.disk_hits as u64);
        w.field_uint("cache_misses", self.cache_misses as u64);
        w.field_uint("distinct_canonical", self.distinct_canonical as u64);
        w.field_raw("total_wall_micros", &self.total_wall_micros.to_string());
        w.key("cache");
        w.begin_obj();
        w.field_uint("hits", self.cache.hits as u64);
        w.field_uint("misses", self.cache.misses as u64);
        w.field_uint("bucket_collisions", self.cache.bucket_collisions as u64);
        w.field_uint("evictions", self.cache.evictions as u64);
        w.field_uint("corrupt_discarded", self.cache.corrupt_discarded as u64);
        w.end_obj();
        if let Some(s) = &self.store {
            w.key("store");
            w.begin_obj();
            w.field_uint("disk_hits", s.disk_hits as u64);
            w.field_uint("disk_misses", s.disk_misses as u64);
            w.field_uint("corrupt_discarded", s.corrupt_discarded as u64);
            w.field_uint("version_rejected", s.version_rejected as u64);
            w.field_uint("exact_collisions", s.exact_collisions as u64);
            w.field_uint("evictions", s.evictions as u64);
            w.field_uint("writes", s.writes as u64);
            w.field_uint("write_errors", s.write_errors as u64);
            w.end_obj();
        }
        w.key("wall_histogram");
        w.begin_obj();
        for (label, count) in WALL_BUCKET_LABELS.iter().zip(self.wall_histogram) {
            w.field_uint(label, count as u64);
        }
        w.end_obj();
        w.key("families");
        w.begin_arr();
        for f in &self.families {
            w.begin_obj();
            w.field_str("family", &f.family);
            w.field_uint("instances", f.instances as u64);
            w.field_uint("succeeded", f.succeeded as u64);
            w.field_uint("cache_hits", f.cache_hits as u64);
            w.field_fixed("mean_ee_cnots", f.mean_ee_cnots, 3);
            w.field_fixed("mean_duration", f.mean_duration, 3);
            w.end_obj();
        }
        w.end_arr();
        w.key("instances");
        w.begin_arr();
        for r in &self.instances {
            w.begin_obj();
            w.field_str("id", &r.id);
            w.field_str("family", &r.family);
            w.field_uint("vertices", r.vertices as u64);
            w.field_uint("edges", r.edges as u64);
            w.field_hex("canonical_hash", r.canonical_hash);
            w.field_str("cache", r.cache.as_str());
            w.field_bool("ok", r.ok());
            w.field_raw("wall_micros", &r.wall_micros.to_string());
            if let Some(m) = &r.metrics {
                w.field_uint("ne_min", m.ne_min as u64);
                w.field_uint("ne_limit", m.ne_limit as u64);
                w.field_uint("peak_emitters", m.peak_emitters as u64);
                w.field_uint("ee_cnots", m.ee_cnots as u64);
                w.field_fixed("duration", m.duration, 3);
                w.field_fixed("t_loss", m.t_loss, 3);
                w.field_fixed("mean_photon_loss", m.mean_photon_loss, 6);
                w.field_fixed("any_photon_loss", m.any_photon_loss, 6);
                w.field_str("strategy", &format!("{:?}", m.strategy));
            }
            if let Some(e) = &r.error {
                w.field_str("error", e);
            }
            // Robustness flags: emitted only when set, so fault-free runs
            // keep their historical shape byte for byte.
            if r.degraded {
                w.field_bool("degraded", true);
            }
            if r.timed_out {
                w.field_bool("timed_out", true);
            }
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

/// The batch compilation engine: one configuration, many targets, shared
/// artifact cache, parallel execution.
///
/// # Examples
///
/// Two jobs over the same graph: the second reuses the first's partition +
/// leaf-planning prefix through the content-addressed cache.
///
/// ```
/// use epgs::{BatchCompiler, BatchInstance, FrameworkConfig};
/// use epgs_graph::generators;
///
/// let batch = BatchCompiler::new(FrameworkConfig::builder().g_max(4).build());
/// let report = batch.run(&[
///     BatchInstance::new("path-6", "path", generators::path(6)),
///     BatchInstance::new("path-6-again", "path", generators::path(6)),
/// ]);
/// assert_eq!(report.succeeded, 2);
/// assert_eq!(report.cache_hits, 1, "identical content compiles once");
/// assert_eq!(report.distinct_canonical, 1);
/// assert!(report.to_json().contains("\"cache\":\"hit\""));
/// ```
#[derive(Debug)]
pub struct BatchCompiler {
    pipeline: Pipeline,
    config_fp: u64,
    cache: Mutex<ArtifactCache>,
    store: Option<ArtifactStore>,
    faults: Option<Arc<FaultPlan>>,
}

impl BatchCompiler {
    /// Default artifact-cache capacity (entries).
    pub const DEFAULT_CACHE_CAPACITY: usize = 256;

    /// A batch compiler with the default cache capacity.
    pub fn new(config: FrameworkConfig) -> Self {
        Self::with_cache_capacity(config, Self::DEFAULT_CACHE_CAPACITY)
    }

    /// A batch compiler whose cache holds at most `capacity` artifacts.
    pub fn with_cache_capacity(config: FrameworkConfig, capacity: usize) -> Self {
        let config_fp = config_fingerprint(&config);
        BatchCompiler {
            pipeline: Pipeline::new(config),
            config_fp,
            cache: Mutex::new(ArtifactCache::new(capacity)),
            store: None,
            faults: None,
        }
    }

    /// A batch compiler backed by a persistent [`ArtifactStore`] at `dir`
    /// (created if absent). Lookups layer memory → disk → compile; every
    /// fresh compile is written through to the store, so artifacts survive
    /// the process and a rerun over the same corpus hits disk instead of
    /// recompiling.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from opening the store directory.
    pub fn with_store(config: FrameworkConfig, dir: impl AsRef<Path>) -> io::Result<Self> {
        let mut batch = Self::new(config);
        batch.store = Some(ArtifactStore::open(dir)?);
        Ok(batch)
    }

    /// Attaches an already-opened store (memory → disk → compile layering).
    /// An armed fault plan is forwarded to the store's I/O points.
    pub fn attach_store(&mut self, mut store: ArtifactStore) {
        if let Some(plan) = &self.faults {
            store.set_fault_plan(Arc::clone(plan));
        }
        self.store = Some(store);
    }

    /// Arms a fault-injection plan on the compiler (its `batch.compile`
    /// and `partition.multilevel` points) and forwards it to the attached
    /// store's I/O points. Chaos testing only; compilers without a plan
    /// pay nothing.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        if let Some(store) = &mut self.store {
            store.set_fault_plan(Arc::clone(&plan));
        }
        self.faults = Some(plan);
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// The underlying staged pipeline (stage counters aggregate across the
    /// whole batch: after a run, `counters().plan` equals the cache misses
    /// that planned successfully).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Fingerprint of this compiler's configuration (the config half of
    /// every cache key).
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fp
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        lock_recover(&self.cache).stats()
    }

    /// Number of artifacts currently cached.
    pub fn cache_len(&self) -> usize {
        lock_recover(&self.cache).len()
    }

    /// Drops every cached artifact (counters survive).
    pub fn clear_cache(&self) {
        lock_recover(&self.cache).clear();
    }

    /// Evicts the cache entries for `graph`; returns how many were
    /// dropped. Exposed so harnesses can exercise recompile-after-eviction.
    pub fn evict(&self, graph: &Graph) -> usize {
        let key = CacheKey {
            canonical: canonical_hash(graph),
            config: self.config_fp,
        };
        lock_recover(&self.cache).evict(key)
    }

    /// Builds the partition-search controls for one request: the
    /// cooperative deadline plus the multilevel fault hook when a plan is
    /// armed. A multilevel failure (injected or real) degrades to the flat
    /// engine inside the search rather than failing the request.
    fn search_control(&self, ctx: &RequestCtx) -> SearchControl {
        let multilevel_fault: Option<FaultHook> = self.faults.as_ref().map(|plan| {
            let plan = Arc::clone(plan);
            Arc::new(move || match plan.at(faults::POINT_MULTILEVEL) {
                Some(FaultKind::Fail | FaultKind::IoError) => Some(InjectedFault::Fail),
                Some(FaultKind::Panic) => Some(InjectedFault::Panic),
                Some(FaultKind::Slow(ms)) => Some(InjectedFault::Slow(ms)),
                Some(FaultKind::BitFlip | FaultKind::Crash) | None => None,
            }) as FaultHook
        });
        SearchControl {
            deadline: ctx.deadline,
            multilevel_fault,
        }
    }

    /// Compiles one instance, going through the artifact cache.
    ///
    /// Returns the instance report and, on success, the compiled artifact.
    /// Compilation errors are captured in the report, not propagated —
    /// batch runs keep going.
    pub fn compile_instance(
        &self,
        id: &str,
        family: &str,
        graph: &Graph,
    ) -> (InstanceReport, Option<Compiled>) {
        self.compile_instance_ctx(id, family, graph, &RequestCtx::default())
    }

    /// [`BatchCompiler::compile_instance`] under a request context: the
    /// deadline is checked cooperatively between pipeline stages (a
    /// [`FrameworkError::DeadlineExceeded`] report, `timed_out` set) and
    /// inside the partition search (which truncates to its incumbent —
    /// `degraded` set — instead of failing). Degraded plans are never
    /// cached or persisted.
    pub fn compile_instance_ctx(
        &self,
        id: &str,
        family: &str,
        graph: &Graph,
        ctx: &RequestCtx,
    ) -> (InstanceReport, Option<Compiled>) {
        self.compile_with_hash(id, family, graph, canonical_hash(graph), ctx)
    }

    /// [`BatchCompiler::compile_instance`] with the WL hash precomputed —
    /// [`BatchCompiler::run`] groups instances by that hash first, so
    /// recomputing it per member would double the refinement work.
    fn compile_with_hash(
        &self,
        id: &str,
        family: &str,
        graph: &Graph,
        canonical: u64,
        ctx: &RequestCtx,
    ) -> (InstanceReport, Option<Compiled>) {
        let start = Instant::now();
        let key = CacheKey {
            canonical,
            config: self.config_fp,
        };
        let base_report =
            |cache: CacheOutcome, error: FrameworkError, start: Instant| InstanceReport {
                id: id.to_string(),
                family: family.to_string(),
                vertices: graph.vertex_count(),
                edges: graph.edge_count(),
                canonical_hash: key.canonical,
                cache,
                metrics: None,
                error: Some(error.to_string()),
                wall_micros: start.elapsed().as_micros(),
                degraded: false,
                timed_out: matches!(error, FrameworkError::DeadlineExceeded),
            };
        // Entry fault point. The panic fires before any lock is taken, so
        // injected panics can never poison the cache from inside it.
        match self
            .faults
            .as_ref()
            .and_then(|f| f.at(faults::POINT_COMPILE))
        {
            Some(FaultKind::Panic) => panic!("injected fault: batch.compile"),
            Some(FaultKind::Slow(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some(FaultKind::Fail | FaultKind::IoError) => {
                let mut report = base_report(
                    CacheOutcome::Miss,
                    FrameworkError::VerificationFailed,
                    start,
                );
                report.error = Some("injected fault: batch.compile".to_string());
                return (report, None);
            }
            // Crash aborts inside the probe; BitFlip has no bytes here.
            Some(FaultKind::BitFlip | FaultKind::Crash) | None => {}
        }
        let mut outcome = CacheOutcome::Miss;
        let mut cached = lock_recover(&self.cache).lookup(key, graph);
        if cached.is_some() {
            outcome = CacheOutcome::Hit;
        } else if let Some(store) = &self.store {
            cached = store.load(key, graph, &self.pipeline).inspect(|p| {
                outcome = CacheOutcome::DiskHit;
                // Promote to the memory layer so the next lookup is free.
                lock_recover(&self.cache).insert(key, graph.clone(), p.clone());
            });
        }
        if cached.is_none() && ctx.expired() {
            // The expensive prefix hasn't started; cancel instead of
            // burning a partition search on a dead request.
            return (
                base_report(outcome, FrameworkError::DeadlineExceeded, start),
                None,
            );
        }
        // The planning stage runs outside the cache lock: concurrent misses
        // on the same content may plan twice, but never block each other.
        let planned = match cached {
            Some(p) => Ok(p),
            None => self
                .pipeline
                .partition_with_control(graph, &self.search_control(ctx))
                .plan_leaves()
                .inspect(|p| {
                    // Degraded plans (deadline-truncated search, multilevel
                    // fallback) stay out of both cache layers: a transient
                    // fault must not pin reduced quality for future
                    // requests.
                    if !p.partition().degraded {
                        lock_recover(&self.cache).insert(key, graph.clone(), p.clone());
                        if let Some(store) = &self.store {
                            store.save(key, p);
                        }
                    }
                }),
        };
        let degraded = planned
            .as_ref()
            .map(|p| p.partition().degraded)
            .unwrap_or(false);
        // Cooperative deadline between the remaining stages. A degraded
        // request already absorbed its deadline inside the partition search
        // and runs the cheap suffix to a terminal (degraded) answer.
        let compiled = planned.and_then(|p| {
            if ctx.expired() && !degraded {
                return Err(FrameworkError::DeadlineExceeded);
            }
            let scheduled = p.schedule(p.configured_budget());
            if ctx.expired() && !degraded {
                return Err(FrameworkError::DeadlineExceeded);
            }
            let recombined = scheduled.recombine()?;
            if ctx.expired() && !degraded {
                return Err(FrameworkError::DeadlineExceeded);
            }
            recombined.verify()
        });
        let report = InstanceReport {
            id: id.to_string(),
            family: family.to_string(),
            vertices: graph.vertex_count(),
            edges: graph.edge_count(),
            canonical_hash: key.canonical,
            cache: outcome,
            metrics: compiled.as_ref().ok().map(|c| InstanceMetrics {
                ne_min: c.ne_min,
                ne_limit: c.ne_limit,
                peak_emitters: c.metrics.peak_emitters,
                ee_cnots: c.metrics.ee_two_qubit_count,
                duration: c.metrics.duration,
                t_loss: c.metrics.t_loss,
                mean_photon_loss: c.metrics.loss.mean_photon_loss,
                any_photon_loss: c.metrics.loss.any_photon_loss,
                strategy: c.strategy,
            }),
            error: compiled.as_ref().err().map(ToString::to_string),
            wall_micros: start.elapsed().as_micros(),
            degraded,
            timed_out: matches!(compiled, Err(FrameworkError::DeadlineExceeded)),
        };
        (report, compiled.ok())
    }

    /// Compiles every instance in parallel and aggregates the reports.
    ///
    /// Instances are first grouped by cache identity (exact graph ×
    /// config), and each group runs its members in order while distinct
    /// groups run in parallel — so within-run duplicates deterministically
    /// reuse the first member's artifact instead of racing it. Failures
    /// never abort the batch: a failing instance contributes a report with
    /// its error and the run continues.
    pub fn run(&self, instances: &[BatchInstance]) -> BatchReport {
        let mut groups: Vec<(u64, &Graph, Vec<usize>)> = Vec::new();
        for (i, inst) in instances.iter().enumerate() {
            let canonical = canonical_hash(&inst.graph);
            match groups
                .iter_mut()
                .find(|(c, g, _)| *c == canonical && *g == &inst.graph)
            {
                Some((_, _, members)) => members.push(i),
                None => groups.push((canonical, &inst.graph, vec![i])),
            }
        }
        let grouped: Vec<Vec<(usize, InstanceReport)>> = groups
            .par_iter()
            .map(|(canonical, _, members)| {
                members
                    .iter()
                    .map(|&i| {
                        let inst = &instances[i];
                        (
                            i,
                            self.compile_with_hash(
                                &inst.id,
                                &inst.family,
                                &inst.graph,
                                *canonical,
                                &RequestCtx::default(),
                            )
                            .0,
                        )
                    })
                    .collect()
            })
            .collect();
        let mut slots: Vec<Option<InstanceReport>> = vec![None; instances.len()];
        for group in grouped {
            for (i, report) in group {
                slots[i] = Some(report);
            }
        }
        let reports = slots
            .into_iter()
            .map(|r| r.expect("every instance reported"))
            .collect();
        BatchReport::from_instances(
            self.pipeline.config(),
            reports,
            self.cache_stats(),
            self.store.as_ref().map(|s| s.stats()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;
    use epgs_graph::canon::relabel;
    use epgs_graph::generators;

    fn quick_config() -> FrameworkConfig {
        FrameworkConfig::builder()
            .g_max(5)
            .lc_budget(3)
            .partition_effort(4)
            .orderings_per_subgraph(4)
            .flexible_slack(1)
            .build()
    }

    #[test]
    fn expired_deadline_on_a_cold_compile_is_a_structured_timeout() {
        let batch = BatchCompiler::new(quick_config());
        let g = generators::lattice(3, 3);
        let ctx = RequestCtx {
            deadline: Some(Instant::now()),
        };
        let (report, compiled) = batch.compile_instance_ctx("cold", "lattice", &g, &ctx);
        assert!(compiled.is_none());
        assert!(report.timed_out);
        assert!(!report.degraded);
        assert_eq!(
            report.error.as_deref(),
            Some("compile deadline exceeded"),
            "structured deadline error, not a solver failure"
        );
        assert_eq!(batch.cache_len(), 0, "nothing was planned or cached");
        // An expired deadline cancels even a cache hit — the request is
        // dead either way — while a live deadline lets the hit answer.
        let (warm, warm_compiled) = batch.compile_instance("warm", "lattice", &g);
        assert!(warm_compiled.is_some());
        assert_eq!(warm.cache, CacheOutcome::Miss);
        let (hit, hit_compiled) = batch.compile_instance_ctx("hit", "lattice", &g, &ctx);
        assert!(hit_compiled.is_none());
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert!(hit.timed_out);
        let live = RequestCtx::with_timeout(std::time::Duration::from_secs(60));
        let (ok, ok_compiled) = batch.compile_instance_ctx("ok", "lattice", &g, &live);
        assert!(ok_compiled.is_some(), "cached prefix + cheap suffix");
        assert_eq!(ok.cache, CacheOutcome::Hit);
        assert!(!ok.timed_out);
    }

    #[test]
    fn injected_multilevel_faults_degrade_and_stay_out_of_the_cache() {
        use crate::faults::{FaultKind, FaultPlan, Trigger};
        let mut batch = BatchCompiler::new(quick_config());
        let plan = Arc::new(FaultPlan::new(5).rule(
            faults::POINT_MULTILEVEL,
            FaultKind::Fail,
            Trigger::Always,
        ));
        batch.set_fault_plan(Arc::clone(&plan));
        let g = generators::lattice(3, 3);
        let (report, compiled) = batch.compile_instance("deg", "lattice", &g);
        assert!(compiled.is_some(), "degraded, not failed");
        assert!(report.degraded);
        assert!(!report.timed_out);
        assert!(plan.total_hits() > 0);
        assert_eq!(batch.cache_len(), 0, "degraded plans are not cached");
        plan.disarm();
        let (clean, clean_compiled) = batch.compile_instance("clean", "lattice", &g);
        assert!(clean_compiled.is_some());
        assert!(!clean.degraded);
        assert_eq!(
            clean.cache,
            CacheOutcome::Miss,
            "recompiled at full quality"
        );
        assert_eq!(batch.cache_len(), 1, "pristine plan cached normally");
    }

    #[test]
    fn injected_compile_failure_is_reported_not_propagated() {
        use crate::faults::{FaultKind, FaultPlan, Trigger};
        let mut batch = BatchCompiler::new(quick_config());
        batch.set_fault_plan(Arc::new(FaultPlan::new(6).rule_limited(
            faults::POINT_COMPILE,
            FaultKind::Fail,
            Trigger::Nth(0),
            1,
        )));
        let g = generators::path(6);
        let (report, compiled) = batch.compile_instance("boom", "path", &g);
        assert!(compiled.is_none());
        assert_eq!(
            report.error.as_deref(),
            Some("injected fault: batch.compile")
        );
        let (ok, ok_compiled) = batch.compile_instance("fine", "path", &g);
        assert!(ok_compiled.is_some(), "only invocation 0 was armed");
        assert!(ok.ok());
    }

    #[test]
    fn repeated_content_hits_the_cache_and_matches_fresh_compiles() {
        let batch = BatchCompiler::new(quick_config());
        let g = generators::lattice(3, 3);
        let (first, compiled_first) = batch.compile_instance("a", "lattice", &g);
        let (second, compiled_second) = batch.compile_instance("b", "lattice", &g);
        assert_eq!(first.cache, CacheOutcome::Miss);
        assert_eq!(second.cache, CacheOutcome::Hit);
        // The cached prefix must not change the output.
        assert_eq!(
            compiled_first.unwrap().circuit,
            compiled_second.unwrap().circuit
        );
        // Only the miss ran partition + planning.
        let counts = batch.pipeline().counters();
        assert_eq!((counts.partition, counts.plan), (1, 1));
        assert_eq!(counts.verify, 2);
    }

    #[test]
    fn relabeled_graphs_share_a_key_but_never_an_artifact() {
        let batch = BatchCompiler::new(quick_config());
        let g = generators::tree(9, 2);
        let perm: Vec<usize> = (0..9).map(|v| (v + 4) % 9).collect();
        let h = relabel(&g, &perm);
        assert_ne!(g, h, "permutation must change the labeling");
        assert_eq!(canonical_hash(&g), canonical_hash(&h), "same content hash");

        let (a, ca) = batch.compile_instance("orig", "tree", &g);
        let (b, cb) = batch.compile_instance("relabel", "tree", &h);
        assert_eq!(a.cache, CacheOutcome::Miss);
        // Same bucket, different exact graph: observable collision, no
        // unsound reuse.
        assert_eq!(b.cache, CacheOutcome::Miss);
        assert_eq!(batch.cache_stats().bucket_collisions, 1);
        // Both compile and verify against their own labeling.
        assert!(ca.is_some() && cb.is_some());
        // Both labelings are now cached independently; each hits.
        assert_eq!(
            batch.compile_instance("g2", "tree", &g).0.cache,
            CacheOutcome::Hit
        );
        assert_eq!(
            batch.compile_instance("h2", "tree", &h).0.cache,
            CacheOutcome::Hit
        );
    }

    #[test]
    fn different_configs_fingerprint_and_cache_separately() {
        let a = config_fingerprint(&quick_config());
        let b = config_fingerprint(&FrameworkConfig::builder().g_max(4).build());
        assert_ne!(a, b, "distinct configs must not share a fingerprint");
        assert_eq!(
            a,
            config_fingerprint(&quick_config()),
            "fingerprint is deterministic"
        );

        // Same graph under two compilers with different configs: both miss.
        let g = generators::path(6);
        let batch_a = BatchCompiler::new(quick_config());
        let batch_b = BatchCompiler::new(FrameworkConfig::builder().g_max(4).build());
        assert_eq!(
            batch_a.compile_instance("a", "path", &g).0.cache,
            CacheOutcome::Miss
        );
        assert_eq!(
            batch_b.compile_instance("b", "path", &g).0.cache,
            CacheOutcome::Miss
        );
    }

    #[test]
    fn evicted_entries_recompile_without_panicking() {
        let batch = BatchCompiler::new(quick_config());
        let g = generators::cycle(8);
        assert_eq!(
            batch.compile_instance("a", "cycle", &g).0.cache,
            CacheOutcome::Miss
        );
        assert_eq!(batch.evict(&g), 1);
        let (again, compiled) = batch.compile_instance("b", "cycle", &g);
        assert_eq!(
            again.cache,
            CacheOutcome::Miss,
            "eviction forces a recompile"
        );
        assert!(compiled.is_some());
        assert!(batch.cache_stats().evictions >= 1);
    }

    #[test]
    fn corrupted_entries_are_discarded_not_trusted() {
        let config = quick_config();
        let pipeline = Pipeline::new(config.clone());
        let g = generators::path(7);
        let wrong = generators::cycle(7);
        // Plan the WRONG graph and file it under `g`'s slot: the entry's
        // artifact no longer matches its graph.
        let planned_wrong = pipeline.partition(&wrong).plan_leaves().unwrap();
        let key = CacheKey {
            canonical: canonical_hash(&g),
            config: config_fingerprint(&config),
        };
        let mut cache = ArtifactCache::new(8);
        cache.insert(key, g.clone(), planned_wrong);
        // Lookup detects the inconsistency, discards, and reports a miss …
        assert!(cache.lookup(key, &g).is_none());
        assert_eq!(cache.stats().corrupt_discarded, 1);
        assert!(cache.is_empty());
        // … so the batch path recompiles and still verifies.
        let batch = BatchCompiler::new(config);
        let (report, compiled) = batch.compile_instance("g", "path", &g);
        assert!(report.ok());
        assert!(compiled.is_some());
    }

    #[test]
    fn lru_capacity_bound_holds() {
        let batch = BatchCompiler::with_cache_capacity(quick_config(), 2);
        for (i, g) in [
            generators::path(5),
            generators::path(6),
            generators::path(7),
        ]
        .iter()
        .enumerate()
        {
            batch.compile_instance(&format!("p{i}"), "path", g);
        }
        assert_eq!(batch.cache_len(), 2, "capacity bound enforced");
        assert_eq!(batch.cache_stats().evictions, 1);
        // The oldest entry (path-5) was evicted; the newest still hits.
        assert_eq!(
            batch
                .compile_instance("again", "path", &generators::path(7))
                .0
                .cache,
            CacheOutcome::Hit
        );
        assert_eq!(
            batch
                .compile_instance("reload", "path", &generators::path(5))
                .0
                .cache,
            CacheOutcome::Miss
        );
    }

    #[test]
    fn batch_report_aggregates_families_and_histogram() {
        let batch = BatchCompiler::new(quick_config());
        let jobs = vec![
            BatchInstance::new("p5", "path", generators::path(5)),
            BatchInstance::new("p5-dup", "path", generators::path(5)),
            BatchInstance::new("t9", "tree", generators::tree(9, 2)),
            BatchInstance::new("l33", "lattice", generators::lattice(3, 3)),
        ];
        let report = batch.run(&jobs);
        assert_eq!(report.succeeded, 4);
        assert_eq!(report.failed, 0);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.distinct_canonical, 3);
        assert_eq!(report.families.len(), 3);
        let path = &report.families[0];
        assert_eq!((path.family.as_str(), path.instances), ("path", 2));
        assert_eq!(path.cache_hits, 1);
        assert_eq!(report.wall_histogram.iter().sum::<usize>(), 4);
        assert_eq!(report.instances.len(), 4);

        // JSON renders and mentions every instance id.
        let json = report.to_json();
        for id in ["p5", "p5-dup", "t9", "l33"] {
            assert!(json.contains(&format!("\"id\":\"{id}\"")), "{id}");
        }
        assert!(json.contains("\"succeeded\":4"));
    }

    #[test]
    fn json_escaping_handles_awkward_ids() {
        let batch = BatchCompiler::new(quick_config());
        let report = batch.run(&[BatchInstance::new(
            "a\"b\\c\nd",
            "path",
            generators::path(5),
        )]);
        let json = report.to_json();
        assert!(json.contains("\"id\":\"a\\\"b\\\\c\\nd\""));
        // The whole document stays machine-readable.
        let doc = epgs_corpus::json::Value::parse(&json).expect("well-formed report");
        assert_eq!(doc.get("succeeded").and_then(|v| v.as_f64()), Some(1.0));
    }

    #[test]
    fn with_store_layers_memory_then_disk_then_compile() {
        let dir = std::env::temp_dir().join(format!("epgs-batch-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = generators::lattice(3, 3);
        {
            let batch = BatchCompiler::with_store(quick_config(), &dir).unwrap();
            let (cold, _) = batch.compile_instance("cold", "lattice", &g);
            assert_eq!(cold.cache, CacheOutcome::Miss);
            // Same process: the memory layer answers first.
            let (warm, _) = batch.compile_instance("warm", "lattice", &g);
            assert_eq!(warm.cache, CacheOutcome::Hit);
            assert_eq!(batch.store().unwrap().stats().writes, 1);
        }
        // "New process": fresh compiler, same directory → disk hit, and the
        // artifact is promoted so the next lookup is a memory hit.
        let batch = BatchCompiler::with_store(quick_config(), &dir).unwrap();
        let (restart, compiled) = batch.compile_instance("restart", "lattice", &g);
        assert_eq!(restart.cache, CacheOutcome::DiskHit);
        assert!(compiled.is_some());
        assert_eq!(
            batch.compile_instance("again", "lattice", &g).0.cache,
            CacheOutcome::Hit
        );
        // Disk adoption skipped the expensive stages entirely.
        let counts = batch.pipeline().counters();
        assert_eq!((counts.partition, counts.plan), (0, 0));
        // The report surfaces the layered outcome.
        let report = batch.run(&[BatchInstance::new("r", "lattice", g.clone())]);
        assert_eq!(report.cache_hits, 1);
        assert!(report.store.is_some());
        assert!(report.to_json().contains("\"store\":{"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
