//! Stage 2 artifact: per-leaf compilation plans (paper §IV.B).

use std::sync::Arc;

use rayon::prelude::*;

use epgs_graph::{ops, Graph};
use epgs_partition::Partition;

use crate::error::FrameworkError;
use crate::schedule::{schedule, Schedule};
use crate::stages::partitioned::Partitioned;
use crate::stages::scheduled::Scheduled;
use crate::stages::Shared;
use crate::subgraph::{compile_subgraph, SubgraphPlan};

/// Partition plus plans, shared immutably by every schedule derived from it.
#[derive(Debug)]
pub(crate) struct PlannedData {
    pub(crate) partition: Partition,
    pub(crate) plans: Vec<SubgraphPlan>,
    pub(crate) ne_min: usize,
}

/// Every leaf subgraph compiled near-optimally, with flexible emitter
/// variants, plus the block-locally refined partition.
///
/// This is the expensive prefix of the pipeline — the artifact to keep when
/// sweeping emitter budgets. [`Planned::schedule`] takes `&self`, so any
/// number of budgets can be scheduled off one plan:
///
/// ```
/// use epgs::{FrameworkConfig, Pipeline};
/// use epgs_graph::generators;
///
/// # fn main() -> Result<(), epgs::FrameworkError> {
/// let pipeline = Pipeline::new(FrameworkConfig::builder().g_max(4).build());
/// let planned = pipeline.partition(&generators::tree(9, 2)).plan_leaves()?;
/// assert!(!planned.plans().is_empty());
/// let tight = planned.schedule(1);
/// let loose = planned.schedule(4);
/// assert!(loose.schedule().makespan <= tight.schedule().makespan + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Planned {
    pub(crate) shared: Arc<Shared>,
    pub(crate) target: Arc<Graph>,
    pub(crate) data: Arc<PlannedData>,
}

impl Planned {
    pub(crate) fn build(stage: &Partitioned) -> Result<Self, FrameworkError> {
        let shared = Arc::clone(&stage.shared);
        let cfg = &shared.config;
        let mut partition = stage.partition_clone();

        let blocks: Vec<Vec<usize>> = partition
            .blocks()
            .into_iter()
            .filter(|b| !b.is_empty())
            .collect();

        let compile_block = |graph: &Graph,
                             block: &[usize],
                             i: usize,
                             seed_extra: u64|
         -> Result<SubgraphPlan, FrameworkError> {
            let (sub, vertices) = graph.induced_subgraph(block);
            compile_subgraph(
                &sub,
                &vertices,
                &cfg.hardware,
                &cfg.objective,
                cfg.orderings_per_subgraph,
                cfg.flexible_slack,
                cfg.seed.wrapping_add(i as u64).wrapping_add(seed_extra),
            )
            .map_err(FrameworkError::from)
        };

        // Initial compile of every leaf, in parallel. Interior-vertex LC
        // refinements (below) never touch another block's induced subgraph,
        // so these solves are independent of the refinement order and the
        // result is identical to the sequential interleaving.
        let mut plans: Vec<SubgraphPlan> = {
            let transformed = &partition.transformed;
            (0..blocks.len())
                .into_par_iter()
                .map(|i| compile_block(transformed, &blocks[i], i, 0))
                .collect::<Result<Vec<_>, FrameworkError>>()?
        };

        // Block-local LC refinement at *interior* vertices (no cut edges),
        // where subgraph-level local complementation coincides with the
        // global one: fewer intra-block edges → fewer emitter-emitter CNOTs.
        //
        // An interior LC only toggles edges *inside its own block*, so each
        // block's accept/reject chain is independent of every other block —
        // the blocks are evaluated speculatively in parallel, each walking
        // its own working graph by apply/undo (LC is self-inverse at a fixed
        // vertex) instead of cloning the whole transformed graph per trial.
        // The one cross-block coupling is the global LC budget, enforced by
        // a sequential acceptance replay in block order below; a block's
        // accepted chain is truncated to whatever budget is actually left
        // when its turn comes, which reproduces the sequential loop's
        // stop-at-budget behavior decision for decision.
        let budget_left = cfg
            .partition
            .lc_budget
            .saturating_sub(partition.lc_sequence.len());
        if budget_left > 0 {
            let transformed = &partition.transformed;
            let plans_ref = &plans;
            let accepted: Vec<Vec<(usize, SubgraphPlan)>> = (0..blocks.len())
                .into_par_iter()
                .map(|i| {
                    let block = &blocks[i];
                    let in_block: std::collections::BTreeSet<usize> =
                        block.iter().copied().collect();
                    let interior: Vec<usize> = block
                        .iter()
                        .copied()
                        .filter(|&v| {
                            transformed.degree(v) >= 2
                                && transformed
                                    .neighbors(v)
                                    .iter()
                                    .all(|w| in_block.contains(w))
                        })
                        .collect();
                    let mut work = transformed.clone();
                    let mut cur_ee = plans_ref[i].variants[0].ee_cnots;
                    let mut out: Vec<(usize, SubgraphPlan)> = Vec::new();
                    for &v in &interior {
                        if out.len() >= budget_left {
                            break;
                        }
                        let edges_before = work.edge_count();
                        ops::local_complement(&mut work, v).expect("vertex in range");
                        // Densifying LCs help a single leaf but hurt the
                        // global solve; only keep transforms that also shed
                        // edges.
                        if work.edge_count() > edges_before {
                            ops::local_complement(&mut work, v).expect("vertex in range");
                            continue;
                        }
                        match compile_block(&work, block, i, 1 + v as u64) {
                            Ok(candidate) if candidate.variants[0].ee_cnots < cur_ee => {
                                cur_ee = candidate.variants[0].ee_cnots;
                                out.push((v, candidate));
                            }
                            _ => {
                                ops::local_complement(&mut work, v).expect("vertex in range");
                            }
                        }
                    }
                    out
                })
                .collect();
            for (i, chain) in accepted.into_iter().enumerate() {
                for (v, candidate) in chain {
                    if partition.lc_sequence.len() >= cfg.partition.lc_budget {
                        break;
                    }
                    ops::local_complement(&mut partition.transformed, v).expect("vertex in range");
                    partition.lc_sequence.push(v);
                    plans[i] = candidate;
                }
            }
        }
        partition.cut = partition.recompute_cut();

        shared
            .counters
            .plan
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(Planned {
            shared,
            target: Arc::clone(&stage.target),
            data: Arc::new(PlannedData {
                partition,
                plans,
                ne_min: stage.ne_min(),
            }),
        })
    }

    /// The original target graph.
    pub fn target(&self) -> &Graph {
        &self.target
    }

    /// The partition after block-local LC refinement.
    pub fn partition(&self) -> &Partition {
        &self.data.partition
    }

    /// Per-block compilation plans, aligned with
    /// [`Partition::blocks`](epgs_partition::Partition::blocks) (empty
    /// blocks dropped).
    pub fn plans(&self) -> &[SubgraphPlan] {
        &self.data.plans
    }

    /// Minimal emitter count `Ne_min` of the target.
    pub fn ne_min(&self) -> usize {
        self.data.ne_min
    }

    /// Resolves the configured [`EmitterBudget`](crate::EmitterBudget)
    /// against this target's `Ne_min`.
    pub fn configured_budget(&self) -> usize {
        self.shared.config.emitter_budget.resolve(self.data.ne_min)
    }

    /// Stage 3: packs the leaf circuits as-late-as-possible under
    /// `ne_limit` emitters (paper §IV.C), including the flexible-variant
    /// improvement pass. `ne_limit` is clamped to at least 1.
    pub fn schedule(&self, ne_limit: usize) -> Scheduled {
        let ne_limit = ne_limit.max(1);
        let sched: Schedule = schedule(&self.data.plans, ne_limit);
        self.shared
            .counters
            .schedule
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Scheduled::new(self, sched, ne_limit)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::FrameworkConfig;
    use crate::stages::Pipeline;
    use epgs_graph::generators;

    fn pipeline() -> Pipeline {
        Pipeline::new(
            FrameworkConfig::builder()
                .g_max(5)
                .lc_budget(3)
                .partition_effort(4)
                .orderings_per_subgraph(4)
                .flexible_slack(1)
                .build(),
        )
    }

    #[test]
    fn plans_align_with_blocks_and_cover_all_vertices() {
        let p = pipeline();
        let planned = p
            .partition(&generators::lattice(3, 4))
            .plan_leaves()
            .unwrap();
        let mut covered: Vec<usize> = planned
            .plans()
            .iter()
            .flat_map(|plan| plan.vertices.iter().copied())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn replanning_from_cached_partitioned_is_reproducible() {
        let p = pipeline();
        let partitioned = p.partition(&generators::cycle(12));
        let a = partitioned.plan_leaves().unwrap();
        let b = partitioned.plan_leaves().unwrap();
        assert_eq!(a.partition(), b.partition());
        assert_eq!(a.plans().len(), b.plans().len());
        for (x, y) in a.plans().iter().zip(b.plans()) {
            assert_eq!(x.vertices, y.vertices);
            assert_eq!(x.variants.len(), y.variants.len());
            for (vx, vy) in x.variants.iter().zip(&y.variants) {
                assert_eq!(vx.solved.circuit, vy.solved.circuit);
                assert_eq!(vx.emitters, vy.emitters);
            }
        }
        assert_eq!(p.counters().plan, 2, "both runs really executed");
    }

    #[test]
    fn refinement_never_exceeds_global_lc_budget() {
        let p = Pipeline::new(
            FrameworkConfig::builder()
                .g_max(3)
                .lc_budget(5)
                .partition_effort(6)
                .build(),
        );
        let planned = p.partition(&generators::complete(6)).plan_leaves().unwrap();
        assert!(planned.partition().lc_sequence.len() <= 5);
        assert_eq!(planned.partition().cut, planned.partition().recompute_cut());
    }
}
