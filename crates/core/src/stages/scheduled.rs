//! Stage 3 artifact: the Tetris-packed schedule (paper §IV.C).

use std::sync::Arc;

use epgs_graph::Graph;
use epgs_hardware::CompileObjective;

use crate::error::FrameworkError;
use crate::schedule::Schedule;
use crate::stages::planned::{Planned, PlannedData};
use crate::stages::recombined::{RecombineStrategy, Recombined};
use crate::stages::Shared;

/// The leaf circuits placed on a shared timeline under a concrete emitter
/// budget `Ne_limit`.
///
/// Scheduling is the first budget-dependent stage: everything upstream
/// ([`Planned`]) is budget-independent and shared, so a budget sweep holds
/// one `Planned` and many `Scheduled`s.
///
/// # Examples
///
/// ```
/// use epgs::{FrameworkConfig, Pipeline};
/// use epgs_graph::generators;
///
/// # fn main() -> Result<(), epgs::FrameworkError> {
/// let pipeline = Pipeline::new(FrameworkConfig::builder().g_max(4).build());
/// let planned = pipeline.partition(&generators::lattice(3, 3)).plan_leaves()?;
/// let scheduled = planned.schedule(2);
/// assert_eq!(scheduled.ne_limit(), 2);
/// assert_eq!(scheduled.schedule().placements.len(), planned.plans().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scheduled {
    pub(crate) shared: Arc<Shared>,
    pub(crate) target: Arc<Graph>,
    pub(crate) data: Arc<PlannedData>,
    pub(crate) sched: Schedule,
    pub(crate) ne_limit: usize,
}

impl Scheduled {
    pub(crate) fn new(planned: &Planned, sched: Schedule, ne_limit: usize) -> Self {
        Scheduled {
            shared: Arc::clone(&planned.shared),
            target: Arc::clone(&planned.target),
            data: Arc::clone(&planned.data),
            sched,
            ne_limit,
        }
    }

    /// The packed schedule: placements, makespan estimate, budget.
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// The emitter budget this schedule was packed under.
    pub fn ne_limit(&self) -> usize {
        self.ne_limit
    }

    /// The global emission ordering the schedule induces over the
    /// transformed graph's vertices.
    pub fn global_ordering(&self) -> Vec<usize> {
        self.sched.global_ordering(&self.data.plans)
    }

    /// Stage 4: recombines the scheduled leaf circuits into one global
    /// circuit using the configured
    /// [recombination strategies](crate::FrameworkConfig::recombine) and
    /// [objective](crate::FrameworkConfig::objective).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Solver`] if every candidate solve fails, or
    /// [`FrameworkError::NoRecombineStrategy`] if the configured strategy
    /// list is empty.
    pub fn recombine(&self) -> Result<Recombined, FrameworkError> {
        self.recombine_with(&self.shared.config.recombine)
    }

    /// Stage 4 with an explicit strategy list, tried in order; the best
    /// circuit under the configured
    /// [objective](crate::FrameworkConfig::objective) wins (the default
    /// objective is the paper's lexicographic #ee-CNOT, then `T_loss`,
    /// then duration order).
    ///
    /// # Errors
    ///
    /// [`FrameworkError::NoRecombineStrategy`] if `strategies` is empty,
    /// or [`FrameworkError::Solver`] if every candidate solve fails.
    pub fn recombine_with(
        &self,
        strategies: &[RecombineStrategy],
    ) -> Result<Recombined, FrameworkError> {
        Recombined::build(self, strategies, &self.shared.config.objective)
    }

    /// Stage 4 with an explicit objective, overriding the configured one
    /// for this call only. Only the recombination competition is re-scored:
    /// the leaf circuits underneath were already selected under the
    /// *configured* objective, so this is a cheap approximation of a
    /// platform's preference, not a full re-compile — for an unbiased
    /// cross-platform comparison build one pipeline per platform (as the
    /// `hardware_sweep` bench bin does):
    ///
    /// ```
    /// use epgs::{CompileObjective, FrameworkConfig, Pipeline};
    /// use epgs_graph::generators;
    /// use epgs_hardware::HardwareModel;
    ///
    /// # fn main() -> Result<(), epgs::FrameworkError> {
    /// let pipeline = Pipeline::new(FrameworkConfig::builder().g_max(4).build());
    /// let scheduled = pipeline
    ///     .partition(&generators::lattice(3, 3))
    ///     .plan_leaves()?
    ///     .schedule(3);
    /// let for_rydberg = CompileObjective::Duration(HardwareModel::rydberg());
    /// let recombined = scheduled.recombine_objective(&for_rydberg)?;
    /// assert_eq!(recombined.objective(), &for_rydberg);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// See [`Scheduled::recombine_with`].
    pub fn recombine_objective(
        &self,
        objective: &CompileObjective,
    ) -> Result<Recombined, FrameworkError> {
        Recombined::build(self, &self.shared.config.recombine, objective)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::FrameworkConfig;
    use crate::stages::Pipeline;
    use epgs_graph::generators;

    #[test]
    fn budgets_scale_the_makespan_monotonically() {
        let p = Pipeline::new(
            FrameworkConfig::builder()
                .g_max(4)
                .orderings_per_subgraph(4)
                .build(),
        );
        let planned = p
            .partition(&generators::lattice(3, 4))
            .plan_leaves()
            .unwrap();
        let m1 = planned.schedule(1).schedule().makespan;
        let m4 = planned.schedule(4).schedule().makespan;
        assert!(m4 <= m1 + 1e-9, "more emitters never slow the schedule");
    }

    #[test]
    fn global_ordering_is_a_permutation_of_vertices() {
        let p = Pipeline::new(FrameworkConfig::builder().g_max(4).build());
        let planned = p.partition(&generators::tree(11, 2)).plan_leaves().unwrap();
        let mut ord = planned.schedule(2).global_ordering();
        ord.sort_unstable();
        assert_eq!(ord, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn zero_budget_is_clamped_to_one() {
        let p = Pipeline::new(FrameworkConfig::builder().g_max(4).build());
        let planned = p.partition(&generators::path(6)).plan_leaves().unwrap();
        assert_eq!(planned.schedule(0).ne_limit(), 1);
    }
}
