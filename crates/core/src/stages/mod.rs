//! The staged compilation pipeline (paper Fig. 6), one artifact per stage.
//!
//! [`Framework::compile`](crate::Framework::compile) runs five stages —
//! partition → per-leaf compile → schedule → recombine → verify — and this
//! module exposes each as an explicit, reusable artifact:
//!
//! ```text
//! Pipeline::partition(&Graph)   -> Partitioned   (§IV.A  partition + LC)
//! Partitioned::plan_leaves()    -> Planned       (§IV.B  leaf circuits, parallel)
//! Planned::schedule(ne_limit)   -> Scheduled     (§IV.C  Tetris packing)
//! Scheduled::recombine()        -> Recombined    (§IV.D  global solve)
//! Recombined::verify()          -> Compiled      (§IV.E  stabilizer check)
//! ```
//!
//! Artifacts are cheap to clone (heavy state is shared behind `Arc`) and
//! every stage method takes `&self`, so one expensive prefix can fan out
//! into many cheap suffixes. The paper's §V.B.2 emitter-budget sweeps
//! (`1.5×` / `2× Ne_min`) are the motivating case: [`Planned`] is computed
//! once and [`Planned::schedule`] is called per budget, skipping the
//! partition search and every leaf solve on all but the first point.
//!
//! # Examples
//!
//! A two-budget sweep that partitions and compiles leaves exactly once:
//!
//! ```
//! use epgs::{FrameworkConfig, Pipeline};
//! use epgs_graph::generators;
//!
//! # fn main() -> Result<(), epgs::FrameworkError> {
//! let pipeline = Pipeline::new(FrameworkConfig::builder().g_max(5).build());
//! let planned = pipeline.partition(&generators::lattice(3, 3)).plan_leaves()?;
//! for budget in [2, 4] {
//!     let compiled = planned.schedule(budget).recombine()?.verify()?;
//!     assert_eq!(compiled.ne_limit, budget);
//! }
//! let counts = pipeline.counters();
//! assert_eq!((counts.partition, counts.plan, counts.schedule), (1, 1, 2));
//! # Ok(())
//! # }
//! ```

pub mod partitioned;
pub mod planned;
pub mod recombined;
pub mod scheduled;

pub use partitioned::Partitioned;
pub use planned::Planned;
pub use recombined::{RecombineStrategy, Recombined};
pub use scheduled::Scheduled;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use epgs_graph::{height, Graph};
use epgs_partition::SearchControl;
use epgs_solver::ordering;

use crate::config::FrameworkConfig;
use crate::error::FrameworkError;
use crate::framework::Compiled;

/// Execution counters of one [`Pipeline`], incremented once per stage run.
///
/// These make sweep-reuse claims checkable: after a k-budget sweep off one
/// [`Planned`] artifact, `partition == plan == 1` while `schedule == k`.
#[derive(Debug, Default)]
pub(crate) struct StageCounters {
    pub(crate) partition: AtomicUsize,
    pub(crate) plan: AtomicUsize,
    pub(crate) schedule: AtomicUsize,
    pub(crate) recombine: AtomicUsize,
    pub(crate) verify: AtomicUsize,
}

/// A point-in-time snapshot of a pipeline's internal stage counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCounts {
    /// Completed partition stages.
    pub partition: usize,
    /// Completed leaf-planning stages.
    pub plan: usize,
    /// Completed scheduling stages.
    pub schedule: usize,
    /// Completed recombination stages.
    pub recombine: usize,
    /// Completed verification stages.
    pub verify: usize,
}

/// Configuration + counters shared by every artifact of one pipeline.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) config: FrameworkConfig,
    pub(crate) counters: StageCounters,
}

/// The staged compilation pipeline front-end.
///
/// Construct once per configuration, then drive targets through the stages.
/// [`crate::Framework`] wraps this type for the one-shot monolithic call;
/// use `Pipeline` directly when intermediate artifacts are worth keeping —
/// budget sweeps, schedule inspection, or recombination experiments.
#[derive(Debug, Clone)]
pub struct Pipeline {
    pub(crate) shared: Arc<Shared>,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: FrameworkConfig) -> Self {
        Pipeline {
            shared: Arc::new(Shared {
                config,
                counters: StageCounters::default(),
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.shared.config
    }

    /// Snapshot of how many times each stage has executed on this pipeline.
    pub fn counters(&self) -> StageCounts {
        let c = &self.shared.counters;
        StageCounts {
            partition: c.partition.load(Ordering::Relaxed),
            plan: c.plan.load(Ordering::Relaxed),
            schedule: c.schedule.load(Ordering::Relaxed),
            recombine: c.recombine.load(Ordering::Relaxed),
            verify: c.verify.load(Ordering::Relaxed),
        }
    }

    /// Stage 1: partitions `target` with depth-limited local
    /// complementation (paper §IV.A) and computes its `Ne_min` reference.
    pub fn partition(&self, target: &Graph) -> Partitioned {
        Partitioned::build(Arc::clone(&self.shared), target)
    }

    /// [`Pipeline::partition`] under runtime controls — a cooperative
    /// deadline and/or fault hooks for the partition search (see
    /// [`epgs_partition::SearchControl`]). With default controls this is
    /// byte-identical to [`Pipeline::partition`]. A truncated or
    /// fallen-back search marks the result
    /// [degraded](epgs_partition::Partition::degraded).
    pub fn partition_with_control(&self, target: &Graph, ctrl: &SearchControl) -> Partitioned {
        Partitioned::build_controlled(Arc::clone(&self.shared), target, ctrl)
    }

    /// Runs all five stages for `target` under the configured emitter
    /// budget — the staged equivalent of [`crate::Framework::compile`].
    ///
    /// # Errors
    ///
    /// See [`crate::Framework::compile`].
    pub fn compile(&self, target: &Graph) -> Result<Compiled, FrameworkError> {
        let planned = self.partition(target).plan_leaves()?;
        let ne_limit = self.shared.config.emitter_budget.resolve(planned.ne_min());
        planned.schedule(ne_limit).recombine()?.verify()
    }

    /// Compiles `target` once per budget in `budgets`, running partition and
    /// leaf compilation exactly once (the §V.B.2 sweep fast path).
    ///
    /// # Errors
    ///
    /// See [`crate::Framework::compile`]; the first failing budget aborts.
    pub fn sweep(
        &self,
        target: &Graph,
        budgets: &[usize],
    ) -> Result<Vec<Compiled>, FrameworkError> {
        let planned = self.partition(target).plan_leaves()?;
        budgets
            .iter()
            .map(|&b| planned.schedule(b).recombine()?.verify())
            .collect()
    }
}

/// Minimal emitter count of `g` over the deterministic ordering strategies —
/// the paper's `Ne_min` reference point.
pub(crate) fn ne_min_of(g: &Graph) -> usize {
    [
        ordering::natural(g),
        ordering::bfs(g),
        ordering::degree_dfs(g),
    ]
    .iter()
    .map(|ord| height::min_emitters(g, ord))
    .min()
    .unwrap_or(0)
    .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    fn quick_pipeline() -> Pipeline {
        Pipeline::new(
            FrameworkConfig::builder()
                .g_max(5)
                .lc_budget(3)
                .partition_effort(4)
                .orderings_per_subgraph(4)
                .flexible_slack(1)
                .build(),
        )
    }

    #[test]
    fn staged_run_matches_monolithic_compile() {
        let p = quick_pipeline();
        let g = generators::lattice(3, 3);
        let staged = p.compile(&g).expect("staged compiles");
        let fw = crate::Framework::new(p.config().clone());
        let monolith = fw.compile(&g).expect("wrapper compiles");
        assert_eq!(staged.circuit, monolith.circuit);
        assert_eq!(staged.metrics, monolith.metrics);
        assert_eq!(staged.partition, monolith.partition);
        assert_eq!(staged.global_ordering, monolith.global_ordering);
    }

    #[test]
    fn counters_track_stage_executions() {
        let p = quick_pipeline();
        let g = generators::tree(10, 2);
        let planned = p.partition(&g).plan_leaves().unwrap();
        for budget in [1, 2, 3] {
            planned
                .schedule(budget)
                .recombine()
                .unwrap()
                .verify()
                .unwrap();
        }
        let c = p.counters();
        assert_eq!(c.partition, 1);
        assert_eq!(c.plan, 1);
        assert_eq!(c.schedule, 3);
        assert_eq!(c.recombine, 3);
        assert_eq!(c.verify, 3);
    }

    #[test]
    fn sweep_reuses_partition_and_plan() {
        let p = quick_pipeline();
        let g = generators::lattice(3, 4);
        let compiled = p.sweep(&g, &[2, 3, 4]).unwrap();
        assert_eq!(compiled.len(), 3);
        let c = p.counters();
        assert_eq!((c.partition, c.plan), (1, 1));
        assert_eq!(c.schedule, 3);
        // Budgets land in the artifacts in order.
        assert_eq!(
            compiled.iter().map(|c| c.ne_limit).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn ne_min_of_known_families() {
        assert_eq!(ne_min_of(&generators::path(6)), 1);
        // Any prefix cut of a complete graph has rank 1: one emitter suffices.
        assert_eq!(ne_min_of(&generators::complete(5)), 1);
        assert!(ne_min_of(&generators::lattice(3, 4)) >= 2);
        assert_eq!(ne_min_of(&Graph::new(0)), 1, "degenerate floor");
    }
}
