//! Stage 1 artifact: the partitioned target (paper §IV.A).

use std::sync::Arc;

use epgs_graph::Graph;
use epgs_partition::{partition_with_lc_controlled, Partition, SearchControl};

use crate::error::FrameworkError;
use crate::stages::planned::Planned;
use crate::stages::{ne_min_of, Shared};

/// The target graph split into ≤ `g_max` blocks, after the depth-limited
/// local-complementation search that shrinks the inter-block cut.
///
/// Produced by [`crate::Pipeline::partition`]; consumed (non-destructively)
/// by [`Partitioned::plan_leaves`]. The partition held here is the *search
/// result*; leaf planning may refine it further with block-local LC.
///
/// # Examples
///
/// ```
/// use epgs::{FrameworkConfig, Pipeline};
/// use epgs_graph::generators;
///
/// let pipeline = Pipeline::new(FrameworkConfig::builder().g_max(4).build());
/// let partitioned = pipeline.partition(&generators::lattice(3, 3));
/// assert!(partitioned.partition().respects_capacity(4));
/// assert!(partitioned.ne_min() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Partitioned {
    pub(crate) shared: Arc<Shared>,
    pub(crate) target: Arc<Graph>,
    partition: Partition,
    ne_min: usize,
}

impl Partitioned {
    pub(crate) fn build(shared: Arc<Shared>, target: &Graph) -> Self {
        Self::build_controlled(shared, target, &SearchControl::default())
    }

    pub(crate) fn build_controlled(
        shared: Arc<Shared>,
        target: &Graph,
        ctrl: &SearchControl,
    ) -> Self {
        let (partition, _report) =
            partition_with_lc_controlled(target, &shared.config.partition, ctrl);
        let ne_min = ne_min_of(target);
        shared
            .counters
            .partition
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Partitioned {
            shared,
            target: Arc::new(target.clone()),
            partition,
            ne_min,
        }
    }

    /// The original (untransformed) target graph.
    pub fn target(&self) -> &Graph {
        &self.target
    }

    /// The partition found by the search, including its LC sequence and the
    /// transformed graph it applies to.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Minimal emitter count `Ne_min` of the target (best deterministic
    /// ordering), the reference point budgets are expressed against.
    pub fn ne_min(&self) -> usize {
        self.ne_min
    }

    /// Stage 2: compiles every leaf subgraph near-optimally (paper §IV.B),
    /// in parallel across blocks, then refines blocks with interior local
    /// complementations that shed emitter-emitter CNOTs.
    ///
    /// Calling this repeatedly is deterministic: the same artifact always
    /// plans the same leaves.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::Solver`] if a leaf solve fails (given automatic
    /// pool growth, an internal bug rather than an input condition).
    pub fn plan_leaves(&self) -> Result<Planned, FrameworkError> {
        Planned::build(self)
    }

    pub(crate) fn partition_clone(&self) -> Partition {
        self.partition.clone()
    }
}

#[cfg(test)]
mod tests {

    use crate::config::FrameworkConfig;
    use crate::stages::Pipeline;
    use epgs_graph::generators;

    #[test]
    fn partition_respects_capacity_and_counts_ne_min() {
        let p = Pipeline::new(FrameworkConfig::builder().g_max(5).build());
        let art = p.partition(&generators::lattice(3, 4));
        assert!(art.partition().respects_capacity(5));
        let expected = crate::stages::ne_min_of(&generators::lattice(3, 4));
        assert_eq!(art.ne_min(), expected);
        assert!(expected >= 2, "4-wide lattice needs multiple emitters");
        assert_eq!(art.target().vertex_count(), 12);
    }

    #[test]
    fn partitioned_is_cheaply_cloneable_and_stable() {
        let p = Pipeline::new(FrameworkConfig::builder().g_max(4).build());
        let a = p.partition(&generators::tree(10, 2));
        let b = a.clone();
        assert_eq!(a.partition(), b.partition());
        // Cloning an artifact must not count as re-running the stage.
        assert_eq!(p.counters().partition, 1);
    }

    #[test]
    fn repartitioning_same_target_is_deterministic() {
        let p = Pipeline::new(FrameworkConfig::builder().g_max(5).build());
        let g = generators::cycle(11);
        let a = p.partition(&g);
        let b = p.partition(&g);
        assert_eq!(a.partition(), b.partition());
        assert_eq!(p.counters().partition, 2);
    }
}
