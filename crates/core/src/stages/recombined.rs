//! Stage 4 artifact: the recombined global circuit (paper §IV.D) and the
//! pluggable recombination strategies.

use std::sync::Arc;

use epgs_circuit::{circuit_metrics, simulate, Circuit, CircuitMetrics, Op, Qubit};
use epgs_graph::{height, ops, Graph};
use epgs_hardware::CompileObjective;
use epgs_solver::ordering;
use epgs_solver::reverse::{solve_with_ordering, Affinity, SolveOptions};

use crate::error::FrameworkError;
use crate::framework::Compiled;
use crate::schedule::{Placement, Schedule};
use crate::stages::planned::PlannedData;
use crate::stages::scheduled::Scheduled;
use crate::stages::Shared;
use crate::subgraph::SubgraphPlan;

/// How the scheduled leaf circuits are recombined into one global circuit.
///
/// Strategies are tried in the configured order and compete under the
/// configured [`CompileObjective`] (the default,
/// [`CompileObjective::Emitters`], is the paper's lexicographic #ee-CNOT,
/// then `T_loss`, then duration order); see
/// [`crate::FrameworkConfig::recombine`] and
/// [`crate::FrameworkConfig::objective`]. The default order — scheduled
/// interleave, block-sequential, direct solve — reproduces the original
/// hard-coded candidate list, letting the framework degenerate gracefully
/// when partitioning does not pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecombineStrategy {
    /// One global time-reversed solve over the transformed graph in the
    /// schedule-induced interleaved emission order, with the schedule's
    /// emitter affinity (overlapping blocks on disjoint emitters).
    ScheduledInterleave,
    /// The same global solve with blocks emitted back-to-back in schedule
    /// start order — no interleaving friction, same emitter affinity.
    BlockSequential,
    /// A direct whole-graph solve of the *original* target (no partition,
    /// no LC) over the deterministic ordering heuristics.
    DirectSolve,
}

impl RecombineStrategy {
    /// All strategies in the default competition order.
    pub fn all() -> Vec<RecombineStrategy> {
        vec![
            RecombineStrategy::ScheduledInterleave,
            RecombineStrategy::BlockSequential,
            RecombineStrategy::DirectSolve,
        ]
    }
}

/// The best recombined circuit, pre-verification.
///
/// Produced by [`Scheduled::recombine`]; [`Recombined::verify`] closes the
/// pipeline. The artifact records which strategy won, which makes the
/// degenerate-partition case observable:
///
/// ```
/// use epgs::{FrameworkConfig, Pipeline, RecombineStrategy};
/// use epgs_graph::generators;
///
/// # fn main() -> Result<(), epgs::FrameworkError> {
/// let pipeline = Pipeline::new(FrameworkConfig::builder().g_max(4).build());
/// let recombined = pipeline
///     .partition(&generators::path(6))
///     .plan_leaves()?
///     .schedule(2)
///     .recombine()?;
/// assert_eq!(recombined.circuit().emission_count(), 6);
/// assert!(RecombineStrategy::all().contains(&recombined.strategy()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Recombined {
    pub(crate) shared: Arc<Shared>,
    pub(crate) target: Arc<Graph>,
    pub(crate) data: Arc<PlannedData>,
    pub(crate) sched: Schedule,
    pub(crate) ne_limit: usize,
    circuit: Circuit,
    metrics: CircuitMetrics,
    global_ordering: Vec<usize>,
    strategy: RecombineStrategy,
    objective: CompileObjective,
}

impl Recombined {
    pub(crate) fn build(
        stage: &Scheduled,
        strategies: &[RecombineStrategy],
        objective: &CompileObjective,
    ) -> Result<Self, FrameworkError> {
        let shared = Arc::clone(&stage.shared);
        let cfg = &shared.config;
        let data = &stage.data;
        let plans = &data.plans;
        let partition = &data.partition;
        let target: &Graph = &stage.target;
        let sched = &stage.sched;
        let ne_limit = stage.ne_limit;

        // The schedule induces the interleaved global emission ordering; the
        // affinity maps each block onto the concrete emitters the schedule
        // reserved for it, so overlapping blocks use disjoint emitters
        // (parallel in time) while each block's internal work stays
        // emitter-local. Both are only needed by the schedule-driven
        // strategies; a DirectSolve-only run skips their construction (and
        // its pool is sized by the direct orderings alone).
        let global_ordering = sched.global_ordering(plans);
        let uses_schedule = strategies.iter().any(|s| {
            matches!(
                s,
                RecombineStrategy::ScheduledInterleave | RecombineStrategy::BlockSequential
            )
        });
        let (pool, affinity) = if uses_schedule {
            let needed = height::min_emitters(&partition.transformed, &global_ordering).max(1);
            let pool = ne_limit.max(needed);
            let affinity = build_affinity(sched, plans, pool, partition.transformed.vertex_count());
            (pool, Some(affinity))
        } else {
            (ne_limit, None)
        };

        // (graph, ordering, affinity, LC sequence to undo) per candidate.
        type Candidate<'a> = (&'a Graph, Vec<usize>, Option<Affinity>, &'a [usize]);
        let mut candidates: Vec<(RecombineStrategy, Candidate)> = Vec::new();
        for &strategy in strategies {
            match strategy {
                RecombineStrategy::ScheduledInterleave => candidates.push((
                    strategy,
                    (
                        &partition.transformed,
                        global_ordering.clone(),
                        affinity.clone(),
                        &partition.lc_sequence,
                    ),
                )),
                RecombineStrategy::BlockSequential => candidates.push((
                    strategy,
                    (
                        &partition.transformed,
                        sequential_ordering(sched, plans),
                        affinity.clone(),
                        &partition.lc_sequence,
                    ),
                )),
                RecombineStrategy::DirectSolve => {
                    for ord in [
                        ordering::degree_dfs(target),
                        ordering::natural(target),
                        ordering::bfs(target),
                    ] {
                        candidates.push((strategy, (target, ord, None, &[])));
                    }
                }
            }
        }
        if candidates.is_empty() {
            return Err(FrameworkError::NoRecombineStrategy);
        }

        // The platform the objective scores under: its own, if it names
        // one, else the configured model (Emitters scores the configured
        // model's T_loss/duration — the paper's default).
        let score_hw = objective.hardware().unwrap_or(&cfg.hardware);
        let mut best: Option<(RecombineStrategy, Circuit, epgs_hardware::ObjectiveScore)> = None;
        let mut last_err = None;
        for (strategy, (graph, ord, aff, lc_seq)) in candidates {
            // Each candidate sizes its own pool: the shared budget, raised to
            // that ordering's height-function demand.
            let candidate_pool = pool.max(height::min_emitters(graph, &ord).max(1));
            let opts = SolveOptions {
                emitters: Some(candidate_pool),
                max_pool_growth: 8,
                verify: false,
                affinity: aff,
                ..SolveOptions::default()
            };
            match solve_with_ordering(graph, &ord, &opts) {
                Ok(solved) => {
                    let mut circuit = solved.circuit;
                    // Undo the LC sequence with single-qubit photon gates so
                    // the circuit delivers |target⟩, not |transformed⟩.
                    append_lc_inverse(&mut circuit, target, lc_seq);
                    let score =
                        objective.score(&circuit_metrics(score_hw, &circuit).objective_figures());
                    let better = match &best {
                        None => true,
                        Some((_, _, b)) => score < *b,
                    };
                    if better {
                        best = Some((strategy, circuit, score));
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        let (strategy, mut circuit, _) = best.ok_or_else(|| {
            FrameworkError::from(last_err.expect("at least one candidate attempted"))
        })?;
        // Peephole cleanup: the reverse solver's rotation bookkeeping leaves
        // cancellable single-qubit pairs behind.
        epgs_circuit::optimize::cancel_inverse_pairs(&mut circuit);
        let metrics = circuit_metrics(&cfg.hardware, &circuit);

        shared
            .counters
            .recombine
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(Recombined {
            shared,
            target: Arc::clone(&stage.target),
            data: Arc::clone(&stage.data),
            sched: stage.sched.clone(),
            ne_limit,
            circuit,
            metrics,
            global_ordering,
            strategy,
            objective: objective.clone(),
        })
    }

    /// The recombined generation circuit (after peephole cleanup).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Metrics of [`Recombined::circuit`].
    pub fn metrics(&self) -> &CircuitMetrics {
        &self.metrics
    }

    /// The strategy whose candidate won the competition.
    pub fn strategy(&self) -> RecombineStrategy {
        self.strategy
    }

    /// The objective the competition minimized.
    pub fn objective(&self) -> &CompileObjective {
        &self.objective
    }

    /// Stage 5: checks the circuit against the original target with the
    /// stabilizer simulator (when the configuration asks for verification)
    /// and assembles the final [`Compiled`] artifact.
    ///
    /// Consumes the artifact so the circuit and schedule move (not clone)
    /// into the result; `clone()` the `Recombined` first to keep it.
    ///
    /// # Errors
    ///
    /// [`FrameworkError::VerificationFailed`] if the circuit does not
    /// regenerate the target — an internal bug by definition.
    pub fn verify(self) -> Result<Compiled, FrameworkError> {
        let cfg = &self.shared.config;
        if cfg.verify {
            let ok = simulate::verify_circuit(&self.circuit, &self.target)
                .map_err(|_| FrameworkError::VerificationFailed)?;
            if !ok {
                return Err(FrameworkError::VerificationFailed);
            }
        }
        self.shared
            .counters
            .verify
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Shared plan data moves too when this was its last reference
        // (one-shot compiles); sweeps keep the artifact alive and clone.
        let (partition, plans, ne_min) = match Arc::try_unwrap(self.data) {
            Ok(data) => (data.partition, data.plans, data.ne_min),
            Err(data) => (data.partition.clone(), data.plans.clone(), data.ne_min),
        };
        Ok(Compiled {
            circuit: self.circuit,
            metrics: self.metrics,
            partition,
            plans,
            schedule: self.sched,
            global_ordering: self.global_ordering,
            ne_limit: self.ne_limit,
            ne_min,
            strategy: self.strategy,
            objective: self.objective,
        })
    }
}

/// The schedule-ordered block-sequential emission ordering: blocks sorted by
/// absolute start time, each block's photons in its solved local order.
fn sequential_ordering(sched: &Schedule, plans: &[SubgraphPlan]) -> Vec<usize> {
    let mut placements: Vec<&Placement> = sched.placements.iter().collect();
    placements.sort_by(|a, b| {
        sched
            .start_time(a, plans)
            .partial_cmp(&sched.start_time(b, plans))
            .expect("finite times")
    });
    let mut out = Vec::new();
    for p in placements {
        let plan = &plans[p.block];
        for &local in &plan.variants[p.variant].solved.ordering {
            out.push(plan.vertices[local]);
        }
    }
    out
}

/// Assigns concrete emitters to each scheduled block: blocks are processed
/// by start time and greedily take the emitters that free up earliest, so
/// time-overlapping blocks end up on disjoint sets whenever the budget
/// allows (mirroring the schedule's usage packing).
fn build_affinity(
    sched: &Schedule,
    plans: &[SubgraphPlan],
    pool: usize,
    photons: usize,
) -> Affinity {
    let mut photon_group = vec![0usize; photons];
    for p in &sched.placements {
        for &global in &plans[p.block].vertices {
            photon_group[global] = p.block;
        }
    }
    // Sort placements by absolute start time.
    let mut order: Vec<&Placement> = sched.placements.iter().collect();
    order.sort_by(|a, b| {
        sched
            .start_time(a, plans)
            .partial_cmp(&sched.start_time(b, plans))
            .expect("finite times")
    });
    let mut busy_until = vec![f64::NEG_INFINITY; pool];
    let mut group_emitters = vec![Vec::new(); plans.len()];
    for p in order {
        let start = sched.start_time(p, plans);
        let end = start + plans[p.block].variants[p.variant].duration;
        let demand = plans[p.block].variants[p.variant].emitters.min(pool).max(1);
        // Emitters free at `start` first, then the earliest to free up.
        let mut candidates: Vec<usize> = (0..pool).collect();
        candidates.sort_by(|&a, &b| {
            busy_until[a]
                .partial_cmp(&busy_until[b])
                .expect("finite times")
                .then(a.cmp(&b))
        });
        let chosen: Vec<usize> = candidates.into_iter().take(demand).collect();
        for &e in &chosen {
            busy_until[e] = busy_until[e].max(end);
        }
        group_emitters[p.block] = chosen;
    }
    Affinity {
        photon_group,
        group_emitters,
    }
}

/// Appends the inverse of the LC unitary sequence to `circuit`.
///
/// The LC unitary at `v` on graph `H` is `(H·S†·H)_v ⊗ Π_{w∈N_H(v)} S_w`
/// (see the stabilizer crate's property tests); with |G_k⟩ = U_k … U_1
/// |G_0⟩, the circuit generating |G_k⟩ is extended by U_k† … U_1† applied in
/// that order. All gates are single-qubit photon gates, the "only cost" the
/// paper attributes to LC optimization.
fn append_lc_inverse(circuit: &mut Circuit, original: &Graph, lc_sequence: &[usize]) {
    if lc_sequence.is_empty() {
        return;
    }
    // Rebuild the intermediate graphs G_0 … G_{k-1}.
    let mut graphs = Vec::with_capacity(lc_sequence.len());
    let mut cur = original.clone();
    for &v in lc_sequence {
        graphs.push(cur.clone());
        ops::local_complement(&mut cur, v).expect("vertex in range");
    }
    // Append U_i† for i = k … 1; U† = (H·S·H) on v and S† on N_{G_{i-1}}(v).
    for (i, &v) in lc_sequence.iter().enumerate().rev() {
        let before = &graphs[i];
        circuit.push(Op::H(Qubit::Photon(v)));
        circuit.push(Op::S(Qubit::Photon(v)));
        circuit.push(Op::H(Qubit::Photon(v)));
        for &w in before.neighbors(v) {
            circuit.push(Op::Sdg(Qubit::Photon(w)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;
    use crate::stages::Pipeline;
    use epgs_graph::generators;

    fn pipeline() -> Pipeline {
        Pipeline::new(
            FrameworkConfig::builder()
                .g_max(5)
                .lc_budget(3)
                .partition_effort(4)
                .orderings_per_subgraph(4)
                .flexible_slack(1)
                .build(),
        )
    }

    #[test]
    fn default_strategies_match_explicit_all() {
        let p = pipeline();
        let g = generators::lattice(3, 3);
        let scheduled = p.partition(&g).plan_leaves().unwrap().schedule(3);
        let a = scheduled.recombine().unwrap();
        let b = scheduled.recombine_with(&RecombineStrategy::all()).unwrap();
        assert_eq!(a.circuit(), b.circuit());
        assert_eq!(a.strategy(), b.strategy());
    }

    #[test]
    fn single_strategy_runs_alone() {
        let p = pipeline();
        let g = generators::tree(9, 2);
        let scheduled = p.partition(&g).plan_leaves().unwrap().schedule(2);
        for strategy in RecombineStrategy::all() {
            let r = scheduled.recombine_with(&[strategy]).unwrap();
            assert_eq!(r.strategy(), strategy);
            assert_eq!(r.circuit().emission_count(), 9, "{strategy:?}");
            // Every single-strategy circuit must itself verify.
            r.verify().unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        }
    }

    #[test]
    fn empty_strategy_list_is_an_error() {
        let p = pipeline();
        let scheduled = p
            .partition(&generators::path(5))
            .plan_leaves()
            .unwrap()
            .schedule(1);
        assert!(matches!(
            scheduled.recombine_with(&[]),
            Err(FrameworkError::NoRecombineStrategy)
        ));
    }

    #[test]
    fn restricted_strategies_never_beat_the_full_competition() {
        let p = pipeline();
        let g = generators::lattice(3, 4);
        let scheduled = p.partition(&g).plan_leaves().unwrap().schedule(3);
        let full = scheduled.recombine().unwrap();
        for strategy in RecombineStrategy::all() {
            let solo = scheduled.recombine_with(&[strategy]).unwrap();
            let solo_key = (
                solo.metrics().ee_two_qubit_count,
                solo.metrics().t_loss,
                solo.metrics().duration,
            );
            let full_key = (
                full.metrics().ee_two_qubit_count,
                full.metrics().t_loss,
                full.metrics().duration,
            );
            assert!(full_key <= solo_key, "{strategy:?} beat the competition");
        }
    }
}
