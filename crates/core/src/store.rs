//! Content-addressed on-disk store of [`Planned`] artifacts — the durable,
//! cross-process layer under the in-memory [`ArtifactCache`](crate::ArtifactCache).
//!
//! # Layout
//!
//! One directory, one file per artifact:
//!
//! ```text
//! <dir>/<canonical:16hex>-<config:16hex>-<exact:16hex>.art.json
//! ```
//!
//! `canonical` is the label-invariant WL hash, `config` the configuration
//! fingerprint (together the [`CacheKey`]), and `exact` a hash of the exact
//! labeled graph — so two relabelings that share a cache key store side by
//! side instead of clobbering each other, mirroring the in-memory cache's
//! bucket-of-exact-graphs shape. Files are written to a temporary name and
//! atomically renamed into place, so concurrent workers sharing one
//! directory never observe a half-written artifact.
//!
//! # Guarantees
//!
//! * **Exact-graph confirmation** — a load only hits when the decoded
//!   target equals the requested graph byte for byte; relabelings and hash
//!   collisions are observable misses, never unsound reuse.
//! * **Corruption degrades to recompile** — truncated, bit-flipped, or
//!   schema-violating files are deleted on load and counted in
//!   [`StoreStats::corrupt_discarded`]; version-mismatched files are
//!   deleted and counted in [`StoreStats::version_rejected`].
//! * **Two strikes and quarantined** — a name whose file fails the
//!   corruption check *twice* is renamed to `<name>.quarantine` instead of
//!   deleted, and is never read or rewritten again by this process (or any
//!   later one: quarantine files are re-detected at open). A recurring bad
//!   entry — a flaky sector, a writer bug — cannot be served and cannot
//!   churn through a delete/rewrite loop.
//! * **I/O retry with capped backoff** — transient read/write failures are
//!   retried up to 3 attempts (1–2 ms backoff) and counted in
//!   [`StoreStats::read_retries`] / [`StoreStats::write_retries`]; a
//!   missing file is a plain miss, never retried.
//! * **Crash-orphan sweep** — `open` deletes `.tmp-*` files abandoned by a
//!   crash between write and rename, counted in [`StoreStats::tmp_swept`].
//! * **LRU byte budget** — the store tracks total bytes and evicts
//!   least-recently-used files when a write pushes it past the budget.
//! * **Versioned manifest** — every entry-set mutation commits a
//!   generation-numbered, checksummed manifest (`manifest-<gen:16hex>.json`,
//!   tmp + rename atomic like the artifacts themselves) recording the
//!   expected entry set, per-entry LRU clocks, and byte accounting. Reopened
//!   stores recover exact recency from the manifest instead of coarse file
//!   mtimes; when no manifest survives, mtime order with a deterministic
//!   name tie-break is the fallback.
//! * **`fsck` at open** — [`ArtifactStore::open`] reconciles the manifest
//!   against the directory: orphaned artifacts (crash after rename, before
//!   the manifest commit) are re-indexed, empty orphans discarded, files
//!   whose size disagrees with the manifest quarantined as torn, manifest
//!   entries without a file dropped, stale manifest generations deleted, and
//!   byte accounting rebuilt from a directory walk. The outcome is a
//!   structured [`RecoveryReport`]; [`ArtifactStore::fsck`] re-runs the same
//!   pass on a live handle.
//!
//! For fault-injection testing a seeded [`FaultPlan`] can be armed on the
//! handle (points [`POINT_STORE_READ`](crate::faults::POINT_STORE_READ) /
//! [`POINT_STORE_WRITE`](crate::faults::POINT_STORE_WRITE)); unarmed
//! handles skip the probes entirely. Crash-only boundary points
//! (`store.write.tmp`, `store.write.rename`, `store.evict`,
//! `store.quarantine`, `store.manifest`) sit at every byte-persistence
//! boundary so a [`FaultKind::Crash`] rule can kill the process between any
//! two filesystem effects; see `ARCHITECTURE.md`, "Failure model".

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use epgs_corpus::json::{Value, Writer};
use epgs_graph::canon::fnv1a_all;
use epgs_graph::Graph;

use crate::artifact::{self, ArtifactError};
use crate::batch::CacheKey;
use crate::faults::{self, lock_recover, FaultKind, FaultPlan};
use crate::stages::{Pipeline, Planned};

/// Filename suffix of every artifact in a store directory.
const SUFFIX: &str = ".art.json";

/// Filename suffix of quarantined (never re-read) artifacts.
const QUARANTINE_SUFFIX: &str = ".quarantine";

/// Manifest filename shape: `manifest-<generation:16hex>.json`.
const MANIFEST_PREFIX: &str = "manifest-";
/// Manifest filename suffix (see [`MANIFEST_PREFIX`]).
const MANIFEST_SUFFIX: &str = ".json";
/// `format` field of every manifest document.
const MANIFEST_FORMAT: &str = "epgs-manifest";
/// Manifest schema version; other versions are treated as stale.
const MANIFEST_VERSION: u64 = 1;

/// Read/write attempts per operation (1 initial + 2 retries).
const MAX_IO_ATTEMPTS: u32 = 3;

/// Corruption strikes against one name before it is quarantined.
const QUARANTINE_STRIKES: u32 = 2;

/// Process-wide counter making temporary file names unique.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Hash of the *exact* labeled graph (vertex count + sorted edge list) —
/// the third filename component, which separates relabelings that share a
/// [`CacheKey`].
pub fn exact_graph_hash(g: &Graph) -> u64 {
    fnv1a_all(
        std::iter::once(g.vertex_count() as u64)
            .chain(g.edges().flat_map(|(a, b)| [a as u64, b as u64])),
    )
}

/// Cumulative counters of one [`ArtifactStore`] handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads that returned a stored artifact.
    pub disk_hits: usize,
    /// Loads that found nothing reusable.
    pub disk_misses: usize,
    /// Files discarded because they failed the grammar, schema, or
    /// checksum check — counted within `disk_misses`.
    pub corrupt_discarded: usize,
    /// Files discarded because their schema version is unsupported —
    /// counted within `disk_misses`.
    pub version_rejected: usize,
    /// Loads whose file held a *different* exact graph under the same name
    /// (exact-hash collision) — counted within `disk_misses`.
    pub exact_collisions: usize,
    /// Files evicted by the byte-budget LRU bound.
    pub evictions: usize,
    /// Successful artifact writes.
    pub writes: usize,
    /// Writes that failed at the filesystem level (artifact dropped, the
    /// compile result itself is unaffected).
    pub write_errors: usize,
    /// Names quarantined after failing the corruption check twice — their
    /// files are renamed to `.quarantine` and never read again.
    pub quarantined: usize,
    /// Orphaned `.tmp-*` files (crash between write and rename) deleted by
    /// [`ArtifactStore::open`].
    pub tmp_swept: usize,
    /// Load attempts retried after a transient read failure.
    pub read_retries: usize,
    /// Save attempts retried after a transient write failure.
    pub write_retries: usize,
    /// Manifest generations committed (tmp write + rename) by this handle.
    pub manifest_commits: usize,
}

/// What the `fsck` pass at [`ArtifactStore::open`] (or an explicit
/// [`ArtifactStore::fsck`]) found and repaired while reconciling the
/// manifest against the directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid manifest generation was found and loaded.
    pub manifest_found: bool,
    /// Generation number of the loaded manifest (0 when none was found).
    pub manifest_generation: u64,
    /// Stale, torn, or unreadable manifest generations deleted.
    pub stale_manifests_deleted: usize,
    /// Entries the loaded manifest expected to exist.
    pub entries_expected: usize,
    /// Artifacts present on disk but missing from the manifest (crash after
    /// rename, before the manifest commit) that were re-indexed.
    pub orphans_reindexed: usize,
    /// Empty orphaned artifact files discarded outright.
    pub orphans_discarded: usize,
    /// Manifest entries whose file no longer exists (crash after unlink,
    /// before the manifest commit) dropped from the index.
    pub missing_dropped: usize,
    /// Files whose on-disk size disagrees with the manifest record, renamed
    /// to `.quarantine` as torn.
    pub torn_quarantined: usize,
    /// Orphaned `.tmp-*` files (crash between write and rename) deleted.
    pub tmp_swept: usize,
    /// Total artifact bytes indexed after reconciliation (rebuilt from the
    /// directory walk, never trusted from the manifest).
    pub recovered_bytes: u64,
}

impl RecoveryReport {
    /// Whether the directory matched the manifest exactly — nothing was
    /// repaired, discarded, or rebuilt. A store that just recovered from a
    /// crash reports a dirty pass once; the next pass must be clean.
    pub fn is_clean(&self) -> bool {
        self.stale_manifests_deleted == 0
            && self.orphans_reindexed == 0
            && self.orphans_discarded == 0
            && self.missing_dropped == 0
            && self.torn_quarantined == 0
            && self.tmp_swept == 0
            && (self.manifest_found || self.entries_expected == 0 && self.recovered_bytes == 0)
    }
}

#[derive(Debug)]
struct FileEntry {
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct StoreIndex {
    files: HashMap<String, FileEntry>,
    total_bytes: u64,
    clock: u64,
    stats: StoreStats,
    /// Corruption strikes per name; at [`QUARANTINE_STRIKES`] the name
    /// moves to `quarantined`.
    strikes: HashMap<String, u32>,
    /// Names never read or written again (file renamed to `.quarantine`).
    quarantined: HashSet<String>,
    /// Manifest generation counter (next commit uses `generation + 1`).
    generation: u64,
    /// Generation of the last successfully committed manifest file.
    committed: Option<u64>,
    /// What the most recent `fsck` pass found.
    recovery: RecoveryReport,
    /// Whether in-memory state (LRU clocks) has drifted from the committed
    /// manifest. Entry-set mutations commit immediately; touch-only drift
    /// is flushed by `Drop`, so clean shutdown persists exact recency.
    dirty: bool,
}

impl StoreIndex {
    fn touch(&mut self, name: &str) {
        self.clock += 1;
        if let Some(e) = self.files.get_mut(name) {
            e.last_used = self.clock;
            self.dirty = true;
        }
    }

    fn remove(&mut self, name: &str) {
        if let Some(e) = self.files.remove(name) {
            self.total_bytes -= e.bytes;
        }
    }
}

/// A parsed, checksum-validated manifest generation.
struct ManifestData {
    generation: u64,
    clock: u64,
    /// `(name, bytes, last_used)` per expected entry.
    entries: Vec<(String, u64, u64)>,
    quarantined: Vec<String>,
}

fn manifest_file_name(generation: u64) -> String {
    format!("{MANIFEST_PREFIX}{generation:016x}{MANIFEST_SUFFIX}")
}

/// Extracts the generation from a manifest filename, if it is one.
fn manifest_generation(name: &str) -> Option<u64> {
    let hex = name
        .strip_prefix(MANIFEST_PREFIX)?
        .strip_suffix(MANIFEST_SUFFIX)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Serializes the expected entry set as a manifest document — the same
/// checksummed envelope discipline as the artifacts (entries sorted by
/// name, so identical states render identical bytes).
fn render_manifest(generation: u64, index: &StoreIndex) -> String {
    let mut p = Writer::with_capacity(64 + index.files.len() * 96);
    p.begin_obj();
    p.field_uint("clock", index.clock);
    p.key("entries");
    p.begin_arr();
    let mut names: Vec<&String> = index.files.keys().collect();
    names.sort();
    for name in names {
        let e = &index.files[name.as_str()];
        p.begin_obj();
        p.field_str("name", name);
        p.field_uint("bytes", e.bytes);
        p.field_uint("used", e.last_used);
        p.end_obj();
    }
    p.end_arr();
    p.key("quarantined");
    p.begin_arr();
    let mut quarantined: Vec<&String> = index.quarantined.iter().collect();
    quarantined.sort();
    for name in quarantined {
        p.string(name);
    }
    p.end_arr();
    p.end_obj();
    let payload = p.finish();
    let mut w = Writer::with_capacity(payload.len() + 128);
    w.begin_obj();
    w.field_str("format", MANIFEST_FORMAT);
    w.field_uint("version", MANIFEST_VERSION);
    w.field_hex("generation", generation);
    w.field_hex("checksum", artifact::checksum_bytes(payload.as_bytes()));
    w.field_raw("payload", &payload);
    w.end_obj();
    w.finish()
}

/// Parses and validates a manifest document; any structural problem —
/// bad JSON, wrong format or version, checksum mismatch — is `None`
/// (the generation is treated as stale and deleted by `fsck`).
fn parse_manifest(text: &str) -> Option<ManifestData> {
    let doc = Value::parse(text).ok()?;
    if doc.get("format")?.as_str()? != MANIFEST_FORMAT
        || doc.get("version")?.as_u64()? != MANIFEST_VERSION
    {
        return None;
    }
    let hex16 = |v: &Value| -> Option<u64> {
        let s = v.as_str()?;
        (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok())?
    };
    let generation = hex16(doc.get("generation")?)?;
    let checksum = hex16(doc.get("checksum")?)?;
    let payload = doc.get("payload")?;
    if artifact::checksum_bytes(payload.to_string().as_bytes()) != checksum {
        return None;
    }
    let mut entries = Vec::new();
    for e in payload.get("entries")?.as_arr()? {
        entries.push((
            e.get("name")?.as_str()?.to_string(),
            e.get("bytes")?.as_u64()?,
            e.get("used")?.as_u64()?,
        ));
    }
    let mut quarantined = Vec::new();
    for q in payload.get("quarantined")?.as_arr()? {
        quarantined.push(q.as_str()?.to_string());
    }
    Some(ManifestData {
        generation,
        clock: payload.get("clock")?.as_u64()?,
        entries,
        quarantined,
    })
}

/// A content-addressed, byte-budgeted, crash-tolerant directory of
/// serialized [`Planned`] artifacts. See the [module docs](self) for the
/// layout and guarantees.
///
/// The handle is internally synchronized: `&self` methods are safe to call
/// from many threads. Multiple *processes* may share one directory — writes
/// are atomic renames and every load re-validates the file — though each
/// process tracks recency and byte totals independently.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    budget: u64,
    index: Mutex<StoreIndex>,
    faults: Option<Arc<FaultPlan>>,
}

impl ArtifactStore {
    /// Default byte budget: 256 MiB.
    pub const DEFAULT_BYTE_BUDGET: u64 = 256 << 20;

    /// Opens (creating if needed) the store at `dir` with the default byte
    /// budget.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating or scanning `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_budget(dir, Self::DEFAULT_BYTE_BUDGET)
    }

    /// Opens the store at `dir`, bounding it to `budget_bytes` (clamped to
    /// ≥ 1). Opening runs the `fsck` recovery pass (see the [module
    /// docs](self)): the manifest is reconciled against a directory walk,
    /// crash leftovers are repaired, and the reconciled state is committed
    /// as a fresh manifest generation. If the recovered artifacts already
    /// exceed the budget, the least recently used are evicted immediately.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating or scanning `dir`.
    pub fn open_with_budget(dir: impl AsRef<Path>, budget_bytes: u64) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let store = ArtifactStore {
            dir,
            budget: budget_bytes.max(1),
            index: Mutex::new(StoreIndex::default()),
            faults: None,
        };
        let mut index = lock_recover(&store.index);
        store.reconcile(&mut index)?;
        store.evict_over_budget(&mut index);
        store.commit_manifest(&mut index);
        drop(index);
        Ok(store)
    }

    /// The `fsck` pass: walks the directory, loads the newest valid
    /// manifest generation, repairs every discrepancy between them, and
    /// rebuilds the in-memory index (preserving cumulative stats and
    /// strikes). See [`RecoveryReport`] for the repair taxonomy.
    fn reconcile(&self, index: &mut StoreIndex) -> io::Result<()> {
        let mut report = RecoveryReport::default();
        let mut artifacts: Vec<(String, u64, SystemTime)> = Vec::new();
        let mut manifests: Vec<u64> = Vec::new();
        let mut quarantined: HashSet<String> = HashSet::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            if name.starts_with(".tmp-") {
                // Orphan from a crash between write and rename — artifact
                // or manifest temp alike, never renamed, never trusted.
                let _ = fs::remove_file(entry.path());
                report.tmp_swept += 1;
                continue;
            }
            if let Some(original) = name.strip_suffix(QUARANTINE_SUFFIX) {
                quarantined.insert(original.to_string());
                continue;
            }
            if let Some(generation) = manifest_generation(&name) {
                manifests.push(generation);
                continue;
            }
            if !name.ends_with(SUFFIX) {
                continue;
            }
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            artifacts.push((name, meta.len(), mtime));
        }

        // Newest valid manifest generation wins; every other generation —
        // older, torn, or unreadable — is stale and deleted.
        manifests.sort_unstable_by(|a, b| b.cmp(a));
        let mut manifest: Option<ManifestData> = None;
        for &generation in &manifests {
            let path = self.dir.join(manifest_file_name(generation));
            if manifest.is_none() {
                if let Some(data) = fs::read_to_string(&path)
                    .ok()
                    .as_deref()
                    .and_then(parse_manifest)
                {
                    manifest = Some(data);
                    continue;
                }
            }
            let _ = fs::remove_file(&path);
            report.stale_manifests_deleted += 1;
        }

        let mut expected: HashMap<String, (u64, u64)> = HashMap::new();
        let mut clock = 0;
        let mut generation = 0;
        if let Some(data) = &manifest {
            report.manifest_found = true;
            report.manifest_generation = data.generation;
            report.entries_expected = data.entries.len();
            generation = data.generation;
            clock = data.clock;
            for (name, bytes, used) in &data.entries {
                expected.insert(name.clone(), (*bytes, *used));
            }
            for name in &data.quarantined {
                quarantined.insert(name.clone());
            }
        }

        // Oldest first so fallback clocks reproduce on-disk recency; the
        // name tie-break keeps coarse-mtime collisions deterministic.
        artifacts.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut files: HashMap<String, FileEntry> = HashMap::new();
        let mut total_bytes = 0;
        for (name, bytes, _) in artifacts {
            if quarantined.contains(&name) {
                // A plain file next to its .quarantine marker: a crash
                // between quarantine rename and commit cannot produce this
                // (rename moves the file), so it is a rewrite from an old
                // process — quarantine wins, the file is never served.
                let _ = fs::remove_file(self.dir.join(&name));
                continue;
            }
            match expected.remove(&name) {
                Some((recorded, used)) if recorded == bytes => {
                    total_bytes += bytes;
                    files.insert(
                        name,
                        FileEntry {
                            bytes,
                            last_used: used,
                        },
                    );
                }
                Some(_) => {
                    // Size disagrees with the manifest: torn or tampered.
                    let _ = fs::rename(
                        self.dir.join(&name),
                        self.dir.join(format!("{name}{QUARANTINE_SUFFIX}")),
                    );
                    quarantined.insert(name);
                    report.torn_quarantined += 1;
                }
                None if bytes == 0 => {
                    let _ = fs::remove_file(self.dir.join(&name));
                    report.orphans_discarded += 1;
                }
                None => {
                    // Crash after rename, before the manifest commit: the
                    // artifact is whole (renames are atomic) but untracked.
                    // Re-index it as most recent; its checksum is still
                    // validated on every load.
                    clock += 1;
                    total_bytes += bytes;
                    files.insert(
                        name,
                        FileEntry {
                            bytes,
                            last_used: clock,
                        },
                    );
                    report.orphans_reindexed += 1;
                }
            }
        }
        // Whatever the manifest still expects has no file behind it — a
        // crash between unlink and commit, or outside deletion.
        report.missing_dropped = expected.len();
        report.recovered_bytes = total_bytes;

        index.files = files;
        index.total_bytes = total_bytes;
        index.clock = clock.max(index.clock);
        index.generation = generation.max(index.generation);
        index.committed = report.manifest_found.then_some(generation);
        index.quarantined = quarantined;
        index.stats.quarantined = index.quarantined.len();
        index.stats.tmp_swept += report.tmp_swept;
        index.recovery = report;
        Ok(())
    }

    /// Commits the expected entry set as the next manifest generation:
    /// tmp write, crash probe, atomic rename, then best-effort deletion of
    /// the previous generation. A failed commit is absorbed — the prior
    /// generation stays authoritative and `fsck` re-indexes the difference
    /// as orphans on the next open.
    fn commit_manifest(&self, index: &mut StoreIndex) {
        index.generation += 1;
        let generation = index.generation;
        let doc = render_manifest(generation, index);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let committed = fs::write(&tmp, doc.as_bytes())
            .and_then(|()| {
                if let Some(f) = &self.faults {
                    f.at(faults::POINT_STORE_MANIFEST);
                }
                fs::rename(&tmp, self.dir.join(manifest_file_name(generation)))
            })
            .is_ok();
        if committed {
            index.stats.manifest_commits += 1;
            index.dirty = false;
            if let Some(prev) = index.committed.take() {
                let _ = fs::remove_file(self.dir.join(manifest_file_name(prev)));
            }
            index.committed = Some(generation);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Re-runs the `fsck` recovery pass on a live handle: reconciles the
    /// manifest against the directory, repairs discrepancies, commits the
    /// reconciled state, and returns what it found. On a healthy store the
    /// report [is clean](RecoveryReport::is_clean).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from scanning the directory.
    pub fn fsck(&self) -> io::Result<RecoveryReport> {
        let mut index = lock_recover(&self.index);
        self.reconcile(&mut index)?;
        self.evict_over_budget(&mut index);
        self.commit_manifest(&mut index);
        Ok(index.recovery)
    }

    /// What the most recent `fsck` pass (at open, or an explicit
    /// [`ArtifactStore::fsck`]) found and repaired.
    pub fn recovery(&self) -> RecoveryReport {
        lock_recover(&self.index).recovery
    }

    /// Arms a fault-injection plan on this handle (chaos testing); every
    /// later load/save probes the plan's `store.read` / `store.write`
    /// points. Handles without a plan skip the probes entirely.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> u64 {
        self.budget
    }

    /// Number of artifacts currently indexed.
    pub fn len(&self) -> usize {
        lock_recover(&self.index).files.len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total indexed artifact bytes.
    pub fn total_bytes(&self) -> u64 {
        lock_recover(&self.index).total_bytes
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> StoreStats {
        lock_recover(&self.index).stats
    }

    fn file_name(key: CacheKey, exact: u64) -> String {
        format!(
            "{:016x}-{:016x}-{exact:016x}{SUFFIX}",
            key.canonical, key.config
        )
    }

    /// Reads the file behind an artifact, retrying transient failures with
    /// capped backoff and applying any armed read faults. Returns the text,
    /// the retry count, and whether a definitive not-found was seen (which
    /// is a plain miss, never retried).
    fn read_with_retry(&self, path: &Path) -> (Option<String>, usize, bool) {
        let mut retries = 0;
        for attempt in 0..MAX_IO_ATTEMPTS {
            if attempt > 0 {
                retries += 1;
                std::thread::sleep(Duration::from_millis(1 << (attempt - 1)));
            }
            let injected = self
                .faults
                .as_ref()
                .and_then(|f| f.at(faults::POINT_STORE_READ));
            if let Some(FaultKind::Slow(ms)) = injected {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if matches!(
                injected,
                Some(FaultKind::IoError | FaultKind::Fail | FaultKind::Panic)
            ) {
                continue; // this attempt fails
            }
            match fs::read_to_string(path) {
                Ok(mut text) => {
                    if matches!(injected, Some(FaultKind::BitFlip)) {
                        if let Some(f) = &self.faults {
                            f.corrupt_text(&mut text);
                        }
                    }
                    return (Some(text), retries, false);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => return (None, retries, true),
                Err(_) => continue,
            }
        }
        (None, retries, false)
    }

    /// Loads the artifact for exactly `graph` under `key`, binding it to
    /// `pipeline`. Any invalid file encountered is deleted on first strike
    /// and quarantined on second; see [`StoreStats`] for the per-cause
    /// counters and the [module docs](self) for the retry and quarantine
    /// policies.
    pub fn load(&self, key: CacheKey, graph: &Graph, pipeline: &Pipeline) -> Option<Planned> {
        let name = Self::file_name(key, exact_graph_hash(graph));
        let path = self.dir.join(&name);
        if lock_recover(&self.index).quarantined.contains(&name) {
            lock_recover(&self.index).stats.disk_misses += 1;
            return None;
        }
        // I/O runs outside the index lock: backoff sleeps and injected
        // stalls must not serialize unrelated loads.
        let (text, retries, _not_found) = self.read_with_retry(&path);
        let mut index = lock_recover(&self.index);
        index.stats.read_retries += retries;
        let Some(text) = text else {
            // Absent here but present in the index means another process
            // evicted it; resynchronize. Persistent read failure lands
            // here too — a miss (recompile), not a request failure.
            if index.files.contains_key(&name) {
                index.remove(&name);
                self.commit_manifest(&mut index);
            }
            index.stats.disk_misses += 1;
            return None;
        };
        match artifact::decode(&text, key, pipeline) {
            Ok(planned) if planned.target() == graph => {
                let discovered = !index.files.contains_key(&name);
                if discovered {
                    // Written by another process since our scan.
                    index.total_bytes += text.len() as u64;
                    index.files.insert(
                        name.clone(),
                        FileEntry {
                            bytes: text.len() as u64,
                            last_used: 0,
                        },
                    );
                }
                index.touch(&name);
                index.stats.disk_hits += 1;
                if discovered {
                    self.commit_manifest(&mut index);
                }
                Some(planned)
            }
            Ok(_) => {
                // An exact-hash collision: the file belongs to a different
                // labeling. Leave it — it is somebody's valid artifact.
                index.stats.exact_collisions += 1;
                index.stats.disk_misses += 1;
                None
            }
            Err(ArtifactError::VersionMismatch { .. }) => {
                index.stats.version_rejected += 1;
                index.stats.disk_misses += 1;
                index.remove(&name);
                let _ = fs::remove_file(&path);
                self.commit_manifest(&mut index);
                None
            }
            Err(_) => {
                index.stats.corrupt_discarded += 1;
                index.stats.disk_misses += 1;
                index.remove(&name);
                let strikes = index.strikes.entry(name.clone()).or_insert(0);
                *strikes += 1;
                if *strikes >= QUARANTINE_STRIKES {
                    index.quarantined.insert(name.clone());
                    index.stats.quarantined = index.quarantined.len();
                    let _ = fs::rename(&path, self.dir.join(format!("{name}{QUARANTINE_SUFFIX}")));
                    // Crash boundary: file renamed to quarantine, manifest
                    // still lists the live name.
                    if let Some(f) = &self.faults {
                        f.at(faults::POINT_STORE_QUARANTINE);
                    }
                } else {
                    let _ = fs::remove_file(&path);
                }
                self.commit_manifest(&mut index);
                None
            }
        }
    }

    /// Stores `planned` under `key`, atomically (tmp file + rename), then
    /// enforces the byte budget. Transient filesystem failures are retried
    /// with capped backoff; a write that still fails is absorbed into
    /// [`StoreStats::write_errors`] — a failed artifact write must never
    /// fail the compilation that produced it. Quarantined names are never
    /// rewritten.
    pub fn save(&self, key: CacheKey, planned: &Planned) {
        let text = artifact::encode(planned, key);
        let name = Self::file_name(key, exact_graph_hash(planned.target()));
        if lock_recover(&self.index).quarantined.contains(&name) {
            return;
        }
        let mut retries = 0;
        let mut written = false;
        for attempt in 0..MAX_IO_ATTEMPTS {
            if attempt > 0 {
                retries += 1;
                std::thread::sleep(Duration::from_millis(1 << (attempt - 1)));
            }
            let injected = self
                .faults
                .as_ref()
                .and_then(|f| f.at(faults::POINT_STORE_WRITE));
            if let Some(FaultKind::Slow(ms)) = injected {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if matches!(
                injected,
                Some(FaultKind::IoError | FaultKind::Fail | FaultKind::Panic)
            ) {
                continue; // this attempt fails
            }
            // A bit-flip fault silently persists a corrupted payload (same
            // length) — the load path's checksum must catch it later.
            let payload = if matches!(injected, Some(FaultKind::BitFlip)) {
                let mut corrupted = text.clone();
                if let Some(f) = &self.faults {
                    f.corrupt_text(&mut corrupted);
                }
                std::borrow::Cow::Owned(corrupted)
            } else {
                std::borrow::Cow::Borrowed(text.as_str())
            };
            let tmp = self.dir.join(format!(
                ".tmp-{}-{}",
                std::process::id(),
                TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            match fs::write(&tmp, payload.as_bytes()).and_then(|()| {
                // Crash boundary: temp bytes durable, rename pending.
                if let Some(f) = &self.faults {
                    f.at(faults::POINT_STORE_WRITE_TMP);
                }
                fs::rename(&tmp, self.dir.join(&name))
            }) {
                Ok(()) => {
                    // Crash boundary: artifact in place, manifest stale —
                    // the exact window fsck repairs as an orphan.
                    if let Some(f) = &self.faults {
                        f.at(faults::POINT_STORE_WRITE_RENAME);
                    }
                    written = true;
                    break;
                }
                Err(_) => {
                    let _ = fs::remove_file(&tmp);
                }
            }
        }
        let mut index = lock_recover(&self.index);
        index.stats.write_retries += retries;
        if written {
            index.remove(&name); // overwrite: drop the old byte count
            index.clock += 1;
            let clock = index.clock;
            index.total_bytes += text.len() as u64;
            index.files.insert(
                name,
                FileEntry {
                    bytes: text.len() as u64,
                    last_used: clock,
                },
            );
            index.stats.writes += 1;
            self.evict_over_budget(&mut index);
            self.commit_manifest(&mut index);
        } else {
            index.stats.write_errors += 1;
        }
    }

    /// Deletes every artifact stored under `key` (any exact labeling);
    /// returns how many files were removed.
    pub fn evict(&self, key: CacheKey) -> usize {
        let prefix = format!("{:016x}-{:016x}-", key.canonical, key.config);
        let mut index = lock_recover(&self.index);
        let victims: Vec<String> = index
            .files
            .keys()
            .filter(|name| name.starts_with(&prefix))
            .cloned()
            .collect();
        for name in &victims {
            index.remove(name);
            index.stats.evictions += 1;
            let _ = fs::remove_file(self.dir.join(name));
            // Crash boundary: file gone, manifest still lists it — fsck
            // drops the entry as missing.
            if let Some(f) = &self.faults {
                f.at(faults::POINT_STORE_EVICT);
            }
        }
        if !victims.is_empty() {
            self.commit_manifest(&mut index);
        }
        victims.len()
    }

    /// Evicts least-recently-used files until the byte budget holds.
    fn evict_over_budget(&self, index: &mut StoreIndex) {
        while index.total_bytes > self.budget && index.files.len() > 1 {
            let victim = index
                .files
                .iter()
                .min_by_key(|(name, e)| (e.last_used, (*name).clone()))
                .map(|(name, _)| name.clone())
                .expect("non-empty index");
            index.remove(&victim);
            index.stats.evictions += 1;
            let _ = fs::remove_file(self.dir.join(&victim));
            // Crash boundary: same unlink-before-commit window as evict.
            if let Some(f) = &self.faults {
                f.at(faults::POINT_STORE_EVICT);
            }
        }
    }
}

impl Drop for ArtifactStore {
    /// Flushes touch-only LRU drift as a final manifest generation, so a
    /// cleanly closed store reopens with exact recency. Best-effort: a
    /// crash skips this and `fsck` recovers from the last commit instead.
    fn drop(&mut self) {
        let mut index = lock_recover(&self.index);
        if index.dirty {
            self.commit_manifest(&mut index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::config_fingerprint;
    use crate::config::FrameworkConfig;
    use epgs_graph::canon::{canonical_hash, relabel};
    use epgs_graph::generators;

    fn quick_pipeline() -> Pipeline {
        Pipeline::new(
            FrameworkConfig::builder()
                .g_max(5)
                .lc_budget(3)
                .partition_effort(4)
                .orderings_per_subgraph(4)
                .flexible_slack(1)
                .build(),
        )
    }

    fn key_for(pipeline: &Pipeline, g: &Graph) -> CacheKey {
        CacheKey {
            canonical: canonical_hash(g),
            config: config_fingerprint(pipeline.config()),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "epgs-store-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_and_survives_reopen() {
        let dir = tmp_dir("roundtrip");
        let pipeline = quick_pipeline();
        let g = generators::lattice(3, 3);
        let key = key_for(&pipeline, &g);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        {
            let store = ArtifactStore::open(&dir).unwrap();
            assert!(store.load(key, &g, &pipeline).is_none(), "cold store");
            store.save(key, &planned);
            assert_eq!(store.len(), 1);
            assert!(store.total_bytes() > 0);
            assert!(store.load(key, &g, &pipeline).is_some());
        }
        // A fresh handle (≈ a new process) sees the artifact.
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        let loaded = store.load(key, &g, &pipeline).expect("persisted artifact");
        assert_eq!(loaded.target(), &g);
        assert_eq!(loaded.partition(), planned.partition());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn relabelings_store_side_by_side() {
        let dir = tmp_dir("relabel");
        let pipeline = quick_pipeline();
        let g = generators::tree(9, 2);
        let perm: Vec<usize> = (0..9).map(|v| (v + 4) % 9).collect();
        let h = relabel(&g, &perm);
        assert_eq!(canonical_hash(&g), canonical_hash(&h));
        let key = key_for(&pipeline, &g);
        let store = ArtifactStore::open(&dir).unwrap();
        store.save(key, &pipeline.partition(&g).plan_leaves().unwrap());
        store.save(key, &pipeline.partition(&h).plan_leaves().unwrap());
        assert_eq!(store.len(), 2, "distinct labelings, distinct files");
        assert_eq!(store.load(key, &g, &pipeline).unwrap().target(), &g);
        assert_eq!(store.load(key, &h, &pipeline).unwrap().target(), &h);
        assert_eq!(store.evict(key), 2);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        let dir = tmp_dir("lru");
        let pipeline = quick_pipeline();
        let graphs = [
            generators::path(6),
            generators::cycle(7),
            generators::tree(8, 2),
        ];
        let planned: Vec<Planned> = graphs
            .iter()
            .map(|g| pipeline.partition(g).plan_leaves().unwrap())
            .collect();
        let keys: Vec<CacheKey> = graphs.iter().map(|g| key_for(&pipeline, g)).collect();

        // Budget sized for roughly two artifacts: measure one first.
        let probe = ArtifactStore::open_with_budget(&dir, u64::MAX).unwrap();
        probe.save(keys[0], &planned[0]);
        let one = probe.total_bytes();
        probe.evict(keys[0]);

        let store = ArtifactStore::open_with_budget(&dir, one * 2 + one / 2).unwrap();
        store.save(keys[0], &planned[0]);
        store.save(keys[1], &planned[1]);
        // Touch #0 so #1 is now least recently used.
        assert!(store.load(keys[0], &graphs[0], &pipeline).is_some());
        store.save(keys[2], &planned[2]);
        assert!(store.stats().evictions >= 1);
        assert!(
            store.load(keys[1], &graphs[1], &pipeline).is_none(),
            "least-recently-used artifact was evicted"
        );
        assert!(store.load(keys[0], &graphs[0], &pipeline).is_some());
        assert!(store.load(keys[2], &graphs[2], &pipeline).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_bit_flipped_files_are_discarded() {
        let dir = tmp_dir("corrupt");
        let pipeline = quick_pipeline();
        let g = generators::cycle(8);
        let key = key_for(&pipeline, &g);
        let store = ArtifactStore::open(&dir).unwrap();
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        store.save(key, &planned);
        let name = ArtifactStore::file_name(key, exact_graph_hash(&g));
        let path = dir.join(&name);

        // Truncate: invalid JSON.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 3]).unwrap();
        assert!(store.load(key, &g, &pipeline).is_none());
        assert_eq!(store.stats().corrupt_discarded, 1);
        assert!(!path.exists(), "corrupt file deleted");

        // Bit flip inside a hex field: valid JSON, checksum mismatch. The
        // name's second corruption strike quarantines it instead of
        // deleting.
        store.save(key, &planned);
        let text = fs::read_to_string(&path).unwrap();
        let pos = text.find("\"t_loss\":\"").expect("t_loss field") + 10;
        let mut bytes = text.into_bytes();
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        fs::write(&path, bytes).unwrap();
        assert!(store.load(key, &g, &pipeline).is_none());
        let stats = store.stats();
        assert_eq!(stats.corrupt_discarded, 2);
        assert_eq!(stats.quarantined, 1);
        assert!(!path.exists(), "second strike renames the file away");
        let qpath = dir.join(format!("{name}{QUARANTINE_SUFFIX}"));
        assert!(qpath.exists(), "quarantine file kept for forensics");

        // Quarantined names refuse writes and miss on load without a
        // delete/rewrite churn loop.
        store.save(key, &planned);
        assert!(!path.exists(), "save against a quarantined name is a no-op");
        assert!(store.load(key, &g, &pipeline).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_survives_reopen_and_orphaned_tmp_files_are_swept() {
        let dir = tmp_dir("quarantine-reopen");
        let pipeline = quick_pipeline();
        let g = generators::cycle(8);
        let key = key_for(&pipeline, &g);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        let name = ArtifactStore::file_name(key, exact_graph_hash(&g));
        {
            let store = ArtifactStore::open(&dir).unwrap();
            for _ in 0..2 {
                store.save(key, &planned);
                fs::write(dir.join(&name), "{").unwrap();
                assert!(store.load(key, &g, &pipeline).is_none());
            }
            assert_eq!(store.stats().quarantined, 1);
        }
        // Simulate a crash mid-write: an orphaned tmp file.
        fs::write(dir.join(".tmp-9999-0"), "half an artifact").unwrap();

        let store = ArtifactStore::open(&dir).unwrap();
        let stats = store.stats();
        assert_eq!(stats.quarantined, 1, "quarantine re-detected at open");
        assert_eq!(stats.tmp_swept, 1);
        assert!(!dir.join(".tmp-9999-0").exists());
        assert!(
            store.load(key, &g, &pipeline).is_none(),
            "a fresh process still refuses the quarantined entry"
        );
        store.save(key, &planned);
        assert!(!dir.join(&name).exists(), "still refuses writes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_faults_retry_and_injected_write_faults_are_absorbed() {
        use crate::faults::{FaultKind, FaultPlan, Trigger};
        let dir = tmp_dir("faults");
        let pipeline = quick_pipeline();
        let g = generators::path(7);
        let key = key_for(&pipeline, &g);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();

        let mut store = ArtifactStore::open(&dir).unwrap();
        // First read attempt fails, first whole save fails (all 3 write
        // attempts), second save's first attempt fails then succeeds.
        store.set_fault_plan(Arc::new(
            FaultPlan::new(11)
                .rule_limited(
                    faults::POINT_STORE_READ,
                    FaultKind::IoError,
                    Trigger::Nth(0),
                    1,
                )
                .rule_limited(
                    faults::POINT_STORE_WRITE,
                    FaultKind::IoError,
                    Trigger::Always,
                    4,
                ),
        ));
        store.save(key, &planned);
        let stats = store.stats();
        assert_eq!(stats.write_errors, 1, "3 failed attempts = 1 failed save");
        assert_eq!(stats.write_retries, 2);
        store.save(key, &planned);
        let stats = store.stats();
        assert_eq!(stats.writes, 1, "second save survives on retry");
        assert_eq!(stats.write_retries, 3);
        let loaded = store.load(key, &g, &pipeline);
        assert!(loaded.is_some(), "read survives the injected failure");
        let stats = store.stats();
        assert_eq!(stats.read_retries, 1);
        assert_eq!(stats.disk_hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_document_round_trips_and_rejects_corruption() {
        let mut index = StoreIndex {
            clock: 9,
            total_bytes: 30,
            ..Default::default()
        };
        for (name, bytes, used) in [("b.art.json", 10, 3), ("a.art.json", 20, 9)] {
            index.files.insert(
                name.to_string(),
                FileEntry {
                    bytes,
                    last_used: used,
                },
            );
        }
        index.quarantined.insert("q.art.json".to_string());
        let doc = render_manifest(7, &index);
        let data = parse_manifest(&doc).expect("rendered manifest parses");
        assert_eq!(data.generation, 7);
        assert_eq!(data.clock, 9);
        assert_eq!(
            data.entries,
            vec![
                ("a.art.json".to_string(), 20, 9),
                ("b.art.json".to_string(), 10, 3)
            ],
            "entries sorted by name"
        );
        assert_eq!(data.quarantined, vec!["q.art.json".to_string()]);
        assert!(
            parse_manifest(&doc.replace("\"used\":3", "\"used\":4")).is_none(),
            "checksum catches payload mutation"
        );
        assert!(parse_manifest(&doc.replace("\"version\":1", "\"version\":2")).is_none());
        assert!(parse_manifest("{").is_none());
    }

    #[test]
    fn clean_reopen_reports_clean_recovery_and_exact_accounting() {
        let dir = tmp_dir("clean-reopen");
        let pipeline = quick_pipeline();
        let graphs = [generators::path(6), generators::cycle(7)];
        {
            let store = ArtifactStore::open(&dir).unwrap();
            assert!(store.recovery().is_clean(), "fresh empty dir is clean");
            for g in &graphs {
                store.save(
                    key_for(&pipeline, g),
                    &pipeline.partition(g).plan_leaves().unwrap(),
                );
            }
        }
        let store = ArtifactStore::open(&dir).unwrap();
        let report = store.recovery();
        assert!(report.manifest_found);
        assert!(
            report.is_clean(),
            "clean shutdown reconciles cleanly: {report:?}"
        );
        assert_eq!(report.entries_expected, 2);
        let disk_bytes: u64 = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(SUFFIX))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert_eq!(
            store.total_bytes(),
            disk_bytes,
            "accounting matches a directory walk"
        );
        assert_eq!(report.recovered_bytes, disk_bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_repairs_orphans_missing_torn_and_stale_generations() {
        let dir = tmp_dir("fsck");
        let pipeline = quick_pipeline();
        let g1 = generators::path(6);
        let g2 = generators::cycle(7);
        let (k1, k2) = (key_for(&pipeline, &g1), key_for(&pipeline, &g2));
        let name1 = ArtifactStore::file_name(k1, exact_graph_hash(&g1));
        let name2 = ArtifactStore::file_name(k2, exact_graph_hash(&g2));
        {
            let store = ArtifactStore::open(&dir).unwrap();
            store.save(k1, &pipeline.partition(&g1).plan_leaves().unwrap());
            store.save(k2, &pipeline.partition(&g2).plan_leaves().unwrap());
        }
        // Crash after rename, before commit: a whole artifact the manifest
        // does not know about.
        let orphan = format!("{:016x}-{:016x}-{:016x}{SUFFIX}", 1u64, 2u64, 3u64);
        fs::copy(dir.join(&name1), dir.join(&orphan)).unwrap();
        // Crash after unlink, before commit: manifest entry, no file.
        fs::remove_file(dir.join(&name2)).unwrap();
        // Torn write that bypassed the tmp+rename path: size disagrees.
        let text = fs::read_to_string(dir.join(&name1)).unwrap();
        fs::write(dir.join(&name1), &text[..text.len() / 2]).unwrap();
        // Crash leftovers: an orphan tmp and a torn manifest generation.
        fs::write(dir.join(".tmp-1234-0"), "half").unwrap();
        fs::write(dir.join(manifest_file_name(u64::MAX)), "{\"format\":").unwrap();

        let store = ArtifactStore::open(&dir).unwrap();
        let report = store.recovery();
        assert!(report.manifest_found);
        assert_eq!(report.orphans_reindexed, 1, "{report:?}");
        assert_eq!(report.missing_dropped, 1);
        assert_eq!(report.torn_quarantined, 1);
        assert_eq!(report.stale_manifests_deleted, 1);
        assert_eq!(report.tmp_swept, 1);
        assert!(!report.is_clean());
        assert_eq!(store.len(), 1, "only the orphan survives");
        assert_eq!(store.total_bytes(), text.len() as u64);
        assert!(
            dir.join(format!("{name1}{QUARANTINE_SUFFIX}")).exists(),
            "torn file quarantined, not served"
        );
        assert!(!dir.join(manifest_file_name(u64::MAX)).exists());

        // The repair converged: a second pass and a fresh open are clean.
        assert!(store.fsck().unwrap().is_clean());
        drop(store);
        let reopened = ArtifactStore::open(&dir).unwrap();
        assert!(reopened.recovery().is_clean(), "{:?}", reopened.recovery());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_preserves_lru_order_across_reopen_despite_mtime_ties() {
        let dir = tmp_dir("lru-reopen");
        let pipeline = quick_pipeline();
        let graphs = [
            generators::path(6),
            generators::cycle(7),
            generators::tree(8, 2),
        ];
        let keys: Vec<CacheKey> = graphs.iter().map(|g| key_for(&pipeline, g)).collect();
        let names: Vec<String> = graphs
            .iter()
            .zip(&keys)
            .map(|(g, &k)| ArtifactStore::file_name(k, exact_graph_hash(g)))
            .collect();
        let one = {
            let store = ArtifactStore::open(&dir).unwrap();
            for (g, &k) in graphs.iter().zip(&keys) {
                store.save(k, &pipeline.partition(g).plan_leaves().unwrap());
            }
            // Touch #0 and #1 so #1's file is most recent and #2 is LRU —
            // an order no mtime or name sort can reproduce by accident.
            assert!(store.load(keys[0], &graphs[0], &pipeline).is_some());
            assert!(store.load(keys[1], &graphs[1], &pipeline).is_some());
            store.total_bytes() / 3
        };
        // Collapse every mtime to one second: the coarse-granularity tie.
        let when = SystemTime::UNIX_EPOCH + Duration::from_secs(1_600_000_000);
        for name in &names {
            fs::File::options()
                .write(true)
                .open(dir.join(name))
                .unwrap()
                .set_modified(when)
                .unwrap();
        }
        // A budget for two artifacts forces one eviction at open; the
        // manifest's clocks say #2 is least recently used.
        let store = ArtifactStore::open_with_budget(&dir, one * 2 + one / 2).unwrap();
        assert!(
            store.load(keys[2], &graphs[2], &pipeline).is_none(),
            "manifest recency evicted the true LRU entry"
        );
        assert!(store.load(keys[0], &graphs[0], &pipeline).is_some());
        assert!(store.load(keys[1], &graphs[1], &pipeline).is_some());
        drop(store);

        // Fallback path: no manifest at all, tied mtimes — eviction must
        // pick the lexicographically smallest name, deterministically.
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry
                .as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .into_owned();
            if manifest_generation(&name).is_some() {
                fs::remove_file(entry.unwrap().path()).unwrap();
            }
        }
        let survivors: Vec<&String> = {
            let mut sorted: Vec<&String> = names.iter().filter(|n| dir.join(n).exists()).collect();
            sorted.sort();
            sorted
        };
        assert_eq!(survivors.len(), 2);
        for name in &survivors {
            fs::File::options()
                .write(true)
                .open(dir.join(name))
                .unwrap()
                .set_modified(when)
                .unwrap();
        }
        let store = ArtifactStore::open_with_budget(&dir, one + one / 2).unwrap();
        assert!(
            !dir.join(survivors[0]).exists(),
            "mtime tie broken by name order: smallest evicted first"
        );
        assert!(dir.join(survivors[1]).exists());
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected_and_counted() {
        let dir = tmp_dir("version");
        let pipeline = quick_pipeline();
        let g = generators::path(7);
        let key = key_for(&pipeline, &g);
        let store = ArtifactStore::open(&dir).unwrap();
        store.save(key, &pipeline.partition(&g).plan_leaves().unwrap());
        let name = ArtifactStore::file_name(key, exact_graph_hash(&g));
        let path = dir.join(&name);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("\"version\":1", "\"version\":99")).unwrap();
        assert!(store.load(key, &g, &pipeline).is_none());
        let stats = store.stats();
        assert_eq!(stats.version_rejected, 1);
        assert_eq!(stats.corrupt_discarded, 0);
        assert!(!path.exists(), "unsupported version deleted");
        let _ = fs::remove_dir_all(&dir);
    }
}
