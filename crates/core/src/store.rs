//! Content-addressed on-disk store of [`Planned`] artifacts — the durable,
//! cross-process layer under the in-memory [`ArtifactCache`](crate::ArtifactCache).
//!
//! # Layout
//!
//! One directory, one file per artifact:
//!
//! ```text
//! <dir>/<canonical:16hex>-<config:16hex>-<exact:16hex>.art.json
//! ```
//!
//! `canonical` is the label-invariant WL hash, `config` the configuration
//! fingerprint (together the [`CacheKey`]), and `exact` a hash of the exact
//! labeled graph — so two relabelings that share a cache key store side by
//! side instead of clobbering each other, mirroring the in-memory cache's
//! bucket-of-exact-graphs shape. Files are written to a temporary name and
//! atomically renamed into place, so concurrent workers sharing one
//! directory never observe a half-written artifact.
//!
//! # Guarantees
//!
//! * **Exact-graph confirmation** — a load only hits when the decoded
//!   target equals the requested graph byte for byte; relabelings and hash
//!   collisions are observable misses, never unsound reuse.
//! * **Corruption degrades to recompile** — truncated, bit-flipped, or
//!   schema-violating files are deleted on load and counted in
//!   [`StoreStats::corrupt_discarded`]; version-mismatched files are
//!   deleted and counted in [`StoreStats::version_rejected`].
//! * **Two strikes and quarantined** — a name whose file fails the
//!   corruption check *twice* is renamed to `<name>.quarantine` instead of
//!   deleted, and is never read or rewritten again by this process (or any
//!   later one: quarantine files are re-detected at open). A recurring bad
//!   entry — a flaky sector, a writer bug — cannot be served and cannot
//!   churn through a delete/rewrite loop.
//! * **I/O retry with capped backoff** — transient read/write failures are
//!   retried up to 3 attempts (1–2 ms backoff) and counted in
//!   [`StoreStats::read_retries`] / [`StoreStats::write_retries`]; a
//!   missing file is a plain miss, never retried.
//! * **Crash-orphan sweep** — `open` deletes `.tmp-*` files abandoned by a
//!   crash between write and rename, counted in [`StoreStats::tmp_swept`].
//! * **LRU byte budget** — the store tracks total bytes and evicts
//!   least-recently-used files when a write pushes it past the budget.
//!   Recency is per-process (seeded from file modification times at open).
//!
//! For fault-injection testing a seeded [`FaultPlan`] can be armed on the
//! handle (points [`POINT_STORE_READ`](crate::faults::POINT_STORE_READ) /
//! [`POINT_STORE_WRITE`](crate::faults::POINT_STORE_WRITE)); unarmed
//! handles skip the probes entirely.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use epgs_graph::canon::fnv1a_all;
use epgs_graph::Graph;

use crate::artifact::{self, ArtifactError};
use crate::batch::CacheKey;
use crate::faults::{self, lock_recover, FaultKind, FaultPlan};
use crate::stages::{Pipeline, Planned};

/// Filename suffix of every artifact in a store directory.
const SUFFIX: &str = ".art.json";

/// Filename suffix of quarantined (never re-read) artifacts.
const QUARANTINE_SUFFIX: &str = ".quarantine";

/// Read/write attempts per operation (1 initial + 2 retries).
const MAX_IO_ATTEMPTS: u32 = 3;

/// Corruption strikes against one name before it is quarantined.
const QUARANTINE_STRIKES: u32 = 2;

/// Process-wide counter making temporary file names unique.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Hash of the *exact* labeled graph (vertex count + sorted edge list) —
/// the third filename component, which separates relabelings that share a
/// [`CacheKey`].
pub fn exact_graph_hash(g: &Graph) -> u64 {
    fnv1a_all(
        std::iter::once(g.vertex_count() as u64)
            .chain(g.edges().flat_map(|(a, b)| [a as u64, b as u64])),
    )
}

/// Cumulative counters of one [`ArtifactStore`] handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads that returned a stored artifact.
    pub disk_hits: usize,
    /// Loads that found nothing reusable.
    pub disk_misses: usize,
    /// Files discarded because they failed the grammar, schema, or
    /// checksum check — counted within `disk_misses`.
    pub corrupt_discarded: usize,
    /// Files discarded because their schema version is unsupported —
    /// counted within `disk_misses`.
    pub version_rejected: usize,
    /// Loads whose file held a *different* exact graph under the same name
    /// (exact-hash collision) — counted within `disk_misses`.
    pub exact_collisions: usize,
    /// Files evicted by the byte-budget LRU bound.
    pub evictions: usize,
    /// Successful artifact writes.
    pub writes: usize,
    /// Writes that failed at the filesystem level (artifact dropped, the
    /// compile result itself is unaffected).
    pub write_errors: usize,
    /// Names quarantined after failing the corruption check twice — their
    /// files are renamed to `.quarantine` and never read again.
    pub quarantined: usize,
    /// Orphaned `.tmp-*` files (crash between write and rename) deleted by
    /// [`ArtifactStore::open`].
    pub tmp_swept: usize,
    /// Load attempts retried after a transient read failure.
    pub read_retries: usize,
    /// Save attempts retried after a transient write failure.
    pub write_retries: usize,
}

#[derive(Debug)]
struct FileEntry {
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct StoreIndex {
    files: HashMap<String, FileEntry>,
    total_bytes: u64,
    clock: u64,
    stats: StoreStats,
    /// Corruption strikes per name; at [`QUARANTINE_STRIKES`] the name
    /// moves to `quarantined`.
    strikes: HashMap<String, u32>,
    /// Names never read or written again (file renamed to `.quarantine`).
    quarantined: HashSet<String>,
}

impl StoreIndex {
    fn touch(&mut self, name: &str) {
        self.clock += 1;
        if let Some(e) = self.files.get_mut(name) {
            e.last_used = self.clock;
        }
    }

    fn remove(&mut self, name: &str) {
        if let Some(e) = self.files.remove(name) {
            self.total_bytes -= e.bytes;
        }
    }
}

/// A content-addressed, byte-budgeted, crash-tolerant directory of
/// serialized [`Planned`] artifacts. See the [module docs](self) for the
/// layout and guarantees.
///
/// The handle is internally synchronized: `&self` methods are safe to call
/// from many threads. Multiple *processes* may share one directory — writes
/// are atomic renames and every load re-validates the file — though each
/// process tracks recency and byte totals independently.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    budget: u64,
    index: Mutex<StoreIndex>,
    faults: Option<Arc<FaultPlan>>,
}

impl ArtifactStore {
    /// Default byte budget: 256 MiB.
    pub const DEFAULT_BYTE_BUDGET: u64 = 256 << 20;

    /// Opens (creating if needed) the store at `dir` with the default byte
    /// budget.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating or scanning `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_budget(dir, Self::DEFAULT_BYTE_BUDGET)
    }

    /// Opens the store at `dir`, bounding it to `budget_bytes` (clamped to
    /// ≥ 1). Existing artifacts are indexed with recency seeded from file
    /// modification times; if they already exceed the budget, the oldest
    /// are evicted immediately.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating or scanning `dir`.
    pub fn open_with_budget(dir: impl AsRef<Path>, budget_bytes: u64) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut found: Vec<(String, u64, SystemTime)> = Vec::new();
        let mut index = StoreIndex::default();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            if name.starts_with(".tmp-") {
                // Orphan from a crash between write and rename.
                let _ = fs::remove_file(entry.path());
                index.stats.tmp_swept += 1;
                continue;
            }
            if let Some(original) = name.strip_suffix(QUARANTINE_SUFFIX) {
                index.quarantined.insert(original.to_string());
                continue;
            }
            if !name.ends_with(SUFFIX) {
                continue;
            }
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((name, meta.len(), mtime));
        }
        // Oldest first, so clocks reproduce the on-disk recency order.
        found.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        index.stats.quarantined = index.quarantined.len();
        for (name, bytes, _) in found {
            index.clock += 1;
            index.total_bytes += bytes;
            index.files.insert(
                name,
                FileEntry {
                    bytes,
                    last_used: index.clock,
                },
            );
        }
        let store = ArtifactStore {
            dir,
            budget: budget_bytes.max(1),
            index: Mutex::new(index),
            faults: None,
        };
        store.evict_over_budget(&mut lock_recover(&store.index));
        Ok(store)
    }

    /// Arms a fault-injection plan on this handle (chaos testing); every
    /// later load/save probes the plan's `store.read` / `store.write`
    /// points. Handles without a plan skip the probes entirely.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> u64 {
        self.budget
    }

    /// Number of artifacts currently indexed.
    pub fn len(&self) -> usize {
        lock_recover(&self.index).files.len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total indexed artifact bytes.
    pub fn total_bytes(&self) -> u64 {
        lock_recover(&self.index).total_bytes
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> StoreStats {
        lock_recover(&self.index).stats
    }

    fn file_name(key: CacheKey, exact: u64) -> String {
        format!(
            "{:016x}-{:016x}-{exact:016x}{SUFFIX}",
            key.canonical, key.config
        )
    }

    /// Reads the file behind an artifact, retrying transient failures with
    /// capped backoff and applying any armed read faults. Returns the text,
    /// the retry count, and whether a definitive not-found was seen (which
    /// is a plain miss, never retried).
    fn read_with_retry(&self, path: &Path) -> (Option<String>, usize, bool) {
        let mut retries = 0;
        for attempt in 0..MAX_IO_ATTEMPTS {
            if attempt > 0 {
                retries += 1;
                std::thread::sleep(Duration::from_millis(1 << (attempt - 1)));
            }
            let injected = self
                .faults
                .as_ref()
                .and_then(|f| f.at(faults::POINT_STORE_READ));
            if let Some(FaultKind::Slow(ms)) = injected {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if matches!(
                injected,
                Some(FaultKind::IoError | FaultKind::Fail | FaultKind::Panic)
            ) {
                continue; // this attempt fails
            }
            match fs::read_to_string(path) {
                Ok(mut text) => {
                    if matches!(injected, Some(FaultKind::BitFlip)) {
                        if let Some(f) = &self.faults {
                            f.corrupt_text(&mut text);
                        }
                    }
                    return (Some(text), retries, false);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => return (None, retries, true),
                Err(_) => continue,
            }
        }
        (None, retries, false)
    }

    /// Loads the artifact for exactly `graph` under `key`, binding it to
    /// `pipeline`. Any invalid file encountered is deleted on first strike
    /// and quarantined on second; see [`StoreStats`] for the per-cause
    /// counters and the [module docs](self) for the retry and quarantine
    /// policies.
    pub fn load(&self, key: CacheKey, graph: &Graph, pipeline: &Pipeline) -> Option<Planned> {
        let name = Self::file_name(key, exact_graph_hash(graph));
        let path = self.dir.join(&name);
        if lock_recover(&self.index).quarantined.contains(&name) {
            lock_recover(&self.index).stats.disk_misses += 1;
            return None;
        }
        // I/O runs outside the index lock: backoff sleeps and injected
        // stalls must not serialize unrelated loads.
        let (text, retries, _not_found) = self.read_with_retry(&path);
        let mut index = lock_recover(&self.index);
        index.stats.read_retries += retries;
        let Some(text) = text else {
            // Absent here but present in the index means another process
            // evicted it; resynchronize. Persistent read failure lands
            // here too — a miss (recompile), not a request failure.
            index.remove(&name);
            index.stats.disk_misses += 1;
            return None;
        };
        match artifact::decode(&text, key, pipeline) {
            Ok(planned) if planned.target() == graph => {
                if !index.files.contains_key(&name) {
                    // Written by another process since our scan.
                    index.total_bytes += text.len() as u64;
                    index.files.insert(
                        name.clone(),
                        FileEntry {
                            bytes: text.len() as u64,
                            last_used: 0,
                        },
                    );
                }
                index.touch(&name);
                index.stats.disk_hits += 1;
                Some(planned)
            }
            Ok(_) => {
                // An exact-hash collision: the file belongs to a different
                // labeling. Leave it — it is somebody's valid artifact.
                index.stats.exact_collisions += 1;
                index.stats.disk_misses += 1;
                None
            }
            Err(ArtifactError::VersionMismatch { .. }) => {
                index.stats.version_rejected += 1;
                index.stats.disk_misses += 1;
                index.remove(&name);
                drop(index);
                let _ = fs::remove_file(&path);
                None
            }
            Err(_) => {
                index.stats.corrupt_discarded += 1;
                index.stats.disk_misses += 1;
                index.remove(&name);
                let strikes = index.strikes.entry(name.clone()).or_insert(0);
                *strikes += 1;
                if *strikes >= QUARANTINE_STRIKES {
                    index.quarantined.insert(name.clone());
                    index.stats.quarantined = index.quarantined.len();
                    drop(index);
                    let _ = fs::rename(&path, self.dir.join(format!("{name}{QUARANTINE_SUFFIX}")));
                } else {
                    drop(index);
                    let _ = fs::remove_file(&path);
                }
                None
            }
        }
    }

    /// Stores `planned` under `key`, atomically (tmp file + rename), then
    /// enforces the byte budget. Transient filesystem failures are retried
    /// with capped backoff; a write that still fails is absorbed into
    /// [`StoreStats::write_errors`] — a failed artifact write must never
    /// fail the compilation that produced it. Quarantined names are never
    /// rewritten.
    pub fn save(&self, key: CacheKey, planned: &Planned) {
        let text = artifact::encode(planned, key);
        let name = Self::file_name(key, exact_graph_hash(planned.target()));
        if lock_recover(&self.index).quarantined.contains(&name) {
            return;
        }
        let mut retries = 0;
        let mut written = false;
        for attempt in 0..MAX_IO_ATTEMPTS {
            if attempt > 0 {
                retries += 1;
                std::thread::sleep(Duration::from_millis(1 << (attempt - 1)));
            }
            let injected = self
                .faults
                .as_ref()
                .and_then(|f| f.at(faults::POINT_STORE_WRITE));
            if let Some(FaultKind::Slow(ms)) = injected {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if matches!(
                injected,
                Some(FaultKind::IoError | FaultKind::Fail | FaultKind::Panic)
            ) {
                continue; // this attempt fails
            }
            // A bit-flip fault silently persists a corrupted payload (same
            // length) — the load path's checksum must catch it later.
            let payload = if matches!(injected, Some(FaultKind::BitFlip)) {
                let mut corrupted = text.clone();
                if let Some(f) = &self.faults {
                    f.corrupt_text(&mut corrupted);
                }
                std::borrow::Cow::Owned(corrupted)
            } else {
                std::borrow::Cow::Borrowed(text.as_str())
            };
            let tmp = self.dir.join(format!(
                ".tmp-{}-{}",
                std::process::id(),
                TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            match fs::write(&tmp, payload.as_bytes())
                .and_then(|()| fs::rename(&tmp, self.dir.join(&name)))
            {
                Ok(()) => {
                    written = true;
                    break;
                }
                Err(_) => {
                    let _ = fs::remove_file(&tmp);
                }
            }
        }
        let mut index = lock_recover(&self.index);
        index.stats.write_retries += retries;
        if written {
            index.remove(&name); // overwrite: drop the old byte count
            index.clock += 1;
            let clock = index.clock;
            index.total_bytes += text.len() as u64;
            index.files.insert(
                name,
                FileEntry {
                    bytes: text.len() as u64,
                    last_used: clock,
                },
            );
            index.stats.writes += 1;
            self.evict_over_budget(&mut index);
        } else {
            index.stats.write_errors += 1;
        }
    }

    /// Deletes every artifact stored under `key` (any exact labeling);
    /// returns how many files were removed.
    pub fn evict(&self, key: CacheKey) -> usize {
        let prefix = format!("{:016x}-{:016x}-", key.canonical, key.config);
        let mut index = lock_recover(&self.index);
        let victims: Vec<String> = index
            .files
            .keys()
            .filter(|name| name.starts_with(&prefix))
            .cloned()
            .collect();
        for name in &victims {
            index.remove(name);
            index.stats.evictions += 1;
            let _ = fs::remove_file(self.dir.join(name));
        }
        victims.len()
    }

    /// Evicts least-recently-used files until the byte budget holds.
    fn evict_over_budget(&self, index: &mut StoreIndex) {
        while index.total_bytes > self.budget && index.files.len() > 1 {
            let victim = index
                .files
                .iter()
                .min_by_key(|(name, e)| (e.last_used, (*name).clone()))
                .map(|(name, _)| name.clone())
                .expect("non-empty index");
            index.remove(&victim);
            index.stats.evictions += 1;
            let _ = fs::remove_file(self.dir.join(&victim));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::config_fingerprint;
    use crate::config::FrameworkConfig;
    use epgs_graph::canon::{canonical_hash, relabel};
    use epgs_graph::generators;

    fn quick_pipeline() -> Pipeline {
        Pipeline::new(
            FrameworkConfig::builder()
                .g_max(5)
                .lc_budget(3)
                .partition_effort(4)
                .orderings_per_subgraph(4)
                .flexible_slack(1)
                .build(),
        )
    }

    fn key_for(pipeline: &Pipeline, g: &Graph) -> CacheKey {
        CacheKey {
            canonical: canonical_hash(g),
            config: config_fingerprint(pipeline.config()),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "epgs-store-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_and_survives_reopen() {
        let dir = tmp_dir("roundtrip");
        let pipeline = quick_pipeline();
        let g = generators::lattice(3, 3);
        let key = key_for(&pipeline, &g);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        {
            let store = ArtifactStore::open(&dir).unwrap();
            assert!(store.load(key, &g, &pipeline).is_none(), "cold store");
            store.save(key, &planned);
            assert_eq!(store.len(), 1);
            assert!(store.total_bytes() > 0);
            assert!(store.load(key, &g, &pipeline).is_some());
        }
        // A fresh handle (≈ a new process) sees the artifact.
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        let loaded = store.load(key, &g, &pipeline).expect("persisted artifact");
        assert_eq!(loaded.target(), &g);
        assert_eq!(loaded.partition(), planned.partition());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn relabelings_store_side_by_side() {
        let dir = tmp_dir("relabel");
        let pipeline = quick_pipeline();
        let g = generators::tree(9, 2);
        let perm: Vec<usize> = (0..9).map(|v| (v + 4) % 9).collect();
        let h = relabel(&g, &perm);
        assert_eq!(canonical_hash(&g), canonical_hash(&h));
        let key = key_for(&pipeline, &g);
        let store = ArtifactStore::open(&dir).unwrap();
        store.save(key, &pipeline.partition(&g).plan_leaves().unwrap());
        store.save(key, &pipeline.partition(&h).plan_leaves().unwrap());
        assert_eq!(store.len(), 2, "distinct labelings, distinct files");
        assert_eq!(store.load(key, &g, &pipeline).unwrap().target(), &g);
        assert_eq!(store.load(key, &h, &pipeline).unwrap().target(), &h);
        assert_eq!(store.evict(key), 2);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_first() {
        let dir = tmp_dir("lru");
        let pipeline = quick_pipeline();
        let graphs = [
            generators::path(6),
            generators::cycle(7),
            generators::tree(8, 2),
        ];
        let planned: Vec<Planned> = graphs
            .iter()
            .map(|g| pipeline.partition(g).plan_leaves().unwrap())
            .collect();
        let keys: Vec<CacheKey> = graphs.iter().map(|g| key_for(&pipeline, g)).collect();

        // Budget sized for roughly two artifacts: measure one first.
        let probe = ArtifactStore::open_with_budget(&dir, u64::MAX).unwrap();
        probe.save(keys[0], &planned[0]);
        let one = probe.total_bytes();
        probe.evict(keys[0]);

        let store = ArtifactStore::open_with_budget(&dir, one * 2 + one / 2).unwrap();
        store.save(keys[0], &planned[0]);
        store.save(keys[1], &planned[1]);
        // Touch #0 so #1 is now least recently used.
        assert!(store.load(keys[0], &graphs[0], &pipeline).is_some());
        store.save(keys[2], &planned[2]);
        assert!(store.stats().evictions >= 1);
        assert!(
            store.load(keys[1], &graphs[1], &pipeline).is_none(),
            "least-recently-used artifact was evicted"
        );
        assert!(store.load(keys[0], &graphs[0], &pipeline).is_some());
        assert!(store.load(keys[2], &graphs[2], &pipeline).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_bit_flipped_files_are_discarded() {
        let dir = tmp_dir("corrupt");
        let pipeline = quick_pipeline();
        let g = generators::cycle(8);
        let key = key_for(&pipeline, &g);
        let store = ArtifactStore::open(&dir).unwrap();
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        store.save(key, &planned);
        let name = ArtifactStore::file_name(key, exact_graph_hash(&g));
        let path = dir.join(&name);

        // Truncate: invalid JSON.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 3]).unwrap();
        assert!(store.load(key, &g, &pipeline).is_none());
        assert_eq!(store.stats().corrupt_discarded, 1);
        assert!(!path.exists(), "corrupt file deleted");

        // Bit flip inside a hex field: valid JSON, checksum mismatch. The
        // name's second corruption strike quarantines it instead of
        // deleting.
        store.save(key, &planned);
        let text = fs::read_to_string(&path).unwrap();
        let pos = text.find("\"t_loss\":\"").expect("t_loss field") + 10;
        let mut bytes = text.into_bytes();
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        fs::write(&path, bytes).unwrap();
        assert!(store.load(key, &g, &pipeline).is_none());
        let stats = store.stats();
        assert_eq!(stats.corrupt_discarded, 2);
        assert_eq!(stats.quarantined, 1);
        assert!(!path.exists(), "second strike renames the file away");
        let qpath = dir.join(format!("{name}{QUARANTINE_SUFFIX}"));
        assert!(qpath.exists(), "quarantine file kept for forensics");

        // Quarantined names refuse writes and miss on load without a
        // delete/rewrite churn loop.
        store.save(key, &planned);
        assert!(!path.exists(), "save against a quarantined name is a no-op");
        assert!(store.load(key, &g, &pipeline).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_survives_reopen_and_orphaned_tmp_files_are_swept() {
        let dir = tmp_dir("quarantine-reopen");
        let pipeline = quick_pipeline();
        let g = generators::cycle(8);
        let key = key_for(&pipeline, &g);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        let name = ArtifactStore::file_name(key, exact_graph_hash(&g));
        {
            let store = ArtifactStore::open(&dir).unwrap();
            for _ in 0..2 {
                store.save(key, &planned);
                fs::write(dir.join(&name), "{").unwrap();
                assert!(store.load(key, &g, &pipeline).is_none());
            }
            assert_eq!(store.stats().quarantined, 1);
        }
        // Simulate a crash mid-write: an orphaned tmp file.
        fs::write(dir.join(".tmp-9999-0"), "half an artifact").unwrap();

        let store = ArtifactStore::open(&dir).unwrap();
        let stats = store.stats();
        assert_eq!(stats.quarantined, 1, "quarantine re-detected at open");
        assert_eq!(stats.tmp_swept, 1);
        assert!(!dir.join(".tmp-9999-0").exists());
        assert!(
            store.load(key, &g, &pipeline).is_none(),
            "a fresh process still refuses the quarantined entry"
        );
        store.save(key, &planned);
        assert!(!dir.join(&name).exists(), "still refuses writes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_faults_retry_and_injected_write_faults_are_absorbed() {
        use crate::faults::{FaultKind, FaultPlan, Trigger};
        let dir = tmp_dir("faults");
        let pipeline = quick_pipeline();
        let g = generators::path(7);
        let key = key_for(&pipeline, &g);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();

        let mut store = ArtifactStore::open(&dir).unwrap();
        // First read attempt fails, first whole save fails (all 3 write
        // attempts), second save's first attempt fails then succeeds.
        store.set_fault_plan(Arc::new(
            FaultPlan::new(11)
                .rule_limited(
                    faults::POINT_STORE_READ,
                    FaultKind::IoError,
                    Trigger::Nth(0),
                    1,
                )
                .rule_limited(
                    faults::POINT_STORE_WRITE,
                    FaultKind::IoError,
                    Trigger::Always,
                    4,
                ),
        ));
        store.save(key, &planned);
        let stats = store.stats();
        assert_eq!(stats.write_errors, 1, "3 failed attempts = 1 failed save");
        assert_eq!(stats.write_retries, 2);
        store.save(key, &planned);
        let stats = store.stats();
        assert_eq!(stats.writes, 1, "second save survives on retry");
        assert_eq!(stats.write_retries, 3);
        let loaded = store.load(key, &g, &pipeline);
        assert!(loaded.is_some(), "read survives the injected failure");
        let stats = store.stats();
        assert_eq!(stats.read_retries, 1);
        assert_eq!(stats.disk_hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected_and_counted() {
        let dir = tmp_dir("version");
        let pipeline = quick_pipeline();
        let g = generators::path(7);
        let key = key_for(&pipeline, &g);
        let store = ArtifactStore::open(&dir).unwrap();
        store.save(key, &pipeline.partition(&g).plan_leaves().unwrap());
        let name = ArtifactStore::file_name(key, exact_graph_hash(&g));
        let path = dir.join(&name);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("\"version\":1", "\"version\":99")).unwrap();
        assert!(store.load(key, &g, &pipeline).is_none());
        let stats = store.stats();
        assert_eq!(stats.version_rejected, 1);
        assert_eq!(stats.corrupt_discarded, 0);
        assert!(!path.exists(), "unsupported version deleted");
        let _ = fs::remove_dir_all(&dir);
    }
}
