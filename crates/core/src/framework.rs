//! The end-to-end compilation framework (paper Fig. 6).
//!
//! `partition → compile each leaf → schedule → recombine → verify`:
//!
//! 1. **Partition** the target graph state into subgraphs of ≤ g_max
//!    vertices, exploring local complementations up to budget l to shrink
//!    the cut ([`epgs_partition`]).
//! 2. **Compile** each subgraph near-optimally with the flexible emitter
//!    policy ([`crate::subgraph`]).
//! 3. **Schedule** the subgraph circuits as-late-as-possible under the
//!    emitter budget Ne_limit ([`mod@crate::schedule`]).
//! 4. **Recombine**: the schedule induces a global interleaved emission
//!    ordering; one global time-reversed solve over the transformed graph
//!    realizes exactly the scheduled plan, with the cut edges compiled into
//!    the emitter-emitter "stem" gates. Local Cliffords that undo the LC
//!    sequence are appended so the circuit delivers the *original* target.
//! 5. **Verify** against the original graph with the stabilizer simulator.

use epgs_circuit::{circuit_metrics, simulate, Circuit, CircuitMetrics, Op, Qubit};
use epgs_graph::{height, ops, Graph};
use epgs_partition::{partition_with_lc, Partition};
use epgs_solver::reverse::{solve_with_ordering, SolveOptions};
use epgs_solver::ordering;

use crate::config::FrameworkConfig;
use crate::error::FrameworkError;
use crate::schedule::{schedule, Schedule};
use crate::subgraph::{compile_subgraph, SubgraphPlan};

/// The framework front-end.
///
/// # Examples
///
/// ```
/// use epgs::{Framework, FrameworkConfig};
/// use epgs_graph::generators;
///
/// # fn main() -> Result<(), epgs::FrameworkError> {
/// let fw = Framework::new(FrameworkConfig::default());
/// let compiled = fw.compile(&generators::lattice(3, 3))?;
/// assert!(compiled.metrics.duration > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Framework {
    config: FrameworkConfig,
}

/// Everything the framework produces for one target graph state.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The verified generation circuit for the *original* target.
    pub circuit: Circuit,
    /// Evaluation metrics of `circuit`.
    pub metrics: CircuitMetrics,
    /// The partition (with LC sequence) that was used.
    pub partition: Partition,
    /// Per-subgraph compilation plans, aligned with `partition.blocks()`.
    pub plans: Vec<SubgraphPlan>,
    /// The Tetris schedule of the subgraph circuits.
    pub schedule: Schedule,
    /// The interleaved global emission ordering (transformed-graph vertices).
    pub global_ordering: Vec<usize>,
    /// Emitter budget Ne_limit that was resolved for this target.
    pub ne_limit: usize,
    /// Minimal emitter count Ne_min of the target (best known ordering).
    pub ne_min: usize,
}

impl Framework {
    /// Creates a framework with the given configuration.
    pub fn new(config: FrameworkConfig) -> Self {
        Framework { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// Minimal emitter count of `g` over the deterministic ordering
    /// strategies — the paper's Ne_min reference point.
    pub fn ne_min(&self, g: &Graph) -> usize {
        [
            ordering::natural(g),
            ordering::bfs(g),
            ordering::degree_dfs(g),
        ]
        .iter()
        .map(|ord| height::min_emitters(g, ord))
        .min()
        .unwrap_or(0)
        .max(1)
    }

    /// Compiles `target` end to end.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::Solver`] if any solve fails, or
    /// [`FrameworkError::VerificationFailed`] if the final circuit does not
    /// regenerate `target` (an internal bug).
    pub fn compile(&self, target: &Graph) -> Result<Compiled, FrameworkError> {
        let cfg = &self.config;
        let ne_min = self.ne_min(target);
        let ne_limit = cfg.emitter_budget.resolve(ne_min);

        // 1. Partition with depth-limited LC.
        let mut partition = partition_with_lc(target, &cfg.partition);

        // 2. Compile every leaf subgraph, refining each with block-local LC
        // at *interior* vertices (no cut edges), where the subgraph-level
        // local complementation coincides with the global one. This is the
        // per-leaf half of the paper's LC optimization: fewer intra-block
        // edges → fewer emitter-emitter CNOTs.
        let blocks: Vec<Vec<usize>> = partition
            .blocks()
            .into_iter()
            .filter(|b| !b.is_empty())
            .collect();
        let mut plans: Vec<SubgraphPlan> = Vec::with_capacity(blocks.len());
        for (i, block) in blocks.iter().enumerate() {
            let compile = |graph: &Graph, seed_extra: u64| -> Result<SubgraphPlan, FrameworkError> {
                let (sub, vertices) = graph.induced_subgraph(block);
                compile_subgraph(
                    &sub,
                    &vertices,
                    &cfg.hardware,
                    cfg.orderings_per_subgraph,
                    cfg.flexible_slack,
                    cfg.seed.wrapping_add(i as u64).wrapping_add(seed_extra),
                )
                .map_err(FrameworkError::from)
            };
            let mut plan = compile(&partition.transformed, 0)?;
            if cfg.partition.lc_budget > partition.lc_sequence.len() {
                let in_block: std::collections::BTreeSet<usize> = block.iter().copied().collect();
                let interior: Vec<usize> = block
                    .iter()
                    .copied()
                    .filter(|&v| {
                        partition.transformed.degree(v) >= 2
                            && partition
                                .transformed
                                .neighbors(v)
                                .iter()
                                .all(|w| in_block.contains(w))
                    })
                    .collect();
                for &v in &interior {
                    if partition.lc_sequence.len() >= cfg.partition.lc_budget {
                        break;
                    }
                    let mut trial = partition.transformed.clone();
                    ops::local_complement(&mut trial, v).expect("vertex in range");
                    // Densifying LCs help a single leaf but hurt the global
                    // solve; only keep transforms that also shed edges.
                    if trial.edge_count() > partition.transformed.edge_count() {
                        continue;
                    }
                    if let Ok(candidate) = compile(&trial, 1 + v as u64) {
                        if candidate.variants[0].ee_cnots < plan.variants[0].ee_cnots {
                            partition.transformed = trial;
                            partition.lc_sequence.push(v);
                            plan = candidate;
                        }
                    }
                }
            }
            plans.push(plan);
        }
        partition.cut = partition.recompute_cut();

        // 3. Schedule under the emitter budget.
        let sched = schedule(&plans, ne_limit);

        // 4. Recombine: global solves over the transformed graph with the
        // scheduled interleaving and the full emitter pool. The affinity maps
        // each block onto the concrete emitters the schedule reserved for it,
        // so overlapping blocks use disjoint emitters (parallel in time)
        // while each block's internal work stays emitter-local. Three
        // candidates compete under the paper's lexicographic objective
        // (#ee-CNOT, then T_loss, then duration): the scheduled interleaving,
        // the schedule-ordered block-sequential variant (same blocks, no
        // interleaving friction), and a direct whole-graph solve — the
        // framework degenerates gracefully when partitioning does not pay.
        let global_ordering = sched.global_ordering(&plans);
        let needed = height::min_emitters(&partition.transformed, &global_ordering).max(1);
        let pool = ne_limit.max(needed);
        let affinity = build_affinity(&sched, &plans, pool, partition.transformed.vertex_count());

        let mut sequential: Vec<usize> = Vec::new();
        {
            let mut placements: Vec<&crate::schedule::Placement> =
                sched.placements.iter().collect();
            placements.sort_by(|a, b| {
                sched
                    .start_time(a, &plans)
                    .partial_cmp(&sched.start_time(b, &plans))
                    .expect("finite times")
            });
            for p in placements {
                let plan = &plans[p.block];
                for &local in &plan.variants[p.variant].solved.ordering {
                    sequential.push(plan.vertices[local]);
                }
            }
        }

        type Candidate<'a> = (
            &'a Graph,
            Vec<usize>,
            Option<epgs_solver::reverse::Affinity>,
            &'a [usize],
        );
        let candidates: Vec<Candidate> = vec![
            (
                &partition.transformed,
                global_ordering.clone(),
                Some(affinity.clone()),
                &partition.lc_sequence,
            ),
            (
                &partition.transformed,
                sequential,
                Some(affinity),
                &partition.lc_sequence,
            ),
            (target, ordering::degree_dfs(target), None, &[]),
            (target, ordering::natural(target), None, &[]),
            (target, ordering::bfs(target), None, &[]),
        ];
        let mut best: Option<(Circuit, CircuitMetrics)> = None;
        let mut last_err = None;
        for (graph, ord, aff, lc_seq) in candidates {
            // Each candidate sizes its own pool: the shared budget, raised to
            // that ordering's height-function demand.
            let candidate_pool = pool.max(height::min_emitters(graph, &ord).max(1));
            let opts = SolveOptions {
                emitters: Some(candidate_pool),
                max_pool_growth: 8,
                verify: false,
                affinity: aff,
                ..SolveOptions::default()
            };
            match solve_with_ordering(graph, &ord, &opts) {
                Ok(solved) => {
                    let mut circuit = solved.circuit;
                    // Undo the LC sequence with single-qubit photon gates so
                    // the circuit delivers |target⟩, not |transformed⟩.
                    append_lc_inverse(&mut circuit, target, lc_seq);
                    let metrics = circuit_metrics(&cfg.hardware, &circuit);
                    let better = match &best {
                        None => true,
                        Some((_, b)) => {
                            (metrics.ee_two_qubit_count, metrics.t_loss, metrics.duration)
                                < (b.ee_two_qubit_count, b.t_loss, b.duration)
                        }
                    };
                    if better {
                        best = Some((circuit, metrics));
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        let (mut circuit, _) = best.ok_or_else(|| {
            FrameworkError::from(last_err.expect("at least one candidate attempted"))
        })?;
        // Peephole cleanup: the reverse solver's rotation bookkeeping leaves
        // cancellable single-qubit pairs behind.
        epgs_circuit::optimize::cancel_inverse_pairs(&mut circuit);

        // 5. Verify.
        if cfg.verify {
            let ok = simulate::verify_circuit(&circuit, target)
                .map_err(|_| FrameworkError::VerificationFailed)?;
            if !ok {
                return Err(FrameworkError::VerificationFailed);
            }
        }

        let metrics = circuit_metrics(&cfg.hardware, &circuit);
        Ok(Compiled {
            circuit,
            metrics,
            partition,
            plans,
            schedule: sched,
            global_ordering,
            ne_limit,
            ne_min,
        })
    }

    /// Compiles with a specific emitter budget, overriding the configured
    /// one (used by the Ne_limit sweeps of the evaluation).
    ///
    /// # Errors
    ///
    /// See [`Framework::compile`].
    pub fn compile_with_budget(
        &self,
        target: &Graph,
        ne_limit: usize,
    ) -> Result<Compiled, FrameworkError> {
        let mut fw = self.clone();
        fw.config.emitter_budget = crate::config::EmitterBudget::Absolute(ne_limit);
        fw.compile(target)
    }
}

/// Assigns concrete emitters to each scheduled block: blocks are processed
/// by start time and greedily take the emitters that free up earliest, so
/// time-overlapping blocks end up on disjoint sets whenever the budget
/// allows (mirroring the schedule's usage packing).
fn build_affinity(
    sched: &Schedule,
    plans: &[SubgraphPlan],
    pool: usize,
    photons: usize,
) -> epgs_solver::reverse::Affinity {
    let mut photon_group = vec![0usize; photons];
    for p in &sched.placements {
        for &global in &plans[p.block].vertices {
            photon_group[global] = p.block;
        }
    }
    // Sort placements by absolute start time.
    let mut order: Vec<&crate::schedule::Placement> = sched.placements.iter().collect();
    order.sort_by(|a, b| {
        sched
            .start_time(a, plans)
            .partial_cmp(&sched.start_time(b, plans))
            .expect("finite times")
    });
    let mut busy_until = vec![f64::NEG_INFINITY; pool];
    let mut group_emitters = vec![Vec::new(); plans.len()];
    for p in order {
        let start = sched.start_time(p, plans);
        let end = start + plans[p.block].variants[p.variant].duration;
        let demand = plans[p.block].variants[p.variant]
            .emitters
            .min(pool)
            .max(1);
        // Emitters free at `start` first, then the earliest to free up.
        let mut candidates: Vec<usize> = (0..pool).collect();
        candidates.sort_by(|&a, &b| {
            busy_until[a]
                .partial_cmp(&busy_until[b])
                .expect("finite times")
                .then(a.cmp(&b))
        });
        let chosen: Vec<usize> = candidates.into_iter().take(demand).collect();
        for &e in &chosen {
            busy_until[e] = busy_until[e].max(end);
        }
        group_emitters[p.block] = chosen;
    }
    epgs_solver::reverse::Affinity {
        photon_group,
        group_emitters,
    }
}

/// Appends the inverse of the LC unitary sequence to `circuit`.
///
/// The LC unitary at `v` on graph `H` is `(H·S†·H)_v ⊗ Π_{w∈N_H(v)} S_w`
/// (see the stabilizer crate's property tests); with |G_k⟩ = U_k … U_1
/// |G_0⟩, the circuit generating |G_k⟩ is extended by U_k† … U_1† applied in
/// that order. All gates are single-qubit photon gates, the "only cost" the
/// paper attributes to LC optimization.
fn append_lc_inverse(circuit: &mut Circuit, original: &Graph, lc_sequence: &[usize]) {
    if lc_sequence.is_empty() {
        return;
    }
    // Rebuild the intermediate graphs G_0 … G_{k-1}.
    let mut graphs = Vec::with_capacity(lc_sequence.len());
    let mut cur = original.clone();
    for &v in lc_sequence {
        graphs.push(cur.clone());
        ops::local_complement(&mut cur, v).expect("vertex in range");
    }
    // Append U_i† for i = k … 1; U† = (H·S·H) on v and S† on N_{G_{i-1}}(v).
    for (i, &v) in lc_sequence.iter().enumerate().rev() {
        let before = &graphs[i];
        circuit.push(Op::H(Qubit::Photon(v)));
        circuit.push(Op::S(Qubit::Photon(v)));
        circuit.push(Op::H(Qubit::Photon(v)));
        for &w in before.neighbors(v) {
            circuit.push(Op::Sdg(Qubit::Photon(w)));
        }
    }
}

/// Convenience: compile `target` with the default configuration.
///
/// # Errors
///
/// See [`Framework::compile`].
pub fn compile(target: &Graph) -> Result<Compiled, FrameworkError> {
    Framework::default().compile(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    fn quick_config() -> FrameworkConfig {
        FrameworkConfig {
            partition: epgs_partition::PartitionSpec {
                g_max: 5,
                lc_budget: 3,
                effort: 4,
                seed: 1,
            },
            orderings_per_subgraph: 4,
            flexible_slack: 1,
            ..FrameworkConfig::default()
        }
    }

    #[test]
    fn compiles_and_verifies_lattice() {
        let fw = Framework::new(quick_config());
        let g = generators::lattice(3, 3);
        let c = fw.compile(&g).expect("lattice compiles");
        assert_eq!(c.circuit.emission_count(), 9);
        assert!(c.metrics.duration > 0.0);
        assert!(c.ne_limit >= c.ne_min);
    }

    #[test]
    fn compiles_and_verifies_tree() {
        let fw = Framework::new(quick_config());
        let g = generators::tree(10, 2);
        let c = fw.compile(&g).expect("tree compiles");
        assert_eq!(c.global_ordering.len(), 10);
    }

    #[test]
    fn compiles_waxman() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let g = generators::waxman(12, 0.5, 0.2, &mut rng);
        let fw = Framework::new(quick_config());
        let c = fw.compile(&g).expect("waxman compiles");
        assert!(c.metrics.emissions == 12);
    }

    #[test]
    fn lc_inverse_roundtrip_via_verification() {
        // A complete graph forces the partitioner to use LC; verification
        // inside compile() then proves append_lc_inverse is correct.
        let fw = Framework::new(FrameworkConfig {
            partition: epgs_partition::PartitionSpec {
                g_max: 3,
                lc_budget: 5,
                effort: 6,
                seed: 2,
            },
            ..quick_config()
        });
        let g = generators::complete(6);
        let c = fw.compile(&g).expect("K6 compiles");
        assert!(
            !c.partition.lc_sequence.is_empty(),
            "K6 partition should use LC"
        );
    }

    #[test]
    fn budget_override_changes_pool() {
        let fw = Framework::new(quick_config());
        let g = generators::lattice(3, 4);
        let a = fw.compile_with_budget(&g, 3).unwrap();
        let b = fw.compile_with_budget(&g, 6).unwrap();
        assert_eq!(a.ne_limit, 3);
        assert_eq!(b.ne_limit, 6);
        // More emitters must not hurt the makespan estimate.
        assert!(b.schedule.makespan <= a.schedule.makespan + 1e-9);
    }

    #[test]
    fn single_block_graph_skips_stem() {
        // Fits one block: no cut, no LC required.
        let fw = Framework::new(quick_config());
        let g = generators::path(5);
        let c = fw.compile(&g).unwrap();
        assert_eq!(c.partition.cut, 0);
        assert_eq!(c.metrics.ee_two_qubit_count, 0, "path in one block");
    }

    #[test]
    fn default_compile_helper() {
        let c = compile(&generators::path(4)).unwrap();
        assert_eq!(c.circuit.emission_count(), 4);
    }
}
