//! The monolithic front-end over the staged pipeline (paper Fig. 6).
//!
//! `partition → compile each leaf → schedule → recombine → verify`: the
//! stages live in [`crate::stages`] as explicit artifacts; [`Framework`] is
//! the one-shot wrapper that runs them end to end. Use [`crate::Pipeline`]
//! directly when intermediate artifacts are worth keeping (budget sweeps,
//! schedule inspection, recombination experiments) — both produce identical
//! circuits for identical inputs.

use epgs_circuit::{Circuit, CircuitMetrics};
use epgs_graph::Graph;
use epgs_hardware::{CompileObjective, LossReport};
use epgs_partition::Partition;

use crate::config::FrameworkConfig;
use crate::error::FrameworkError;
use crate::schedule::Schedule;
use crate::stages::{ne_min_of, Pipeline, RecombineStrategy};
use crate::subgraph::SubgraphPlan;

/// The framework front-end.
///
/// # Examples
///
/// ```
/// use epgs::{Framework, FrameworkConfig};
/// use epgs_graph::generators;
///
/// # fn main() -> Result<(), epgs::FrameworkError> {
/// let fw = Framework::new(FrameworkConfig::default());
/// let compiled = fw.compile(&generators::lattice(3, 3))?;
/// assert!(compiled.metrics.duration > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Framework {
    config: FrameworkConfig,
}

/// Everything the framework produces for one target graph state.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The verified generation circuit for the *original* target.
    pub circuit: Circuit,
    /// Evaluation metrics of `circuit`.
    pub metrics: CircuitMetrics,
    /// The partition (with LC sequence) that was used.
    pub partition: Partition,
    /// Per-subgraph compilation plans, aligned with `partition.blocks()`.
    pub plans: Vec<SubgraphPlan>,
    /// The Tetris schedule of the subgraph circuits.
    pub schedule: Schedule,
    /// The interleaved global emission ordering (transformed-graph vertices).
    pub global_ordering: Vec<usize>,
    /// Emitter budget Ne_limit that was resolved for this target.
    pub ne_limit: usize,
    /// Minimal emitter count Ne_min of the target (best known ordering).
    pub ne_min: usize,
    /// The recombination strategy whose candidate won.
    pub strategy: RecombineStrategy,
    /// The objective candidate circuits competed under.
    pub objective: CompileObjective,
}

impl Compiled {
    /// Per-photon and aggregate loss figures of the chosen circuit under
    /// the configured hardware model (shorthand for `metrics.loss`).
    pub fn loss_report(&self) -> &LossReport {
        &self.metrics.loss
    }
}

impl Framework {
    /// Creates a framework with the given configuration.
    pub fn new(config: FrameworkConfig) -> Self {
        Framework { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// A staged [`Pipeline`] over this framework's configuration.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(self.config.clone())
    }

    /// Minimal emitter count of `g` over the deterministic ordering
    /// strategies — the paper's Ne_min reference point.
    pub fn ne_min(&self, g: &Graph) -> usize {
        ne_min_of(g)
    }

    /// Compiles `target` end to end: a thin wrapper over
    /// [`Pipeline::compile`] producing identical output.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::Solver`] if any solve fails, or
    /// [`FrameworkError::VerificationFailed`] if the final circuit does not
    /// regenerate `target` (an internal bug).
    pub fn compile(&self, target: &Graph) -> Result<Compiled, FrameworkError> {
        self.pipeline().compile(target)
    }

    /// Compiles with a specific emitter budget, overriding the configured
    /// one (used by the Ne_limit sweeps of the evaluation).
    ///
    /// For a multi-point sweep prefer [`Framework::sweep`] (or a hand-held
    /// [`Pipeline`]), which runs partition and leaf compilation once.
    ///
    /// # Errors
    ///
    /// See [`Framework::compile`].
    pub fn compile_with_budget(
        &self,
        target: &Graph,
        ne_limit: usize,
    ) -> Result<Compiled, FrameworkError> {
        self.pipeline()
            .partition(target)
            .plan_leaves()?
            .schedule(ne_limit)
            .recombine()?
            .verify()
    }

    /// Compiles `target` once per budget, sharing one partition + leaf
    /// compilation across all points (the §V.B.2 sweep fast path).
    ///
    /// # Errors
    ///
    /// See [`Framework::compile`].
    pub fn sweep(
        &self,
        target: &Graph,
        budgets: &[usize],
    ) -> Result<Vec<Compiled>, FrameworkError> {
        self.pipeline().sweep(target, budgets)
    }
}

/// Convenience: compile `target` with the default configuration.
///
/// # Errors
///
/// See [`Framework::compile`].
pub fn compile(target: &Graph) -> Result<Compiled, FrameworkError> {
    Framework::default().compile(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;

    fn quick_config() -> FrameworkConfig {
        FrameworkConfig {
            partition: epgs_partition::PartitionSpec {
                g_max: 5,
                lc_budget: 3,
                effort: 4,
                seed: 1,
                ..Default::default()
            },
            orderings_per_subgraph: 4,
            flexible_slack: 1,
            ..FrameworkConfig::default()
        }
    }

    #[test]
    fn compiles_and_verifies_lattice() {
        let fw = Framework::new(quick_config());
        let g = generators::lattice(3, 3);
        let c = fw.compile(&g).expect("lattice compiles");
        assert_eq!(c.circuit.emission_count(), 9);
        assert!(c.metrics.duration > 0.0);
        assert!(c.ne_limit >= c.ne_min);
    }

    #[test]
    fn compiles_and_verifies_tree() {
        let fw = Framework::new(quick_config());
        let g = generators::tree(10, 2);
        let c = fw.compile(&g).expect("tree compiles");
        assert_eq!(c.global_ordering.len(), 10);
    }

    #[test]
    fn compiles_waxman() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let g = generators::waxman(12, 0.5, 0.2, &mut rng);
        let fw = Framework::new(quick_config());
        let c = fw.compile(&g).expect("waxman compiles");
        assert!(c.metrics.emissions == 12);
    }

    #[test]
    fn lc_inverse_roundtrip_via_verification() {
        // A complete graph forces the partitioner to use LC; verification
        // inside compile() then proves append_lc_inverse is correct.
        let fw = Framework::new(FrameworkConfig {
            partition: epgs_partition::PartitionSpec {
                g_max: 3,
                lc_budget: 5,
                effort: 6,
                seed: 2,
                ..Default::default()
            },
            ..quick_config()
        });
        let g = generators::complete(6);
        let c = fw.compile(&g).expect("K6 compiles");
        assert!(
            !c.partition.lc_sequence.is_empty(),
            "K6 partition should use LC"
        );
    }

    #[test]
    fn budget_override_changes_pool() {
        let fw = Framework::new(quick_config());
        let g = generators::lattice(3, 4);
        let a = fw.compile_with_budget(&g, 3).unwrap();
        let b = fw.compile_with_budget(&g, 6).unwrap();
        assert_eq!(a.ne_limit, 3);
        assert_eq!(b.ne_limit, 6);
        // More emitters must not hurt the makespan estimate.
        assert!(b.schedule.makespan <= a.schedule.makespan + 1e-9);
    }

    #[test]
    fn sweep_equals_pointwise_budget_compiles() {
        let fw = Framework::new(quick_config());
        let g = generators::lattice(3, 4);
        let swept = fw.sweep(&g, &[3, 6]).unwrap();
        for (compiled, budget) in swept.iter().zip([3usize, 6]) {
            let pointwise = fw.compile_with_budget(&g, budget).unwrap();
            assert_eq!(compiled.circuit, pointwise.circuit, "budget {budget}");
            assert_eq!(compiled.ne_limit, pointwise.ne_limit);
        }
    }

    #[test]
    fn single_block_graph_skips_stem() {
        // Fits one block: no cut, no LC required.
        let fw = Framework::new(quick_config());
        let g = generators::path(5);
        let c = fw.compile(&g).unwrap();
        assert_eq!(c.partition.cut, 0);
        assert_eq!(c.metrics.ee_two_qubit_count, 0, "path in one block");
    }

    #[test]
    fn default_compile_helper() {
        let c = compile(&generators::path(4)).unwrap();
        assert_eq!(c.circuit.emission_count(), 4);
    }
}
