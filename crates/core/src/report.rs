//! Human-readable compilation reports.

use crate::framework::Compiled;

/// Renders a one-target report: partition, schedule, and circuit metrics.
///
/// # Examples
///
/// ```
/// use epgs::{compile, report};
/// use epgs_graph::generators;
///
/// # fn main() -> Result<(), epgs::FrameworkError> {
/// let compiled = compile(&generators::path(4))?;
/// let text = report::render(&compiled);
/// assert!(text.contains("ee-CNOTs"));
/// # Ok(())
/// # }
/// ```
pub fn render(c: &Compiled) -> String {
    let mut out = String::new();
    out.push_str("=== epgs compilation report ===\n");
    out.push_str(&format!(
        "photons: {}   Ne_min: {}   Ne_limit: {}\n",
        c.circuit.num_photons(),
        c.ne_min,
        c.ne_limit
    ));
    out.push_str(&format!(
        "partition: {} blocks, cut {} edges, {} LC ops\n",
        c.plans.len(),
        c.partition.cut,
        c.partition.lc_sequence.len()
    ));
    for (i, plan) in c.plans.iter().enumerate() {
        let v = &plan.variants[0];
        out.push_str(&format!(
            "  block {i}: {} photons, {} emitters, {} ee-CNOTs, {:.2} τ\n",
            plan.photon_count(),
            v.emitters,
            v.ee_cnots,
            v.duration
        ));
    }
    out.push_str(&format!(
        "schedule: makespan estimate {:.2} τ under {} emitters\n",
        c.schedule.makespan, c.schedule.ne_limit
    ));
    out.push_str(&format!(
        "recombination: {:?} won under the {} objective\n",
        c.strategy,
        c.objective.kind_name()
    ));
    out.push_str(&format!(
        "final circuit: {} ee-CNOTs, {:.2} τ duration, T_loss {:.2} τ, \
         {} measurements, {} single-qubit gates\n",
        c.metrics.ee_two_qubit_count,
        c.metrics.duration,
        c.metrics.t_loss,
        c.metrics.measurements,
        c.metrics.single_qubit_gates
    ));
    out.push_str(&format!(
        "photon loss: mean {:.4}, any-photon {:.4}\n",
        c.metrics.loss.mean_photon_loss, c.metrics.loss.any_photon_loss
    ));
    out
}

#[cfg(test)]
mod tests {
    use crate::framework::compile;
    use epgs_graph::generators;

    #[test]
    fn report_contains_key_lines() {
        let c = compile(&generators::lattice(2, 3)).unwrap();
        let text = super::render(&c);
        assert!(text.contains("partition:"));
        assert!(text.contains("schedule:"));
        assert!(text.contains("recombination:"));
        assert!(text.contains("final circuit:"));
        assert!(text.contains("photon loss:"));
    }
}
