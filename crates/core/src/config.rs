//! Framework configuration and its builder.

use epgs_hardware::{CompileObjective, HardwareModel};
use epgs_partition::{PartitionScheme, PartitionSpec};

use crate::stages::RecombineStrategy;

/// How many emitters the hardware offers the scheduler (paper §V.B.2 uses
/// `1.5 × Ne_min` and `2 × Ne_min`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmitterBudget {
    /// A multiple of the target graph's minimal emitter count.
    Factor(f64),
    /// An absolute emitter count.
    Absolute(usize),
}

impl EmitterBudget {
    /// Resolves the budget against a minimal emitter count.
    pub fn resolve(self, ne_min: usize) -> usize {
        match self {
            EmitterBudget::Factor(f) => ((ne_min as f64 * f).ceil() as usize).max(1),
            EmitterBudget::Absolute(n) => n.max(1),
        }
    }
}

/// Complete configuration of the compilation framework.
///
/// Construct via [`FrameworkConfig::builder`] (or struct update off
/// [`FrameworkConfig::default`]):
///
/// ```
/// use epgs::{EmitterBudget, FrameworkConfig, RecombineStrategy};
///
/// let config = FrameworkConfig::builder()
///     .g_max(7)
///     .lc_budget(15)
///     .emitter_budget(EmitterBudget::Factor(1.5))
///     .flexible_slack(2)
///     .recombine(RecombineStrategy::all())
///     .build();
/// assert_eq!(config.partition.g_max, 7);
/// ```
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// Partitioning parameters (g_max, LC budget l, search effort).
    pub partition: PartitionSpec,
    /// Hardware timing/loss model used for scheduling and reported metrics.
    pub hardware: HardwareModel,
    /// What candidate circuits compete on — leaf-variant selection and
    /// recombination both minimize this. Objectives that name a
    /// [`HardwareModel`] score candidates under *that* platform;
    /// [`CompileObjective::Emitters`] (the default) scores under
    /// [`FrameworkConfig::hardware`] and reproduces the paper's
    /// lexicographic (#ee-CNOT, `T_loss`, duration) order exactly.
    pub objective: CompileObjective,
    /// Emitter budget Ne_limit.
    pub emitter_budget: EmitterBudget,
    /// Candidate emission orderings explored per subgraph.
    pub orderings_per_subgraph: usize,
    /// Flexible-resource slack: each subgraph is also compiled with
    /// `ne_min + 1 … ne_min + slack` emitters (paper §IV.B uses 2).
    pub flexible_slack: usize,
    /// Recombination strategies competing for the global circuit, tried in
    /// order (see [`RecombineStrategy`]).
    pub recombine: Vec<RecombineStrategy>,
    /// Verify the final circuit against the target (strongly recommended).
    pub verify: bool,
    /// Seed for the randomized phases.
    pub seed: u64,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            partition: PartitionSpec::default(),
            hardware: HardwareModel::quantum_dot(),
            objective: CompileObjective::Emitters,
            emitter_budget: EmitterBudget::Factor(1.5),
            orderings_per_subgraph: 8,
            flexible_slack: 2,
            recombine: RecombineStrategy::all(),
            verify: true,
            seed: 0xec05,
        }
    }
}

impl FrameworkConfig {
    /// Starts a builder from the paper-default configuration.
    pub fn builder() -> FrameworkConfigBuilder {
        FrameworkConfigBuilder {
            config: FrameworkConfig::default(),
        }
    }

    /// Targets a platform end to end: sets [`FrameworkConfig::hardware`]
    /// *and* re-targets any hardware-carrying objective at the same
    /// preset, so scoring and reporting agree. The single owner of that
    /// consistency invariant — prefer it over assigning the two fields
    /// separately ([`FrameworkConfigBuilder::platform`] and the bench
    /// drivers all route through here).
    pub fn set_platform(&mut self, hardware: HardwareModel) {
        self.objective = std::mem::take(&mut self.objective).with_hardware(hardware.clone());
        self.hardware = hardware;
    }
}

/// Fluent builder for [`FrameworkConfig`]; every knob defaults to the
/// paper's setting.
#[derive(Debug, Clone)]
pub struct FrameworkConfigBuilder {
    config: FrameworkConfig,
}

impl FrameworkConfigBuilder {
    /// Maximum vertices per subgraph (paper default 7).
    pub fn g_max(mut self, g_max: usize) -> Self {
        self.config.partition.g_max = g_max;
        self
    }

    /// Local-complementation budget `l` (paper default 15; 0 disables LC).
    pub fn lc_budget(mut self, lc_budget: usize) -> Self {
        self.config.partition.lc_budget = lc_budget;
        self
    }

    /// Restart/iteration scale of the partition search.
    pub fn partition_effort(mut self, effort: usize) -> Self {
        self.config.partition.effort = effort;
        self
    }

    /// Partitioning engine: [`PartitionScheme::Flat`] reproduces the
    /// historical flat FM pipeline byte for byte;
    /// [`PartitionScheme::Multilevel`] (the default) coarsens large graphs
    /// before partitioning and is ~10–50× faster above ~50 vertices.
    pub fn partition_scheme(mut self, scheme: PartitionScheme) -> Self {
        self.config.partition.scheme = scheme;
        self
    }

    /// Replaces the whole partition spec at once.
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        self.config.partition = spec;
        self
    }

    /// Hardware timing/loss model.
    pub fn hardware(mut self, hardware: HardwareModel) -> Self {
        self.config.hardware = hardware;
        self
    }

    /// Compilation objective (see [`FrameworkConfig::objective`]).
    pub fn objective(mut self, objective: CompileObjective) -> Self {
        self.config.objective = objective;
        self
    }

    /// Targets a platform end to end: sets [`FrameworkConfig::hardware`]
    /// *and* re-targets any hardware-carrying objective at the same
    /// preset, so scoring and reporting agree.
    ///
    /// ```
    /// use epgs::{CompileObjective, FrameworkConfig};
    /// use epgs_hardware::HardwareModel;
    ///
    /// let config = FrameworkConfig::builder()
    ///     .objective(CompileObjective::Duration(HardwareModel::quantum_dot()))
    ///     .platform(HardwareModel::rydberg())
    ///     .build();
    /// assert_eq!(config.hardware.name, "Rydberg superatom");
    /// assert_eq!(config.objective.hardware().unwrap().name, "Rydberg superatom");
    /// ```
    pub fn platform(mut self, hardware: HardwareModel) -> Self {
        self.config.set_platform(hardware);
        self
    }

    /// Emitter budget `Ne_limit` (factor of `Ne_min` or absolute).
    pub fn emitter_budget(mut self, budget: EmitterBudget) -> Self {
        self.config.emitter_budget = budget;
        self
    }

    /// Candidate emission orderings explored per subgraph.
    pub fn orderings_per_subgraph(mut self, n: usize) -> Self {
        self.config.orderings_per_subgraph = n;
        self
    }

    /// Flexible-resource slack (paper §IV.B uses 2).
    pub fn flexible_slack(mut self, slack: usize) -> Self {
        self.config.flexible_slack = slack;
        self
    }

    /// Recombination strategies, tried in the given order.
    pub fn recombine(mut self, strategies: Vec<RecombineStrategy>) -> Self {
        self.config.recombine = strategies;
        self
    }

    /// Toggles final stabilizer verification.
    pub fn verify(mut self, verify: bool) -> Self {
        self.config.verify = verify;
        self
    }

    /// Seed for the randomized phases.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> FrameworkConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_resolution() {
        assert_eq!(EmitterBudget::Factor(1.5).resolve(4), 6);
        assert_eq!(EmitterBudget::Factor(2.0).resolve(3), 6);
        assert_eq!(EmitterBudget::Factor(1.5).resolve(1), 2);
        assert_eq!(EmitterBudget::Absolute(5).resolve(100), 5);
        assert_eq!(EmitterBudget::Absolute(0).resolve(3), 1, "clamped to 1");
        assert_eq!(EmitterBudget::Factor(0.1).resolve(2), 1);
    }

    #[test]
    fn default_matches_paper() {
        let c = FrameworkConfig::default();
        assert_eq!(c.partition.g_max, 7);
        assert_eq!(c.partition.lc_budget, 15);
        assert_eq!(c.flexible_slack, 2);
        assert_eq!(c.recombine, RecombineStrategy::all());
        assert_eq!(c.objective, CompileObjective::Emitters);
    }

    #[test]
    fn builder_defaults_equal_default_config() {
        let built = FrameworkConfig::builder().build();
        let default = FrameworkConfig::default();
        assert_eq!(built.partition, default.partition);
        assert_eq!(built.emitter_budget, default.emitter_budget);
        assert_eq!(built.orderings_per_subgraph, default.orderings_per_subgraph);
        assert_eq!(built.flexible_slack, default.flexible_slack);
        assert_eq!(built.recombine, default.recombine);
        assert_eq!(built.verify, default.verify);
        assert_eq!(built.seed, default.seed);
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = FrameworkConfig::builder()
            .g_max(4)
            .lc_budget(2)
            .partition_effort(9)
            .partition_scheme(PartitionScheme::Flat)
            .emitter_budget(EmitterBudget::Absolute(3))
            .orderings_per_subgraph(5)
            .flexible_slack(0)
            .recombine(vec![RecombineStrategy::DirectSolve])
            .objective(CompileObjective::Duration(HardwareModel::rydberg()))
            .verify(false)
            .seed(99)
            .build();
        assert_eq!(
            c.objective,
            CompileObjective::Duration(HardwareModel::rydberg())
        );
        assert_eq!(c.partition.g_max, 4);
        assert_eq!(c.partition.lc_budget, 2);
        assert_eq!(c.partition.effort, 9);
        assert_eq!(c.partition.scheme, PartitionScheme::Flat);
        assert_eq!(c.emitter_budget, EmitterBudget::Absolute(3));
        assert_eq!(c.orderings_per_subgraph, 5);
        assert_eq!(c.flexible_slack, 0);
        assert_eq!(c.recombine, vec![RecombineStrategy::DirectSolve]);
        assert!(!c.verify);
        assert_eq!(c.seed, 99);
    }
}
