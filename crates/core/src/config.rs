//! Framework configuration.

use epgs_hardware::HardwareModel;
use epgs_partition::PartitionSpec;

/// How many emitters the hardware offers the scheduler (paper §V.B.2 uses
/// `1.5 × Ne_min` and `2 × Ne_min`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmitterBudget {
    /// A multiple of the target graph's minimal emitter count.
    Factor(f64),
    /// An absolute emitter count.
    Absolute(usize),
}

impl EmitterBudget {
    /// Resolves the budget against a minimal emitter count.
    pub fn resolve(self, ne_min: usize) -> usize {
        match self {
            EmitterBudget::Factor(f) => ((ne_min as f64 * f).ceil() as usize).max(1),
            EmitterBudget::Absolute(n) => n.max(1),
        }
    }
}

/// Complete configuration of the compilation framework.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// Partitioning parameters (g_max, LC budget l, search effort).
    pub partition: PartitionSpec,
    /// Hardware timing/loss model.
    pub hardware: HardwareModel,
    /// Emitter budget Ne_limit.
    pub emitter_budget: EmitterBudget,
    /// Candidate emission orderings explored per subgraph.
    pub orderings_per_subgraph: usize,
    /// Flexible-resource slack: each subgraph is also compiled with
    /// `ne_min + 1 … ne_min + slack` emitters (paper §IV.B uses 2).
    pub flexible_slack: usize,
    /// Verify the final circuit against the target (strongly recommended).
    pub verify: bool,
    /// Seed for the randomized phases.
    pub seed: u64,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            partition: PartitionSpec::default(),
            hardware: HardwareModel::quantum_dot(),
            emitter_budget: EmitterBudget::Factor(1.5),
            orderings_per_subgraph: 8,
            flexible_slack: 2,
            verify: true,
            seed: 0xec05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_resolution() {
        assert_eq!(EmitterBudget::Factor(1.5).resolve(4), 6);
        assert_eq!(EmitterBudget::Factor(2.0).resolve(3), 6);
        assert_eq!(EmitterBudget::Factor(1.5).resolve(1), 2);
        assert_eq!(EmitterBudget::Absolute(5).resolve(100), 5);
        assert_eq!(EmitterBudget::Absolute(0).resolve(3), 1, "clamped to 1");
        assert_eq!(EmitterBudget::Factor(0.1).resolve(2), 1);
    }

    #[test]
    fn default_matches_paper() {
        let c = FrameworkConfig::default();
        assert_eq!(c.partition.g_max, 7);
        assert_eq!(c.partition.lc_budget, 15);
        assert_eq!(c.flexible_slack, 2);
    }
}
