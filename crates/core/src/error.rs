//! Error types of the compilation framework.

use epgs_solver::SolverError;

/// Errors raised by the end-to-end framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameworkError {
    /// A subgraph or the global assembly failed to solve.
    Solver(SolverError),
    /// The assembled circuit failed final verification against the target —
    /// an internal bug by definition.
    VerificationFailed,
    /// Recombination was invoked with an empty strategy list (see
    /// [`crate::Scheduled::recombine_with`]).
    NoRecombineStrategy,
    /// The request's compile deadline passed between pipeline stages (see
    /// [`crate::RequestCtx`]); the compile was cancelled cooperatively.
    DeadlineExceeded,
}

impl std::fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameworkError::Solver(e) => write!(f, "solver failure: {e}"),
            FrameworkError::VerificationFailed => {
                write!(
                    f,
                    "assembled circuit failed verification against the target"
                )
            }
            FrameworkError::NoRecombineStrategy => {
                write!(f, "recombination requires at least one strategy")
            }
            FrameworkError::DeadlineExceeded => write!(f, "compile deadline exceeded"),
        }
    }
}

impl std::error::Error for FrameworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameworkError::Solver(e) => Some(e),
            FrameworkError::VerificationFailed
            | FrameworkError::NoRecombineStrategy
            | FrameworkError::DeadlineExceeded => None,
        }
    }
}

impl From<SolverError> for FrameworkError {
    fn from(e: SolverError) -> Self {
        FrameworkError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = FrameworkError::Solver(SolverError::VerificationFailed);
        assert!(e.to_string().contains("solver failure"));
        assert!(e.source().is_some());
        assert!(FrameworkError::VerificationFailed.source().is_none());
    }
}
