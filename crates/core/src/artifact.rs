//! Versioned serialization of [`Planned`] artifacts — the wire/disk format
//! behind the on-disk [`ArtifactStore`](crate::store::ArtifactStore).
//!
//! An artifact document is a JSON envelope around a payload object:
//!
//! ```text
//! {"format":"epgs-planned","version":1,
//!  "canonical":"<16-hex>","config":"<16-hex>","checksum":"<16-hex>",
//!  "payload":{target, ne_min, partition, plans}}
//! ```
//!
//! The payload carries everything [`Planned`] owns: the exact target graph
//! (so readers can confirm content-addressed lookups against the *exact*
//! labeling, exactly like the in-memory cache), the refined partition, and
//! every per-leaf plan including compiled circuits. Round-trips are
//! **bit-identical**: `f64` fields travel as 16-digit hex renderings of
//! their IEEE bit patterns, never as decimal JSON numbers, so a decoded
//! artifact schedules/recombines to byte-identical circuits.
//!
//! The checksum is FNV-1a over the serialized payload bytes. A flipped bit
//! inside the payload either breaks the JSON grammar (parse error) or
//! changes the re-serialized bytes (checksum mismatch); both are reported
//! as [`ArtifactError`] and degrade to a recompile at the store layer,
//! mirroring the in-memory corruption guard.

use std::fmt;
use std::sync::Arc;

use epgs_circuit::{Circuit, Op, Qubit};
use epgs_corpus::json::{JsonError, Value, Writer};
use epgs_graph::canon::fnv1a_all;
use epgs_graph::Graph;
use epgs_partition::Partition;
use epgs_stabilizer::Pauli;

use crate::batch::CacheKey;
use crate::stages::planned::PlannedData;
use crate::stages::{Pipeline, Planned};
use crate::subgraph::{SubgraphPlan, SubgraphVariant};

/// Format tag every artifact document carries.
pub const FORMAT: &str = "epgs-planned";

/// Current artifact schema version. Readers reject any other version —
/// artifacts are cache entries, so "reject and recompile" is always sound.
pub const VERSION: u64 = 1;

/// Why an artifact document could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document parses but does not follow the artifact schema.
    Malformed(String),
    /// The document's schema version is not [`VERSION`].
    VersionMismatch {
        /// Version found in the document (`None` when absent/non-integer).
        found: Option<u64>,
    },
    /// The payload bytes do not match the recorded checksum.
    ChecksumMismatch,
    /// The envelope's cache key does not match the requested one.
    KeyMismatch,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "artifact is not valid JSON: {e}"),
            ArtifactError::Malformed(what) => write!(f, "malformed artifact: {what}"),
            ArtifactError::VersionMismatch { found: Some(v) } => {
                write!(f, "artifact version {v} != supported {VERSION}")
            }
            ArtifactError::VersionMismatch { found: None } => {
                write!(f, "artifact has no readable version")
            }
            ArtifactError::ChecksumMismatch => write!(f, "artifact checksum mismatch"),
            ArtifactError::KeyMismatch => write!(f, "artifact stored under a different key"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

/// FNV-1a over a byte string (the payload checksum; shared with the
/// store's manifest envelope).
pub(crate) fn checksum_bytes(bytes: &[u8]) -> u64 {
    fnv1a_all(bytes.iter().map(|&b| u64::from(b)))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn write_graph(w: &mut Writer, g: &Graph) {
    w.begin_obj();
    w.field_uint("n", g.vertex_count() as u64);
    w.key("edges");
    w.begin_arr();
    for (a, b) in g.edges() {
        w.begin_arr();
        w.uint(a as u64);
        w.uint(b as u64);
        w.end_arr();
    }
    w.end_arr();
    w.end_obj();
}

fn write_usize_arr(w: &mut Writer, key: &str, xs: &[usize]) {
    w.key(key);
    w.begin_arr();
    for &x in xs {
        w.uint(x as u64);
    }
    w.end_arr();
}

/// `f64`s travel as bit patterns so round-trips are exact by construction.
fn write_f64_bits_arr(w: &mut Writer, key: &str, xs: &[f64]) {
    w.key(key);
    w.begin_arr();
    for &x in xs {
        w.hex(x.to_bits());
    }
    w.end_arr();
}

fn qubit_tag(q: Qubit) -> String {
    match q {
        Qubit::Emitter(i) => format!("e{i}"),
        Qubit::Photon(i) => format!("p{i}"),
    }
}

fn write_op(w: &mut Writer, op: &Op) {
    w.begin_arr();
    match op {
        Op::H(q) | Op::S(q) | Op::Sdg(q) | Op::X(q) | Op::Y(q) | Op::Z(q) => {
            let tag = match op {
                Op::H(_) => "H",
                Op::S(_) => "S",
                Op::Sdg(_) => "SD",
                Op::X(_) => "X",
                Op::Y(_) => "Y",
                _ => "Z",
            };
            w.string(tag);
            w.string(&qubit_tag(*q));
        }
        Op::Cz(a, b) => {
            w.string("CZ");
            w.uint(*a as u64);
            w.uint(*b as u64);
        }
        Op::Cnot(a, b) => {
            w.string("CX");
            w.uint(*a as u64);
            w.uint(*b as u64);
        }
        Op::Emit { emitter, photon } => {
            w.string("EM");
            w.uint(*emitter as u64);
            w.uint(*photon as u64);
        }
        Op::MeasureZ {
            emitter,
            corrections,
        } => {
            w.string("MZ");
            w.uint(*emitter as u64);
            w.begin_arr();
            for (q, p) in corrections {
                w.begin_arr();
                w.string(&qubit_tag(*q));
                w.string(match p {
                    Pauli::I => "I",
                    Pauli::X => "X",
                    Pauli::Y => "Y",
                    Pauli::Z => "Z",
                });
                w.end_arr();
            }
            w.end_arr();
        }
    }
    w.end_arr();
}

fn write_circuit(w: &mut Writer, c: &Circuit) {
    w.begin_obj();
    w.field_uint("emitters", c.num_emitters() as u64);
    w.field_uint("photons", c.num_photons() as u64);
    w.key("ops");
    w.begin_arr();
    for op in c.ops() {
        write_op(w, op);
    }
    w.end_arr();
    w.end_obj();
}

fn write_variant(w: &mut Writer, v: &SubgraphVariant) {
    w.begin_obj();
    w.field_uint("emitters", v.emitters as u64);
    w.field_uint("solved_emitters", v.solved.emitters as u64);
    w.key("circuit");
    write_circuit(w, &v.solved.circuit);
    write_usize_arr(w, "ordering", &v.solved.ordering);
    w.field_hex("duration", v.duration.to_bits());
    w.field_uint("ee_cnots", v.ee_cnots as u64);
    w.field_hex("t_loss", v.t_loss.to_bits());
    write_f64_bits_arr(w, "emission_times", &v.emission_times);
    write_f64_bits_arr(w, "usage_times", &v.usage.0);
    write_usize_arr(w, "usage_counts", &v.usage.1);
    w.end_obj();
}

/// Renders the payload object (everything under the envelope's `payload`).
fn encode_payload(planned: &Planned) -> String {
    let mut w = Writer::with_capacity(4096);
    w.begin_obj();
    w.key("target");
    write_graph(&mut w, planned.target());
    w.field_uint("ne_min", planned.ne_min() as u64);
    w.key("partition");
    {
        let p = planned.partition();
        w.begin_obj();
        write_usize_arr(&mut w, "block_of", &p.block_of);
        write_usize_arr(&mut w, "lc_sequence", &p.lc_sequence);
        w.field_uint("cut", p.cut as u64);
        w.key("transformed");
        write_graph(&mut w, &p.transformed);
        w.end_obj();
    }
    w.key("plans");
    w.begin_arr();
    for plan in planned.plans() {
        w.begin_obj();
        write_usize_arr(&mut w, "vertices", &plan.vertices);
        w.key("variants");
        w.begin_arr();
        for v in &plan.variants {
            write_variant(&mut w, v);
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Serializes `planned` into a complete artifact document stored under
/// `key`.
pub fn encode(planned: &Planned, key: CacheKey) -> String {
    let payload = encode_payload(planned);
    let mut w = Writer::with_capacity(payload.len() + 160);
    w.begin_obj();
    w.field_str("format", FORMAT);
    w.field_uint("version", VERSION);
    w.field_hex("canonical", key.canonical);
    w.field_hex("config", key.config);
    w.field_hex("checksum", checksum_bytes(payload.as_bytes()));
    w.field_raw("payload", &payload);
    w.end_obj();
    w.finish()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn malformed(what: impl Into<String>) -> ArtifactError {
    ArtifactError::Malformed(what.into())
}

fn need_usize(v: &Value, what: &str) -> Result<usize, ArtifactError> {
    v.as_usize().ok_or_else(|| malformed(what.to_string()))
}

fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, ArtifactError> {
    obj.get(key)
        .ok_or_else(|| malformed(format!("missing field '{key}'")))
}

fn hex_u64(v: &Value, what: &str) -> Result<u64, ArtifactError> {
    let s = v.as_str().ok_or_else(|| malformed(what.to_string()))?;
    if s.len() != 16 {
        return Err(malformed(format!("{what}: expected 16 hex digits")));
    }
    u64::from_str_radix(s, 16).map_err(|_| malformed(format!("{what}: bad hex")))
}

fn hex_f64(v: &Value, what: &str) -> Result<f64, ArtifactError> {
    hex_u64(v, what).map(f64::from_bits)
}

fn usize_arr(v: &Value, what: &str) -> Result<Vec<usize>, ArtifactError> {
    v.as_arr()
        .ok_or_else(|| malformed(what.to_string()))?
        .iter()
        .map(|x| need_usize(x, what))
        .collect()
}

fn f64_bits_arr(v: &Value, what: &str) -> Result<Vec<f64>, ArtifactError> {
    v.as_arr()
        .ok_or_else(|| malformed(what.to_string()))?
        .iter()
        .map(|x| hex_f64(x, what))
        .collect()
}

fn decode_graph(v: &Value) -> Result<Graph, ArtifactError> {
    let n = need_usize(field(v, "n")?, "graph n")?;
    let edges = field(v, "edges")?
        .as_arr()
        .ok_or_else(|| malformed("graph edges"))?
        .iter()
        .map(|e| {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let pair = pair.ok_or_else(|| malformed("graph edge"))?;
            Ok((
                need_usize(&pair[0], "edge endpoint")?,
                need_usize(&pair[1], "edge endpoint")?,
            ))
        })
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    Graph::from_edges(n, edges).map_err(|e| malformed(format!("graph: {e}")))
}

fn decode_qubit(v: &Value) -> Result<Qubit, ArtifactError> {
    let s = v.as_str().ok_or_else(|| malformed("qubit"))?;
    let idx: usize = s
        .get(1..)
        .and_then(|i| i.parse().ok())
        .ok_or_else(|| malformed(format!("qubit '{s}'")))?;
    match s.as_bytes().first() {
        Some(b'e') => Ok(Qubit::Emitter(idx)),
        Some(b'p') => Ok(Qubit::Photon(idx)),
        _ => Err(malformed(format!("qubit '{s}'"))),
    }
}

fn decode_op(v: &Value) -> Result<Op, ArtifactError> {
    let parts = v.as_arr().ok_or_else(|| malformed("op"))?;
    let tag = parts
        .first()
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("op tag"))?;
    let arity = |n: usize| -> Result<(), ArtifactError> {
        if parts.len() == n + 1 {
            Ok(())
        } else {
            Err(malformed(format!("op {tag}: wrong arity")))
        }
    };
    match tag {
        "H" | "S" | "SD" | "X" | "Y" | "Z" => {
            arity(1)?;
            let q = decode_qubit(&parts[1])?;
            Ok(match tag {
                "H" => Op::H(q),
                "S" => Op::S(q),
                "SD" => Op::Sdg(q),
                "X" => Op::X(q),
                "Y" => Op::Y(q),
                _ => Op::Z(q),
            })
        }
        "CZ" | "CX" => {
            arity(2)?;
            let a = need_usize(&parts[1], "two-qubit emitter")?;
            let b = need_usize(&parts[2], "two-qubit emitter")?;
            Ok(if tag == "CZ" {
                Op::Cz(a, b)
            } else {
                Op::Cnot(a, b)
            })
        }
        "EM" => {
            arity(2)?;
            Ok(Op::Emit {
                emitter: need_usize(&parts[1], "emit emitter")?,
                photon: need_usize(&parts[2], "emit photon")?,
            })
        }
        "MZ" => {
            arity(2)?;
            let emitter = need_usize(&parts[1], "measure emitter")?;
            let corrections = parts[2]
                .as_arr()
                .ok_or_else(|| malformed("corrections"))?
                .iter()
                .map(|c| {
                    let pair = c.as_arr().filter(|p| p.len() == 2);
                    let pair = pair.ok_or_else(|| malformed("correction"))?;
                    let q = decode_qubit(&pair[0])?;
                    let p = match pair[1].as_str() {
                        Some("I") => Pauli::I,
                        Some("X") => Pauli::X,
                        Some("Y") => Pauli::Y,
                        Some("Z") => Pauli::Z,
                        _ => return Err(malformed("correction pauli")),
                    };
                    Ok((q, p))
                })
                .collect::<Result<Vec<_>, ArtifactError>>()?;
            Ok(Op::MeasureZ {
                emitter,
                corrections,
            })
        }
        other => Err(malformed(format!("unknown op tag '{other}'"))),
    }
}

fn decode_circuit(v: &Value) -> Result<Circuit, ArtifactError> {
    let mut c = Circuit::new(
        need_usize(field(v, "emitters")?, "circuit emitters")?,
        need_usize(field(v, "photons")?, "circuit photons")?,
    );
    for op in field(v, "ops")?
        .as_arr()
        .ok_or_else(|| malformed("circuit ops"))?
    {
        c.push(decode_op(op)?);
    }
    Ok(c)
}

fn decode_variant(v: &Value) -> Result<SubgraphVariant, ArtifactError> {
    let usage_times = f64_bits_arr(field(v, "usage_times")?, "usage_times")?;
    let usage_counts = usize_arr(field(v, "usage_counts")?, "usage_counts")?;
    Ok(SubgraphVariant {
        emitters: need_usize(field(v, "emitters")?, "variant emitters")?,
        solved: epgs_solver::reverse::Solved {
            circuit: decode_circuit(field(v, "circuit")?)?,
            emitters: need_usize(field(v, "solved_emitters")?, "solved emitters")?,
            ordering: usize_arr(field(v, "ordering")?, "ordering")?,
        },
        duration: hex_f64(field(v, "duration")?, "duration")?,
        ee_cnots: need_usize(field(v, "ee_cnots")?, "ee_cnots")?,
        t_loss: hex_f64(field(v, "t_loss")?, "t_loss")?,
        emission_times: f64_bits_arr(field(v, "emission_times")?, "emission_times")?,
        usage: (usage_times, usage_counts),
    })
}

fn decode_payload(
    payload: &Value,
) -> Result<(Graph, Partition, Vec<SubgraphPlan>, usize), ArtifactError> {
    let target = decode_graph(field(payload, "target")?)?;
    let ne_min = need_usize(field(payload, "ne_min")?, "ne_min")?;
    let p = field(payload, "partition")?;
    let partition = Partition {
        block_of: usize_arr(field(p, "block_of")?, "block_of")?,
        lc_sequence: usize_arr(field(p, "lc_sequence")?, "lc_sequence")?,
        transformed: decode_graph(field(p, "transformed")?)?,
        cut: need_usize(field(p, "cut")?, "cut")?,
        // Degraded plans are never persisted, so a decoded one is pristine
        // by construction and the codec needs no new field.
        degraded: false,
    };
    let plans = field(payload, "plans")?
        .as_arr()
        .ok_or_else(|| malformed("plans"))?
        .iter()
        .map(|plan| {
            let variants = field(plan, "variants")?
                .as_arr()
                .ok_or_else(|| malformed("variants"))?
                .iter()
                .map(decode_variant)
                .collect::<Result<Vec<_>, ArtifactError>>()?;
            if variants.is_empty() {
                return Err(malformed("plan with no variants"));
            }
            Ok(SubgraphPlan {
                vertices: usize_arr(field(plan, "vertices")?, "vertices")?,
                variants,
            })
        })
        .collect::<Result<Vec<_>, ArtifactError>>()?;
    Ok((target, partition, plans, ne_min))
}

/// Decodes an artifact document stored under `key` into a [`Planned`]
/// artifact bound to `pipeline`'s configuration and counters.
///
/// Adoption does **not** count as a plan-stage execution: the pipeline's
/// `plan` counter only moves for real [`plan_leaves`] runs, which is what
/// lets tests prove coalescing/cache behavior from stage counters.
///
/// [`plan_leaves`]: crate::Partitioned::plan_leaves
///
/// # Errors
///
/// Any structural problem — bad JSON, schema violations, wrong version,
/// checksum mismatch, or an envelope key differing from `key` — comes back
/// as an [`ArtifactError`]; callers are expected to discard the document
/// and recompile.
pub fn decode(text: &str, key: CacheKey, pipeline: &Pipeline) -> Result<Planned, ArtifactError> {
    let doc = Value::parse(text)?;
    if field(&doc, "format")?.as_str() != Some(FORMAT) {
        return Err(malformed("not an epgs-planned document"));
    }
    let version = doc.get("version").and_then(Value::as_u64);
    if version != Some(VERSION) {
        return Err(ArtifactError::VersionMismatch { found: version });
    }
    if hex_u64(field(&doc, "canonical")?, "canonical")? != key.canonical
        || hex_u64(field(&doc, "config")?, "config")? != key.config
    {
        return Err(ArtifactError::KeyMismatch);
    }
    let payload = field(&doc, "payload")?;
    // Writer output and a re-serialized parsed payload agree byte for byte
    // (integers ≤ 2^53 and hex strings only), so the checksum detects any
    // surviving in-payload mutation.
    if checksum_bytes(payload.to_string().as_bytes())
        != hex_u64(field(&doc, "checksum")?, "checksum")?
    {
        return Err(ArtifactError::ChecksumMismatch);
    }
    let (target, partition, plans, ne_min) = decode_payload(payload)?;
    Ok(Planned {
        shared: Arc::clone(&pipeline.shared),
        target: Arc::new(target),
        data: Arc::new(PlannedData {
            partition,
            plans,
            ne_min,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::config_fingerprint;
    use crate::config::FrameworkConfig;
    use epgs_graph::canon::canonical_hash;
    use epgs_graph::generators;

    fn quick_pipeline() -> Pipeline {
        Pipeline::new(
            FrameworkConfig::builder()
                .g_max(5)
                .lc_budget(3)
                .partition_effort(4)
                .orderings_per_subgraph(4)
                .flexible_slack(1)
                .build(),
        )
    }

    fn key_for(pipeline: &Pipeline, g: &Graph) -> CacheKey {
        CacheKey {
            canonical: canonical_hash(g),
            config: config_fingerprint(pipeline.config()),
        }
    }

    fn assert_planned_bit_identical(a: &Planned, b: &Planned) {
        assert_eq!(a.target(), b.target());
        assert_eq!(a.ne_min(), b.ne_min());
        assert_eq!(a.partition(), b.partition());
        assert_eq!(a.plans().len(), b.plans().len());
        for (x, y) in a.plans().iter().zip(b.plans()) {
            assert_eq!(x.vertices, y.vertices);
            assert_eq!(x.variants.len(), y.variants.len());
            for (vx, vy) in x.variants.iter().zip(&y.variants) {
                assert_eq!(vx.emitters, vy.emitters);
                assert_eq!(vx.solved.circuit, vy.solved.circuit);
                assert_eq!(vx.solved.emitters, vy.solved.emitters);
                assert_eq!(vx.solved.ordering, vy.solved.ordering);
                assert_eq!(vx.duration.to_bits(), vy.duration.to_bits());
                assert_eq!(vx.ee_cnots, vy.ee_cnots);
                assert_eq!(vx.t_loss.to_bits(), vy.t_loss.to_bits());
                assert_eq!(
                    vx.emission_times
                        .iter()
                        .map(|t| t.to_bits())
                        .collect::<Vec<_>>(),
                    vy.emission_times
                        .iter()
                        .map(|t| t.to_bits())
                        .collect::<Vec<_>>()
                );
                assert_eq!(
                    vx.usage.0.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
                    vy.usage.0.iter().map(|t| t.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(vx.usage.1, vy.usage.1);
            }
        }
    }

    #[test]
    fn round_trip_is_bit_identical_and_schedules_identically() {
        let pipeline = quick_pipeline();
        let g = generators::lattice(3, 4);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        let key = key_for(&pipeline, &g);
        let text = encode(&planned, key);
        let decoded = decode(&text, key, &pipeline).expect("decodes");
        assert_planned_bit_identical(&planned, &decoded);
        // The cheap suffix produces byte-identical circuits off both.
        let a = planned.schedule(2).recombine().unwrap().verify().unwrap();
        let b = decoded.schedule(2).recombine().unwrap().verify().unwrap();
        assert_eq!(a.circuit, b.circuit);
        // Adoption did not count as a plan run.
        assert_eq!(pipeline.counters().plan, 1);
    }

    #[test]
    fn version_and_key_mismatches_are_rejected() {
        let pipeline = quick_pipeline();
        let g = generators::cycle(7);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        let key = key_for(&pipeline, &g);
        let text = encode(&planned, key);

        let bumped = text.replace("\"version\":1", "\"version\":2");
        assert!(matches!(
            decode(&bumped, key, &pipeline),
            Err(ArtifactError::VersionMismatch { found: Some(2) })
        ));

        let other = CacheKey {
            canonical: key.canonical.wrapping_add(1),
            config: key.config,
        };
        assert!(matches!(
            decode(&text, other, &pipeline),
            Err(ArtifactError::KeyMismatch)
        ));
    }

    #[test]
    fn corrupted_payloads_fail_the_checksum_or_grammar() {
        let pipeline = quick_pipeline();
        let g = generators::tree(9, 2);
        let planned = pipeline.partition(&g).plan_leaves().unwrap();
        let key = key_for(&pipeline, &g);
        let text = encode(&planned, key);

        // Truncation breaks the grammar.
        assert!(matches!(
            decode(&text[..text.len() / 2], key, &pipeline),
            Err(ArtifactError::Json(_))
        ));

        // Flip one in-payload hex digit: grammar intact, checksum broken.
        let pos = text.find("\"duration\":\"").expect("duration field") + 12;
        let mut bytes = text.clone().into_bytes();
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            decode(&flipped, key, &pipeline),
            Err(ArtifactError::ChecksumMismatch)
        ));
    }

    #[test]
    fn error_rendering_is_informative() {
        assert!(ArtifactError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(ArtifactError::VersionMismatch { found: Some(9) }
            .to_string()
            .contains("9"));
        assert!(decode(
            "{}",
            CacheKey {
                canonical: 0,
                config: 0
            },
            &quick_pipeline()
        )
        .unwrap_err()
        .to_string()
        .contains("format"));
    }
}
