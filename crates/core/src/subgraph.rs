//! Per-subgraph compilation (paper §IV.B).
//!
//! Each leaf subgraph is small (≤ g_max), so near-optimal circuits are found
//! by explicit search: candidate emission orderings (the low-degree-first DFS
//! heuristic, BFS, natural, and connectivity-respecting random samples) are
//! ranked by the height-function cost estimate, the best few are compiled
//! for real, and the winner minimizes the configured
//! [`CompileObjective`] — under the paper's default that is the
//! lexicographic (#ee-CNOT, `T_loss`, duration) order. The
//! flexible-resource policy compiles every survivor at
//! `ne_min … ne_min + slack` emitters so the scheduler can trade emitters
//! for parallelism (§IV.C).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use epgs_circuit::{circuit_metrics, timeline, CircuitMetrics};
use epgs_graph::Graph;
use epgs_hardware::{CompileObjective, HardwareModel, ObjectiveScore};
use epgs_solver::cost::{rank_orderings_weighted, CostWeights};
use epgs_solver::reverse::{solve_with_ordering_in, SolveOptions, Solved, SolverWorkspace};
use epgs_solver::{ordering, SolverError};

/// One compiled variant of a subgraph at a fixed emitter limit.
#[derive(Debug, Clone)]
pub struct SubgraphVariant {
    /// Emitters used by this variant.
    pub emitters: usize,
    /// The compiled circuit (local photon indices `0..k`).
    pub solved: Solved,
    /// Circuit duration in τ.
    pub duration: f64,
    /// Emitter-emitter CNOT count.
    pub ee_cnots: usize,
    /// Mean photon storage time.
    pub t_loss: f64,
    /// ALAP emission time of each local photon.
    pub emission_times: Vec<f64>,
    /// Emitter-usage step curve `(times, counts)`.
    pub usage: (Vec<f64>, Vec<usize>),
}

/// The compilation result for one subgraph: the chosen ordering compiled at
/// several emitter limits (variants sorted by emitter count).
#[derive(Debug, Clone)]
pub struct SubgraphPlan {
    /// Map from local photon index to the parent graph's vertex id.
    pub vertices: Vec<usize>,
    /// Variants at `ne_min`, `ne_min+1`, … (at least one).
    pub variants: Vec<SubgraphVariant>,
}

impl SubgraphPlan {
    /// Number of photons in the subgraph.
    pub fn photon_count(&self) -> usize {
        self.vertices.len()
    }

    /// Scheduling priority `P_c = n_p / T_c` of the base variant (§IV.C).
    pub fn priority(&self) -> f64 {
        let base = &self.variants[0];
        if base.duration <= 0.0 {
            f64::INFINITY
        } else {
            self.photon_count() as f64 / base.duration
        }
    }
}

/// Compiles one subgraph.
///
/// `sub` uses local indices; `vertices[local] = parent vertex id`.
///
/// # Errors
///
/// Propagates solver failures (which, given automatic pool growth, indicate
/// an internal bug rather than an input condition).
pub fn compile_subgraph(
    sub: &Graph,
    vertices: &[usize],
    hw: &HardwareModel,
    objective: &CompileObjective,
    orderings_budget: usize,
    flexible_slack: usize,
    seed: u64,
) -> Result<SubgraphPlan, SolverError> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Candidate orderings: deterministic heuristics + random connected.
    let mut candidates: Vec<Vec<usize>> = vec![
        ordering::degree_dfs(sub),
        ordering::bfs(sub),
        ordering::natural(sub),
    ];
    for _ in 0..orderings_budget.saturating_sub(candidates.len()) {
        candidates.push(ordering::random_connected(sub, &mut rng));
    }
    candidates.sort();
    candidates.dedup();
    // Rank by the cheap estimate and keep the most promising half (at least
    // the three deterministic ones). The pruning weights are the solver's
    // objective hook: emitter-minimizing objectives weight emitters and
    // stalls evenly (the paper's ranking, preserved bit for bit);
    // duration/loss objectives punish stalls, which serialize the timeline.
    rank_orderings_weighted(sub, &mut candidates, &pruning_weights(objective));
    candidates.truncate(orderings_budget.max(3).div_ceil(2).max(3));

    // Compile every candidate at ne_min, candidates in parallel with one
    // solver workspace per worker; keep the objective's minimum. The winner
    // is the lowest (score, candidate index) — ties break toward the
    // earlier candidate, exactly like the sequential strict-less loop — so
    // the parallel search is bit-identical to the sequential one.
    let solve_opts = SolveOptions {
        verify: false, // the framework verifies the final global circuit
        ..SolveOptions::default()
    };
    let evaluated: Vec<Option<(SubgraphVariant, ObjectiveScore)>> = (0..candidates.len())
        .into_par_iter()
        .map_init(SolverWorkspace::new, |ws, i| {
            let solved = solve_with_ordering_in(ws, sub, &candidates[i], &solve_opts).ok()?;
            let (variant, metrics) = make_variant(hw, solved);
            // Score under the objective's own platform when it names a
            // *different* one; the configured model's metrics (just computed
            // for the variant) serve otherwise — no second metrics pass on
            // the default or platform()-consistent paths.
            let figures = match objective.hardware() {
                Some(score_hw) if score_hw != hw => {
                    circuit_metrics(score_hw, &variant.solved.circuit).objective_figures()
                }
                _ => metrics.objective_figures(),
            };
            let score = objective.score(&figures);
            Some((variant, score))
        })
        .collect();
    let mut best: Option<(usize, SubgraphVariant, ObjectiveScore)> = None;
    for (i, entry) in evaluated.into_iter().enumerate() {
        let Some((variant, score)) = entry else {
            continue;
        };
        let better = match &best {
            None => true,
            Some((_, _, b)) => score < *b,
        };
        if better {
            best = Some((i, variant, score));
        }
    }
    let Some((chosen, base, _)) = best else {
        return Err(SolverError::NoCompilableOrdering {
            photons: sub.vertex_count(),
            candidates: candidates.len(),
        });
    };
    let chosen_ordering = &candidates[chosen];

    // Flexible resource constraint: recompile at ne_min+1 … ne_min+slack —
    // the extras are independent solves of the same ordering, evaluated in
    // parallel and kept in emitter order.
    let base_emitters = base.emitters;
    let mut variants = vec![base];
    let flexible: Vec<Option<SubgraphVariant>> = (1..flexible_slack + 1)
        .into_par_iter()
        .map_init(SolverWorkspace::new, |ws, extra| {
            let opts = SolveOptions {
                emitters: Some(base_emitters + extra),
                verify: false,
                ..SolveOptions::default()
            };
            solve_with_ordering_in(ws, sub, chosen_ordering, &opts)
                .ok()
                .map(|solved| make_variant(hw, solved).0)
        })
        .collect();
    variants.extend(flexible.into_iter().flatten());
    Ok(SubgraphPlan {
        vertices: vertices.to_vec(),
        variants,
    })
}

/// Ordering-pruning weights for an objective: even weights for
/// emitter-minimizing objectives (the paper's ranking), stall-heavy
/// weights when the objective actually cares about the timeline. A
/// `Weighted` objective follows its own weights — one that puts nothing
/// on duration or loss is emitter-minimizing in substance, so it prunes
/// like `Emitters` rather than like `Duration`.
fn pruning_weights(objective: &CompileObjective) -> CostWeights {
    match objective {
        CompileObjective::Emitters => CostWeights::default(),
        CompileObjective::Duration(_) | CompileObjective::Loss(_) => {
            CostWeights::duration_focused()
        }
        CompileObjective::Weighted { duration, loss, .. } => {
            if *duration == 0.0 && *loss == 0.0 {
                CostWeights::default()
            } else {
                CostWeights::duration_focused()
            }
        }
    }
}

/// Builds a variant and hands back the metrics it was derived from, so
/// callers scoring under the same model need not recompute them.
fn make_variant(hw: &HardwareModel, solved: Solved) -> (SubgraphVariant, CircuitMetrics) {
    let tl = timeline(hw, &solved.circuit);
    let m = circuit_metrics(hw, &solved.circuit);
    let variant = SubgraphVariant {
        emitters: solved.emitters,
        duration: tl.duration,
        ee_cnots: m.ee_two_qubit_count,
        t_loss: m.t_loss,
        emission_times: tl.emission_time.clone(),
        usage: epgs_circuit::usage_curve(hw, &solved.circuit),
        solved,
    };
    (variant, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_graph::generators;
    use epgs_solver::reverse::solve_with_ordering;

    fn hw() -> HardwareModel {
        HardwareModel::quantum_dot()
    }

    #[test]
    fn path_subgraph_compiles_optimally() {
        let sub = generators::path(6);
        let vertices: Vec<usize> = (10..16).collect();
        let plan =
            compile_subgraph(&sub, &vertices, &hw(), &CompileObjective::Emitters, 6, 2, 1).unwrap();
        assert_eq!(plan.photon_count(), 6);
        assert_eq!(plan.variants[0].ee_cnots, 0, "paths need no ee-CNOTs");
        assert_eq!(plan.variants[0].emitters, 1);
        // Flexible variants exist at +1 and +2 emitters.
        assert!(plan.variants.len() >= 2);
        assert!(plan.variants[1].emitters > plan.variants[0].emitters);
    }

    #[test]
    fn variant_emission_times_cover_all_photons() {
        let sub = generators::cycle(5);
        let plan = compile_subgraph(
            &sub,
            &[0, 1, 2, 3, 4],
            &hw(),
            &CompileObjective::Emitters,
            6,
            1,
            2,
        )
        .unwrap();
        for v in &plan.variants {
            assert_eq!(v.emission_times.len(), 5);
            assert!(v.emission_times.iter().all(|&t| t <= v.duration + 1e-9));
        }
    }

    #[test]
    fn priority_favors_many_photons_short_duration() {
        let short = compile_subgraph(
            &generators::path(5),
            &[0, 1, 2, 3, 4],
            &hw(),
            &CompileObjective::Emitters,
            4,
            0,
            3,
        )
        .unwrap();
        let long = compile_subgraph(
            &generators::complete(5),
            &[5, 6, 7, 8, 9],
            &hw(),
            &CompileObjective::Emitters,
            4,
            0,
            3,
        )
        .unwrap();
        // Same photon count; the path compiles to a shorter circuit, so its
        // priority must be higher.
        assert!(short.priority() > long.priority());
    }

    #[test]
    fn search_beats_or_matches_natural_order_on_star() {
        let sub = generators::star(6);
        let plan = compile_subgraph(
            &sub,
            &[0, 1, 2, 3, 4, 5],
            &hw(),
            &CompileObjective::Emitters,
            8,
            0,
            4,
        )
        .unwrap();
        let natural =
            solve_with_ordering(&sub, &ordering::natural(&sub), &SolveOptions::default()).unwrap();
        assert!(plan.variants[0].ee_cnots <= natural.circuit.ee_two_qubit_count());
    }

    #[test]
    fn single_vertex_subgraph() {
        let sub = Graph::new(1);
        let plan =
            compile_subgraph(&sub, &[3], &hw(), &CompileObjective::Emitters, 2, 1, 5).unwrap();
        assert_eq!(plan.photon_count(), 1);
        assert_eq!(plan.variants[0].solved.circuit.emission_count(), 1);
    }
}
