//! Deterministic fault injection and request-scoped fault-tolerance
//! primitives.
//!
//! A [`FaultPlan`] is a seeded set of rules armed at *named fault points*
//! threaded through the service stack — [`ArtifactStore`](crate::ArtifactStore)
//! reads/writes, [`BatchCompiler`](crate::BatchCompiler) compiles, the
//! multilevel partitioner, and `ServeEngine::compile` in the serve crate.
//! When no plan is armed every probe is a `None`-returning no-op; when one
//! is armed, whether the *n*-th invocation of a point fires is a pure
//! function of `(seed, rule, point, n)`, so a chaos run replays exactly
//! under a fixed seed and thread count.
//!
//! The related DAC line of work configures algorithm behavior per instance
//! and per phase at runtime; these hooks are the same shape — a runtime
//! policy consulted at named points — aimed at fault tolerance first and
//! reusable by a future `TuningPolicy` (ROADMAP item 4).
//!
//! # Plan grammar
//!
//! [`FaultPlan::parse`] accepts the `EPGS_FAULT_PLAN` environment format:
//!
//! ```text
//! plan    := [ "seed=" u64 ] ( ";" rule )*
//! rule    := point ":" kind [ trigger ] [ "x" limit ]
//! kind    := "io" | "bitflip" | "slow(" millis ")" | "panic" | "fail" | "crash"
//! trigger := "@" num "/" den        fire when hash(seed,rule,point,n) % den < num
//!          | "#" n                  fire exactly on the n-th invocation (0-based)
//!          (absent)                 fire on every invocation
//! ```
//!
//! Example: `seed=42;store.read:io@1/8;batch.compile:panic#0;store.write:slow(20)@1/4x3`
//!
//! # Examples
//!
//! ```
//! use epgs::faults::{FaultKind, FaultPlan, POINT_STORE_READ};
//!
//! let plan = FaultPlan::parse("seed=7;store.read:io#1").unwrap();
//! assert_eq!(plan.at(POINT_STORE_READ), None); // invocation 0
//! assert_eq!(plan.at(POINT_STORE_READ), Some(FaultKind::IoError)); // 1
//! assert_eq!(plan.at(POINT_STORE_READ), None); // 2
//! assert_eq!(plan.total_hits(), 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Fault point: every [`crate::ArtifactStore`] load attempt.
pub const POINT_STORE_READ: &str = "store.read";
/// Fault point: every [`crate::ArtifactStore`] save attempt.
pub const POINT_STORE_WRITE: &str = "store.write";
/// Crash boundary: after the store writes an artifact's temp file but
/// before the rename into place (a crash here leaves an orphan temp).
pub const POINT_STORE_WRITE_TMP: &str = "store.write.tmp";
/// Crash boundary: after the store renames an artifact into place but
/// before the manifest commit (a crash here leaves an untracked orphan
/// artifact for `fsck` to re-index).
pub const POINT_STORE_WRITE_RENAME: &str = "store.write.rename";
/// Crash boundary: after the store unlinks an evicted artifact but before
/// the manifest commit (a crash here leaves a stale manifest entry).
pub const POINT_STORE_EVICT: &str = "store.evict";
/// Crash boundary: after the store renames a corrupt artifact to its
/// `.quarantine` name but before the manifest commit.
pub const POINT_STORE_QUARANTINE: &str = "store.quarantine";
/// Crash boundary: after the store writes a manifest generation's temp
/// file but before the rename that commits it.
pub const POINT_STORE_MANIFEST: &str = "store.manifest";
/// Fault point: entry of every [`crate::BatchCompiler`] instance compile.
pub const POINT_COMPILE: &str = "batch.compile";
/// Fault point: entry of every serve-engine leader compile.
pub const POINT_SERVE: &str = "serve.compile";
/// Fault point: every multilevel-partitioner call inside the LC beam
/// search (fires the flat-scheme fallback ladder).
pub const POINT_MULTILEVEL: &str = "partition.multilevel";

/// What an armed fault point does when it fires. Call sites apply the
/// kinds they understand and ignore the rest (e.g. a compile point has no
/// bytes to bit-flip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the I/O attempt (store read/write) or the operation (compile).
    IoError,
    /// Corrupt the payload in transit (store read/write), forcing the
    /// checksum path.
    BitFlip,
    /// Sleep this many milliseconds before proceeding — forced slow
    /// compiles and slow disks.
    Slow(u64),
    /// Panic at the point (exercises `catch_unwind` isolation).
    Panic,
    /// Fail the operation cleanly (multilevel fallback, compile error).
    Fail,
    /// Abort the process at the probe (`std::process::abort`), simulating
    /// power loss at a byte-persistence boundary. Unlike every other kind,
    /// `crash` is applied by [`FaultPlan::at`] itself, so any armed point
    /// — including the crash-only `store.*` boundaries — honors it.
    Crash,
}

impl FaultKind {
    /// Stable spelling used by the plan grammar and hit reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IoError => "io",
            FaultKind::BitFlip => "bitflip",
            FaultKind::Slow(_) => "slow",
            FaultKind::Panic => "panic",
            FaultKind::Fail => "fail",
            FaultKind::Crash => "crash",
        }
    }
}

/// When a rule fires, as a function of the point's invocation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on every invocation.
    Always,
    /// Fire exactly on the n-th invocation of the point (0-based).
    Nth(u64),
    /// Fire when `hash(seed, rule, point, n) % den < num` — a deterministic
    /// `num/den` rate.
    Ratio {
        /// Numerator of the firing rate.
        num: u64,
        /// Denominator of the firing rate (clamped to ≥ 1).
        den: u64,
    },
}

/// One armed rule of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The named fault point this rule arms.
    pub point: String,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: Trigger,
    /// Maximum number of fires (`u64::MAX` = unlimited).
    pub limit: u64,
}

/// A malformed [`FaultPlan`] clause: which clause failed and why.
///
/// [`FaultPlan::parse`] never panics on malformed input — bad fractions,
/// unknown kinds, and overflowing counts all surface here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// Zero-based index of the offending `;`-separated clause.
    pub clause: usize,
    /// What was wrong with it.
    pub kind: PlanErrorKind,
}

/// The ways a [`FaultPlan`] clause can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanErrorKind {
    /// `seed=` value is not a decimal or `0x`-hex `u64`.
    BadSeed(String),
    /// Clause has no `point:kind` separator.
    MissingKind(String),
    /// `x` limit suffix is not a `u64` (overflow included).
    BadLimit(String),
    /// `@` trigger is not a `num/den` fraction with `den > 0`.
    BadFraction(String),
    /// `#` invocation index is not a `u64`.
    BadIndex(String),
    /// Fault kind word is not in the grammar.
    UnknownKind(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.clause;
        match &self.kind {
            PlanErrorKind::BadSeed(s) => write!(f, "clause {c}: bad seed '{s}'"),
            PlanErrorKind::MissingKind(s) => {
                write!(f, "clause {c}: expected 'point:kind', got '{s}'")
            }
            PlanErrorKind::BadLimit(s) => write!(f, "clause {c}: bad limit in '{s}'"),
            PlanErrorKind::BadFraction(s) => {
                write!(
                    f,
                    "clause {c}: trigger needs 'num/den' with den > 0 in '{s}'"
                )
            }
            PlanErrorKind::BadIndex(s) => {
                write!(f, "clause {c}: bad invocation index in '{s}'")
            }
            PlanErrorKind::UnknownKind(s) => {
                write!(f, "clause {c}: unknown fault kind '{s}'")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A seeded, deterministic fault-injection plan. See the [module
/// docs](self) for the grammar and the guarantees.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    fired: Vec<AtomicU64>,
    calls: Mutex<HashMap<String, u64>>,
    armed: AtomicBool,
}

/// FNV-1a over a word stream — the deterministic per-invocation coin.
fn mix(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl FaultPlan {
    /// An empty plan with the given seed; add rules with [`FaultPlan::rule`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            fired: Vec::new(),
            calls: Mutex::new(HashMap::new()),
            armed: AtomicBool::new(true),
        }
    }

    /// Adds an unlimited rule (builder style).
    pub fn rule(self, point: &str, kind: FaultKind, trigger: Trigger) -> Self {
        self.rule_limited(point, kind, trigger, u64::MAX)
    }

    /// Adds a rule that fires at most `limit` times (builder style).
    pub fn rule_limited(
        mut self,
        point: &str,
        kind: FaultKind,
        trigger: Trigger,
        limit: u64,
    ) -> Self {
        self.rules.push(FaultRule {
            point: point.to_string(),
            kind,
            trigger,
            limit,
        });
        self.fired.push(AtomicU64::new(0));
        self
    }

    /// Parses the `EPGS_FAULT_PLAN` grammar (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// A structured [`PlanError`] naming the first malformed clause;
    /// malformed input never panics.
    pub fn parse(spec: &str) -> Result<Self, PlanError> {
        let mut plan = FaultPlan::new(0);
        for (i, clause) in spec.split(';').enumerate() {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let err = |kind: PlanErrorKind| PlanError { clause: i, kind };
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = parse_u64(seed.trim())
                    .ok_or_else(|| err(PlanErrorKind::BadSeed(seed.trim().to_string())))?;
                continue;
            }
            let (point, rest) = clause
                .split_once(':')
                .ok_or_else(|| err(PlanErrorKind::MissingKind(clause.to_string())))?;
            // Split off trailing limit ("x3") and trigger ("@1/8" or "#2").
            let (rest, limit) = match rest.rfind('x') {
                Some(p)
                    if rest[p + 1..].chars().all(|c| c.is_ascii_digit())
                        && !rest[p + 1..].is_empty() =>
                {
                    let limit = parse_u64(&rest[p + 1..])
                        .ok_or_else(|| err(PlanErrorKind::BadLimit(clause.to_string())))?;
                    (&rest[..p], limit)
                }
                _ => (rest, u64::MAX),
            };
            let (kind_text, trigger) = if let Some((k, t)) = rest.split_once('@') {
                let (num, den) = t
                    .split_once('/')
                    .ok_or_else(|| err(PlanErrorKind::BadFraction(clause.to_string())))?;
                let num = parse_u64(num)
                    .ok_or_else(|| err(PlanErrorKind::BadFraction(clause.to_string())))?;
                let den = parse_u64(den)
                    .filter(|&d| d > 0)
                    .ok_or_else(|| err(PlanErrorKind::BadFraction(clause.to_string())))?;
                (k, Trigger::Ratio { num, den })
            } else if let Some((k, n)) = rest.split_once('#') {
                let n =
                    parse_u64(n).ok_or_else(|| err(PlanErrorKind::BadIndex(clause.to_string())))?;
                (k, Trigger::Nth(n))
            } else {
                (rest, Trigger::Always)
            };
            let kind = match kind_text.trim() {
                "io" => FaultKind::IoError,
                "bitflip" => FaultKind::BitFlip,
                "panic" => FaultKind::Panic,
                "fail" => FaultKind::Fail,
                "crash" => FaultKind::Crash,
                other => match other
                    .strip_prefix("slow(")
                    .and_then(|r| r.strip_suffix(')'))
                    .and_then(parse_u64)
                {
                    Some(ms) => FaultKind::Slow(ms),
                    None => return Err(err(PlanErrorKind::UnknownKind(other.to_string()))),
                },
            };
            plan = plan.rule_limited(point.trim(), kind, trigger, limit);
        }
        Ok(plan)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probes a fault point: counts the invocation, then returns the kind
    /// of the first armed rule that fires for it (or `None`). Disarmed
    /// plans never fire but still do not count invocations.
    ///
    /// A fired [`FaultKind::Crash`] rule aborts the process here, at the
    /// probe itself — simulated power loss. No call site ever observes
    /// `Some(Crash)`, so crash-only boundary points can discard the value.
    pub fn at(&self, point: &str) -> Option<FaultKind> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let n = {
            let mut calls = lock_recover(&self.calls);
            let c = calls.entry(point.to_string()).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.point != point {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::Always => true,
                Trigger::Nth(k) => n == k,
                Trigger::Ratio { num, den } => {
                    mix([self.seed, i as u64, mix(point.bytes().map(u64::from)), n]) % den < num
                }
            };
            if fires && self.fired[i].fetch_add(1, Ordering::Relaxed) < rule.limit {
                if rule.kind == FaultKind::Crash {
                    std::process::abort();
                }
                return Some(rule.kind);
            }
        }
        None
    }

    /// Deterministically flips one payload byte — the `bitflip` kind's
    /// effect, applied by the store to artifact text in transit. The
    /// position derives from the plan seed and the text length; the flip
    /// swaps an ASCII digit so the payload stays valid UTF-8 (and valid
    /// JSON *grammar*, defeating only the checksum).
    pub fn corrupt_text(&self, text: &mut String) {
        if text.is_empty() {
            return;
        }
        let mut bytes = std::mem::take(text).into_bytes();
        let start = (mix([self.seed, 0xb17f_11b0, bytes.len() as u64]) as usize) % bytes.len();
        // Find a digit at or after the seeded position (wrapping) so the
        // flip lands inside a value, not on structural punctuation.
        let pos = (0..bytes.len())
            .map(|o| (start + o) % bytes.len())
            .find(|&p| bytes[p].is_ascii_digit())
            .unwrap_or(start);
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        *text = String::from_utf8(bytes).expect("ascii-for-ascii swap keeps UTF-8");
    }

    /// Permanently disarms the plan: every later [`FaultPlan::at`] probe
    /// returns `None`. Chaos harnesses disarm to run fault-free epilogues
    /// on the same engine.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Whether the plan is still armed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Per-rule hit counts, labeled `point:kind`, in rule order.
    pub fn hits(&self) -> Vec<(String, u64)> {
        self.rules
            .iter()
            .zip(&self.fired)
            .map(|(rule, fired)| {
                (
                    format!("{}:{}", rule.point, rule.kind.name()),
                    fired.load(Ordering::Relaxed).min(rule.limit),
                )
            })
            .collect()
    }

    /// Total fires across every rule.
    pub fn total_hits(&self) -> u64 {
        self.hits().iter().map(|(_, n)| n).sum()
    }
}

/// Renders the plan back in the [grammar](self) it was parsed from:
/// `seed=N;point:kind[@num/den|#n][xL]`. `FaultPlan::parse(&plan.to_string())`
/// reconstructs the same seed and rules (counters start fresh).
impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ";{}:", rule.point)?;
            match rule.kind {
                FaultKind::Slow(ms) => write!(f, "slow({ms})")?,
                kind => write!(f, "{}", kind.name())?,
            }
            match rule.trigger {
                Trigger::Always => {}
                Trigger::Nth(n) => write!(f, "#{n}")?,
                Trigger::Ratio { num, den } => write!(f, "@{num}/{den}")?,
            }
            if rule.limit != u64::MAX {
                write!(f, "x{}", rule.limit)?;
            }
        }
        Ok(())
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Per-request compile context: the cooperative cancellation token checked
/// between pipeline stages (and inside the partition search, which degrades
/// instead of failing — see `ARCHITECTURE.md`, "Failure model").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCtx {
    /// Absolute deadline; `None` = unbounded.
    pub deadline: Option<Instant>,
}

impl RequestCtx {
    /// A context whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        RequestCtx {
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock instead of
/// panicking. Every service-path lock in the stack goes through this: a
/// panicked peer thread must degrade its own request, not abort the
/// daemon. The protected data are caches and counters, which tolerate a
/// torn update (worst case: a stale LRU clock or an off-by-one stat).
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Best-effort rendering of a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_point_never_fires() {
        let plan = FaultPlan::new(1).rule(POINT_STORE_WRITE, FaultKind::IoError, Trigger::Always);
        for _ in 0..100 {
            assert_eq!(plan.at(POINT_STORE_READ), None);
        }
        assert_eq!(plan.total_hits(), 0);
    }

    #[test]
    fn ratio_firing_is_deterministic_and_roughly_proportional() {
        let run = |seed| {
            let plan = FaultPlan::new(seed).rule(
                POINT_COMPILE,
                FaultKind::Fail,
                Trigger::Ratio { num: 1, den: 4 },
            );
            (0..400)
                .map(|_| plan.at(POINT_COMPILE).is_some())
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must replay exactly");
        assert_ne!(a, run(8), "different seeds must differ");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((50..150).contains(&fires), "1/4 rate fired {fires}/400");
    }

    #[test]
    fn nth_limit_and_disarm() {
        let plan = FaultPlan::new(3)
            .rule(POINT_SERVE, FaultKind::Panic, Trigger::Nth(2))
            .rule_limited(POINT_MULTILEVEL, FaultKind::Fail, Trigger::Always, 2);
        assert_eq!(plan.at(POINT_SERVE), None);
        assert_eq!(plan.at(POINT_SERVE), None);
        assert_eq!(plan.at(POINT_SERVE), Some(FaultKind::Panic));
        assert_eq!(plan.at(POINT_SERVE), None);
        assert_eq!(plan.at(POINT_MULTILEVEL), Some(FaultKind::Fail));
        assert_eq!(plan.at(POINT_MULTILEVEL), Some(FaultKind::Fail));
        assert_eq!(plan.at(POINT_MULTILEVEL), None, "limit x2 exhausted");
        plan.disarm();
        assert_eq!(plan.at(POINT_SERVE), None);
        assert_eq!(plan.total_hits(), 3);
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan = FaultPlan::parse(
            "seed=0x2a;store.read:io@1/8;batch.compile:panic#0;store.write:slow(20)@1/4x3",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].trigger, Trigger::Ratio { num: 1, den: 8 });
        assert_eq!(plan.rules[1].trigger, Trigger::Nth(0));
        assert_eq!(plan.rules[1].kind, FaultKind::Panic);
        assert_eq!(plan.rules[2].kind, FaultKind::Slow(20));
        assert_eq!(plan.rules[2].limit, 3);
        assert_eq!(plan.at(POINT_COMPILE), Some(FaultKind::Panic));
        assert_eq!(plan.at(POINT_COMPILE), None);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "store.read",
            "store.read:warp",
            "store.read:io@1",
            "store.read:io@0/0",
            "seed=zz",
            "store.read:slow(ms)",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' must not parse");
        }
        assert!(FaultPlan::parse("").unwrap().rules.is_empty());
    }

    #[test]
    fn parse_errors_are_structured() {
        let kind = |spec: &str| FaultPlan::parse(spec).unwrap_err().kind;
        assert!(matches!(kind("seed=zz"), PlanErrorKind::BadSeed(_)));
        assert!(matches!(kind("store.read"), PlanErrorKind::MissingKind(_)));
        assert!(matches!(kind("a:io@1"), PlanErrorKind::BadFraction(_)));
        assert!(matches!(kind("a:io@1/0"), PlanErrorKind::BadFraction(_)));
        assert!(matches!(kind("a:io#b"), PlanErrorKind::BadIndex(_)));
        assert!(matches!(kind("a:warp"), PlanErrorKind::UnknownKind(_)));
        // Overflowing counts are rejected, not wrapped or panicked on.
        let big = "99999999999999999999";
        assert!(matches!(
            kind(&format!("seed={big}")),
            PlanErrorKind::BadSeed(_)
        ));
        assert!(matches!(
            kind(&format!("a:io#{big}")),
            PlanErrorKind::BadIndex(_)
        ));
        assert!(matches!(
            kind(&format!("a:io@{big}/2")),
            PlanErrorKind::BadFraction(_)
        ));
        assert!(matches!(
            kind(&format!("a:iox{big}")),
            PlanErrorKind::BadLimit(_)
        ));
        let err = FaultPlan::parse("seed=1;ok:io;bad").unwrap_err();
        assert_eq!(err.clause, 2, "error names the offending clause");
        assert!(err.to_string().contains("clause 2"));
    }

    /// Deterministic pseudo-random generator for the property suites below
    /// (the repo vendors no proptest; `mix` is the same FNV coin the plan
    /// itself uses).
    struct Gen(u64);

    impl Gen {
        fn next(&mut self, bound: u64) -> u64 {
            self.0 = mix([self.0, 0x9e37_79b9]);
            self.0 % bound.max(1)
        }
    }

    #[test]
    fn property_display_parse_round_trip() {
        let points = ["store.read", "store.write.rename", "batch.compile", "p.q"];
        let mut g = Gen(0x5eed);
        for case in 0..200u64 {
            let mut plan = FaultPlan::new(g.next(u64::MAX));
            for _ in 0..g.next(5) {
                let kind = match g.next(6) {
                    0 => FaultKind::IoError,
                    1 => FaultKind::BitFlip,
                    2 => FaultKind::Slow(g.next(1000)),
                    3 => FaultKind::Panic,
                    4 => FaultKind::Fail,
                    _ => FaultKind::Crash,
                };
                let trigger = match g.next(3) {
                    0 => Trigger::Always,
                    1 => Trigger::Nth(g.next(100)),
                    _ => Trigger::Ratio {
                        num: g.next(16),
                        den: 1 + g.next(16),
                    },
                };
                let limit = if g.next(2) == 0 { u64::MAX } else { g.next(50) };
                plan = plan.rule_limited(points[g.next(4) as usize], kind, trigger, limit);
            }
            let rendered = plan.to_string();
            let reparsed = FaultPlan::parse(&rendered)
                .unwrap_or_else(|e| panic!("case {case}: '{rendered}' failed: {e}"));
            assert_eq!(reparsed.seed, plan.seed, "case {case}: '{rendered}'");
            assert_eq!(reparsed.rules, plan.rules, "case {case}: '{rendered}'");
            assert_eq!(reparsed.to_string(), rendered, "case {case}");
        }
    }

    #[test]
    fn property_parse_never_panics_on_fuzzed_input() {
        // Mutated grammar fragments plus raw byte soup: parse must return
        // Ok or a structured PlanError, never panic or abort.
        let alphabet: Vec<char> = "abz019:;@#/x().=seed slow crash io-\u{e9}\u{1f600}"
            .chars()
            .collect();
        let mut g = Gen(0xfa57);
        for _ in 0..2000 {
            let len = g.next(40) as usize;
            let s: String = (0..len)
                .map(|_| alphabet[g.next(alphabet.len() as u64) as usize])
                .collect();
            match FaultPlan::parse(&s) {
                Ok(plan) => drop(plan.to_string()),
                Err(e) => assert!(e.to_string().contains("clause")),
            }
        }
    }

    #[test]
    fn corrupt_text_flips_exactly_one_digit() {
        let plan = FaultPlan::new(9);
        let original = "{\"version\":1,\"hash\":\"00ff12\"}".to_string();
        let mut text = original.clone();
        plan.corrupt_text(&mut text);
        assert_eq!(text.len(), original.len());
        let diffs = original
            .bytes()
            .zip(text.bytes())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        let mut again = original.clone();
        plan.corrupt_text(&mut again);
        assert_eq!(text, again, "corruption is deterministic");
    }

    #[test]
    fn request_ctx_deadline() {
        assert!(!RequestCtx::default().expired());
        assert!(!RequestCtx::with_timeout(Duration::from_secs(60)).expired());
        let past = RequestCtx {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
        };
        assert!(past.expired());
    }
}
