//! Subgraph circuit scheduling (paper §IV.C).
//!
//! Subgraph circuits are packed on the timeline *as late as possible* in
//! priority order `P_c = n_p / T_c` — photons-per-duration — under the global
//! emitter budget `Ne_limit`. The packing treats each circuit as a Tetris
//! piece whose shape is its emitter-usage step curve (Fig. 8). A flexible
//! pass then upgrades blocks to their higher-emitter variants when that
//! shortens the makespan (the "full utilization" rule).

use crate::subgraph::SubgraphPlan;

/// A right-continuous step function, value `counts[k]` on
/// `[times[k], times[k+1])`, 0 before `times[0]` and after the last event.
#[derive(Debug, Clone, Default)]
pub struct StepFn {
    times: Vec<f64>,
    counts: Vec<usize>,
}

impl StepFn {
    /// Builds from parallel event arrays (times strictly increasing).
    pub fn new(times: Vec<f64>, counts: Vec<usize>) -> Self {
        debug_assert_eq!(times.len(), counts.len());
        debug_assert!(times.windows(2).all(|w| w[0] < w[1]));
        StepFn { times, counts }
    }

    /// Value at `t`.
    pub fn eval(&self, t: f64) -> usize {
        match self.times.iter().rposition(|&bp| bp <= t + 1e-12) {
            Some(k) => self.counts[k],
            None => 0,
        }
    }

    /// Event times.
    pub fn breakpoints(&self) -> &[f64] {
        &self.times
    }

    /// The curve reversed over `[0, horizon]`: `rev(s) = self(horizon − s)`.
    pub fn reversed(&self, horizon: f64) -> StepFn {
        if self.times.is_empty() {
            return StepFn::default();
        }
        // Piece k holds on [times[k], times[k+1]); reversed it holds on
        // (horizon−times[k+1], horizon−times[k]] — shift to right-continuous
        // pieces starting at horizon−times[k+1].
        let mut times = Vec::with_capacity(self.times.len() + 1);
        let mut counts = Vec::with_capacity(self.times.len() + 1);
        for k in (0..self.times.len()).rev() {
            let end = if k + 1 < self.times.len() {
                self.times[k + 1]
            } else {
                horizon.max(self.times[k])
            };
            let start = (horizon - end).max(0.0);
            if counts.last() != Some(&self.counts[k]) || times.is_empty() {
                if let Some(&last_t) = times.last() {
                    let last_t: f64 = last_t;
                    if (start - last_t).abs() < 1e-12 {
                        *counts.last_mut().expect("non-empty") = self.counts[k];
                        continue;
                    }
                }
                times.push(start);
                counts.push(self.counts[k]);
            }
        }
        // Beyond the reversed horizon the curve is 0.
        let tail = horizon - self.times[0];
        if times.last().is_none_or(|&t| t < tail - 1e-12) {
            times.push(tail.max(0.0));
            counts.push(0);
        } else if let Some(c) = counts.last_mut() {
            *c = 0;
        }
        StepFn { times, counts }
    }

    /// Adds `other`, shifted right by `offset`, into `self`.
    pub fn add_shifted(&mut self, other: &StepFn, offset: f64) {
        let mut bps: Vec<f64> = self
            .times
            .iter()
            .copied()
            .chain(other.times.iter().map(|&t| t + offset))
            .collect();
        bps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        bps.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let counts: Vec<usize> = bps
            .iter()
            .map(|&t| self.eval(t) + other.eval(t - offset))
            .collect();
        self.times = bps;
        self.counts = counts;
    }

    /// Peak of `self + other·(shifted by offset)` over the other's support.
    pub fn peak_with(&self, other: &StepFn, offset: f64) -> usize {
        let mut peak = 0;
        for &t in &self.times {
            peak = peak.max(self.eval(t) + other.eval(t - offset));
        }
        for &t in &other.times {
            let s = t + offset;
            peak = peak.max(self.eval(s) + other.eval(t));
        }
        peak
    }
}

/// Placement of one subgraph circuit on the reversed timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index into the plan list.
    pub block: usize,
    /// Chosen variant index of that plan.
    pub variant: usize,
    /// Offset of the block's *end* from the circuit end (reversed time).
    pub offset_from_end: f64,
}

/// A complete schedule of all subgraph circuits.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Placements in packing order.
    pub placements: Vec<Placement>,
    /// Estimated makespan of the packed composite.
    pub makespan: f64,
    /// The emitter budget used.
    pub ne_limit: usize,
}

impl Schedule {
    /// Absolute start time of a placement under this schedule's makespan.
    pub fn start_time(&self, p: &Placement, plans: &[SubgraphPlan]) -> f64 {
        let dur = plans[p.block].variants[p.variant].duration;
        self.makespan - p.offset_from_end - dur
    }

    /// The global emission ordering induced by the schedule: photons sorted
    /// by their absolute scheduled emission times (ties broken by block and
    /// local index, so the result is deterministic).
    pub fn global_ordering(&self, plans: &[SubgraphPlan]) -> Vec<usize> {
        let mut photons: Vec<(f64, usize, usize, usize)> = Vec::new();
        for p in &self.placements {
            let start = self.start_time(p, plans);
            let plan = &plans[p.block];
            let variant = &plan.variants[p.variant];
            for (local, &global) in plan.vertices.iter().enumerate() {
                photons.push((
                    start + variant.emission_times[local],
                    p.block,
                    local,
                    global,
                ));
            }
        }
        photons.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        photons.into_iter().map(|(_, _, _, g)| g).collect()
    }
}

/// Packs `plans` under `ne_limit` emitters: ALAP, priority-ordered, with a
/// flexible-variant improvement pass.
///
/// # Panics
///
/// Panics if a plan has no variants (cannot happen for
/// [`crate::subgraph::compile_subgraph`] outputs).
pub fn schedule(plans: &[SubgraphPlan], ne_limit: usize) -> Schedule {
    // Priority order: many photons / short duration first (latest placement).
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by(|&a, &b| {
        plans[b]
            .priority()
            .partial_cmp(&plans[a].priority())
            .expect("finite priorities")
            .then(a.cmp(&b))
    });

    let variant_choice = vec![0usize; plans.len()];
    let mut best = pack(plans, ne_limit, &order, &variant_choice);

    // Flexible pass: try upgrading each block to each richer variant; adopt
    // upgrades that shorten the makespan.
    let mut choice = variant_choice;
    let mut improved = true;
    while improved {
        improved = false;
        for b in 0..plans.len() {
            for v in 1..plans[b].variants.len() {
                if plans[b].variants[v].emitters > ne_limit {
                    continue;
                }
                let mut trial = choice.clone();
                trial[b] = v;
                let s = pack(plans, ne_limit, &order, &trial);
                if s.makespan + 1e-9 < best.makespan {
                    best = s;
                    choice = trial;
                    improved = true;
                }
            }
        }
    }
    best
}

fn pack(
    plans: &[SubgraphPlan],
    ne_limit: usize,
    order: &[usize],
    variant_choice: &[usize],
) -> Schedule {
    let mut combined = StepFn::default();
    let mut placements = Vec::with_capacity(plans.len());
    let mut makespan = 0f64;
    for &b in order {
        let v = variant_choice[b];
        let variant = &plans[b].variants[v];
        let rev = {
            let curve = StepFn::new(variant.usage.0.clone(), variant.usage.1.clone());
            curve.reversed(variant.duration)
        };
        // Candidate offsets: 0 and every existing breakpoint; take the first
        // (smallest = latest in real time) that fits the budget.
        let mut candidates: Vec<f64> = vec![0.0];
        candidates.extend(combined.breakpoints().iter().copied());
        candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let offset = candidates
            .into_iter()
            .find(|&o| combined.peak_with(&rev, o) <= ne_limit)
            .unwrap_or({
                // Place after everything currently scheduled.
                makespan
            });
        combined.add_shifted(&rev, offset);
        makespan = makespan.max(offset + variant.duration);
        placements.push(Placement {
            block: b,
            variant: v,
            offset_from_end: offset,
        });
    }
    Schedule {
        placements,
        makespan,
        ne_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::compile_subgraph;
    use epgs_graph::generators;
    use epgs_hardware::HardwareModel;

    fn plan_for(g: &epgs_graph::Graph, base: usize, seed: u64) -> SubgraphPlan {
        let vertices: Vec<usize> = (base..base + g.vertex_count()).collect();
        compile_subgraph(
            g,
            &vertices,
            &HardwareModel::quantum_dot(),
            &epgs_hardware::CompileObjective::Emitters,
            4,
            2,
            seed,
        )
        .unwrap()
    }

    #[test]
    fn stepfn_eval_and_reverse() {
        let f = StepFn::new(vec![0.0, 1.0, 3.0], vec![1, 2, 0]);
        assert_eq!(f.eval(-0.5), 0);
        assert_eq!(f.eval(0.5), 1);
        assert_eq!(f.eval(1.0), 2);
        assert_eq!(f.eval(2.9), 2);
        assert_eq!(f.eval(3.1), 0);
        let r = f.reversed(3.0);
        // rev(s) = f(3 − s): s ∈ [0,2) → f ∈ (1,3] → 2; s ∈ (2,3] → 1.
        assert_eq!(r.eval(0.5), 2);
        assert_eq!(r.eval(1.9), 2);
        assert_eq!(r.eval(2.5), 1);
        assert_eq!(r.eval(3.5), 0);
    }

    #[test]
    fn stepfn_add_shifted() {
        let mut a = StepFn::new(vec![0.0, 2.0], vec![1, 0]);
        let b = StepFn::new(vec![0.0, 1.0], vec![1, 0]);
        a.add_shifted(&b, 1.0);
        assert_eq!(a.eval(0.5), 1);
        assert_eq!(a.eval(1.5), 2);
        assert_eq!(a.eval(2.5), 0);
    }

    #[test]
    fn peak_with_detects_overlap() {
        let a = StepFn::new(vec![0.0, 2.0], vec![2, 0]);
        let b = StepFn::new(vec![0.0, 1.0], vec![2, 0]);
        assert_eq!(a.peak_with(&b, 0.0), 4);
        assert_eq!(a.peak_with(&b, 2.0), 2);
    }

    #[test]
    fn two_path_blocks_run_in_parallel_with_two_emitters() {
        let p1 = plan_for(&generators::path(4), 0, 1);
        let p2 = plan_for(&generators::path(4), 4, 2);
        let plans = vec![p1, p2];
        let wide = schedule(&plans, 2);
        let narrow = schedule(&plans, 1);
        assert!(
            wide.makespan < narrow.makespan - 1e-9,
            "parallel packing must beat serial: {} vs {}",
            wide.makespan,
            narrow.makespan
        );
    }

    #[test]
    fn serial_budget_stacks_blocks() {
        let p1 = plan_for(&generators::path(4), 0, 3);
        let p2 = plan_for(&generators::path(4), 4, 4);
        let d1 = p1.variants[0].duration;
        let d2 = p2.variants[0].duration;
        let plans = vec![p1, p2];
        let s = schedule(&plans, 1);
        assert!(s.makespan >= d1 + d2 - 1e-9);
    }

    #[test]
    fn global_ordering_covers_all_vertices() {
        let p1 = plan_for(&generators::path(3), 0, 5);
        let p2 = plan_for(&generators::cycle(4), 3, 6);
        let plans = vec![p1, p2];
        let s = schedule(&plans, 3);
        let ord = s.global_ordering(&plans);
        let mut sorted = ord.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn higher_priority_blocks_end_later() {
        // A many-photon quick block should be placed at (or nearer) the end
        // than a low-photon, long block when both cannot overlap.
        let quick = plan_for(&generators::path(5), 0, 7); // 5 photons, short
        let slow = plan_for(&generators::complete(4), 5, 8); // 4 photons, long
        let plans = vec![quick, slow];
        let s = schedule(&plans, 1); // force serialization
        let quick_place = s.placements.iter().find(|p| p.block == 0).unwrap();
        let slow_place = s.placements.iter().find(|p| p.block == 1).unwrap();
        assert!(quick_place.offset_from_end <= slow_place.offset_from_end);
    }

    #[test]
    fn schedule_is_deterministic() {
        let plans = vec![
            plan_for(&generators::path(4), 0, 9),
            plan_for(&generators::cycle(4), 4, 10),
            plan_for(&generators::star(4), 8, 11),
        ];
        let a = schedule(&plans, 3);
        let b = schedule(&plans, 3);
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.makespan, b.makespan);
    }
}
