//! OpenQASM-3-flavored export of generation circuits.
//!
//! Emissions are rendered as CNOTs onto `reset` photon wires and measurements
//! as `measure` + conditional Pauli corrections, so the output loads into
//! standard tooling for inspection (the deterministic-scheme constraints are
//! a semantic layer on top).

use crate::circuit::Circuit;
use crate::gate::Op;
use crate::qubit::Qubit;

fn wire(q: Qubit) -> String {
    match q {
        Qubit::Emitter(i) => format!("e[{i}]"),
        Qubit::Photon(i) => format!("p[{i}]"),
    }
}

/// Renders the circuit as OpenQASM-3-style text.
///
/// # Examples
///
/// ```
/// use epgs_circuit::{qasm, Circuit, Op, Qubit};
///
/// let mut c = Circuit::new(1, 1);
/// c.push(Op::H(Qubit::Emitter(0)));
/// c.push(Op::Emit { emitter: 0, photon: 0 });
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("cx e[0], p[0];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 3.0;\n");
    out.push_str(&format!("qubit[{}] e;\n", circuit.num_emitters().max(1)));
    out.push_str(&format!("qubit[{}] p;\n", circuit.num_photons().max(1)));
    out.push_str(&format!("bit[{}] m;\n", circuit.measurement_count().max(1)));
    let mut meas = 0usize;
    for op in circuit.ops() {
        match op {
            Op::H(q) => out.push_str(&format!("h {};\n", wire(*q))),
            Op::S(q) => out.push_str(&format!("s {};\n", wire(*q))),
            Op::Sdg(q) => out.push_str(&format!("sdg {};\n", wire(*q))),
            Op::X(q) => out.push_str(&format!("x {};\n", wire(*q))),
            Op::Y(q) => out.push_str(&format!("y {};\n", wire(*q))),
            Op::Z(q) => out.push_str(&format!("z {};\n", wire(*q))),
            Op::Cz(a, b) => out.push_str(&format!("cz e[{a}], e[{b}];\n")),
            Op::Cnot(a, b) => out.push_str(&format!("cx e[{a}], e[{b}];\n")),
            Op::Emit { emitter, photon } => {
                out.push_str(&format!("// emission of photon {photon}\n"));
                out.push_str(&format!("cx e[{emitter}], p[{photon}];\n"));
            }
            Op::MeasureZ {
                emitter,
                corrections,
            } => {
                out.push_str(&format!("m[{meas}] = measure e[{emitter}];\n"));
                for (q, pauli) in corrections {
                    out.push_str(&format!(
                        "if (m[{meas}]) {} {};\n",
                        format!("{pauli}").to_lowercase(),
                        wire(*q)
                    ));
                }
                out.push_str(&format!("if (m[{meas}]) x e[{emitter}]; // reset\n"));
                meas += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_stabilizer::Pauli;

    #[test]
    fn qasm_contains_header_and_ops() {
        let mut c = Circuit::new(2, 1);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::Cz(0, 1));
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::MeasureZ {
            emitter: 1,
            corrections: vec![(Qubit::Photon(0), Pauli::Z)],
        });
        let s = to_qasm(&c);
        assert!(s.starts_with("OPENQASM 3.0;"));
        assert!(s.contains("cz e[0], e[1];"));
        assert!(s.contains("m[0] = measure e[1];"));
        assert!(s.contains("if (m[0]) z p[0];"));
    }

    #[test]
    fn empty_circuit_is_still_valid_text() {
        let s = to_qasm(&Circuit::new(0, 0));
        assert!(s.contains("qubit[1] e;"));
    }
}
