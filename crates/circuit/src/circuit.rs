//! The generation-circuit container and its structural validation.

use crate::error::CircuitError;
use crate::gate::Op;
use crate::qubit::Qubit;

/// A deterministic graph-state generation circuit over `num_emitters`
/// emitters and `num_photons` photons.
///
/// Ops execute in program order (the timeline module derives actual start
/// times from qubit dependencies). [`Circuit::validate`] enforces the
/// hardware constraints of the deterministic scheme.
///
/// # Examples
///
/// ```
/// use epgs_circuit::{Circuit, Op, Qubit};
///
/// # fn main() -> Result<(), epgs_circuit::CircuitError> {
/// let mut c = Circuit::new(1, 2);
/// c.push(Op::H(Qubit::Emitter(0)));
/// c.push(Op::Emit { emitter: 0, photon: 0 });
/// c.push(Op::Emit { emitter: 0, photon: 1 });
/// c.push(Op::H(Qubit::Emitter(0)));
/// c.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Circuit {
    num_emitters: usize,
    num_photons: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit with the given register sizes.
    pub fn new(num_emitters: usize, num_photons: usize) -> Self {
        Circuit {
            num_emitters,
            num_photons,
            ops: Vec::new(),
        }
    }

    /// Emitter register size.
    pub fn num_emitters(&self) -> usize {
        self.num_emitters
    }

    /// Photon register size.
    pub fn num_photons(&self) -> usize {
        self.num_photons
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends all operations of `other` (registers must be compatible; the
    /// larger register sizes win).
    pub fn extend_from(&mut self, other: &Circuit) {
        self.num_emitters = self.num_emitters.max(other.num_emitters);
        self.num_photons = self.num_photons.max(other.num_photons);
        self.ops.extend(other.ops.iter().cloned());
    }

    /// Number of emitter-emitter two-qubit gates (the paper's #CNOT metric;
    /// CZ counts too since they are local-Clifford interchangeable).
    pub fn ee_two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_ee_two_qubit()).count()
    }

    /// Number of emissions.
    pub fn emission_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_emission()).count()
    }

    /// Number of emitter measurements.
    pub fn measurement_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_measurement()).count()
    }

    /// Number of single-qubit gates.
    pub fn single_qubit_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    Op::H(_) | Op::S(_) | Op::Sdg(_) | Op::X(_) | Op::Y(_) | Op::Z(_)
                )
            })
            .count()
    }

    fn check_qubit(&self, q: Qubit) -> Result<(), CircuitError> {
        let ok = match q {
            Qubit::Emitter(i) => i < self.num_emitters,
            Qubit::Photon(i) => i < self.num_photons,
        };
        if ok {
            Ok(())
        } else {
            Err(CircuitError::QubitOutOfRange {
                qubit: q,
                emitters: self.num_emitters,
                photons: self.num_photons,
            })
        }
    }

    /// Checks the deterministic-scheme constraints:
    ///
    /// 1. every qubit index is in range;
    /// 2. emission is the first gate on each photon, and unique;
    /// 3. two-qubit gates connect distinct emitters only;
    /// 4. every photon in the register is eventually emitted;
    /// 5. measurement corrections target existing qubits (and only already
    ///    emitted photons).
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in program order.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let mut emitted = vec![false; self.num_photons];
        for (idx, op) in self.ops.iter().enumerate() {
            for q in op.timeline_qubits() {
                self.check_qubit(q)?;
            }
            match op {
                Op::H(q) | Op::S(q) | Op::Sdg(q) | Op::X(q) | Op::Y(q) | Op::Z(q) => {
                    if let Qubit::Photon(p) = q {
                        if !emitted[*p] {
                            return Err(CircuitError::PhotonBeforeEmission {
                                photon: *p,
                                op_index: idx,
                            });
                        }
                    }
                }
                Op::Cz(a, b) | Op::Cnot(a, b) => {
                    if a == b {
                        return Err(CircuitError::IdenticalQubits { emitter: *a });
                    }
                }
                Op::Emit { photon, .. } => {
                    if emitted[*photon] {
                        return Err(CircuitError::DoubleEmission { photon: *photon });
                    }
                    emitted[*photon] = true;
                }
                Op::MeasureZ { corrections, .. } => {
                    for &(q, _) in corrections {
                        self.check_qubit(q)?;
                        if let Qubit::Photon(p) = q {
                            if !emitted[p] {
                                return Err(CircuitError::PhotonBeforeEmission {
                                    photon: p,
                                    op_index: idx,
                                });
                            }
                        }
                    }
                }
            }
        }
        if let Some(p) = emitted.iter().position(|&e| !e) {
            return Err(CircuitError::PhotonNeverEmitted { photon: p });
        }
        Ok(())
    }
}

impl std::fmt::Display for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "circuit: {} emitters, {} photons, {} ops",
            self.num_emitters,
            self.num_photons,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epgs_stabilizer::Pauli;

    fn linear_pair() -> Circuit {
        let mut c = Circuit::new(1, 2);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::Emit {
            emitter: 0,
            photon: 1,
        });
        c
    }

    #[test]
    fn valid_circuit_passes() {
        assert_eq!(linear_pair().validate(), Ok(()));
    }

    #[test]
    fn photon_gate_before_emission_rejected() {
        let mut c = Circuit::new(1, 1);
        c.push(Op::H(Qubit::Photon(0)));
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        assert!(matches!(
            c.validate(),
            Err(CircuitError::PhotonBeforeEmission {
                photon: 0,
                op_index: 0
            })
        ));
    }

    #[test]
    fn double_emission_rejected() {
        let mut c = Circuit::new(1, 1);
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        assert!(matches!(
            c.validate(),
            Err(CircuitError::DoubleEmission { photon: 0 })
        ));
    }

    #[test]
    fn unemitted_photon_rejected() {
        let c = Circuit::new(1, 1);
        assert!(matches!(
            c.validate(),
            Err(CircuitError::PhotonNeverEmitted { photon: 0 })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = Circuit::new(1, 1);
        c.push(Op::Emit {
            emitter: 3,
            photon: 0,
        });
        assert!(matches!(
            c.validate(),
            Err(CircuitError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn identical_emitters_rejected() {
        let mut c = Circuit::new(1, 0);
        c.push(Op::Cz(0, 0));
        assert!(matches!(
            c.validate(),
            Err(CircuitError::IdenticalQubits { emitter: 0 })
        ));
    }

    #[test]
    fn correction_on_unemitted_photon_rejected() {
        let mut c = Circuit::new(1, 1);
        c.push(Op::MeasureZ {
            emitter: 0,
            corrections: vec![(Qubit::Photon(0), Pauli::Z)],
        });
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        assert!(matches!(
            c.validate(),
            Err(CircuitError::PhotonBeforeEmission { .. })
        ));
    }

    #[test]
    fn counts_are_consistent() {
        let mut c = linear_pair();
        c.push(Op::Cz(0, 0)); // not validated here, just counted
        c.push(Op::MeasureZ {
            emitter: 0,
            corrections: vec![],
        });
        assert_eq!(c.ee_two_qubit_count(), 1);
        assert_eq!(c.emission_count(), 2);
        assert_eq!(c.measurement_count(), 1);
        assert_eq!(c.single_qubit_count(), 1);
    }

    #[test]
    fn extend_from_merges_registers() {
        let mut a = Circuit::new(1, 1);
        a.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        let mut b = Circuit::new(2, 3);
        b.push(Op::Cz(0, 1));
        a.extend_from(&b);
        assert_eq!(a.num_emitters(), 2);
        assert_eq!(a.num_photons(), 3);
        assert_eq!(a.ops().len(), 2);
    }

    #[test]
    fn display_lists_ops() {
        let c = linear_pair();
        let s = c.to_string();
        assert!(s.contains("EMIT e0 -> p0"));
        assert!(s.contains("1 emitters, 2 photons"));
    }
}
