//! Tableau-backed simulation of generation circuits.
//!
//! The simulator is the compiler's acceptance test: run the circuit forward
//! from all-|0⟩ and check that the photons carry the target graph state while
//! every emitter returns to |0⟩. Measurement outcomes are supplied by the
//! caller (deterministic verification explores both branches); corrections
//! recorded in [`Op::MeasureZ`] are applied on outcome 1, and the measured
//! emitter is reset to |0⟩ so it can be reused.

use epgs_graph::Graph;
use epgs_stabilizer::{verify, Pauli, Tableau};

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Op;
use crate::qubit::Qubit;

/// Maps circuit qubits onto tableau wire indices: emitters first, then
/// photons.
#[derive(Debug, Clone, Copy)]
pub struct WireMap {
    emitters: usize,
}

impl WireMap {
    /// Builds the map for a circuit layout.
    pub fn new(circuit: &Circuit) -> Self {
        WireMap {
            emitters: circuit.num_emitters(),
        }
    }

    /// Tableau wire of a circuit qubit.
    pub fn wire(&self, q: Qubit) -> usize {
        match q {
            Qubit::Emitter(i) => i,
            Qubit::Photon(i) => self.emitters + i,
        }
    }
}

/// Chooses forced outcomes for the random measurements of a run.
pub trait OutcomePolicy {
    /// Forced outcome for the `k`-th measurement op in program order.
    fn outcome(&mut self, k: usize) -> bool;
}

/// Forces every random outcome to a constant.
#[derive(Debug, Clone, Copy)]
pub struct ConstantOutcomes(pub bool);

impl OutcomePolicy for ConstantOutcomes {
    fn outcome(&mut self, _k: usize) -> bool {
        self.0
    }
}

/// Forces outcomes from a bit list (missing entries default to false).
#[derive(Debug, Clone, Default)]
pub struct ListedOutcomes(pub Vec<bool>);

impl OutcomePolicy for ListedOutcomes {
    fn outcome(&mut self, k: usize) -> bool {
        self.0.get(k).copied().unwrap_or(false)
    }
}

/// Runs `circuit` from all-|0⟩ and returns the final tableau
/// (wires: emitters `0..m`, photons `m..m+n`).
///
/// # Errors
///
/// Propagates structural errors discovered mid-run (the circuit should be
/// [`Circuit::validate`]d first, so these indicate compiler bugs).
pub fn run<P: OutcomePolicy>(circuit: &Circuit, outcomes: &mut P) -> Result<Tableau, CircuitError> {
    let map = WireMap::new(circuit);
    let total = circuit.num_emitters() + circuit.num_photons();
    let mut t = Tableau::zero_state(total);
    let mut measurement_index = 0usize;
    for op in circuit.ops() {
        match op {
            Op::H(q) => t.h(map.wire(*q)),
            Op::S(q) => t.s(map.wire(*q)),
            Op::Sdg(q) => t.sdg(map.wire(*q)),
            Op::X(q) => t.px(map.wire(*q)),
            Op::Y(q) => t.py(map.wire(*q)),
            Op::Z(q) => t.pz(map.wire(*q)),
            Op::Cz(a, b) => t.cz(map.wire(Qubit::Emitter(*a)), map.wire(Qubit::Emitter(*b))),
            Op::Cnot(a, b) => t.cnot(map.wire(Qubit::Emitter(*a)), map.wire(Qubit::Emitter(*b))),
            Op::Emit { emitter, photon } => {
                // Photon wire is in |0⟩ by construction; emission is a CNOT
                // from the emitter onto it.
                t.cnot(
                    map.wire(Qubit::Emitter(*emitter)),
                    map.wire(Qubit::Photon(*photon)),
                );
            }
            Op::MeasureZ {
                emitter,
                corrections,
            } => {
                let wire = map.wire(Qubit::Emitter(*emitter));
                let forced = outcomes.outcome(measurement_index);
                // The policy is advisory: a deterministic measurement keeps
                // its true bit regardless of the forced value.
                let bit = t.measure_z(wire, forced).bit();
                if bit {
                    for &(q, p) in corrections {
                        let w = map.wire(q);
                        match p {
                            Pauli::I => {}
                            Pauli::X => t.px(w),
                            Pauli::Y => t.py(w),
                            Pauli::Z => t.pz(w),
                        }
                    }
                    // Reset the emitter |1⟩ → |0⟩ for reuse.
                    t.px(wire);
                }
                measurement_index += 1;
            }
        }
    }
    Ok(t)
}

/// True if running `circuit` under `outcomes` produces exactly |target⟩ on
/// the photon wires with all emitters in |0⟩.
pub fn produces_graph_state<P: OutcomePolicy>(
    circuit: &Circuit,
    target: &Graph,
    outcomes: &mut P,
) -> Result<bool, CircuitError> {
    let t = run(circuit, outcomes)?;
    let map = WireMap::new(circuit);
    let photon_wires: Vec<usize> = (0..circuit.num_photons())
        .map(|p| map.wire(Qubit::Photon(p)))
        .collect();
    Ok(verify::is_graph_state_on(&t, target, &photon_wires))
}

/// Thorough verification: the circuit must produce |target⟩ on the all-zeros
/// branch, the all-ones branch, and several pseudorandom outcome patterns.
///
/// # Errors
///
/// Propagates structural circuit errors.
pub fn verify_circuit(circuit: &Circuit, target: &Graph) -> Result<bool, CircuitError> {
    circuit.validate().map_err(|e| e.clone())?;
    for pattern in 0..6u64 {
        let bits: Vec<bool> = (0..circuit.measurement_count())
            .map(|k| match pattern {
                0 => false,
                1 => true,
                p => ((k as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(p) >> 17) & 1 == 1,
            })
            .collect();
        let mut policy = ListedOutcomes(bits);
        if !produces_graph_state(circuit, target, &mut policy)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_photon_circuit() {
        // H e0; EMIT e0→p0 makes (e0,p0) GHZ₂; H e0; measure e0 with
        // correction Z p0 gives photon |+⟩ = 1-vertex graph state, emitter |0⟩.
        let mut c = Circuit::new(1, 1);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::H(Qubit::Photon(0)));
        // state: graph edge (e0, p0). Now Z-measure e0: removes e0 from the
        // graph; outcome-1 branch needs Z on p0.
        c.push(Op::MeasureZ {
            emitter: 0,
            corrections: vec![(Qubit::Photon(0), Pauli::Z)],
        });
        let target = Graph::new(1); // single-vertex graph state = |+⟩
        assert!(verify_circuit(&c, &target).unwrap());
    }

    #[test]
    fn y_measurement_fuses_star_into_bell_pair() {
        // H e0; EMIT p0; H p0 → edge (e0,p0); EMIT p1; H p1 → star centered
        // at e0 with leaves p0, p1. Measuring e0 in the Y basis applies the
        // LC(e0)-then-delete rule, fusing p0-p1 into a Bell graph state up to
        // local Cliffords on the photons. The Y measurement is realized as
        // S†,H on the emitter followed by MeasureZ.
        let mut c = Circuit::new(1, 2);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::H(Qubit::Photon(0)));
        c.push(Op::Emit {
            emitter: 0,
            photon: 1,
        });
        c.push(Op::H(Qubit::Photon(1)));
        c.push(Op::Sdg(Qubit::Emitter(0)));
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::MeasureZ {
            emitter: 0,
            corrections: vec![(Qubit::Photon(0), Pauli::Z), (Qubit::Photon(1), Pauli::Z)],
        });
        let mut pol = ConstantOutcomes(false);
        let t = run(&c, &mut pol).unwrap();
        // Expected up to single-qubit Cliffords on the photons: reduce to
        // graph form and check the photons are connected to each other and
        // the emitter wire is isolated.
        let mut reduced = t.clone();
        let form = epgs_stabilizer::to_graph_form(&mut reduced).unwrap();
        assert_eq!(form.graph.degree(0), 0, "emitter wire must be free");
        assert!(
            form.graph.has_edge(1, 2),
            "photons must be fused: {:?}",
            form.graph
        );
    }

    #[test]
    fn emission_creates_pendant_vertex() {
        // |+⟩ emitter + emission + H photon = edge (e,p): the core identity
        // the reverse solver relies on.
        let mut c = Circuit::new(1, 1);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::H(Qubit::Photon(0)));
        let mut pol = ConstantOutcomes(false);
        let t = run(&c, &mut pol).unwrap();
        let mut g = Graph::new(2);
        g.add_edge(0, 1).unwrap();
        assert!(t.same_state_as(&Tableau::graph_state(&g)));
    }

    #[test]
    fn wire_map_layout() {
        let c = Circuit::new(3, 2);
        let m = WireMap::new(&c);
        assert_eq!(m.wire(Qubit::Emitter(2)), 2);
        assert_eq!(m.wire(Qubit::Photon(0)), 3);
        assert_eq!(m.wire(Qubit::Photon(1)), 4);
    }

    #[test]
    fn constant_and_listed_policies() {
        let mut c = ConstantOutcomes(true);
        assert!(c.outcome(0) && c.outcome(7));
        let mut l = ListedOutcomes(vec![true, false]);
        assert!(l.outcome(0));
        assert!(!l.outcome(1));
        assert!(!l.outcome(9), "missing entries default to false");
    }

    #[test]
    fn measured_emitter_is_reset_for_reuse() {
        // Emitter measured (random outcome forced to 1), then reused: final
        // state must still be clean.
        let mut c = Circuit::new(1, 1);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::MeasureZ {
            emitter: 0,
            corrections: vec![],
        });
        // After reset the emitter is |0⟩ again; emit a photon normally.
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::H(Qubit::Photon(0)));
        c.push(Op::Sdg(Qubit::Emitter(0)));
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::MeasureZ {
            emitter: 0,
            corrections: vec![(Qubit::Photon(0), Pauli::X)],
        });
        for forced in [false, true] {
            let mut pol = ConstantOutcomes(forced);
            let t = run(&c, &mut pol).unwrap();
            assert!(t.is_valid_state());
        }
    }
}
