//! Circuit IR for deterministic emitter-photonic graph-state generation.
//!
//! A [`Circuit`] is a program over emitter and photon wires obeying the
//! deterministic-scheme constraints (paper §II.B): photons are created by
//! emission CNOTs, never interact with each other, and emitters may be
//! measured (with classical Pauli feed-forward) to be freed for reuse.
//!
//! * [`circuit`] — the container and structural validation;
//! * [`mod@timeline`] — ASAP/ALAP timing, durations, emitter-usage curves;
//! * [`metrics`] — the paper's evaluation metrics (#ee-CNOT, duration,
//!   T_loss, loss probabilities);
//! * [`simulate`] — tableau-backed execution and the acceptance oracle
//!   [`simulate::verify_circuit`];
//! * [`qasm`] — OpenQASM-flavored export.
//!
//! # Examples
//!
//! ```
//! use epgs_circuit::{simulate, Circuit, Op, Qubit};
//! use epgs_graph::Graph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // |+⟩ emitter emits a photon; H on the photon yields the 2-vertex
//! // graph state on (emitter, photon) — here we only check validity.
//! let mut c = Circuit::new(1, 1);
//! c.push(Op::H(Qubit::Emitter(0)));
//! c.push(Op::Emit { emitter: 0, photon: 0 });
//! c.push(Op::H(Qubit::Photon(0)));
//! c.validate()?;
//! let mut outcomes = simulate::ConstantOutcomes(false);
//! let state = simulate::run(&c, &mut outcomes)?;
//! assert!(state.is_valid_state());
//! # Ok(())
//! # }
//! ```

pub mod circuit;
pub mod error;
pub mod gate;
pub mod metrics;
pub mod optimize;
pub mod qasm;
pub mod qubit;
pub mod simulate;
pub mod timeline;

pub use circuit::Circuit;
pub use error::CircuitError;
pub use gate::Op;
pub use metrics::{circuit_metrics, CircuitMetrics};
pub use optimize::cancel_inverse_pairs;
pub use qubit::Qubit;
pub use timeline::{timeline, usage_curve, Timeline};
