//! Peephole optimization of generation circuits.
//!
//! The time-reversed solver emits rotation bookkeeping that often cancels
//! (H·H, S·S†, X·X, …) once the op list is read forward. This pass removes
//! adjacent inverse pairs of single-qubit gates per qubit wire — it never
//! touches two-qubit gates, emissions, or measurements, so every metric the
//! paper optimizes is only improved (fewer gates, never more).

use crate::circuit::Circuit;
use crate::gate::Op;
use crate::qubit::Qubit;

fn single_qubit_target(op: &Op) -> Option<Qubit> {
    match *op {
        Op::H(q) | Op::S(q) | Op::Sdg(q) | Op::X(q) | Op::Y(q) | Op::Z(q) => Some(q),
        _ => None,
    }
}

fn cancels(a: &Op, b: &Op) -> bool {
    matches!(
        (a, b),
        (Op::H(x), Op::H(y)) if x == y
    ) || matches!((a, b), (Op::S(x), Op::Sdg(y)) if x == y)
        || matches!((a, b), (Op::Sdg(x), Op::S(y)) if x == y)
        || matches!((a, b), (Op::X(x), Op::X(y)) if x == y)
        || matches!((a, b), (Op::Y(x), Op::Y(y)) if x == y)
        || matches!((a, b), (Op::Z(x), Op::Z(y)) if x == y)
}

/// Removes adjacent inverse single-qubit gate pairs (per qubit, across
/// unrelated interleaved ops). Returns the number of ops removed.
///
/// # Examples
///
/// ```
/// use epgs_circuit::{optimize, Circuit, Op, Qubit};
///
/// let mut c = Circuit::new(1, 1);
/// c.push(Op::H(Qubit::Emitter(0)));
/// c.push(Op::H(Qubit::Emitter(0)));
/// c.push(Op::Emit { emitter: 0, photon: 0 });
/// assert_eq!(optimize::cancel_inverse_pairs(&mut c), 2);
/// assert_eq!(c.ops().len(), 1);
/// ```
pub fn cancel_inverse_pairs(circuit: &mut Circuit) -> usize {
    let mut removed_total = 0;
    loop {
        let ops = circuit.ops();
        let mut keep = vec![true; ops.len()];
        // Last still-kept single-qubit op index per qubit since the qubit's
        // last non-single-qubit op.
        let mut pending: std::collections::BTreeMap<Qubit, usize> =
            std::collections::BTreeMap::new();
        let mut removed = 0;
        for (i, op) in ops.iter().enumerate() {
            match single_qubit_target(op) {
                Some(q) => {
                    if let Some(&j) = pending.get(&q) {
                        if cancels(&ops[j], op) {
                            keep[i] = false;
                            keep[j] = false;
                            pending.remove(&q);
                            removed += 2;
                            continue;
                        }
                    }
                    pending.insert(q, i);
                }
                None => {
                    // Any multi-qubit/measurement op fences its qubits.
                    for q in op.timeline_qubits() {
                        pending.remove(&q);
                    }
                    if let Op::MeasureZ { corrections, .. } = op {
                        for &(q, _) in corrections {
                            pending.remove(&q);
                        }
                    }
                }
            }
        }
        if removed == 0 {
            break;
        }
        removed_total += removed;
        let kept: Vec<Op> = ops
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(op, _)| op.clone())
            .collect();
        let mut next = Circuit::new(circuit.num_emitters(), circuit.num_photons());
        for op in kept {
            next.push(op);
        }
        *circuit = next;
    }
    removed_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    #[test]
    fn cancels_hh_pair_across_unrelated_ops() {
        let mut c = Circuit::new(2, 1);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::H(Qubit::Emitter(1))); // unrelated, stays
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::Emit {
            emitter: 1,
            photon: 0,
        });
        assert_eq!(cancel_inverse_pairs(&mut c), 2);
        assert_eq!(c.ops().len(), 2);
    }

    #[test]
    fn s_sdg_cancels_but_s_s_does_not() {
        let mut c = Circuit::new(1, 0);
        c.push(Op::S(Qubit::Emitter(0)));
        c.push(Op::Sdg(Qubit::Emitter(0)));
        assert_eq!(cancel_inverse_pairs(&mut c), 2);
        let mut c = Circuit::new(1, 0);
        c.push(Op::S(Qubit::Emitter(0)));
        c.push(Op::S(Qubit::Emitter(0)));
        assert_eq!(cancel_inverse_pairs(&mut c), 0);
    }

    #[test]
    fn two_qubit_ops_fence_cancellation() {
        let mut c = Circuit::new(2, 0);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::Cz(0, 1));
        c.push(Op::H(Qubit::Emitter(0)));
        assert_eq!(cancel_inverse_pairs(&mut c), 0);
    }

    #[test]
    fn cascading_cancellation() {
        // H S S† H collapses entirely (inner pair exposes the outer pair).
        let mut c = Circuit::new(1, 0);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::S(Qubit::Emitter(0)));
        c.push(Op::Sdg(Qubit::Emitter(0)));
        c.push(Op::H(Qubit::Emitter(0)));
        assert_eq!(cancel_inverse_pairs(&mut c), 4);
        assert!(c.ops().is_empty());
    }

    #[test]
    fn optimized_circuit_still_produces_same_state() {
        // Hand-built 2-photon path circuit with cancellable decoration.
        let mut c = Circuit::new(1, 2);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::S(Qubit::Emitter(0)));
        c.push(Op::Sdg(Qubit::Emitter(0))); // cancels
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::H(Qubit::Photon(0)));
        c.push(Op::Emit {
            emitter: 0,
            photon: 1,
        });
        c.push(Op::H(Qubit::Photon(1)));
        c.push(Op::Z(Qubit::Photon(1)));
        c.push(Op::Z(Qubit::Photon(1))); // cancels
        c.push(Op::Sdg(Qubit::Emitter(0)));
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::MeasureZ {
            emitter: 0,
            corrections: vec![
                (Qubit::Photon(0), epgs_stabilizer::Pauli::Z),
                (Qubit::Photon(1), epgs_stabilizer::Pauli::Z),
            ],
        });
        let mut before0 = simulate::ConstantOutcomes(false);
        let reference = simulate::run(&c, &mut before0).unwrap();
        let removed = cancel_inverse_pairs(&mut c);
        assert_eq!(removed, 4);
        let mut after0 = simulate::ConstantOutcomes(false);
        let optimized = simulate::run(&c, &mut after0).unwrap();
        assert!(reference.same_state_as(&optimized));
    }
}
