//! Error types for circuit construction and validation.

use crate::qubit::Qubit;

/// Violations of the deterministic generation constraints (paper §II.B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A qubit index exceeded the declared register size.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// Emitter register size.
        emitters: usize,
        /// Photon register size.
        photons: usize,
    },
    /// A gate touched a photon before its emission.
    PhotonBeforeEmission {
        /// The photon index.
        photon: usize,
        /// Index of the offending op in the circuit.
        op_index: usize,
    },
    /// A photon was emitted twice.
    DoubleEmission {
        /// The photon index.
        photon: usize,
    },
    /// A photon never got emitted.
    PhotonNeverEmitted {
        /// The photon index.
        photon: usize,
    },
    /// A two-qubit gate was requested with identical endpoints.
    IdenticalQubits {
        /// The repeated emitter index.
        emitter: usize,
    },
    /// Simulation needed a measurement outcome that was not supplied.
    MissingOutcome {
        /// Index of the measurement among measurements.
        measurement_index: usize,
    },
    /// A forced measurement outcome contradicted a deterministic result.
    ContradictoryOutcome {
        /// Index of the measurement among measurements.
        measurement_index: usize,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::QubitOutOfRange {
                qubit,
                emitters,
                photons,
            } => write!(
                f,
                "qubit {qubit} out of range ({emitters} emitters, {photons} photons)"
            ),
            CircuitError::PhotonBeforeEmission { photon, op_index } => write!(
                f,
                "op {op_index} touches photon p{photon} before its emission"
            ),
            CircuitError::DoubleEmission { photon } => {
                write!(f, "photon p{photon} emitted more than once")
            }
            CircuitError::PhotonNeverEmitted { photon } => {
                write!(f, "photon p{photon} is never emitted")
            }
            CircuitError::IdenticalQubits { emitter } => {
                write!(f, "two-qubit gate on identical emitter e{emitter}")
            }
            CircuitError::MissingOutcome { measurement_index } => {
                write!(f, "no outcome supplied for measurement {measurement_index}")
            }
            CircuitError::ContradictoryOutcome { measurement_index } => write!(
                f,
                "forced outcome contradicts deterministic measurement {measurement_index}"
            ),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_qubit() {
        let e = CircuitError::PhotonBeforeEmission {
            photon: 2,
            op_index: 5,
        };
        assert!(e.to_string().contains("p2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
