//! The two qubit species of deterministic graph-state generation.

/// A qubit in an emitter-photonic generation circuit.
///
/// Emitters are matter qubits (quantum dots, color centers, …) that interact
/// with each other and emit photons; photons exist only after their emission
/// and afterwards accept single-qubit gates only (paper §II.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Qubit {
    /// The `i`-th emitter.
    Emitter(usize),
    /// The `i`-th photon.
    Photon(usize),
}

impl Qubit {
    /// True for emitter qubits.
    pub fn is_emitter(self) -> bool {
        matches!(self, Qubit::Emitter(_))
    }

    /// True for photon qubits.
    pub fn is_photon(self) -> bool {
        matches!(self, Qubit::Photon(_))
    }

    /// The species-local index.
    pub fn index(self) -> usize {
        match self {
            Qubit::Emitter(i) | Qubit::Photon(i) => i,
        }
    }
}

impl std::fmt::Display for Qubit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Qubit::Emitter(i) => write!(f, "e{i}"),
            Qubit::Photon(i) => write!(f, "p{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn species_predicates() {
        assert!(Qubit::Emitter(0).is_emitter());
        assert!(!Qubit::Emitter(0).is_photon());
        assert!(Qubit::Photon(3).is_photon());
        assert_eq!(Qubit::Photon(3).index(), 3);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Qubit::Emitter(1).to_string(), "e1");
        assert_eq!(Qubit::Photon(0).to_string(), "p0");
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut v = vec![Qubit::Photon(0), Qubit::Emitter(1), Qubit::Emitter(0)];
        v.sort();
        assert_eq!(
            v,
            vec![Qubit::Emitter(0), Qubit::Emitter(1), Qubit::Photon(0)]
        );
    }
}
