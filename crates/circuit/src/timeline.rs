//! Timing analysis of generation circuits.
//!
//! Ops run as early as their qubit dependencies allow (ASAP list schedule);
//! the circuit duration is the makespan. For the photon-loss objective the
//! paper prefers emissions *as late as possible*, so an ALAP pass computes,
//! within the same makespan, the latest legal time of every op; T_loss uses
//! the ALAP emission times (§IV.B, §IV.C).

use std::collections::BTreeMap;

use epgs_hardware::HardwareModel;

use crate::circuit::Circuit;
use crate::gate::Op;
use crate::qubit::Qubit;

/// Start/end times for every op, plus derived quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// ASAP start time per op.
    pub start: Vec<f64>,
    /// ASAP end time per op.
    pub end: Vec<f64>,
    /// ALAP start time per op (same makespan).
    pub alap_start: Vec<f64>,
    /// ALAP end time per op.
    pub alap_end: Vec<f64>,
    /// Total circuit duration (makespan) in τ.
    pub duration: f64,
    /// ALAP emission time of each photon, indexed by photon id.
    pub emission_time: Vec<f64>,
}

/// Duration of one op under a hardware model.
pub fn op_duration(hw: &HardwareModel, op: &Op) -> f64 {
    match op {
        Op::H(q) | Op::S(q) | Op::Sdg(q) | Op::X(q) | Op::Y(q) | Op::Z(q) => {
            if q.is_emitter() {
                hw.emitter_single
            } else {
                hw.photon_single
            }
        }
        Op::Cz(..) | Op::Cnot(..) => hw.ee_two_qubit,
        Op::Emit { .. } => hw.emission,
        Op::MeasureZ { .. } => hw.measurement,
    }
}

/// Computes the ASAP/ALAP timeline of a circuit.
///
/// # Panics
///
/// Panics if an emission references a photon index ≥ `circuit.num_photons()`
/// (run [`Circuit::validate`] first).
pub fn timeline(hw: &HardwareModel, circuit: &Circuit) -> Timeline {
    let ops = circuit.ops();
    let mut ready: BTreeMap<Qubit, f64> = BTreeMap::new();
    let mut start = vec![0.0; ops.len()];
    let mut end = vec![0.0; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        let dur = op_duration(hw, op);
        let s = op
            .timeline_qubits()
            .iter()
            .map(|q| ready.get(q).copied().unwrap_or(0.0))
            .fold(0.0, f64::max);
        start[i] = s;
        end[i] = s + dur;
        for q in op.timeline_qubits() {
            ready.insert(q, end[i]);
        }
    }
    let duration = end.iter().copied().fold(0.0, f64::max);

    // ALAP: walk backwards, each op ends as late as its successors allow.
    let mut late: BTreeMap<Qubit, f64> = BTreeMap::new();
    let mut alap_start = vec![0.0; ops.len()];
    let mut alap_end = vec![0.0; ops.len()];
    for (i, op) in ops.iter().enumerate().rev() {
        let dur = op_duration(hw, op);
        let e = op
            .timeline_qubits()
            .iter()
            .map(|q| late.get(q).copied().unwrap_or(duration))
            .fold(f64::INFINITY, f64::min);
        alap_end[i] = e;
        alap_start[i] = e - dur;
        for q in op.timeline_qubits() {
            late.insert(q, alap_start[i]);
        }
    }

    let mut emission_time = vec![0.0; circuit.num_photons()];
    for (i, op) in ops.iter().enumerate() {
        if let Op::Emit { photon, .. } = op {
            emission_time[*photon] = alap_end[i];
        }
    }

    Timeline {
        start,
        end,
        alap_start,
        alap_end,
        duration,
        emission_time,
    }
}

/// The emitter-usage step curve of a circuit (paper Fig. 5): at each event
/// time, how many emitters are *active* — between their first and last
/// scheduled op (ASAP times).
///
/// Returns `(times, counts)` where `counts[k]` holds on `[times[k],
/// times[k+1])`.
pub fn usage_curve(hw: &HardwareModel, circuit: &Circuit) -> (Vec<f64>, Vec<usize>) {
    let tl = timeline(hw, circuit);
    let ops = circuit.ops();
    let mut first: BTreeMap<usize, f64> = BTreeMap::new();
    let mut last: BTreeMap<usize, f64> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        for q in op.timeline_qubits() {
            if let Qubit::Emitter(e) = q {
                first
                    .entry(e)
                    .and_modify(|t| *t = t.min(tl.start[i]))
                    .or_insert(tl.start[i]);
                last.entry(e)
                    .and_modify(|t| *t = t.max(tl.end[i]))
                    .or_insert(tl.end[i]);
            }
        }
    }
    let mut events: Vec<(f64, isize)> = Vec::new();
    for (&e, &s) in &first {
        events.push((s, 1));
        events.push((last[&e], -1));
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite times")
            .then(b.1.cmp(&a.1))
    });
    let mut times = Vec::new();
    let mut counts = Vec::new();
    let mut cur: isize = 0;
    for (t, d) in events {
        cur += d;
        if times.last().is_some_and(|&lt: &f64| (lt - t).abs() < 1e-12) {
            *counts.last_mut().expect("non-empty") = cur.max(0) as usize;
        } else {
            times.push(t);
            counts.push(cur.max(0) as usize);
        }
    }
    (times, counts)
}

/// Maximum number of simultaneously active emitters.
pub fn peak_emitter_usage(hw: &HardwareModel, circuit: &Circuit) -> usize {
    usage_curve(hw, circuit).1.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareModel {
        HardwareModel::quantum_dot()
    }

    fn simple_circuit() -> Circuit {
        let mut c = Circuit::new(2, 2);
        c.push(Op::H(Qubit::Emitter(0))); // 0.05
        c.push(Op::H(Qubit::Emitter(1))); // 0.05, parallel
        c.push(Op::Cz(0, 1)); // 1.0
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        }); // 0.1
        c.push(Op::Emit {
            emitter: 1,
            photon: 1,
        }); // 0.1, parallel
        c
    }

    #[test]
    fn asap_parallelism() {
        let tl = timeline(&hw(), &simple_circuit());
        // The two H's run in parallel at t=0.
        assert_eq!(tl.start[0], 0.0);
        assert_eq!(tl.start[1], 0.0);
        // CZ waits for both.
        assert!((tl.start[2] - 0.05).abs() < 1e-12);
        // Emissions run in parallel after the CZ.
        assert!((tl.start[3] - 1.05).abs() < 1e-12);
        assert!((tl.start[4] - 1.05).abs() < 1e-12);
        assert!((tl.duration - 1.15).abs() < 1e-12);
    }

    #[test]
    fn alap_equals_asap_on_critical_path() {
        let tl = timeline(&hw(), &simple_circuit());
        // Every op here is on a critical path of equal length, so ALAP = ASAP.
        for i in 0..5 {
            assert!((tl.alap_start[i] - tl.start[i]).abs() < 1e-9, "op {i}");
        }
    }

    #[test]
    fn alap_delays_off_critical_emissions() {
        // Emitter 0: emit early then idle while emitter pair (1,2) does a CZ.
        let mut c = Circuit::new(3, 1);
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        }); // 0.1
        c.push(Op::Cz(1, 2)); // 1.0 — the critical path
        let tl = timeline(&hw(), &c);
        assert!((tl.duration - 1.0).abs() < 1e-12);
        // ASAP emits at 0.1; ALAP pushes the emission to the end.
        assert!((tl.end[0] - 0.1).abs() < 1e-12);
        assert!((tl.emission_time[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn emission_dependency_chain() {
        // Same emitter emits twice: second emission waits for the first.
        let mut c = Circuit::new(1, 2);
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::Emit {
            emitter: 0,
            photon: 1,
        });
        let tl = timeline(&hw(), &c);
        assert!((tl.start[1] - 0.1).abs() < 1e-12);
        assert!((tl.duration - 0.2).abs() < 1e-12);
    }

    #[test]
    fn usage_curve_counts_active_emitters() {
        let (times, counts) = usage_curve(&hw(), &simple_circuit());
        assert_eq!(times[0], 0.0);
        // Both emitters active from the start, until the end.
        assert_eq!(counts[0], 2);
        assert_eq!(peak_emitter_usage(&hw(), &simple_circuit()), 2);
        // Final event drops to 0.
        assert_eq!(*counts.last().unwrap(), 0);
    }

    #[test]
    fn usage_curve_sequential_emitters() {
        // Emitter 0 works, then emitter 1 — peak usage 1… but intervals are
        // [first op, last op], so disjoint single-op intervals never overlap.
        let mut c = Circuit::new(2, 2);
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::H(Qubit::Photon(0)));
        c.push(Op::Emit {
            emitter: 1,
            photon: 1,
        });
        let tl = timeline(&hw(), &c);
        // Photon-1 emission does not depend on emitter 0: runs at t=0 too.
        assert_eq!(tl.start[2], 0.0);
        assert_eq!(peak_emitter_usage(&hw(), &c), 2);
    }

    #[test]
    fn measurement_occupies_emitter_time() {
        let mut c = Circuit::new(1, 1);
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::MeasureZ {
            emitter: 0,
            corrections: vec![],
        });
        let tl = timeline(&hw(), &c);
        assert!((tl.duration - 0.3).abs() < 1e-12); // 0.1 emit + 0.2 measure
    }

    #[test]
    fn op_durations_follow_model() {
        let hw = hw();
        assert_eq!(op_duration(&hw, &Op::Cz(0, 1)), 1.0);
        assert_eq!(
            op_duration(
                &hw,
                &Op::Emit {
                    emitter: 0,
                    photon: 0
                }
            ),
            0.1
        );
        assert_eq!(op_duration(&hw, &Op::H(Qubit::Emitter(0))), 0.05);
        assert_eq!(op_duration(&hw, &Op::H(Qubit::Photon(0))), 0.01);
    }
}
