//! The gate set of emitter-photonic generation circuits.

use epgs_stabilizer::Pauli;

use crate::qubit::Qubit;

/// One operation of a generation circuit.
///
/// The set mirrors the paper's circuit model (§II.B): single-qubit Cliffords
/// anywhere, two-qubit gates between emitters only, the emission CNOT as the
/// first gate on each photon, and Z-basis emitter measurements with
/// classically-controlled Pauli corrections (these arise from time-reversed
/// measurements and enable emitter reuse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Hadamard.
    H(Qubit),
    /// Phase gate S.
    S(Qubit),
    /// Inverse phase gate S†.
    Sdg(Qubit),
    /// Pauli X.
    X(Qubit),
    /// Pauli Y.
    Y(Qubit),
    /// Pauli Z.
    Z(Qubit),
    /// Emitter-emitter CZ.
    Cz(usize, usize),
    /// Emitter-emitter CNOT (control, target).
    Cnot(usize, usize),
    /// Photon emission: CNOT from emitter onto a fresh photon in |0⟩.
    Emit {
        /// The emitting emitter.
        emitter: usize,
        /// The emitted photon (must not have appeared before).
        photon: usize,
    },
    /// Z-basis measurement of an emitter; on outcome 1 the listed Pauli
    /// corrections are applied (classical feed-forward, zero duration).
    /// The emitter is projected onto |0⟩/|1⟩ and reset to |0⟩ for reuse.
    MeasureZ {
        /// The measured emitter.
        emitter: usize,
        /// Corrections applied when the outcome is 1.
        corrections: Vec<(Qubit, Pauli)>,
    },
}

impl Op {
    /// Qubits this operation occupies on the hardware timeline. Corrections
    /// are classical frame updates and do not occupy their targets.
    pub fn timeline_qubits(&self) -> Vec<Qubit> {
        match *self {
            Op::H(q) | Op::S(q) | Op::Sdg(q) | Op::X(q) | Op::Y(q) | Op::Z(q) => vec![q],
            Op::Cz(a, b) | Op::Cnot(a, b) => vec![Qubit::Emitter(a), Qubit::Emitter(b)],
            Op::Emit { emitter, photon } => vec![Qubit::Emitter(emitter), Qubit::Photon(photon)],
            Op::MeasureZ { emitter, .. } => vec![Qubit::Emitter(emitter)],
        }
    }

    /// True for the two-qubit emitter-emitter entangling gates — the
    /// expensive operations the compiler minimizes.
    pub fn is_ee_two_qubit(&self) -> bool {
        matches!(self, Op::Cz(..) | Op::Cnot(..))
    }

    /// True for photon emissions.
    pub fn is_emission(&self) -> bool {
        matches!(self, Op::Emit { .. })
    }

    /// True for emitter measurements.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Op::MeasureZ { .. })
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::H(q) => write!(f, "H {q}"),
            Op::S(q) => write!(f, "S {q}"),
            Op::Sdg(q) => write!(f, "Sdg {q}"),
            Op::X(q) => write!(f, "X {q}"),
            Op::Y(q) => write!(f, "Y {q}"),
            Op::Z(q) => write!(f, "Z {q}"),
            Op::Cz(a, b) => write!(f, "CZ e{a} e{b}"),
            Op::Cnot(a, b) => write!(f, "CNOT e{a} e{b}"),
            Op::Emit { emitter, photon } => write!(f, "EMIT e{emitter} -> p{photon}"),
            Op::MeasureZ {
                emitter,
                corrections,
            } => {
                write!(f, "MEASURE e{emitter}")?;
                if !corrections.is_empty() {
                    write!(f, " [if 1:")?;
                    for (q, p) in corrections {
                        write!(f, " {p}{q}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ee_two_qubit_classification() {
        assert!(Op::Cz(0, 1).is_ee_two_qubit());
        assert!(Op::Cnot(0, 1).is_ee_two_qubit());
        assert!(!Op::Emit {
            emitter: 0,
            photon: 0
        }
        .is_ee_two_qubit());
        assert!(!Op::H(Qubit::Photon(0)).is_ee_two_qubit());
    }

    #[test]
    fn timeline_qubits_of_emission() {
        let op = Op::Emit {
            emitter: 1,
            photon: 2,
        };
        assert_eq!(
            op.timeline_qubits(),
            vec![Qubit::Emitter(1), Qubit::Photon(2)]
        );
    }

    #[test]
    fn measurement_occupies_emitter_only() {
        let op = Op::MeasureZ {
            emitter: 0,
            corrections: vec![(Qubit::Photon(3), Pauli::Z)],
        };
        assert_eq!(op.timeline_qubits(), vec![Qubit::Emitter(0)]);
        assert!(op.is_measurement());
    }

    #[test]
    fn display_is_readable() {
        let op = Op::MeasureZ {
            emitter: 2,
            corrections: vec![(Qubit::Photon(1), Pauli::Z)],
        };
        assert_eq!(op.to_string(), "MEASURE e2 [if 1: Zp1]");
        assert_eq!(
            Op::Emit {
                emitter: 0,
                photon: 4
            }
            .to_string(),
            "EMIT e0 -> p4"
        );
    }
}
