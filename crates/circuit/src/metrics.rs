//! The evaluation metrics of the paper, computed from a circuit.

use epgs_hardware::{loss_report, HardwareModel, LossReport, ObjectiveFigures};

use crate::circuit::Circuit;
use crate::timeline::{peak_emitter_usage, timeline};

/// All figures the paper's evaluation reports for one compiled circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitMetrics {
    /// Emitter-emitter two-qubit gate count (Fig. 10 a–c).
    pub ee_two_qubit_count: usize,
    /// Circuit duration in τ (Fig. 10 d–f).
    pub duration: f64,
    /// Mean photon storage time T_loss (§IV.B).
    pub t_loss: f64,
    /// Aggregate loss figures (Fig. 11 a).
    pub loss: LossReport,
    /// Peak number of simultaneously active emitters.
    pub peak_emitters: usize,
    /// Photon emissions (always = photon count for valid circuits).
    pub emissions: usize,
    /// Emitter measurements (time-reversed measurements in forward time).
    pub measurements: usize,
    /// Single-qubit gate count.
    pub single_qubit_gates: usize,
    /// State-fidelity estimate from imperfect emitter-emitter gates:
    /// `ee_fidelity ^ ee_two_qubit_count` (paper §III Challenge 2).
    pub ee_fidelity_estimate: f64,
}

impl CircuitMetrics {
    /// The figures a [`epgs_hardware::CompileObjective`] scores, as
    /// measured by these metrics — the single conversion point between
    /// circuit metrics and objective inputs.
    pub fn objective_figures(&self) -> ObjectiveFigures {
        ObjectiveFigures {
            ee_cnots: self.ee_two_qubit_count,
            duration: self.duration,
            t_loss: self.t_loss,
            mean_photon_loss: self.loss.mean_photon_loss,
        }
    }
}

/// Computes every reported metric for `circuit` under `hw`.
///
/// # Examples
///
/// ```
/// use epgs_circuit::{metrics, Circuit, Op, Qubit};
/// use epgs_hardware::HardwareModel;
///
/// let mut c = Circuit::new(1, 1);
/// c.push(Op::H(Qubit::Emitter(0)));
/// c.push(Op::Emit { emitter: 0, photon: 0 });
/// let m = metrics::circuit_metrics(&HardwareModel::quantum_dot(), &c);
/// assert_eq!(m.ee_two_qubit_count, 0);
/// assert_eq!(m.emissions, 1);
/// ```
pub fn circuit_metrics(hw: &HardwareModel, circuit: &Circuit) -> CircuitMetrics {
    let tl = timeline(hw, circuit);
    let loss = loss_report(hw, &tl.emission_time, tl.duration);
    CircuitMetrics {
        ee_two_qubit_count: circuit.ee_two_qubit_count(),
        duration: tl.duration,
        t_loss: loss.mean_exposure,
        peak_emitters: peak_emitter_usage(hw, circuit),
        emissions: circuit.emission_count(),
        measurements: circuit.measurement_count(),
        single_qubit_gates: circuit.single_qubit_count(),
        ee_fidelity_estimate: hw.ee_fidelity.powi(circuit.ee_two_qubit_count() as i32),
        loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Op;
    use crate::qubit::Qubit;

    #[test]
    fn metrics_of_two_emitter_circuit() {
        let hw = HardwareModel::quantum_dot();
        let mut c = Circuit::new(2, 2);
        c.push(Op::H(Qubit::Emitter(0)));
        c.push(Op::H(Qubit::Emitter(1)));
        c.push(Op::Cz(0, 1));
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::Emit {
            emitter: 1,
            photon: 1,
        });
        let m = circuit_metrics(&hw, &c);
        assert_eq!(m.ee_two_qubit_count, 1);
        assert_eq!(m.emissions, 2);
        assert_eq!(m.peak_emitters, 2);
        assert!((m.duration - 1.15).abs() < 1e-12);
        // Both photons emitted at the very end: T_loss = 0.
        assert!(m.t_loss.abs() < 1e-12);
        assert!(m.loss.any_photon_loss.abs() < 1e-12);
        // One ee gate at 0.99 fidelity.
        assert!((m.ee_fidelity_estimate - 0.99).abs() < 1e-12);
    }

    #[test]
    fn t_loss_reflects_early_emission() {
        let hw = HardwareModel::quantum_dot();
        let mut c = Circuit::new(2, 1);
        c.push(Op::Emit {
            emitter: 0,
            photon: 0,
        });
        c.push(Op::Cz(0, 1)); // keeps emitter 0 busy → emission cannot slide later
        let m = circuit_metrics(&hw, &c);
        assert!(m.t_loss > 0.9, "photon waits for the CZ: {}", m.t_loss);
        assert!(m.loss.mean_photon_loss > 0.0);
    }
}
