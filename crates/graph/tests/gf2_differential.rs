//! Differential kernel-oracle harness for the GF(2) layer.
//!
//! Every fast path in `epgs_graph::gf2` ships with a retained scalar
//! implementation; this suite drives both over adversarial shapes — exact
//! word boundaries (63/64/65/127/128/129), all-zero and full-rank matrices,
//! rank-deficient systems, and random instances via the proptest shim — and
//! requires bit-for-bit agreement: same reduced matrices, same pivot lists,
//! same solutions and null-space bases, same kernel outputs.

use proptest::prelude::*;

use epgs_graph::gf2::{kernels, BitMatrix, BitVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bit lengths that straddle word boundaries plus a couple of bulk sizes.
const ADVERSARIAL_LENS: [usize; 10] = [1, 63, 64, 65, 127, 128, 129, 255, 256, 513];

/// Row/col shapes that straddle the `rref_small` cutoff (64 rows / 128 cols)
/// and the word boundary in both dimensions.
const ADVERSARIAL_SHAPES: [(usize, usize); 12] = [
    (63, 63),
    (64, 64),
    (65, 65),
    (65, 64),
    (64, 129),
    (65, 128),
    (127, 127),
    (128, 128),
    (129, 129),
    (129, 63),
    (63, 129),
    (200, 150),
];

fn random_bitvec(len: usize, rng: &mut StdRng) -> BitVec {
    let mut v = BitVec::zeros(len);
    for i in 0..len {
        if rng.gen::<bool>() {
            v.set(i, true);
        }
    }
    v
}

fn random_matrix(rows: usize, cols: usize, density_num: u32, rng: &mut StdRng) -> BitMatrix {
    let mut m = BitMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen::<u32>() % 8 < density_num {
                m.set(r, c, true);
            }
        }
    }
    m
}

/// Reduces `m` along both elimination paths and asserts bit-identity of the
/// reduced matrix, the pivot list, every augmented-column solution read, and
/// the null-space basis.
fn assert_rref_paths_agree(m: &BitMatrix, lead_cols: usize, label: &str) {
    let mut via_blocked = m.clone();
    let mut via_wordloop = m.clone();
    let mut piv_b = Vec::new();
    let mut piv_w = Vec::new();
    via_blocked.rref_within_blocked_into(lead_cols, &mut piv_b);
    via_wordloop.rref_within_wordloop_into(lead_cols, &mut piv_w);
    assert_eq!(piv_b, piv_w, "{label}: pivot lists diverge");
    assert_eq!(
        via_blocked, via_wordloop,
        "{label}: reduced matrices diverge"
    );
    for j in 0..m.cols() - lead_cols {
        assert_eq!(
            via_blocked.solution_from_reduced(&piv_b, lead_cols, j),
            via_wordloop.solution_from_reduced(&piv_w, lead_cols, j),
            "{label}: solution read {j} diverges"
        );
    }
    assert_eq!(
        via_blocked.null_space_from_reduced(&piv_b, lead_cols),
        via_wordloop.null_space_from_reduced(&piv_w, lead_cols),
        "{label}: null-space bases diverge"
    );
}

#[test]
fn bitvec_kernels_match_scalar_on_word_boundaries() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for &len in &ADVERSARIAL_LENS {
        for case in 0..3 {
            let (a, b) = match case {
                0 => (BitVec::zeros(len), BitVec::zeros(len)), // all-zero
                1 => {
                    // all-ones
                    let mut a = BitVec::zeros(len);
                    let mut b = BitVec::zeros(len);
                    for i in 0..len {
                        a.set(i, true);
                        b.set(i, true);
                    }
                    (a, b)
                }
                _ => (random_bitvec(len, &mut rng), random_bitvec(len, &mut rng)),
            };
            assert_eq!(
                kernels::scalar::parity_and_words(a.words(), b.words()),
                kernels::blocked::parity_and_words(a.words(), b.words()),
                "parity_and len {len} case {case}"
            );
            assert_eq!(
                kernels::scalar::count_ones_words(a.words()),
                kernels::blocked::count_ones_words(a.words()),
                "count_ones len {len} case {case}"
            );
            assert_eq!(
                kernels::scalar::is_zero_words(a.words()),
                kernels::blocked::is_zero_words(a.words()),
                "is_zero len {len} case {case}"
            );
            let mut xs = a.clone();
            let mut xb = a.clone();
            kernels::scalar::xor_words(xs.words_mut(), b.words());
            kernels::blocked::xor_words(xb.words_mut(), b.words());
            assert_eq!(xs, xb, "xor len {len} case {case}");
            let mut os = a.clone();
            let mut ob = a.clone();
            kernels::scalar::or_words(os.words_mut(), b.words());
            kernels::blocked::or_words(ob.words_mut(), b.words());
            assert_eq!(os, ob, "or len {len} case {case}");
        }
    }
}

#[test]
fn rref_blocked_matches_wordloop_on_adversarial_shapes() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for &(rows, cols) in &ADVERSARIAL_SHAPES {
        // All-zero: no pivots on either path.
        assert_rref_paths_agree(
            &BitMatrix::zeros(rows, cols),
            cols,
            &format!("zero {rows}x{cols}"),
        );
        // Full-rank leading block: identity in the top-left corner plus
        // random trailing noise.
        let mut full = random_matrix(rows, cols, 3, &mut rng);
        for i in 0..rows.min(cols) {
            for c in 0..rows.min(cols) {
                full.set(i, c, i == c);
            }
        }
        assert_rref_paths_agree(&full, cols, &format!("full-rank {rows}x{cols}"));
        // Rank-deficient: random rows, then half the rows overwritten with
        // sums of earlier rows so the elimination hits dependent candidates.
        let mut deficient = random_matrix(rows, cols, 4, &mut rng);
        for r in rows / 2..rows {
            let a = rng.gen::<u64>() as usize % (rows / 2).max(1);
            let b = rng.gen::<u64>() as usize % (rows / 2).max(1);
            for c in 0..cols {
                deficient.set(r, c, deficient.get(a, c) != deficient.get(b, c));
            }
        }
        assert_rref_paths_agree(&deficient, cols, &format!("deficient {rows}x{cols}"));
        // Sparse random with carried RHS columns (lead < cols), the shape
        // `find_element_impl` and `deterministic_z_sign` actually build.
        let lead = cols - (cols / 8).min(3);
        let sparse = random_matrix(rows, cols, 1, &mut rng);
        assert_rref_paths_agree(&sparse, lead, &format!("sparse {rows}x{cols} lead {lead}"));
    }
}

#[test]
fn rref_dispatch_is_bit_identical_under_forced_scalar() {
    // Flip the process-global dispatch toggle around identical reductions:
    // the dispatched entry point must produce the same pivots, reduced
    // matrix, and null basis either way. Safe against concurrent tests
    // because both kernels are bit-identical — the toggle only selects
    // which one runs.
    let mut rng = StdRng::seed_from_u64(0xA11);
    for &(rows, cols) in &[(100, 90), (129, 129), (80, 200)] {
        let m = random_matrix(rows, cols, 3, &mut rng);
        let mut auto = m.clone();
        let mut scalar = m.clone();
        let mut piv_auto = Vec::new();
        let mut piv_scalar = Vec::new();
        kernels::force_scalar(false);
        auto.rref_within_into(cols, &mut piv_auto);
        kernels::force_scalar(true);
        scalar.rref_within_into(cols, &mut piv_scalar);
        kernels::force_scalar(false);
        assert_eq!(piv_auto, piv_scalar, "{rows}x{cols}: pivots diverge");
        assert_eq!(auto, scalar, "{rows}x{cols}: reduced matrices diverge");
        assert_eq!(
            auto.null_space_from_reduced(&piv_auto, cols),
            scalar.null_space_from_reduced(&piv_scalar, cols),
            "{rows}x{cols}: null bases diverge"
        );
    }
}

#[test]
fn rref_small_matches_wordloop_below_cutoff() {
    // The transposed small-system kernel claims to perform exactly the
    // word-loop's row operations; hold it to that over boundary shapes.
    let mut rng = StdRng::seed_from_u64(0x5A11);
    for &(rows, cols) in &[(1, 1), (63, 127), (64, 128), (40, 100), (64, 65)] {
        for density in [1u32, 4, 7] {
            let m = random_matrix(rows, cols, density, &mut rng);
            let mut small = m.clone();
            let mut word = m.clone();
            let mut piv_s = Vec::new();
            let mut piv_w = Vec::new();
            let lead = cols - 1;
            small.rref_within_into(lead, &mut piv_s); // rows ≤ 64, cols ≤ 128 → rref_small
            word.rref_within_wordloop_into(lead, &mut piv_w);
            assert_eq!(piv_s, piv_w, "{rows}x{cols} d{density}: pivots diverge");
            assert_eq!(small, word, "{rows}x{cols} d{density}: matrices diverge");
        }
    }
}

#[test]
fn transpose_tile_round_trips_column_major_data() {
    // Simulates the bit-sliced gather: column-major words in, row-major rows
    // out, and a second transpose restores the original exactly.
    let mut rng = StdRng::seed_from_u64(0x7117);
    let mut tile = [0u64; 64];
    for w in tile.iter_mut() {
        *w = rng.gen::<u64>();
    }
    let original = tile;
    let naive = kernels::transpose_64x64_naive(&tile);
    kernels::transpose_64x64(&mut tile);
    assert_eq!(tile, naive);
    for (r, &row) in naive.iter().enumerate() {
        for (c, &col) in original.iter().enumerate() {
            assert_eq!((row >> c) & 1, (col >> r) & 1, "bit ({r},{c})");
        }
    }
    kernels::transpose_64x64(&mut tile);
    assert_eq!(tile, original);
}

proptest! {
    #[test]
    fn random_rref_paths_agree(
        rows in 1usize..140,
        cols in 1usize..140,
        rhs in 0usize..3,
        density in 1u32..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_matrix(rows, cols + rhs, density, &mut rng);
        let mut via_blocked = m.clone();
        let mut via_wordloop = m.clone();
        let mut piv_b = Vec::new();
        let mut piv_w = Vec::new();
        via_blocked.rref_within_blocked_into(cols, &mut piv_b);
        via_wordloop.rref_within_wordloop_into(cols, &mut piv_w);
        prop_assert_eq!(piv_b, piv_w);
        prop_assert_eq!(via_blocked, via_wordloop);
    }

    #[test]
    fn random_kernel_words_agree(raw in proptest::collection::vec(any::<u64>(), 40), len in 0usize..40) {
        let words = raw[..len].to_vec();
        let other: Vec<u64> = words.iter().map(|w| w.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15).collect();
        let mut xs = words.clone();
        let mut xb = words.clone();
        kernels::scalar::xor_words(&mut xs, &other);
        kernels::blocked::xor_words(&mut xb, &other);
        prop_assert_eq!(&xs, &xb);
        let mut os = words.clone();
        let mut ob = words.clone();
        kernels::scalar::or_words(&mut os, &other);
        kernels::blocked::or_words(&mut ob, &other);
        prop_assert_eq!(&os, &ob);
        prop_assert_eq!(
            kernels::scalar::parity_and_words(&words, &other),
            kernels::blocked::parity_and_words(&words, &other)
        );
        prop_assert_eq!(
            kernels::scalar::count_ones_words(&words),
            kernels::blocked::count_ones_words(&words)
        );
        prop_assert_eq!(
            kernels::scalar::is_zero_words(&words),
            kernels::blocked::is_zero_words(&words)
        );
    }

    #[test]
    fn random_transpose_involution(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tile = [0u64; 64];
        for w in tile.iter_mut() {
            *w = rng.gen::<u64>();
        }
        let original = tile;
        kernels::transpose_64x64(&mut tile);
        prop_assert_eq!(tile, kernels::transpose_64x64_naive(&original));
        kernels::transpose_64x64(&mut tile);
        prop_assert_eq!(tile, original);
    }
}
