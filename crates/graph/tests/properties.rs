//! Property-based tests for the graph algebra invariants the compiler relies on.

use proptest::prelude::*;

use epgs_graph::gf2::BitMatrix;
use epgs_graph::{generators, height, metrics, ops, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random graph on 2..=12 vertices given by an edge-presence bitmap.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=12).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for a in 0..n {
                for b in (a + 1)..n {
                    if bits[k] {
                        g.add_edge(a, b).unwrap();
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn lc_is_involutive(g in arb_graph(), v_seed in any::<u64>()) {
        let v = (v_seed as usize) % g.vertex_count();
        let mut h = g.clone();
        ops::local_complement(&mut h, v).unwrap();
        ops::local_complement(&mut h, v).unwrap();
        prop_assert_eq!(h, g);
    }

    #[test]
    fn lc_preserves_cut_rank_of_all_prefixes_up_to_bound(g in arb_graph()) {
        // Cut rank (entanglement) is invariant under local complementation:
        // LC maps the state by local unitaries, which cannot change any
        // bipartite entanglement entropy.
        let n = g.vertex_count();
        let ordering: Vec<usize> = (0..n).collect();
        let before = height::height_function(&g, &ordering);
        for v in 0..n {
            let mut h = g.clone();
            ops::local_complement(&mut h, v).unwrap();
            let after = height::height_function(&h, &ordering);
            prop_assert_eq!(&before, &after, "LC at {} changed the height function", v);
        }
    }

    #[test]
    fn pivot_is_involutive(g in arb_graph()) {
        let edges: Vec<(usize, usize)> = g.edges().collect();
        if let Some(&(a, b)) = edges.first() {
            let mut h = g.clone();
            ops::pivot(&mut h, a, b).unwrap();
            ops::pivot(&mut h, a, b).unwrap();
            prop_assert_eq!(h, g);
        }
    }

    #[test]
    fn pivot_identity_lc_aba_equals_lc_bab(g in arb_graph()) {
        // LC_a LC_b LC_a == LC_b LC_a LC_b on an edge (a,b): both define the
        // same pivot.
        let edges: Vec<(usize, usize)> = g.edges().collect();
        if let Some(&(a, b)) = edges.first() {
            let mut h1 = g.clone();
            ops::apply_lc_sequence(&mut h1, &[a, b, a]).unwrap();
            let mut h2 = g.clone();
            ops::apply_lc_sequence(&mut h2, &[b, a, b]).unwrap();
            prop_assert_eq!(h1, h2);
        }
    }

    #[test]
    fn measure_z_then_vertex_is_isolated(g in arb_graph(), v_seed in any::<u64>()) {
        let v = (v_seed as usize) % g.vertex_count();
        let mut h = g.clone();
        ops::measure_z(&mut h, v).unwrap();
        prop_assert_eq!(h.degree(v), 0);
        // Non-incident edges are untouched.
        for (a, b) in g.edges() {
            if a != v && b != v {
                prop_assert!(h.has_edge(a, b));
            }
        }
    }

    #[test]
    fn cut_rank_is_symmetric(g in arb_graph(), split in any::<u64>()) {
        let n = g.vertex_count();
        let a: Vec<usize> = (0..n).filter(|&v| (split >> (v % 64)) & 1 == 1).collect();
        let b: Vec<usize> = (0..n).filter(|&v| (split >> (v % 64)) & 1 == 0).collect();
        prop_assert_eq!(height::cut_rank(&g, &a), height::cut_rank(&g, &b));
    }

    #[test]
    fn cut_rank_bounded_by_cut_edges(g in arb_graph(), split in any::<u64>()) {
        let n = g.vertex_count();
        let a: Vec<usize> = (0..n).filter(|&v| (split >> (v % 64)) & 1 == 1).collect();
        let block: Vec<usize> = (0..n).map(|v| ((split >> (v % 64)) & 1) as usize).collect();
        prop_assert!(height::cut_rank(&g, &a) <= metrics::cut_edges(&g, &block));
    }

    #[test]
    fn rref_is_idempotent(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = BitMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen::<bool>() {
                    m.set(r, c, true);
                }
            }
        }
        let mut once = m.clone();
        let p1 = once.rref();
        let mut twice = once.clone();
        let p2 = twice.rref();
        prop_assert_eq!(once, twice);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn solve_agrees_with_mul(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = BitMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen::<bool>() {
                    m.set(r, c, true);
                }
            }
        }
        // Make a consistent rhs from a random x.
        let x: Vec<bool> = (0..cols).map(|_| rng.gen()).collect();
        let b = m.mul_vec(&x);
        let sol = m.solve(&b).expect("consistent by construction");
        prop_assert_eq!(m.mul_vec(&sol), b);
    }

    #[test]
    fn random_tree_height_at_most_log_plus_one(seed in any::<u64>(), n in 3usize..25) {
        // Trees have small cut ranks along DFS-ish orders; sanity bound:
        // emitters never exceed n/2 + 1 for the natural ordering.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        prop_assert!(height::min_emitters_natural(&g) <= n / 2 + 1);
    }
}
