//! Property-based tests for the graph algebra invariants the compiler relies on.

use proptest::prelude::*;

use epgs_graph::gf2::{BitMatrix, BitVec};
use epgs_graph::{generators, height, metrics, ops, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random graph on 2..=12 vertices given by an edge-presence bitmap.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=12).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for a in 0..n {
                for b in (a + 1)..n {
                    if bits[k] {
                        g.add_edge(a, b).unwrap();
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn lc_is_involutive(g in arb_graph(), v_seed in any::<u64>()) {
        let v = (v_seed as usize) % g.vertex_count();
        let mut h = g.clone();
        ops::local_complement(&mut h, v).unwrap();
        ops::local_complement(&mut h, v).unwrap();
        prop_assert_eq!(h, g);
    }

    #[test]
    fn lc_preserves_cut_rank_of_all_prefixes_up_to_bound(g in arb_graph()) {
        // Cut rank (entanglement) is invariant under local complementation:
        // LC maps the state by local unitaries, which cannot change any
        // bipartite entanglement entropy.
        let n = g.vertex_count();
        let ordering: Vec<usize> = (0..n).collect();
        let before = height::height_function(&g, &ordering);
        for v in 0..n {
            let mut h = g.clone();
            ops::local_complement(&mut h, v).unwrap();
            let after = height::height_function(&h, &ordering);
            prop_assert_eq!(&before, &after, "LC at {} changed the height function", v);
        }
    }

    #[test]
    fn pivot_is_involutive(g in arb_graph()) {
        let edges: Vec<(usize, usize)> = g.edges().collect();
        if let Some(&(a, b)) = edges.first() {
            let mut h = g.clone();
            ops::pivot(&mut h, a, b).unwrap();
            ops::pivot(&mut h, a, b).unwrap();
            prop_assert_eq!(h, g);
        }
    }

    #[test]
    fn pivot_identity_lc_aba_equals_lc_bab(g in arb_graph()) {
        // LC_a LC_b LC_a == LC_b LC_a LC_b on an edge (a,b): both define the
        // same pivot.
        let edges: Vec<(usize, usize)> = g.edges().collect();
        if let Some(&(a, b)) = edges.first() {
            let mut h1 = g.clone();
            ops::apply_lc_sequence(&mut h1, &[a, b, a]).unwrap();
            let mut h2 = g.clone();
            ops::apply_lc_sequence(&mut h2, &[b, a, b]).unwrap();
            prop_assert_eq!(h1, h2);
        }
    }

    #[test]
    fn measure_z_then_vertex_is_isolated(g in arb_graph(), v_seed in any::<u64>()) {
        let v = (v_seed as usize) % g.vertex_count();
        let mut h = g.clone();
        ops::measure_z(&mut h, v).unwrap();
        prop_assert_eq!(h.degree(v), 0);
        // Non-incident edges are untouched.
        for (a, b) in g.edges() {
            if a != v && b != v {
                prop_assert!(h.has_edge(a, b));
            }
        }
    }

    #[test]
    fn cut_rank_is_symmetric(g in arb_graph(), split in any::<u64>()) {
        let n = g.vertex_count();
        let a: Vec<usize> = (0..n).filter(|&v| (split >> (v % 64)) & 1 == 1).collect();
        let b: Vec<usize> = (0..n).filter(|&v| (split >> (v % 64)) & 1 == 0).collect();
        prop_assert_eq!(height::cut_rank(&g, &a), height::cut_rank(&g, &b));
    }

    #[test]
    fn cut_rank_bounded_by_cut_edges(g in arb_graph(), split in any::<u64>()) {
        let n = g.vertex_count();
        let a: Vec<usize> = (0..n).filter(|&v| (split >> (v % 64)) & 1 == 1).collect();
        let block: Vec<usize> = (0..n).map(|v| ((split >> (v % 64)) & 1) as usize).collect();
        prop_assert!(height::cut_rank(&g, &a) <= metrics::cut_edges(&g, &block));
    }

    #[test]
    fn rref_is_idempotent(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = BitMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen::<bool>() {
                    m.set(r, c, true);
                }
            }
        }
        let mut once = m.clone();
        let p1 = once.rref();
        let mut twice = once.clone();
        let p2 = twice.rref();
        prop_assert_eq!(once, twice);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn solve_agrees_with_mul(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = BitMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen::<bool>() {
                    m.set(r, c, true);
                }
            }
        }
        // Make a consistent rhs from a random x.
        let x: Vec<bool> = (0..cols).map(|_| rng.gen()).collect();
        let b = m.mul_vec(&x);
        let sol = m.solve(&b).expect("consistent by construction");
        prop_assert_eq!(m.mul_vec(&sol), b);
    }

    #[test]
    fn truncate_rows_then_rref_matches_smaller_build(
        rows in 2usize..70,
        cols in 1usize..100,
        keep_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        // Reducing a truncated matrix must equal reducing a matrix built
        // with only the kept rows — truncation leaves no ghost state.
        let keep = 1 + (keep_seed as usize) % rows;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut big = BitMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen::<bool>() {
                    big.set(r, c, true);
                }
            }
        }
        let mut small = BitMatrix::zeros(keep, cols);
        for r in 0..keep {
            for c in 0..cols {
                small.set(r, c, big.get(r, c));
            }
        }
        big.truncate_rows(keep);
        prop_assert_eq!(&big, &small);
        let pa = big.rref();
        let pb = small.rref();
        prop_assert_eq!(pa, pb);
        prop_assert_eq!(big, small);
    }

    #[test]
    fn bitvec_copy_from_across_mismatched_capacities(
        long_len in 65usize..300,
        short_len in 0usize..64,
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut long = BitVec::zeros(long_len);
        for i in 0..long_len {
            if rng.gen::<bool>() {
                long.set(i, true);
            }
        }
        let mut short = BitVec::zeros(short_len);
        if short_len > 0 {
            short.set(short_len - 1, true);
        }
        // Small buffer grows to take a large vector…
        let mut grown = short.clone();
        grown.copy_from(&long);
        prop_assert_eq!(&grown, &long);
        // …and a large buffer shrinks to a small one with no stale bits:
        // after the copy, ops that scan whole words must see only the
        // short vector's contents.
        let mut shrunk = long.clone();
        shrunk.copy_from(&short);
        prop_assert_eq!(&shrunk, &short);
        prop_assert_eq!(shrunk.count_ones(), short.count_ones());
        prop_assert_eq!(shrunk.is_zero(), short_len == 0);
        prop_assert_eq!(shrunk.first_one(), if short_len > 0 { Some(short_len - 1) } else { None });
    }

    #[test]
    fn random_tree_height_at_most_log_plus_one(seed in any::<u64>(), n in 3usize..25) {
        // Trees have small cut ranks along DFS-ish orders; sanity bound:
        // emitters never exceed n/2 + 1 for the natural ordering.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        prop_assert!(height::min_emitters_natural(&g) <= n / 2 + 1);
    }
}

#[test]
fn degenerate_matrices_reduce_without_pivots() {
    // Zero rows: nothing to reduce, full null space.
    let mut no_rows = BitMatrix::zeros(0, 5);
    assert_eq!(no_rows.rref(), Vec::<usize>::new());
    assert_eq!(no_rows.rank(), 0);
    assert_eq!(no_rows.null_space().len(), 5);
    // Zero columns: no pivots possible regardless of row count, and the
    // word-level paths must tolerate the minimum one-word stride.
    let mut no_cols = BitMatrix::zeros(4, 0);
    assert_eq!(no_cols.rref(), Vec::<usize>::new());
    assert_eq!(no_cols.rank(), 0);
    assert!(no_cols.null_space().is_empty());
    assert!(no_cols.row_is_zero(0));
    assert_eq!(no_cols.row_count_ones(3), 0);
    // Both: the empty matrix round-trips every query.
    let mut empty = BitMatrix::zeros(0, 0);
    assert_eq!(empty.rref(), Vec::<usize>::new());
    assert_eq!(empty.rank(), 0);
    // Truncating to zero rows then reducing is the zero-row case again.
    let mut m = BitMatrix::identity(3);
    m.truncate_rows(0);
    assert_eq!(m.rref(), Vec::<usize>::new());
    assert_eq!(m.rows(), 0);
}

#[test]
fn first_one_at_or_after_at_exact_word_boundaries() {
    let mut v = BitVec::zeros(256);
    for i in [63usize, 64, 127, 128, 191, 255] {
        v.set(i, true);
    }
    // Starting exactly on a set boundary bit finds it…
    for i in [63usize, 64, 127, 128, 191, 255] {
        assert_eq!(v.first_one_at_or_after(i), Some(i), "start {i}");
    }
    // …one past each boundary finds the next one across the word edge.
    assert_eq!(v.first_one_at_or_after(0), Some(63));
    assert_eq!(v.first_one_at_or_after(65), Some(127));
    assert_eq!(v.first_one_at_or_after(129), Some(191));
    assert_eq!(v.first_one_at_or_after(192), Some(255));
    // Start at or beyond the length is always empty, even with the last
    // bit set.
    assert_eq!(v.first_one_at_or_after(256), None);
    assert_eq!(v.first_one_at_or_after(1000), None);
    // A vector whose length is an exact word multiple with only the final
    // bit set: the masked first-word probe must not skip it.
    let mut w = BitVec::zeros(128);
    w.set(127, true);
    assert_eq!(w.first_one_at_or_after(127), Some(127));
    assert_eq!(w.first_one_at_or_after(64), Some(127));
    assert_eq!(w.first_one_at_or_after(128), None);
}
