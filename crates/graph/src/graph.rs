//! The simple undirected graph underlying a graph state.
//!
//! Vertices are dense indices `0..n`. Self-loops are rejected; parallel edges
//! cannot be represented. Neighbor sets are ordered (`BTreeSet`) so iteration
//! is deterministic — determinism matters because compilation search must be
//! reproducible across runs for the benchmark harness.

use std::collections::BTreeSet;

use crate::error::GraphError;
use crate::gf2::BitMatrix;

/// An undirected simple graph on vertices `0..n`, the combinatorial skeleton of
/// a graph state |G⟩.
///
/// # Examples
///
/// ```
/// use epgs_graph::Graph;
///
/// # fn main() -> Result<(), epgs_graph::GraphError> {
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1)?;
/// g.add_edge(1, 2)?;
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(1, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Graph {
    adj: Vec<BTreeSet<usize>>,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is ≥ `n`, or
    /// [`GraphError::SelfLoop`] for an edge `(v, v)`.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for (a, b) in edges {
            g.add_edge(a, b)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    fn check(&self, v: usize) -> Result<(), GraphError> {
        if v >= self.adj.len() {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                count: self.adj.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Adds the edge `(a, b)`; idempotent if the edge already exists.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `a == b`.
    pub fn add_edge(&mut self, a: usize, b: usize) -> Result<(), GraphError> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(GraphError::SelfLoop { vertex: a });
        }
        self.adj[a].insert(b);
        self.adj[b].insert(a);
        Ok(())
    }

    /// Removes the edge `(a, b)` if present; returns whether it was present.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range.
    pub fn remove_edge(&mut self, a: usize, b: usize) -> Result<bool, GraphError> {
        self.check(a)?;
        self.check(b)?;
        let was = self.adj[a].remove(&b);
        self.adj[b].remove(&a);
        Ok(was)
    }

    /// Toggles the edge `(a, b)` (the CZ action on a graph state).
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `a == b`.
    pub fn toggle_edge(&mut self, a: usize, b: usize) -> Result<(), GraphError> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(GraphError::SelfLoop { vertex: a });
        }
        if self.adj[a].contains(&b) {
            self.adj[a].remove(&b);
            self.adj[b].remove(&a);
        } else {
            self.adj[a].insert(b);
            self.adj[b].insert(a);
        }
        Ok(())
    }

    /// Returns true if the edge `(a, b)` exists. Out-of-range queries are false.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj.get(a).is_some_and(|s| s.contains(&b))
    }

    /// The neighbor set of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &BTreeSet<usize> {
        &self.adj[v]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Iterates over all edges as `(a, b)` with `a < b`, in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(a, nbrs)| nbrs.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }

    /// Removes every edge incident to `v` (the graph-state effect of a Z-basis
    /// measurement of `v`, up to outcome-dependent local corrections).
    ///
    /// # Errors
    ///
    /// Returns an error if `v` is out of range.
    pub fn isolate(&mut self, v: usize) -> Result<(), GraphError> {
        self.check(v)?;
        let nbrs: Vec<usize> = self.adj[v].iter().copied().collect();
        for b in nbrs {
            self.adj[b].remove(&v);
        }
        self.adj[v].clear();
        Ok(())
    }

    /// Appends a fresh isolated vertex and returns its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(BTreeSet::new());
        self.adj.len() - 1
    }

    /// The induced subgraph on `vertices`, together with the map from new
    /// indices to the original ones (`result.1[new] == old`).
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let mut index_of = std::collections::BTreeMap::new();
        for (new, &old) in vertices.iter().enumerate() {
            index_of.insert(old, new);
        }
        let mut g = Graph::new(vertices.len());
        for (new, &old) in vertices.iter().enumerate() {
            for &nb in &self.adj[old] {
                if let Some(&nb_new) = index_of.get(&nb) {
                    if new < nb_new {
                        g.add_edge(new, nb_new).expect("indices are in range");
                    }
                }
            }
        }
        (g, vertices.to_vec())
    }

    /// The adjacency matrix Γ over GF(2).
    pub fn adjacency_matrix(&self) -> BitMatrix {
        let n = self.adj.len();
        let mut m = BitMatrix::zeros(n, n);
        for (a, b) in self.edges() {
            m.set(a, b, true);
            m.set(b, a, true);
        }
        m
    }

    /// Connected components, each a sorted vertex list; components are ordered
    /// by smallest member.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &nb in &self.adj[v] {
                    if !seen[nb] {
                        seen[nb] = true;
                        stack.push(nb);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Returns true if the graph is connected (the empty graph is connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(4);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::new(3);
        g.add_edge(0, 2).unwrap();
        g.add_edge(2, 0).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new(2);
        assert!(matches!(g.add_edge(1, 1), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(0, 5),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn toggle_edge_roundtrip() {
        let mut g = Graph::new(2);
        g.toggle_edge(0, 1).unwrap();
        assert!(g.has_edge(0, 1));
        g.toggle_edge(0, 1).unwrap();
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn remove_edge_reports_presence() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1).unwrap();
        assert!(g.remove_edge(0, 1).unwrap());
        assert!(!g.remove_edge(0, 1).unwrap());
    }

    #[test]
    fn isolate_clears_incident_edges() {
        let mut g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        g.isolate(0).unwrap();
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn edges_iterates_sorted_unique() {
        let g = Graph::from_edges(4, [(2, 3), (0, 1), (1, 2)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 3); // 1-2, 2-3, 1-3
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert!(!g.is_connected());
        let h = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(h.is_connected());
    }

    #[test]
    fn adjacency_matrix_is_symmetric() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let m = g.adjacency_matrix();
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(m.get(a, b), g.has_edge(a, b));
                assert_eq!(m.get(a, b), m.get(b, a));
            }
        }
    }

    #[test]
    fn add_vertex_extends() {
        let mut g = Graph::new(1);
        let v = g.add_vertex();
        assert_eq!(v, 1);
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
