//! Graph-state transformation rules: local complementation, pivot, and the
//! single-qubit Pauli-measurement update rules.
//!
//! These are the combinatorial shadows of local Clifford operations and Pauli
//! measurements on graph states (Van den Nest et al., Hein et al.). The
//! time-reversed compiler uses them as a cheap cost model; the stabilizer
//! tableau in `epgs-stabilizer` is the authoritative semantics, and the two
//! are cross-checked in integration tests.

use crate::error::GraphError;
use crate::graph::Graph;

/// Applies local complementation at `v`: every pair of neighbors of `v` has
/// its edge toggled.
///
/// On the state side this is the local Clifford
/// `U_v = exp(-iπ/4 X_v) ⊗ Π_{w∈N(v)} exp(iπ/4 Z_w)` — single-qubit gates
/// only, so LC-equivalent graph states are equally easy to consume.
///
/// # Errors
///
/// Returns an error if `v` is out of range.
///
/// # Examples
///
/// ```
/// use epgs_graph::{Graph, ops};
///
/// # fn main() -> Result<(), epgs_graph::GraphError> {
/// // A star on 0 becomes a complete graph after LC at 0.
/// let mut g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)])?;
/// ops::local_complement(&mut g, 0)?;
/// assert_eq!(g.edge_count(), 6);
/// # Ok(())
/// # }
/// ```
pub fn local_complement(g: &mut Graph, v: usize) -> Result<(), GraphError> {
    if v >= g.vertex_count() {
        return Err(GraphError::VertexOutOfRange {
            vertex: v,
            count: g.vertex_count(),
        });
    }
    let nbrs: Vec<usize> = g.neighbors(v).iter().copied().collect();
    for i in 0..nbrs.len() {
        for j in (i + 1)..nbrs.len() {
            g.toggle_edge(nbrs[i], nbrs[j])?;
        }
    }
    Ok(())
}

/// Applies the pivot (edge local complementation) on edge `(a, b)`:
/// `pivot(a,b) = LC(a) ∘ LC(b) ∘ LC(a)`.
///
/// Pivoting exchanges the roles of `a` and `b` in the graph and complements
/// edges between the three neighbor classes N(a)∖N(b), N(b)∖N(a), N(a)∩N(b).
///
/// # Errors
///
/// Returns [`GraphError::PivotRequiresEdge`] if `(a, b)` is not an edge.
pub fn pivot(g: &mut Graph, a: usize, b: usize) -> Result<(), GraphError> {
    if !g.has_edge(a, b) {
        return Err(GraphError::PivotRequiresEdge { a, b });
    }
    local_complement(g, a)?;
    local_complement(g, b)?;
    local_complement(g, a)?;
    Ok(())
}

/// Applies the graph update for a Z-basis measurement of `v`: delete all
/// edges at `v` (the vertex leaves the entangled state).
///
/// # Errors
///
/// Returns an error if `v` is out of range.
pub fn measure_z(g: &mut Graph, v: usize) -> Result<(), GraphError> {
    g.isolate(v)
}

/// Applies the graph update for a Y-basis measurement of `v`: local
/// complementation at `v`, then deletion.
///
/// # Errors
///
/// Returns an error if `v` is out of range.
pub fn measure_y(g: &mut Graph, v: usize) -> Result<(), GraphError> {
    local_complement(g, v)?;
    g.isolate(v)
}

/// Applies the graph update for an X-basis measurement of `v`, using
/// `special` as the designated neighbor b₀:
/// `LC(b₀)`, then the Y-measurement rule at `v`, then `LC(b₀)` again.
///
/// # Errors
///
/// Returns [`GraphError::IsolatedVertex`] if `v` has no neighbors, or
/// [`GraphError::PivotRequiresEdge`] if `special` is not a neighbor of `v`.
pub fn measure_x(g: &mut Graph, v: usize, special: usize) -> Result<(), GraphError> {
    if g.degree(v) == 0 {
        return Err(GraphError::IsolatedVertex { vertex: v });
    }
    if !g.has_edge(v, special) {
        return Err(GraphError::PivotRequiresEdge { a: v, b: special });
    }
    local_complement(g, special)?;
    measure_y(g, v)?;
    local_complement(g, special)?;
    Ok(())
}

/// Applies a sequence of local complementations in order.
///
/// # Errors
///
/// Returns an error if any vertex is out of range.
pub fn apply_lc_sequence(g: &mut Graph, seq: &[usize]) -> Result<(), GraphError> {
    for &v in seq {
        local_complement(g, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn lc_is_involutive() {
        let mut g = path4();
        let orig = g.clone();
        local_complement(&mut g, 1).unwrap();
        assert_ne!(g, orig);
        local_complement(&mut g, 1).unwrap();
        assert_eq!(g, orig);
    }

    #[test]
    fn lc_on_path_center_adds_chord() {
        let mut g = path4();
        local_complement(&mut g, 1).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(2, 3));
    }

    #[test]
    fn lc_star_complete_roundtrip() {
        // LC at the hub of a star gives complete graph; LC again restores.
        let mut g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        local_complement(&mut g, 0).unwrap();
        assert_eq!(g.edge_count(), 4 + 6);
        local_complement(&mut g, 0).unwrap();
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn lc_isolated_vertex_is_noop() {
        let mut g = Graph::new(3);
        let orig = g.clone();
        local_complement(&mut g, 2).unwrap();
        assert_eq!(g, orig);
    }

    #[test]
    fn pivot_requires_edge() {
        let mut g = path4();
        assert!(matches!(
            pivot(&mut g, 0, 3),
            Err(GraphError::PivotRequiresEdge { .. })
        ));
    }

    #[test]
    fn pivot_is_involutive() {
        let mut g = Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (0, 4), (3, 4)]).unwrap();
        let orig = g.clone();
        pivot(&mut g, 0, 1).unwrap();
        pivot(&mut g, 0, 1).unwrap();
        assert_eq!(g, orig);
    }

    #[test]
    fn pivot_swaps_leaf_and_hub() {
        // Leaf 3 attached to hub 1 of a star: pivot(3,1) makes 3 the hub.
        let mut g = Graph::from_edges(4, [(1, 0), (1, 2), (1, 3)]).unwrap();
        pivot(&mut g, 3, 1).unwrap();
        assert_eq!(g.degree(3), 3, "leaf takes over hub role: {g:?}");
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn measure_z_isolates() {
        let mut g = path4();
        measure_z(&mut g, 1).unwrap();
        assert_eq!(g.degree(1), 0);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn measure_y_on_path_center_connects_neighbors() {
        let mut g = path4();
        measure_y(&mut g, 1).unwrap();
        assert_eq!(g.degree(1), 0);
        assert!(g.has_edge(0, 2), "Y measurement contracts the path");
    }

    #[test]
    fn measure_x_on_path_keeps_chain_connected() {
        // X-measuring an interior vertex of a path keeps the remainder
        // connected (standard one-way-computer wire behavior).
        let mut g = path4();
        measure_x(&mut g, 1, 2).unwrap();
        assert_eq!(g.degree(1), 0);
        let comps = g.connected_components();
        let big: Vec<_> = comps.into_iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0], vec![0, 2, 3]);
    }

    #[test]
    fn measure_x_isolated_errors() {
        let mut g = Graph::new(2);
        assert!(matches!(
            measure_x(&mut g, 0, 1),
            Err(GraphError::IsolatedVertex { .. })
        ));
    }

    #[test]
    fn lc_sequence_composes() {
        let mut a = path4();
        let mut b = path4();
        apply_lc_sequence(&mut a, &[1, 2]).unwrap();
        local_complement(&mut b, 1).unwrap();
        local_complement(&mut b, 2).unwrap();
        assert_eq!(a, b);
    }
}
