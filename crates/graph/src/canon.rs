//! Label-invariant canonical hashing of graphs.
//!
//! The batch compiler's artifact cache is content-addressed: two corpus
//! instances that denote the same graph must map to the same cache key even
//! when their vertex labelings differ. [`canonical_hash`] provides that key
//! through Weisfeiler–Lehman color refinement — every quantity it folds in
//! (vertex count, edge count, sorted multisets of refined colors) is
//! invariant under vertex relabeling, so `canonical_hash(g) ==
//! canonical_hash(relabel(g, π))` for every permutation `π`.
//!
//! Like any hash, it is one-sided: equal hashes do **not** prove isomorphism
//! (WL refinement cannot separate certain regular graphs), so cache lookups
//! must confirm a candidate by exact comparison before reusing artifacts.
//!
//! # Examples
//!
//! ```
//! use epgs_graph::{canon, generators};
//!
//! let g = generators::lattice(3, 3);
//! // Cyclically shift the vertex labels: same graph, different labeling.
//! let perm: Vec<usize> = (0..9).map(|v| (v + 1) % 9).collect();
//! let h = canon::relabel(&g, &perm);
//! assert_ne!(g, h, "labelings differ");
//! assert_eq!(canon::canonical_hash(&g), canon::canonical_hash(&h));
//! assert_ne!(
//!     canon::canonical_hash(&g),
//!     canon::canonical_hash(&generators::cycle(9)),
//! );
//! ```

use crate::graph::Graph;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a state, bytewise.
///
/// FNV is used instead of `std`'s `DefaultHasher` because its output is
/// specified: cache keys and report fields survive process restarts and
/// cross-platform comparison.
pub fn fnv1a(state: u64, word: u64) -> u64 {
    let mut h = state;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes a sequence of words from the FNV-1a offset basis.
pub fn fnv1a_all(words: impl IntoIterator<Item = u64>) -> u64 {
    words.into_iter().fold(FNV_OFFSET, fnv1a)
}

/// Label-invariant hash of `g` via Weisfeiler–Lehman color refinement.
///
/// Vertices start colored by degree; each round recolors every vertex with a
/// hash of its own color and the *sorted* multiset of its neighbors'
/// colors. Refinement stops when the number of color classes stabilizes (at
/// most `n` rounds); the final hash combines the vertex count, edge count,
/// and the sorted multiset of stable colors — all relabeling-invariant.
pub fn canonical_hash(g: &Graph) -> u64 {
    let n = g.vertex_count();
    let mut color: Vec<u64> = (0..n).map(|v| fnv1a_all([g.degree(v) as u64])).collect();
    let mut classes = distinct(&color);
    for _ in 0..n {
        let next: Vec<u64> = (0..n)
            .map(|v| {
                let mut nbr: Vec<u64> = g.neighbors(v).iter().map(|&w| color[w]).collect();
                nbr.sort_unstable();
                fnv1a_all(std::iter::once(color[v]).chain(nbr))
            })
            .collect();
        let next_classes = distinct(&next);
        color = next;
        if next_classes == classes {
            break;
        }
        classes = next_classes;
    }
    color.sort_unstable();
    fnv1a_all([n as u64, g.edge_count() as u64].into_iter().chain(color))
}

/// Number of distinct values in `colors`.
fn distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// The graph with vertex `v` renamed to `perm[v]` (`perm` must be a
/// permutation of `0..n`): the tool for exercising label invariance.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..g.vertex_count()`.
pub fn relabel(g: &Graph, perm: &[usize]) -> Graph {
    let n = g.vertex_count();
    assert_eq!(perm.len(), n, "permutation must cover every vertex");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "perm must be a permutation of 0..n");
        seen[p] = true;
    }
    Graph::from_edges(n, g.edges().map(|(a, b)| (perm[a], perm[b])))
        .expect("permuted edges stay in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn hash_is_invariant_under_random_relabelings() {
        let mut rng = StdRng::seed_from_u64(11);
        for g in [
            generators::lattice(3, 4),
            generators::tree(13, 2),
            generators::repeater_graph_state(2),
            generators::waxman(14, 0.5, 0.2, &mut StdRng::seed_from_u64(3)),
        ] {
            let base = canonical_hash(&g);
            for _ in 0..5 {
                let mut perm: Vec<usize> = (0..g.vertex_count()).collect();
                perm.shuffle(&mut rng);
                assert_eq!(base, canonical_hash(&relabel(&g, &perm)));
            }
        }
    }

    #[test]
    fn hash_separates_structurally_different_graphs() {
        let hashes: Vec<u64> = [
            generators::path(8),
            generators::cycle(8),
            generators::star(8),
            generators::complete(8),
            generators::lattice(2, 4),
            generators::tree(8, 2),
            generators::hypercube(3),
        ]
        .iter()
        .map(canonical_hash)
        .collect();
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len(), "families must not collide");
    }

    #[test]
    fn hash_depends_on_size_and_density() {
        assert_ne!(
            canonical_hash(&generators::path(5)),
            canonical_hash(&generators::path(6))
        );
        assert_ne!(
            canonical_hash(&Graph::new(4)),
            canonical_hash(&generators::path(4))
        );
    }

    #[test]
    fn empty_graph_hashes_consistently() {
        assert_eq!(
            canonical_hash(&Graph::new(0)),
            canonical_hash(&Graph::new(0))
        );
        assert_ne!(
            canonical_hash(&Graph::new(0)),
            canonical_hash(&Graph::new(1))
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn relabel_rejects_short_permutations() {
        relabel(&generators::path(4), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "perm must be a permutation")]
    fn relabel_rejects_duplicate_entries() {
        relabel(&generators::path(3), &[0, 0, 1]);
    }

    #[test]
    fn fnv_is_stable() {
        // Pin the specified FNV-1a stream so cache keys stay comparable
        // across releases.
        assert_eq!(fnv1a_all([0]), 0xa8c7_f832_281a_39c5);
    }
}
