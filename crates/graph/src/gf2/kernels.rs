//! Wide-word GF(2) kernels with a retained scalar oracle path.
//!
//! Every bulk boolean loop in [`super::BitVec`] / [`super::BitMatrix`]
//! funnels through this module. Each kernel exists twice:
//!
//! * [`scalar`] — the original straight-line word loop, kept verbatim as the
//!   ground-truth oracle the differential suite compares against (and as the
//!   fast path for short vectors, where blocking buys nothing).
//! * [`blocked`] — the same operation unrolled over 4×u64 lanes so the
//!   compiler keeps four independent accumulator chains in flight (and, with
//!   AVX2/AVX-512 available, vectorizes the lane loop outright).
//!
//! The public entry points (`xor_words`, `parity_and_words`, …) dispatch at
//! runtime on the word count: slices shorter than [`BLOCK_CUTOFF_WORDS`]
//! take the scalar path — every per-photon solve in the compiler works on
//! 1–2-word vectors where the blocked prologue is pure overhead — and longer
//! slices take the lanes. The [`force_scalar`] toggle (or the
//! `EPGS_GF2_FORCE_SCALAR` environment variable, read once) pins dispatch to
//! the scalar path so test suites and CI can drive identical workloads down
//! both paths; the two must be bit-for-bit indistinguishable.
//!
//! The module also hosts the cache-blocked 64×64 bit-transpose
//! ([`transpose_64x64`]) used to move data between the column-major bit-sliced
//! stores and row-major scratch tiles (see `epgs_stabilizer`'s batched row
//! gathers and the Four-Russians RREF in [`super::BitMatrix`]).

use std::sync::atomic::{AtomicU8, Ordering};

/// Slices with at least this many words take the 4-lane blocked path.
pub const BLOCK_CUTOFF_WORDS: usize = 8;

/// Dispatch cutoff for [`parity_and_words`] specifically. The parity kernel
/// has no store traffic, so breaking the dependency chain into four lanes
/// buys nothing until the slice is long, while the extra popcounts and lane
/// setup cost real cycles: measured on the CI-class host, the blocked
/// variant runs at ~0.8–0.9× scalar through 64-word operands (the
/// single-accumulator scalar loop autovectorizes into an AND+XOR fold on
/// its own) and only pulls ahead (~1.1–1.2×) from 256 words. The cutoff
/// sits at that measured crossover; in practice the solver's ≤16-word
/// parity probes always take the scalar path, which is the faster one for
/// them.
pub const PARITY_CUTOFF_WORDS: usize = 256;

/// Words per blocked lane group.
pub const LANES: usize = 4;

/// Kernel dispatch mode: 0 = uninitialised, 1 = auto, 2 = scalar-forced.
static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// True when dispatch is pinned to the scalar oracle path.
///
/// Initialised on first use from the `EPGS_GF2_FORCE_SCALAR` environment
/// variable (any non-empty value other than `0` forces scalar), after which
/// [`force_scalar`] can override it programmatically.
#[inline]
pub fn scalar_forced() -> bool {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        0 => init_mode(),
        m => m == 2,
    }
}

#[cold]
fn init_mode() -> bool {
    let scalar = std::env::var("EPGS_GF2_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
    KERNEL_MODE.store(if scalar { 2 } else { 1 }, Ordering::Relaxed);
    scalar
}

/// Pins (or unpins) kernel dispatch to the scalar path.
///
/// Intended for tests and the CI scalar-kernel matrix leg; the toggle is
/// process-global. Both settings must produce bit-identical results for
/// every kernel, so flipping it concurrently is benign — it only changes
/// which implementation runs.
pub fn force_scalar(on: bool) {
    KERNEL_MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The scalar word loops — the retained oracle implementations.
pub mod scalar {
    /// `dst ^= src`, word-wise over the common length.
    pub fn xor_words(dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }

    /// `dst |= src`, word-wise over the common length.
    pub fn or_words(dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }

    /// Parity of `popcount(a & b)` over the common length.
    pub fn parity_and_words(a: &[u64], b: &[u64]) -> bool {
        let mut acc = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            acc ^= x & y;
        }
        acc.count_ones() % 2 == 1
    }

    /// Total set bits.
    pub fn count_ones_words(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every word is zero.
    pub fn is_zero_words(words: &[u64]) -> bool {
        words.iter().all(|&w| w == 0)
    }
}

/// The 4×u64-lane unrolled kernels.
///
/// Each loop processes `LANES` words per step with independent accumulators,
/// then drains the remainder through the scalar tail. Results are
/// bit-identical to [`scalar`] by construction (XOR/OR/popcount are
/// associative and commutative word-wise).
pub mod blocked {
    use super::LANES;

    /// `dst ^= src`, 4 lanes per step.
    pub fn xor_words(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let (dchunks, dtail) = dst[..n].split_at_mut(n - n % LANES);
        let (schunks, stail) = src[..n].split_at(n - n % LANES);
        for (d, s) in dchunks
            .chunks_exact_mut(LANES)
            .zip(schunks.chunks_exact(LANES))
        {
            d[0] ^= s[0];
            d[1] ^= s[1];
            d[2] ^= s[2];
            d[3] ^= s[3];
        }
        super::scalar::xor_words(dtail, stail);
    }

    /// `dst |= src`, 4 lanes per step.
    pub fn or_words(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let (dchunks, dtail) = dst[..n].split_at_mut(n - n % LANES);
        let (schunks, stail) = src[..n].split_at(n - n % LANES);
        for (d, s) in dchunks
            .chunks_exact_mut(LANES)
            .zip(schunks.chunks_exact(LANES))
        {
            d[0] |= s[0];
            d[1] |= s[1];
            d[2] |= s[2];
            d[3] |= s[3];
        }
        super::scalar::or_words(dtail, stail);
    }

    /// Parity of `popcount(a & b)`, 4 independent accumulator lanes.
    pub fn parity_and_words(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let (achunks, atail) = a[..n].split_at(n - n % LANES);
        let (bchunks, btail) = b[..n].split_at(n - n % LANES);
        let mut acc = [0u64; LANES];
        for (x, y) in achunks.chunks_exact(LANES).zip(bchunks.chunks_exact(LANES)) {
            acc[0] ^= x[0] & y[0];
            acc[1] ^= x[1] & y[1];
            acc[2] ^= x[2] & y[2];
            acc[3] ^= x[3] & y[3];
        }
        let mut tail = 0u64;
        for (&x, &y) in atail.iter().zip(btail) {
            tail ^= x & y;
        }
        let bits = acc[0].count_ones()
            + acc[1].count_ones()
            + acc[2].count_ones()
            + acc[3].count_ones()
            + tail.count_ones();
        bits % 2 == 1
    }

    /// Total set bits, 4 partial sums.
    pub fn count_ones_words(words: &[u64]) -> usize {
        let (chunks, tail) = words.split_at(words.len() - words.len() % LANES);
        let mut acc = [0usize; LANES];
        for w in chunks.chunks_exact(LANES) {
            acc[0] += w[0].count_ones() as usize;
            acc[1] += w[1].count_ones() as usize;
            acc[2] += w[2].count_ones() as usize;
            acc[3] += w[3].count_ones() as usize;
        }
        acc[0] + acc[1] + acc[2] + acc[3] + super::scalar::count_ones_words(tail)
    }

    /// True when every word is zero (4-lane OR-reduction).
    pub fn is_zero_words(words: &[u64]) -> bool {
        let (chunks, tail) = words.split_at(words.len() - words.len() % LANES);
        for w in chunks.chunks_exact(LANES) {
            if w[0] | w[1] | w[2] | w[3] != 0 {
                return false;
            }
        }
        super::scalar::is_zero_words(tail)
    }
}

/// `dst ^= src` with word-count dispatch.
#[inline]
pub fn xor_words(dst: &mut [u64], src: &[u64]) {
    if dst.len() >= BLOCK_CUTOFF_WORDS && !scalar_forced() {
        blocked::xor_words(dst, src);
    } else {
        scalar::xor_words(dst, src);
    }
}

/// `dst |= src` with word-count dispatch.
#[inline]
pub fn or_words(dst: &mut [u64], src: &[u64]) {
    if dst.len() >= BLOCK_CUTOFF_WORDS && !scalar_forced() {
        blocked::or_words(dst, src);
    } else {
        scalar::or_words(dst, src);
    }
}

/// Parity of `popcount(a & b)` with word-count dispatch.
#[inline]
pub fn parity_and_words(a: &[u64], b: &[u64]) -> bool {
    if a.len() >= PARITY_CUTOFF_WORDS && !scalar_forced() {
        blocked::parity_and_words(a, b)
    } else {
        scalar::parity_and_words(a, b)
    }
}

/// Total set bits with word-count dispatch.
#[inline]
pub fn count_ones_words(words: &[u64]) -> usize {
    if words.len() >= BLOCK_CUTOFF_WORDS && !scalar_forced() {
        blocked::count_ones_words(words)
    } else {
        scalar::count_ones_words(words)
    }
}

/// True when every word is zero, with word-count dispatch.
#[inline]
pub fn is_zero_words(words: &[u64]) -> bool {
    if words.len() >= BLOCK_CUTOFF_WORDS && !scalar_forced() {
        blocked::is_zero_words(words)
    } else {
        scalar::is_zero_words(words)
    }
}

/// In-place 64×64 bit-transpose (Hacker's Delight §7-3 delta-swap ladder).
///
/// `a[i]` is row `i` with bit `j` = column `j`; on return `a[j]` holds the
/// former column `j`. Six passes of masked swap-XORs, all in registers/L1 —
/// this is the tile primitive for moving between the bit-sliced column
/// stores and row-major scratch (an involution: applying it twice restores
/// the input).
pub fn transpose_64x64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Naive per-bit 64×64 transpose — the oracle for [`transpose_64x64`].
pub fn transpose_64x64_naive(a: &[u64; 64]) -> [u64; 64] {
    let mut out = [0u64; 64];
    for (i, &row) in a.iter().enumerate() {
        for (j, o) in out.iter_mut().enumerate() {
            *o |= ((row >> j) & 1) << i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_words(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    #[test]
    fn blocked_kernels_match_scalar_across_lengths() {
        for len in [0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
            let a = rng_words(len, 0x9e37_79b9 + len as u64);
            let b = rng_words(len, 0x1234_5678 + len as u64);
            let mut d1 = a.clone();
            let mut d2 = a.clone();
            scalar::xor_words(&mut d1, &b);
            blocked::xor_words(&mut d2, &b);
            assert_eq!(d1, d2, "xor len {len}");
            let mut o1 = a.clone();
            let mut o2 = a.clone();
            scalar::or_words(&mut o1, &b);
            blocked::or_words(&mut o2, &b);
            assert_eq!(o1, o2, "or len {len}");
            assert_eq!(
                scalar::parity_and_words(&a, &b),
                blocked::parity_and_words(&a, &b),
                "parity len {len}"
            );
            assert_eq!(
                scalar::count_ones_words(&a),
                blocked::count_ones_words(&a),
                "count len {len}"
            );
            assert_eq!(
                scalar::is_zero_words(&a),
                blocked::is_zero_words(&a),
                "is_zero len {len}"
            );
            assert!(blocked::is_zero_words(&vec![0u64; len]));
        }
    }

    #[test]
    fn transpose_matches_naive_and_is_involutive() {
        let words = rng_words(64, 42);
        let mut tile = [0u64; 64];
        tile.copy_from_slice(&words);
        let naive = transpose_64x64_naive(&tile);
        let mut fast = tile;
        transpose_64x64(&mut fast);
        assert_eq!(fast, naive);
        transpose_64x64(&mut fast);
        assert_eq!(fast, tile);
    }
}
