//! Dense linear algebra over GF(2) backed by 64-bit words.
//!
//! The compiler needs small, fast boolean kernels in two places: the *height
//! function* of a graph state (rank of an off-diagonal adjacency block, see
//! [`crate::height`]) and the word-parallel stabilizer tableaux of
//! `epgs-stabilizer`. Two containers cover both:
//!
//! * [`BitMatrix`] — a dense row-major matrix (rows are contiguous word
//!   runs); the workhorse for rank / solve / null-space queries.
//! * [`BitVec`] — a packed bit-vector with word-level iteration
//!   ([`BitVec::ones`], [`BitVec::first_one`] via `trailing_zeros`) and
//!   bulk boolean updates ([`BitVec::xor_with`], [`BitVec::parity_and`]).
//!   The bit-sliced tableau stores one `BitVec` per qubit column, packed
//!   over generator rows, so a Clifford gate touches `⌈n/64⌉` words instead
//!   of `n` bits.
//!
//! All sizes in this workspace are at most a few hundred, so no sparse
//! representation is warranted. Bulk word loops (XOR/OR/popcount/inner
//! product) dispatch through [`kernels`], which pairs a 4×u64-lane blocked
//! path with the retained scalar oracle; reductions beyond the 64-row
//! transposed kernel go through a Four-Russians blocked elimination
//! ([`BitMatrix::rref_within_blocked_into`]) that is bit-identical to the
//! word-loop path it replaces.
//!
//! # Examples
//!
//! ```
//! use epgs_graph::gf2::BitMatrix;
//!
//! let mut m = BitMatrix::zeros(2, 3);
//! m.set(0, 0, true);
//! m.set(0, 2, true);
//! m.set(1, 2, true);
//! assert_eq!(m.rank(), 2);
//! ```

pub mod kernels;

/// Iterator over the indices of set bits in a run of 64-bit words, produced
/// by [`BitVec::ones`] and [`BitMatrix::row_ones`].
///
/// Words beyond the logical length must be zero-padded (both containers
/// maintain that invariant), so the iterator never yields out-of-range
/// indices.
#[derive(Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    /// Remaining bits of the word currently being drained.
    current: u64,
    /// Index of the word after the current one.
    next_word: usize,
}

impl<'a> Ones<'a> {
    fn new(words: &'a [u64]) -> Self {
        let (&first, rest) = words.split_first().unwrap_or((&0, &[]));
        Ones {
            words: rest,
            current: first,
            next_word: 1,
        }
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            let (&w, rest) = self.words.split_first()?;
            self.words = rest;
            self.current = w;
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.next_word - 1) * 64 + bit)
    }
}

/// A packed bit-vector over GF(2) with word-level access.
///
/// This is the bit-sliced storage unit of the stabilizer engine: one
/// `BitVec` holds, say, the X bits of *every* generator row at one qubit, so
/// a gate update is a handful of word operations rather than a loop of
/// single-bit reads. Bits beyond [`BitVec::len`] are kept zero (the word
/// formulas rely on it).
///
/// # Examples
///
/// ```
/// use epgs_graph::gf2::BitVec;
///
/// let mut v = BitVec::zeros(130);
/// v.set(3, true);
/// v.set(129, true);
/// assert_eq!(v.ones().collect::<Vec<_>>(), vec![3, 129]);
/// assert_eq!(v.first_one(), Some(3));
/// assert_eq!(v.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Reshapes the vector to `len` all-zero bits, reusing the backing
    /// allocation when it is large enough. The workspace-reuse primitive:
    /// `reset` + `set` replaces `BitVec::zeros` in hot loops.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Makes `self` a copy of `other`, reusing the backing allocation
    /// (unlike `clone_from`, which reallocates through `clone`).
    pub fn copy_from(&mut self, other: &BitVec) {
        self.len = other.len;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// True if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words, least-significant bit first.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words.
    ///
    /// Callers must keep bits at positions `>= len()` zero; every bulk
    /// operation in this module preserves that invariant.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Returns bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Swaps bits `a` and `b`.
    #[inline]
    pub fn swap_bits(&mut self, a: usize, b: usize) {
        let (ba, bb) = (self.get(a), self.get(b));
        if ba != bb {
            self.flip(a);
            self.flip(b);
        }
    }

    /// Zeroes every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        kernels::is_zero_words(&self.words)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        kernels::count_ones_words(&self.words)
    }

    /// Iterates the indices of set bits in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones::new(&self.words)
    }

    /// Index of the first set bit, if any.
    ///
    /// ```
    /// use epgs_graph::gf2::BitVec;
    ///
    /// let mut v = BitVec::zeros(200);
    /// assert_eq!(v.first_one(), None);
    /// v.set(70, true);
    /// assert_eq!(v.first_one(), Some(70));
    /// ```
    pub fn first_one(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|k| k * 64 + self.words[k].trailing_zeros() as usize)
    }

    /// Index of the first set bit at position `start` or later, if any.
    pub fn first_one_at_or_after(&self, start: usize) -> Option<usize> {
        if start >= self.len {
            return None;
        }
        let k0 = start / 64;
        let masked = self.words[k0] & (u64::MAX << (start % 64));
        if masked != 0 {
            return Some(k0 * 64 + masked.trailing_zeros() as usize);
        }
        self.words[k0 + 1..]
            .iter()
            .position(|&w| w != 0)
            .map(|k| (k0 + 1 + k) * 64 + self.words[k0 + 1 + k].trailing_zeros() as usize)
    }

    /// XORs `other` into `self` (`self ^= other`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        kernels::xor_words(&mut self.words, &other.words);
    }

    /// ORs `other` into `self` (`self |= other`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        kernels::or_words(&mut self.words, &other.words);
    }

    /// Parity of the AND with `other`: `popcount(self & other) mod 2`.
    ///
    /// This is the inner product over GF(2) — the word-parallel kernel behind
    /// stabilizer sign tracking.
    ///
    /// ```
    /// use epgs_graph::gf2::BitVec;
    ///
    /// let mut a = BitVec::zeros(100);
    /// let mut b = BitVec::zeros(100);
    /// a.set(5, true);
    /// a.set(80, true);
    /// b.set(80, true);
    /// assert!(a.parity_and(&b)); // one shared bit → odd
    /// b.set(5, true);
    /// assert!(!a.parity_and(&b)); // two shared bits → even
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn parity_and(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        kernels::parity_and_words(&self.words, &other.words)
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

/// A dense boolean matrix over GF(2).
///
/// Rows are stored as contiguous 64-bit words; XOR of two rows is a word-wise
/// XOR. All mutating elementary operations (`xor_rows`, `swap_rows`) keep the
/// matrix dimensions fixed.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates a `rows` × `cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64).max(1);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Reshapes the matrix to `rows` × `cols` of zeros, reusing the backing
    /// allocation when it is large enough. The workspace-reuse primitive for
    /// the constraint systems the solver assembles per photon.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.words_per_row = cols.div_ceil(64).max(1);
        self.data.clear();
        self.data.resize(rows * self.words_per_row, 0);
    }

    /// Drops all rows past `rows` (e.g. slots reserved by [`BitMatrix::reset`]
    /// that turned out empty during a compacting assembly).
    ///
    /// # Panics
    ///
    /// Panics if `rows` exceeds the current row count.
    pub fn truncate_rows(&mut self, rows: usize) {
        assert!(rows <= self.rows, "cannot grow with truncate_rows");
        self.rows = rows;
        self.data.truncate(rows * self.words_per_row);
    }

    /// Creates the `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from an iterator of rows, each row an iterator of bools.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows<I, R>(rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = bool>,
    {
        let rows: Vec<Vec<bool>> = rows.into_iter().map(|r| r.into_iter().collect()).collect();
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "all rows must have the same length"
        );
        let mut m = Self::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            for (j, &b) in row.iter().enumerate() {
                m.set(i, j, b);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> (usize, u64) {
        debug_assert!(r < self.rows && c < self.cols);
        (r * self.words_per_row + c / 64, 1u64 << (c % 64))
    }

    /// Returns the bit at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds (in debug builds).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        let (w, mask) = self.idx(r, c);
        self.data[w] & mask != 0
    }

    /// Sets the bit at (`r`, `c`) to `value`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        let (w, mask) = self.idx(r, c);
        if value {
            self.data[w] |= mask;
        } else {
            self.data[w] &= !mask;
        }
    }

    /// Flips the bit at (`r`, `c`).
    #[inline]
    pub fn flip(&mut self, r: usize, c: usize) {
        let (w, mask) = self.idx(r, c);
        self.data[w] ^= mask;
    }

    /// XORs row `src` into row `dst` (`dst ^= src`).
    ///
    /// # Panics
    ///
    /// Panics if `dst == src`.
    pub fn xor_rows(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "xor_rows requires distinct rows");
        let w = self.words_per_row;
        let (lo, hi) = (dst.min(src) * w, dst.max(src) * w);
        let (head, tail) = self.data.split_at_mut(hi);
        if dst < src {
            kernels::xor_words(&mut head[lo..lo + w], &tail[..w]);
        } else {
            kernels::xor_words(&mut tail[..w], &head[lo..lo + w]);
        }
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let w = self.words_per_row;
        for k in 0..w {
            self.data.swap(a * w + k, b * w + k);
        }
    }

    /// Returns true if row `r` is all zeros.
    pub fn row_is_zero(&self, r: usize) -> bool {
        kernels::is_zero_words(self.row_words(r))
    }

    /// The backing words of row `r`, least-significant bit first. Bits beyond
    /// [`BitMatrix::cols`] are zero.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        let w = self.words_per_row;
        &self.data[r * w..(r + 1) * w]
    }

    /// Mutable access to the backing words of row `r`.
    ///
    /// Callers must keep bits at columns `>= cols()` zero; every bulk
    /// operation in this module preserves that invariant.
    #[inline]
    pub fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        let w = self.words_per_row;
        &mut self.data[r * w..(r + 1) * w]
    }

    /// Parity of the AND of row `r` with `v`: the GF(2) inner product
    /// `popcount(row_r & v) mod 2`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn row_parity_and(&self, r: usize, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.cols, "bit-vector length must match cols");
        kernels::parity_and_words(self.row_words(r), v.words())
    }

    /// Iterates the column indices of set bits in row `r`, in increasing
    /// order (word-at-a-time via `trailing_zeros`).
    ///
    /// ```
    /// use epgs_graph::gf2::BitMatrix;
    ///
    /// let mut m = BitMatrix::zeros(1, 100);
    /// m.set(0, 2, true);
    /// m.set(0, 99, true);
    /// assert_eq!(m.row_ones(0).collect::<Vec<_>>(), vec![2, 99]);
    /// ```
    pub fn row_ones(&self, r: usize) -> Ones<'_> {
        Ones::new(self.row_words(r))
    }

    /// Number of set bits in row `r`.
    pub fn row_count_ones(&self, r: usize) -> usize {
        kernels::count_ones_words(self.row_words(r))
    }

    /// Overwrites row `r` with the bits of `bits`; columns past `bits.len()`
    /// are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() > self.cols()`.
    pub fn copy_row_from(&mut self, r: usize, bits: &BitVec) {
        assert!(bits.len() <= self.cols, "bit-vector wider than the matrix");
        let w = self.words_per_row;
        let dst = &mut self.data[r * w..(r + 1) * w];
        dst.fill(0);
        dst[..bits.words().len()].copy_from_slice(bits.words());
    }

    /// XORs the bits of row `r` into `acc`.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != self.cols()`.
    pub fn xor_row_into(&self, r: usize, acc: &mut BitVec) {
        assert_eq!(acc.len(), self.cols, "bit-vector length must match cols");
        kernels::xor_words(acc.words_mut(), self.row_words(r));
    }

    /// Reduces the matrix in place to reduced row-echelon form and returns the
    /// pivot columns in order.
    pub fn rref(&mut self) -> Vec<usize> {
        self.rref_within(self.cols)
    }

    /// Like [`BitMatrix::rref`], but only the first `lead_cols` columns are
    /// eligible as pivots; trailing columns are carried along by the row
    /// operations. This is the shared-factorization kernel: augment a
    /// coefficient block with several right-hand-side columns, reduce once,
    /// and read every solution (and the null space) out of the same
    /// elimination. The row operations performed are exactly those of
    /// `rref` on the leading block alone, so the leading block ends up in
    /// its canonical reduced form.
    ///
    /// # Panics
    ///
    /// Panics if `lead_cols > self.cols()`.
    pub fn rref_within(&mut self, lead_cols: usize) -> Vec<usize> {
        let mut pivots = Vec::new();
        self.rref_within_into(lead_cols, &mut pivots);
        pivots
    }

    /// Allocation-free [`BitMatrix::rref_within`]: the pivot columns are
    /// written into `pivots` (cleared first), reusing its storage.
    ///
    /// Dispatches on shape: systems of ≤ 64 rows and ≤ 128 columns (every
    /// per-photon constraint system the solver builds) go through the
    /// transposed `rref_small` kernel; larger systems take the
    /// Four-Russians blocked elimination
    /// ([`BitMatrix::rref_within_blocked_into`]) unless
    /// [`kernels::force_scalar`] pins dispatch to the retained word-loop
    /// oracle ([`BitMatrix::rref_within_wordloop_into`]). All three paths
    /// perform the same elementary row operations and produce bit-identical
    /// reduced matrices and pivot lists.
    pub fn rref_within_into(&mut self, lead_cols: usize, pivots: &mut Vec<usize>) {
        assert!(lead_cols <= self.cols, "lead_cols out of range");
        pivots.clear();
        if self.rows <= 64 && self.cols <= 128 {
            self.rref_small(lead_cols, pivots);
        } else if self.rows > 64 && !kernels::scalar_forced() {
            self.rref_within_blocked_into(lead_cols, pivots);
        } else {
            self.rref_within_wordloop_into(lead_cols, pivots);
        }
    }

    /// The retained straight-line word-loop RREF — the oracle path the
    /// differential suite reduces against, and the fallback when the scalar
    /// toggle is pinned.
    ///
    /// The elimination works on whole row slices: the pivot row is staged in
    /// a (stack) buffer so every other row is updated with one straight-line
    /// word loop instead of per-bit queries.
    pub fn rref_within_wordloop_into(&mut self, lead_cols: usize, pivots: &mut Vec<usize>) {
        assert!(lead_cols <= self.cols, "lead_cols out of range");
        pivots.clear();
        let wpr = self.words_per_row;
        let mut stack = [0u64; 8];
        let mut heap;
        let buf: &mut [u64] = if wpr <= stack.len() {
            &mut stack[..wpr]
        } else {
            heap = vec![0u64; wpr];
            &mut heap
        };
        let mut pivot_row = 0;
        for col in 0..lead_cols {
            if pivot_row >= self.rows {
                break;
            }
            let (cw, cm) = (col / 64, 1u64 << (col % 64));
            // Find a row at or below pivot_row with a 1 in this column.
            let Some(r) = (pivot_row..self.rows).find(|&r| self.data[r * wpr + cw] & cm != 0)
            else {
                continue;
            };
            self.swap_rows(pivot_row, r);
            buf.copy_from_slice(&self.data[pivot_row * wpr..(pivot_row + 1) * wpr]);
            for (other, row) in self.data.chunks_exact_mut(wpr).enumerate() {
                if other != pivot_row && row[cw] & cm != 0 {
                    for (w, &b) in row.iter_mut().zip(buf.iter()) {
                        *w ^= b;
                    }
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
    }

    /// Four-Russians (M4RI-style) blocked RREF over the first `lead_cols`
    /// columns, bit-identical to [`BitMatrix::rref_within_wordloop_into`].
    ///
    /// Columns are processed in windows of `k = clamp(⌊log₂ rows⌋ − 1, 4, 8)`.
    /// Phase 1 finds the window's pivots: for each window column, candidate
    /// rows are scanned by their *effective* bit — the raw bit XOR the parity
    /// of contributions from the pivot rows already found in this window
    /// (selected by the candidate's bits at those pivot columns) — so the
    /// scan sees exactly what sequential elimination would have left there
    /// without touching any non-pivot row. The chosen row is reduced against
    /// the window's pivot rows, swapped into place, and earlier pivot rows
    /// are reduced against it, keeping the block mutually reduced. Phase 2
    /// then eliminates the window from every row outside the block with one
    /// table lookup per row: a Gray-code table over the 2^k window patterns
    /// (non-pivot window bits contribute nothing) turns k single-pivot
    /// sweeps over the matrix into one. Because XOR is associative and each
    /// row's combination is selected by its pre-elimination window bits, the
    /// result — including the carried trailing columns — matches the
    /// sequential path bit for bit.
    ///
    /// One scratch allocation (the pattern table) is made per call; this
    /// path only runs for systems past the 64-row `rref_small`
    /// cutoff, where the table build is amortized over whole-matrix sweeps.
    pub fn rref_within_blocked_into(&mut self, lead_cols: usize, pivots: &mut Vec<usize>) {
        assert!(lead_cols <= self.cols, "lead_cols out of range");
        pivots.clear();
        if self.rows == 0 || lead_cols == 0 {
            return;
        }
        let wpr = self.words_per_row;
        let rows = self.rows;
        // Window width: larger tables amortize better over more rows, but a
        // table entry costs the same to build as an elimination row-XOR, so
        // 2^k must stay well below the row count. Measured on the solver's
        // constraint shapes (2n×(n+1), 128–1024 rows), the sweet spot is
        // k = ⌊log₂ rows⌋ − 3 clamped to [4, 6] — smaller than the textbook
        // 6–8 because the monomorphized sweep makes per-row cost so low that
        // table construction is the marginal cost.
        let k = ((usize::BITS - 1 - rows.leading_zeros()) as usize) // ⌊log₂ rows⌋ (rows ≥ 1)
            .saturating_sub(3)
            .clamp(4, 6);
        let mut table = vec![0u64; (1usize << k) * wpr];
        let mut wcols = [0usize; 8]; // window-relative pivot column offsets
        let mut r = 0usize; // first row of the current pivot block
        let mut c = 0usize; // first column of the current window
        while r < rows && c < lead_cols {
            let kk = k.min(lead_cols - c);
            // Phase 1: locate up to kk pivots inside columns [c, c+kk).
            let mut npiv = 0usize;
            for j in 0..kk {
                if r + npiv >= rows {
                    break;
                }
                let col = c + j;
                let (cw, cm) = (col / 64, 1u64 << (col % 64));
                // Window-pivot-row bits at this column (current state).
                let mut pmask = 0u64;
                for i in 0..npiv {
                    if self.data[(r + i) * wpr + cw] & cm != 0 {
                        pmask |= 1 << i;
                    }
                }
                // First candidate whose effective bit (after the pending
                // block elimination) is one — the same row the sequential
                // path would pick.
                let found = (r + npiv..rows).find(|&t| {
                    let row = &self.data[t * wpr..(t + 1) * wpr];
                    let mut eff = row[cw] & cm != 0;
                    if pmask != 0 {
                        let mut sel = 0u64;
                        for (i, &wc) in wcols[..npiv].iter().enumerate() {
                            let pc = c + wc;
                            sel |= ((row[pc / 64] >> (pc % 64)) & 1) << i;
                        }
                        eff ^= (sel & pmask).count_ones() % 2 == 1;
                    }
                    eff
                });
                let Some(t) = found else { continue };
                // Reduce the candidate by the block pivots it still carries
                // (pivot rows are mutually reduced, so bits at the other
                // pivot columns are untouched by each XOR).
                for (i, &wc) in wcols.iter().enumerate().take(npiv) {
                    let pc = c + wc;
                    if self.data[t * wpr + pc / 64] & (1u64 << (pc % 64)) != 0 {
                        self.xor_rows(t, r + i);
                    }
                }
                debug_assert!(self.data[t * wpr + cw] & cm != 0);
                self.swap_rows(r + npiv, t);
                // Reduce earlier block pivots upward against the new pivot.
                for i in 0..npiv {
                    if self.data[(r + i) * wpr + cw] & cm != 0 {
                        self.xor_rows(r + i, r + npiv);
                    }
                }
                wcols[npiv] = j;
                npiv += 1;
                pivots.push(col);
            }
            if npiv == 0 {
                c += kk;
                continue;
            }
            // Phase 2: Gray-code table over the window's pivot-bit patterns,
            // then one lookup + row XOR per row outside the block. Only the
            // 2^npiv subsets of the pivot mask are reachable (non-pivot
            // window bits are masked off below), so only those entries are
            // built — each from its Gray-code predecessor XOR one pivot row.
            let pivmask: u64 = wcols[..npiv]
                .iter()
                .map(|&j| 1u64 << j)
                .fold(0, |a, b| a | b);
            table[..wpr].fill(0);
            let mut prev_idx = 0usize;
            for g in 1u32..(1 << npiv) {
                let gray = g ^ (g >> 1);
                let i = g.trailing_zeros() as usize; // pivot toggled vs predecessor
                let idx: usize = (0..npiv)
                    .filter(|&b| gray & (1 << b) != 0)
                    .map(|b| 1usize << wcols[b])
                    .sum();
                let (src, dst) = (prev_idx * wpr, idx * wpr);
                let prow = (r + i) * wpr;
                for w in 0..wpr {
                    table[dst + w] = table[src + w] ^ self.data[prow + w];
                }
                prev_idx = idx;
            }
            let (w0, off) = (c / 64, c % 64);
            let spill = off + kk > 64;
            // Monomorphized sweeps: with the word count a compile-time
            // constant the per-row XOR unrolls completely, which is where
            // the blocked path's advantage over the word loop comes from.
            match wpr {
                1 => m4ri_sweep::<1>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                2 => m4ri_sweep::<2>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                3 => m4ri_sweep::<3>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                4 => m4ri_sweep::<4>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                5 => m4ri_sweep::<5>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                6 => m4ri_sweep::<6>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                7 => m4ri_sweep::<7>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                8 => m4ri_sweep::<8>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                9 => m4ri_sweep::<9>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                10 => m4ri_sweep::<10>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                11 => m4ri_sweep::<11>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                12 => m4ri_sweep::<12>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                13 => m4ri_sweep::<13>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                14 => m4ri_sweep::<14>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                15 => m4ri_sweep::<15>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                16 => m4ri_sweep::<16>(&mut self.data, &table, r, npiv, w0, off, spill, pivmask),
                _ => m4ri_sweep_wide(
                    &mut self.data,
                    wpr,
                    &table,
                    r,
                    npiv,
                    w0,
                    off,
                    spill,
                    pivmask,
                ),
            }
            r += npiv;
            c += kk;
        }
    }

    /// [`BitMatrix::rref_within_into`] for matrices of ≤ 64 rows and ≤ 128
    /// columns, operating on the bit-transpose: each column is one `u64`
    /// over the rows, so a pivot search is a `trailing_zeros`, a row swap is
    /// a delta-swap per column, and eliminating *every* row below a pivot is
    /// a single masked XOR per column. Performs exactly the row operations
    /// of the general path (same pivots, same reduced matrix).
    fn rref_small(&mut self, lead_cols: usize, pivots: &mut Vec<usize>) {
        debug_assert!(self.rows <= 64 && self.cols <= 128);
        let wpr = self.words_per_row;
        let mut colw = [0u64; 128];
        for r in 0..self.rows {
            for (k, &w) in self.data[r * wpr..(r + 1) * wpr].iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    let c = k * 64 + w.trailing_zeros() as usize;
                    colw[c] |= 1u64 << r;
                    w &= w - 1;
                }
            }
        }
        let cols = self.cols;
        let mut pivot_row = 0usize;
        for col in 0..lead_cols {
            if pivot_row >= self.rows {
                break;
            }
            // First row at or below pivot_row with a 1 in this column.
            let cand = colw[col] & (!0u64 << pivot_row);
            if cand == 0 {
                continue;
            }
            let r = cand.trailing_zeros() as usize;
            if r != pivot_row {
                for w in colw[..cols].iter_mut() {
                    let x = ((*w >> r) ^ (*w >> pivot_row)) & 1;
                    *w ^= (x << r) | (x << pivot_row);
                }
            }
            let pbit = 1u64 << pivot_row;
            let mask = colw[col] & !pbit;
            if mask != 0 {
                for w in colw[..cols].iter_mut() {
                    if *w & pbit != 0 {
                        *w ^= mask;
                    }
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        self.data[..self.rows * wpr].fill(0);
        for (c, &w) in colw[..cols].iter().enumerate() {
            let (cw, cm) = (c / 64, 1u64 << (c % 64));
            let mut w = w;
            while w != 0 {
                let r = w.trailing_zeros() as usize;
                self.data[r * wpr + cw] |= cm;
                w &= w - 1;
            }
        }
    }

    /// Reads the solution of `A x = b_j` out of a matrix already reduced by
    /// [`BitMatrix::rref_within`]`(lead_cols)`, where `b_j` lives in column
    /// `lead_cols + j`. Returns `None` when the system is inconsistent, and
    /// otherwise the same free-variables-zero solution [`BitMatrix::solve`]
    /// produces for the equivalent single-rhs call.
    pub fn solution_from_reduced(
        &self,
        pivots: &[usize],
        lead_cols: usize,
        j: usize,
    ) -> Option<BitVec> {
        let mut x = BitVec::zeros(lead_cols);
        self.solution_from_reduced_into(pivots, lead_cols, j, &mut x)
            .then_some(x)
    }

    /// Allocation-free [`BitMatrix::solution_from_reduced`]: writes the
    /// solution into `out` (resized to `lead_cols`) and returns whether the
    /// system is consistent. `out` is unspecified on `false`.
    pub fn solution_from_reduced_into(
        &self,
        pivots: &[usize],
        lead_cols: usize,
        j: usize,
        out: &mut BitVec,
    ) -> bool {
        let rhs_col = lead_cols + j;
        // Inconsistent iff a zero leading row still carries a rhs bit.
        for row in pivots.len()..self.rows {
            if self.get(row, rhs_col) {
                return false;
            }
        }
        out.reset(lead_cols);
        for (row, &col) in pivots.iter().enumerate() {
            out.set(col, self.get(row, rhs_col));
        }
        true
    }

    /// Null-space basis of the leading `lead_cols`-column block of a matrix
    /// already reduced by [`BitMatrix::rref_within`], as the rows of a
    /// matrix — the same basis (and order) [`BitMatrix::null_space_matrix`]
    /// computes from scratch.
    pub fn null_space_from_reduced(&self, pivots: &[usize], lead_cols: usize) -> BitMatrix {
        let mut basis = BitMatrix::zeros(0, 0);
        self.null_space_from_reduced_into(pivots, lead_cols, &mut basis);
        basis
    }

    /// Allocation-free [`BitMatrix::null_space_from_reduced`]: writes the
    /// basis rows into `out` (reshaped to `(lead_cols - rank) × lead_cols`).
    pub fn null_space_from_reduced_into(
        &self,
        pivots: &[usize],
        lead_cols: usize,
        out: &mut BitMatrix,
    ) {
        out.reset(lead_cols - pivots.len(), lead_cols);
        // Pivot columns are strictly increasing, so the free columns (and a
        // membership test) come from one merge-style sweep.
        let mut next_pivot = 0;
        let mut i = 0;
        for fc in 0..lead_cols {
            if next_pivot < pivots.len() && pivots[next_pivot] == fc {
                next_pivot += 1;
                continue;
            }
            out.set(i, fc, true);
            for (row, &pc) in pivots.iter().enumerate() {
                if self.get(row, fc) {
                    out.set(i, pc, true);
                }
            }
            i += 1;
        }
    }

    /// Returns the GF(2) rank without mutating the matrix.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.rref().len()
    }

    /// Solves `A x = b` over GF(2), returning one solution if any exists.
    ///
    /// `b` must have length `self.rows()`. The returned vector has length
    /// `self.cols()` with free variables set to zero.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve(&self, b: &[bool]) -> Option<Vec<bool>> {
        assert_eq!(b.len(), self.rows, "rhs length must match row count");
        // Augment with b as an extra column, then RREF.
        let mut aug = BitMatrix::zeros(self.rows, self.cols + 1);
        for (r, &rhs) in b.iter().enumerate() {
            for w in 0..self.words_per_row {
                aug.data[r * aug.words_per_row + w] = self.data[r * self.words_per_row + w];
            }
            // Clear any stray bits beyond self.cols (none: zero-padded), set rhs.
            aug.set(r, self.cols, rhs);
        }
        let pivots = aug.rref();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.last() == Some(&self.cols) {
            return None;
        }
        let mut x = vec![false; self.cols];
        for (row, &col) in pivots.iter().enumerate() {
            x[col] = aug.get(row, self.cols);
        }
        Some(x)
    }

    /// Solves `A x = b` over GF(2) like [`BitMatrix::solve`], but with packed
    /// inputs and outputs (free variables zero). Produces exactly the same
    /// solution as `solve` on the equivalent `&[bool]` input.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve_vec(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows, "rhs length must match row count");
        let mut aug = BitMatrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            for w in 0..self.words_per_row {
                aug.data[r * aug.words_per_row + w] = self.data[r * self.words_per_row + w];
            }
            aug.set(r, self.cols, b.get(r));
        }
        let pivots = aug.rref();
        if pivots.last() == Some(&self.cols) {
            return None;
        }
        let mut x = BitVec::zeros(self.cols);
        for (row, &col) in pivots.iter().enumerate() {
            x.set(col, aug.get(row, self.cols));
        }
        Some(x)
    }

    /// Returns a basis of the null space as the rows of a matrix, in the same
    /// order as [`BitMatrix::null_space`] (one row per free column, ascending).
    /// The row count is `cols - rank`.
    pub fn null_space_matrix(&self) -> BitMatrix {
        let mut m = self.clone();
        let pivots = m.rref();
        m.null_space_from_reduced(&pivots, self.cols)
    }

    /// Returns a basis of the null space (kernel) of the matrix, each element
    /// a vector of length `self.cols()`.
    pub fn null_space(&self) -> Vec<Vec<bool>> {
        let mut m = self.clone();
        let pivots = m.rref();
        let pivot_set: std::collections::BTreeSet<usize> = pivots.iter().copied().collect();
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set.contains(&free) {
                continue;
            }
            let mut v = vec![false; self.cols];
            v[free] = true;
            for (row, &pc) in pivots.iter().enumerate() {
                if m.get(row, free) {
                    v[pc] = true;
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Multiplies `self` by a column vector over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[bool]) -> Vec<bool> {
        assert_eq!(x.len(), self.cols, "vector length must match column count");
        (0..self.rows)
            .map(|r| {
                let mut acc = false;
                for (c, &xc) in x.iter().enumerate() {
                    if xc && self.get(r, c) {
                        acc = !acc;
                    }
                }
                acc
            })
            .collect()
    }
}

/// Phase-2 elimination sweep of [`BitMatrix::rref_within_blocked_into`] for
/// rows of exactly `W` words: extracts each row's window pattern, masks it
/// to the pivot bits, and XORs the matching table entry in (skipping the
/// `npiv` pivot rows starting at `block_start`). `W` being a compile-time
/// constant lets the row XOR unroll completely.
#[allow(clippy::too_many_arguments)]
fn m4ri_sweep<const W: usize>(
    data: &mut [u64],
    table: &[u64],
    block_start: usize,
    npiv: usize,
    w0: usize,
    off: usize,
    spill: bool,
    pivmask: u64,
) {
    for (t, row) in data.chunks_exact_mut(W).enumerate() {
        if t.wrapping_sub(block_start) < npiv {
            continue;
        }
        let mut pat = row[w0] >> off;
        if spill {
            pat |= row[w0 + 1] << (64 - off);
        }
        pat &= pivmask;
        if pat != 0 {
            let entry = &table[pat as usize * W..pat as usize * W + W];
            for w in 0..W {
                row[w] ^= entry[w];
            }
        }
    }
}

/// [`m4ri_sweep`] for rows wider than 8 words (runtime word count).
#[allow(clippy::too_many_arguments)]
fn m4ri_sweep_wide(
    data: &mut [u64],
    wpr: usize,
    table: &[u64],
    block_start: usize,
    npiv: usize,
    w0: usize,
    off: usize,
    spill: bool,
    pivmask: u64,
) {
    for (t, row) in data.chunks_exact_mut(wpr).enumerate() {
        if t.wrapping_sub(block_start) < npiv {
            continue;
        }
        let mut pat = row[w0] >> off;
        if spill {
            pat |= row[w0 + 1] << (64 - off);
        }
        pat &= pivmask;
        if pat != 0 {
            let entry = &table[pat as usize * wpr..pat as usize * wpr + wpr];
            kernels::blocked::xor_words(row, entry);
        }
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{}", if self.get(r, c) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_set_bits() {
        let m = BitMatrix::zeros(3, 70);
        for r in 0..3 {
            for c in 0..70 {
                assert!(!m.get(r, c));
            }
        }
    }

    #[test]
    fn set_get_flip_across_word_boundary() {
        let mut m = BitMatrix::zeros(2, 130);
        m.set(1, 129, true);
        assert!(m.get(1, 129));
        m.flip(1, 129);
        assert!(!m.get(1, 129));
        m.flip(0, 63);
        m.flip(0, 64);
        assert!(m.get(0, 63) && m.get(0, 64));
    }

    #[test]
    fn identity_rank_is_n() {
        assert_eq!(BitMatrix::identity(17).rank(), 17);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = BitMatrix::from_rows(vec![
            vec![true, false, true],
            vec![false, true, true],
            vec![true, true, false], // row0 ^ row1
        ]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rref_pivots_are_increasing() {
        let mut m = BitMatrix::from_rows(vec![
            vec![false, true, true, false],
            vec![true, true, false, true],
            vec![true, false, true, true],
        ]);
        let pivots = m.rref();
        let mut sorted = pivots.clone();
        sorted.sort_unstable();
        assert_eq!(pivots, sorted);
    }

    #[test]
    fn solve_consistent_system() {
        // x0 ^ x2 = 1 ; x1 = 1 ; x0 ^ x1 ^ x2 = 0
        let a = BitMatrix::from_rows(vec![
            vec![true, false, true],
            vec![false, true, false],
            vec![true, true, true],
        ]);
        let b = vec![true, true, false];
        let x = a.solve(&b).expect("system is consistent");
        assert_eq!(a.mul_vec(&x), b);
    }

    #[test]
    fn solve_inconsistent_system() {
        // x0 = 0 and x0 = 1 cannot both hold.
        let a = BitMatrix::from_rows(vec![vec![true], vec![true]]);
        assert!(a.solve(&[false, true]).is_none());
    }

    #[test]
    fn null_space_vectors_are_in_kernel() {
        let a = BitMatrix::from_rows(vec![
            vec![true, true, false, true],
            vec![false, true, true, true],
        ]);
        let basis = a.null_space();
        assert_eq!(basis.len(), 2); // 4 cols - rank 2
        for v in &basis {
            assert!(a.mul_vec(v).iter().all(|&b| !b));
        }
    }

    #[test]
    fn swap_rows_is_involutive() {
        let mut m = BitMatrix::from_rows(vec![vec![true, false], vec![false, true]]);
        let orig = m.clone();
        m.swap_rows(0, 1);
        m.swap_rows(0, 1);
        assert_eq!(m, orig);
    }

    #[test]
    fn xor_rows_twice_restores() {
        let mut m = BitMatrix::from_rows(vec![vec![true, true, false], vec![false, true, true]]);
        let orig = m.clone();
        m.xor_rows(0, 1);
        m.xor_rows(0, 1);
        assert_eq!(m, orig);
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn xor_rows_same_row_panics() {
        let mut m = BitMatrix::zeros(2, 2);
        m.xor_rows(1, 1);
    }

    #[test]
    fn bitvec_ones_and_first_one() {
        let mut v = BitVec::zeros(200);
        assert!(v.is_zero());
        assert_eq!(v.first_one(), None);
        assert_eq!(v.ones().count(), 0);
        for i in [0usize, 63, 64, 127, 199] {
            v.set(i, true);
        }
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![0, 63, 64, 127, 199]);
        assert_eq!(v.first_one(), Some(0));
        assert_eq!(v.first_one_at_or_after(1), Some(63));
        assert_eq!(v.first_one_at_or_after(64), Some(64));
        assert_eq!(v.first_one_at_or_after(128), Some(199));
        assert_eq!(v.first_one_at_or_after(200), None);
        assert_eq!(v.count_ones(), 5);
    }

    #[test]
    fn bitvec_bulk_ops() {
        let mut a = BitVec::zeros(130);
        let mut b = BitVec::zeros(130);
        a.set(5, true);
        a.set(129, true);
        b.set(5, true);
        b.set(70, true);
        let mut x = a.clone();
        x.xor_with(&b);
        assert_eq!(x.ones().collect::<Vec<_>>(), vec![70, 129]);
        let mut o = a.clone();
        o.or_with(&b);
        assert_eq!(o.count_ones(), 3);
        assert!(a.parity_and(&b)); // bit 5 shared
        a.set(70, true);
        assert!(!a.parity_and(&b)); // bits 5 and 70 shared
        a.swap_bits(70, 71);
        assert!(!a.get(70) && a.get(71));
        a.clear();
        assert!(a.is_zero());
    }

    #[test]
    fn row_ones_matches_get() {
        let mut m = BitMatrix::zeros(3, 150);
        m.set(1, 0, true);
        m.set(1, 64, true);
        m.set(1, 149, true);
        assert_eq!(m.row_ones(1).collect::<Vec<_>>(), vec![0, 64, 149]);
        assert_eq!(m.row_count_ones(1), 3);
        assert_eq!(m.row_ones(0).count(), 0);
    }

    #[test]
    fn copy_row_from_and_xor_row_into() {
        let mut v = BitVec::zeros(100);
        v.set(3, true);
        v.set(99, true);
        let mut m = BitMatrix::zeros(2, 100);
        m.copy_row_from(0, &v);
        assert!(m.get(0, 3) && m.get(0, 99));
        let mut acc = BitVec::zeros(100);
        acc.set(3, true);
        m.xor_row_into(0, &mut acc);
        assert_eq!(acc.ones().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn solve_vec_matches_solve() {
        let a = BitMatrix::from_rows(vec![
            vec![true, false, true],
            vec![false, true, false],
            vec![true, true, true],
        ]);
        let mut b = BitVec::zeros(3);
        b.set(0, true);
        b.set(1, true);
        let x = a.solve_vec(&b).expect("consistent");
        let x_bools = a.solve(&[true, true, false]).expect("consistent");
        for (i, &bit) in x_bools.iter().enumerate() {
            assert_eq!(x.get(i), bit);
        }
        let bad = BitMatrix::from_rows(vec![vec![true], vec![true]]);
        let mut rhs = BitVec::zeros(2);
        rhs.set(1, true);
        assert!(bad.solve_vec(&rhs).is_none());
    }

    #[test]
    fn null_space_matrix_matches_null_space() {
        let a = BitMatrix::from_rows(vec![
            vec![true, true, false, true],
            vec![false, true, true, true],
        ]);
        let basis = a.null_space();
        let m = a.null_space_matrix();
        assert_eq!(m.rows(), basis.len());
        for (i, v) in basis.iter().enumerate() {
            for (c, &bit) in v.iter().enumerate() {
                assert_eq!(m.get(i, c), bit, "basis vector {i} bit {c}");
            }
        }
    }

    #[test]
    fn row_is_zero_detects() {
        let mut m = BitMatrix::zeros(2, 100);
        assert!(m.row_is_zero(0));
        m.set(0, 99, true);
        assert!(!m.row_is_zero(0));
        assert!(m.row_is_zero(1));
    }
}
