//! Graphviz DOT export, for inspecting benchmark graphs and partitions.

use crate::graph::Graph;

/// Renders the graph in Graphviz DOT format.
///
/// If `block_of` is provided (one block id per vertex), vertices are colored
/// by block, which visualizes a partition.
///
/// # Examples
///
/// ```
/// use epgs_graph::{generators, dot};
///
/// let s = dot::to_dot(&generators::path(3), None);
/// assert!(s.contains("0 -- 1"));
/// ```
pub fn to_dot(g: &Graph, block_of: Option<&[usize]>) -> String {
    const PALETTE: [&str; 8] = [
        "lightblue",
        "lightgreen",
        "lightsalmon",
        "plum",
        "khaki",
        "lightcyan",
        "pink",
        "wheat",
    ];
    let mut out = String::from("graph G {\n  node [style=filled];\n");
    for v in 0..g.vertex_count() {
        let color = block_of
            .and_then(|b| b.get(v))
            .map(|&blk| PALETTE[blk % PALETTE.len()])
            .unwrap_or("white");
        out.push_str(&format!("  {v} [fillcolor={color}];\n"));
    }
    for (a, b) in g.edges() {
        out.push_str(&format!("  {a} -- {b};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_edges_and_vertices() {
        let g = generators::cycle(4);
        let s = to_dot(&g, None);
        for (a, b) in g.edges() {
            assert!(s.contains(&format!("{a} -- {b}")));
        }
        assert!(s.starts_with("graph G {"));
        assert!(s.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_colors_blocks() {
        let g = generators::path(2);
        let s = to_dot(&g, Some(&[0, 1]));
        assert!(s.contains("lightblue"));
        assert!(s.contains("lightgreen"));
    }
}
