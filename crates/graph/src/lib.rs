//! Graph-state graph algebra for the `epgs` workspace.
//!
//! A quantum graph state |G⟩ is described, up to local Cliffords, by a simple
//! undirected graph. This crate provides:
//!
//! * [`Graph`] — deterministic adjacency-set graphs ([`graph`]);
//! * [`ops`] — local complementation, pivot, and Pauli-measurement update
//!   rules, the combinatorial shadows of local Clifford operations;
//! * [`generators`] — the benchmark families of the paper (lattice, tree,
//!   Waxman), the batch-corpus families (random-regular, hypercube,
//!   heavy-hex, Barabási–Albert, Watts–Strogatz), and standard test graphs;
//! * [`height`] — cut-rank / height function, which lower-bounds the emitter
//!   count needed for deterministic emitter-photonic generation;
//! * [`canon`] — label-invariant Weisfeiler–Lehman hashing, the key
//!   function of the batch compiler's content-addressed artifact cache;
//! * [`gf2`] — the dense GF(2) kernels shared with the stabilizer crate;
//! * [`metrics`], [`dot`] — structural summaries and Graphviz export.
//!
//! # Examples
//!
//! ```
//! use epgs_graph::{generators, height, ops};
//!
//! # fn main() -> Result<(), epgs_graph::GraphError> {
//! // A 3×3 MBQC lattice needs 3 emitters in row-major emission order …
//! let mut g = generators::lattice(3, 3);
//! assert_eq!(height::min_emitters_natural(&g), 3);
//!
//! // … and local complementation changes the edge structure but keeps the
//! // state reachable with single-qubit gates only.
//! ops::local_complement(&mut g, 4)?;
//! # Ok(())
//! # }
//! ```

pub mod canon;
pub mod dot;
pub mod error;
pub mod generators;
pub mod gf2;
pub mod graph;
pub mod height;
pub mod metrics;
pub mod ops;

pub use error::GraphError;
pub use graph::Graph;
