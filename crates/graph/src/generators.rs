//! Benchmark graph families.
//!
//! These cover the paper's Fig. 9 workloads — 2D lattice (MBQC), trees (QRAM
//! routers / tree codes), and Waxman random graphs (distributed-QC
//! topologies) — plus the standard families used in unit tests, the repeater
//! graph state of Azuma et al., and the batch-corpus families added for the
//! throughput harness: random-regular, hypercube, heavy-hex,
//! Barabási–Albert preferential attachment, and Watts–Strogatz small-world.
//!
//! # RNG determinism contract
//!
//! Every randomized generator in this module is a pure function of its
//! parameters and the RNG *stream*: given equal parameters and an RNG in an
//! equal state (e.g. `StdRng::seed_from_u64(s)` with the same `s`), it
//! returns an identical [`Graph`] and leaves the RNG in an identical state.
//! Generators draw from the RNG in a fixed documented order and never
//! consult global state, so corpus enumeration, caching keys, and benchmark
//! reruns are reproducible across runs and platforms.

use rand::Rng;

use crate::graph::Graph;

/// Linear cluster state graph (a path) on `n` vertices.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("path edges are in range")
}

/// Cycle on `n` vertices (`n ≥ 3` gives a ring; smaller n degenerates to a path).
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(n - 1, 0).expect("endpoints are in range");
    }
    g
}

/// Complete graph K_n (LC-equivalent to the GHZ-state star).
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b).expect("indices are in range");
        }
    }
    g
}

/// Star with hub `0` and `n - 1` leaves (the GHZ-state graph).
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (0, i))).expect("star edges are in range")
}

/// 2D square lattice with `rows` × `cols` vertices, the basic MBQC resource.
///
/// Vertex `(r, c)` has index `r * cols + c`.
pub fn lattice(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1).expect("in range");
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols).expect("in range");
            }
        }
    }
    g
}

/// Complete `arity`-ary tree truncated to exactly `n` vertices, breadth-first.
///
/// This is the QRAM-router / tree-code shape: vertex 0 is the root and vertex
/// `i > 0` hangs off vertex `(i - 1) / arity`.
///
/// # Panics
///
/// Panics if `arity == 0`.
pub fn tree(n: usize, arity: usize) -> Graph {
    assert!(arity > 0, "tree arity must be positive");
    Graph::from_edges(n, (1..n).map(|i| ((i - 1) / arity, i))).expect("tree edges are in range")
}

/// Uniformly random labelled tree on `n` vertices (random Prüfer sequence).
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("in range");
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut g = Graph::new(n);
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        g.add_edge(leaf, v).expect("in range");
        degree[leaf] -= 1;
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let remaining: Vec<usize> = (0..n).filter(|&v| degree[v] == 1).collect();
    debug_assert_eq!(remaining.len(), 2);
    g.add_edge(remaining[0], remaining[1]).expect("in range");
    g
}

/// Waxman random graph on `n` vertices in the unit square.
///
/// Vertices are placed uniformly; an edge `(u, v)` appears with probability
/// `alpha * exp(-d(u, v) / (beta * L))` where `L` is the maximum distance
/// (√2 for the unit square). Disconnected results are patched by linking each
/// later component to the first through its geometrically closest pair, which
/// preserves the distance-dependent flavor of the model while guaranteeing a
/// usable benchmark instance (the paper's workloads are connected).
///
/// # Determinism
///
/// Deterministic in the sense of the [module contract](self): the RNG is
/// consumed in a fixed order — `2 n` coordinate draws, then one Bernoulli
/// draw per vertex pair `(a, b)` with `a < b` in lexicographic order; the
/// connectivity patch draws nothing. Equal `(n, alpha, beta)` and an
/// equally-seeded RNG yield equal graphs (pinned by the
/// `waxman_is_connected_and_seeded` test).
pub fn waxman<R: Rng + ?Sized>(n: usize, alpha: f64, beta: f64, rng: &mut R) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pts[a].0 - pts[b].0;
        let dy = pts[a].1 - pts[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    let l = std::f64::consts::SQRT_2;
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let p = alpha * (-dist(a, b) / (beta * l)).exp();
            if rng.gen::<f64>() < p {
                g.add_edge(a, b).expect("in range");
            }
        }
    }
    // Patch connectivity: join every later component to the first via the
    // geometrically closest cross pair.
    loop {
        let comps = g.connected_components();
        if comps.len() <= 1 {
            break;
        }
        let base = &comps[0];
        let other = &comps[1];
        let (&a, &b) = base
            .iter()
            .flat_map(|a| other.iter().map(move |b| (a, b)))
            .min_by(|(a1, b1), (a2, b2)| {
                dist(**a1, **b1)
                    .partial_cmp(&dist(**a2, **b2))
                    .expect("distances are finite")
            })
            .expect("components are non-empty");
        g.add_edge(a, b).expect("in range");
    }
    g
}

/// Erdős–Rényi G(n, p) random graph.
///
/// # Determinism
///
/// Deterministic in the sense of the [module contract](self): exactly one
/// Bernoulli draw per vertex pair `(a, b)` with `a < b`, in lexicographic
/// order. Equal `(n, p)` and an equally-seeded RNG yield equal graphs
/// (pinned by the `erdos_renyi_seeded_equality` test); unlike [`waxman`],
/// no connectivity patch is applied, so the result may be disconnected.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(a, b).expect("in range");
            }
        }
    }
    g
}

/// Repeater graph state of Azuma et al.: a complete core on `2 m` vertices
/// with one leaf attached to each core vertex (total `4 m` vertices).
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn repeater_graph_state(m: usize) -> Graph {
    assert!(m > 0, "repeater graph state needs m ≥ 1");
    let core = 2 * m;
    let mut g = complete(core);
    for v in 0..core {
        let leaf = g.add_vertex();
        g.add_edge(v, leaf).expect("in range");
    }
    g
}

/// Random `d`-regular graph on `n` vertices.
///
/// Starts from the deterministic circulant `d`-regular graph (vertex `i`
/// adjacent to `i ± 1 … i ± d/2` mod `n`, plus the antipode `i + n/2` when
/// `d` is odd) and randomizes it with `10 · n · d` attempted double-edge
/// swaps: two edges `(a, b)`, `(c, d)` are rewired to `(a, c)`, `(b, d)`
/// when all four endpoints are distinct and neither new edge exists. Swaps
/// preserve both regularity and simplicity, so the result is always a valid
/// simple `d`-regular graph — no rejection loop that could fail to
/// terminate.
///
/// Deterministic in the sense of the [module contract](self): two
/// `gen_range` draws per attempted swap, in order.
///
/// # Panics
///
/// Panics unless `d < n` and `n · d` is even.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(
        d < n || (n == 0 && d == 0),
        "degree must be below the vertex count"
    );
    assert!(
        (n * d).is_multiple_of(2),
        "n * d must be even for a d-regular graph"
    );
    let mut g = Graph::new(n);
    if n == 0 || d == 0 {
        return g;
    }
    // Circulant seed graph: offsets 1 ..= d/2, plus n/2 for odd d (which
    // requires even n, guaranteed by the parity assertion above).
    for i in 0..n {
        for j in 1..=(d / 2) {
            g.add_edge(i, (i + j) % n).expect("in range");
        }
    }
    if d % 2 == 1 {
        for i in 0..n / 2 {
            g.add_edge(i, i + n / 2).expect("in range");
        }
    }
    // Degree-preserving double-edge swaps for mixing.
    let mut edges: Vec<(usize, usize)> = g.edges().collect();
    let m = edges.len();
    if m < 2 {
        return g;
    }
    for _ in 0..10 * n * d {
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, e) = edges[j];
        if a == c || a == e || b == c || b == e {
            continue;
        }
        if g.has_edge(a, c) || g.has_edge(b, e) {
            continue;
        }
        g.remove_edge(a, b).expect("edge tracked");
        g.remove_edge(c, e).expect("edge tracked");
        g.add_edge(a, c).expect("in range");
        g.add_edge(b, e).expect("in range");
        edges[i] = (a.min(c), a.max(c));
        edges[j] = (b.min(e), b.max(e));
    }
    g
}

/// Hypercube graph Q_dim on `2^dim` vertices: vertices are bit strings,
/// edges join strings at Hamming distance 1. `dim == 0` is a single vertex.
///
/// # Panics
///
/// Panics if `2^dim` overflows `usize`.
pub fn hypercube(dim: u32) -> Graph {
    assert!(
        dim < usize::BITS,
        "2^dim must fit in usize (dim = {dim} is far beyond any compilable size anyway)"
    );
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for v in 0..n {
        for bit in 0..dim {
            let w = v ^ (1 << bit);
            if v < w {
                g.add_edge(v, w).expect("in range");
            }
        }
    }
    g
}

/// Heavy-hex lattice with `rows × cols` hexagonal cells (the IBM
/// heavy-hexagon qubit topology shape).
///
/// Built as the subdivision of a brick-wall honeycomb lattice: grid vertices
/// `(r, c)` for `r ∈ 0..=rows`, `c ∈ 0..2·cols+1` carry horizontal edges
/// between column neighbors and vertical edges `(r, c)–(r+1, c)` where
/// `r + c` is even; every lattice edge then receives one extra "flag"
/// vertex in its middle. Grid vertices have degree ≤ 3 and flag vertices
/// degree 2, matching the heavy-hex mix of data and flag qubits.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn heavy_hex(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "heavy hex needs at least one cell");
    let width = 2 * cols + 1;
    let grid = |r: usize, c: usize| r * width + c;
    let mut hex_edges: Vec<(usize, usize)> = Vec::new();
    for r in 0..=rows {
        for c in 0..width {
            if c + 1 < width {
                hex_edges.push((grid(r, c), grid(r, c + 1)));
            }
            if r < rows && (r + c) % 2 == 0 {
                hex_edges.push((grid(r, c), grid(r + 1, c)));
            }
        }
    }
    let mut g = Graph::new((rows + 1) * width);
    for (a, b) in hex_edges {
        let flag = g.add_vertex();
        g.add_edge(a, flag).expect("in range");
        g.add_edge(flag, b).expect("in range");
    }
    g
}

/// Barabási–Albert preferential-attachment graph: `n` vertices, each new
/// vertex attaching to `attach` distinct existing vertices chosen with
/// probability proportional to current degree (repeated-nodes method).
///
/// Vertices `0 … attach - 1` form the edgeless seed set; vertex `attach`
/// connects to all of them, and every later vertex samples its `attach`
/// distinct targets from the degree-weighted list (duplicates rejected).
/// The result is connected by construction.
///
/// Deterministic in the sense of the [module contract](self): one
/// `gen_range` draw per (possibly rejected) target sample, vertices in
/// increasing order.
///
/// # Panics
///
/// Panics unless `1 ≤ attach < n`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, attach: usize, rng: &mut R) -> Graph {
    assert!(
        attach >= 1 && attach < n,
        "attachment count must be in 1..n"
    );
    let mut g = Graph::new(n);
    // One entry per edge endpoint: sampling uniformly from this list is
    // degree-proportional sampling.
    let mut repeated: Vec<usize> = Vec::with_capacity(2 * n * attach);
    for v in attach..n {
        let mut targets: Vec<usize> = Vec::with_capacity(attach);
        if v == attach {
            targets.extend(0..attach);
        } else {
            while targets.len() < attach {
                let t = repeated[rng.gen_range(0..repeated.len())];
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        for &t in &targets {
            g.add_edge(v, t).expect("in range");
            repeated.push(v);
            repeated.push(t);
        }
    }
    g
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex links
/// to its `k / 2` nearest neighbors on each side, with every lattice edge
/// rewired with probability `beta` to a uniformly random non-neighbor.
///
/// As with [`waxman`], a disconnected rewiring outcome is patched into a
/// connected benchmark instance: each later component is joined to the
/// first through its smallest-index vertices (the patch draws no
/// randomness).
///
/// Deterministic in the sense of the [module contract](self): for each
/// offset `j ∈ 1..=k/2` and each vertex in order, one Bernoulli draw, plus
/// one `gen_range` draw per (possibly rejected) replacement endpoint.
///
/// # Panics
///
/// Panics unless `k` is even and `2 ≤ k < n`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k.is_multiple_of(2), "neighbor count k must be even");
    assert!(k >= 2 && k < n, "neighbor count must be in 2..n");
    let mut g = Graph::new(n);
    for j in 1..=k / 2 {
        for i in 0..n {
            g.add_edge(i, (i + j) % n).expect("in range");
        }
    }
    for j in 1..=k / 2 {
        for i in 0..n {
            if !rng.gen_bool(beta) {
                continue;
            }
            let old = (i + j) % n;
            // A full vertex can keep its lattice edge: rewiring it would
            // loop forever looking for a free endpoint.
            if g.degree(i) >= n - 1 {
                continue;
            }
            let new = loop {
                let w = rng.gen_range(0..n);
                if w != i && !g.has_edge(i, w) {
                    break w;
                }
            };
            // Each lattice edge is visited exactly once across the (j, i)
            // loops, so it must still be present here — remove_edge alone
            // would not catch a broken invariant (absence returns Ok(false)).
            assert!(
                g.remove_edge(i, old).expect("endpoints in range"),
                "lattice edge visited twice"
            );
            g.add_edge(i, new).expect("in range");
        }
    }
    // Patch connectivity (rewiring can strand components).
    let comps = g.connected_components();
    for later in comps.iter().skip(1) {
        g.add_edge(comps[0][0], later[0]).expect("in range");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn path_degenerate_sizes() {
        assert_eq!(path(0).vertex_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert!((0..6).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn cycle_small_degenerates_to_path() {
        assert_eq!(cycle(2).edge_count(), 1);
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(7).edge_count(), 21);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn lattice_shape() {
        let g = lattice(3, 4);
        assert_eq!(g.vertex_count(), 12);
        // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert!(g.is_connected());
    }

    #[test]
    fn tree_shape() {
        let g = tree(7, 2);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 2);
        assert!(g.is_connected());
        // Leaves of the complete binary tree on 7 vertices.
        for v in 3..7 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2usize, 3, 8, 20] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.edge_count(), n - 1);
            assert!(g.is_connected(), "n={n}");
        }
    }

    #[test]
    fn waxman_is_connected_and_seeded() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let g1 = waxman(20, 0.4, 0.2, &mut r1);
        let g2 = waxman(20, 0.4, 0.2, &mut r2);
        assert_eq!(g1, g2, "same seed must give the same graph");
        assert!(g1.is_connected());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn erdos_renyi_seeded_equality() {
        // Pins the module's RNG determinism contract for G(n, p): equal
        // parameters + equal seeds give bit-identical graphs, different
        // seeds diverge (overwhelmingly) at this density.
        let g1 = erdos_renyi(18, 0.3, &mut StdRng::seed_from_u64(123));
        let g2 = erdos_renyi(18, 0.3, &mut StdRng::seed_from_u64(123));
        assert_eq!(g1, g2, "same seed must give the same graph");
        let g3 = erdos_renyi(18, 0.3, &mut StdRng::seed_from_u64(124));
        assert_ne!(g1, g3, "different seeds must diverge");
    }

    #[test]
    fn random_regular_is_regular_and_seeded() {
        for (n, d) in [(8usize, 3usize), (10, 4), (12, 3), (9, 2)] {
            let g = random_regular(n, d, &mut StdRng::seed_from_u64(5));
            assert_eq!(g.vertex_count(), n);
            assert!((0..n).all(|v| g.degree(v) == d), "n={n} d={d}");
        }
        let a = random_regular(12, 3, &mut StdRng::seed_from_u64(9));
        let b = random_regular(12, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b, "same seed must give the same graph");
    }

    #[test]
    fn random_regular_degenerate_and_invalid() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_regular(5, 0, &mut rng).edge_count(), 0);
        assert_eq!(random_regular(0, 0, &mut rng).vertex_count(), 0);
        assert!(std::panic::catch_unwind(|| {
            random_regular(5, 3, &mut StdRng::seed_from_u64(1))
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            random_regular(4, 4, &mut StdRng::seed_from_u64(1))
        })
        .is_err());
    }

    #[test]
    fn hypercube_shape() {
        let q3 = hypercube(3);
        assert_eq!(q3.vertex_count(), 8);
        assert_eq!(q3.edge_count(), 12);
        assert!((0..8).all(|v| q3.degree(v) == 3));
        assert!(q3.is_connected());
        assert_eq!(hypercube(0).vertex_count(), 1);
        assert_eq!(hypercube(1).edge_count(), 1);
    }

    #[test]
    fn heavy_hex_shape() {
        // 1×1 cell: 6 grid vertices, 6 lattice edges, one flag per edge.
        let g = heavy_hex(1, 1);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 12);
        assert!(g.is_connected());
        let max_deg = (0..g.vertex_count()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg <= 3, "heavy-hex degree is capped at 3");
        // Every flag vertex (index ≥ grid size) has degree exactly 2.
        assert!((6..12).all(|v| g.degree(v) == 2));
        let bigger = heavy_hex(2, 2);
        assert!(bigger.is_connected());
        assert!(bigger.vertex_count() > g.vertex_count());
    }

    #[test]
    fn barabasi_albert_shape_and_seeded() {
        let g = barabasi_albert(20, 2, &mut StdRng::seed_from_u64(4));
        assert_eq!(g.vertex_count(), 20);
        // Seed vertices carry no mutual edges: m edges per non-seed vertex.
        assert_eq!(g.edge_count(), (20 - 2) * 2);
        assert!(g.is_connected());
        let a = barabasi_albert(20, 2, &mut StdRng::seed_from_u64(4));
        assert_eq!(g, a, "same seed must give the same graph");
    }

    #[test]
    fn watts_strogatz_shape_and_seeded() {
        // beta = 0 is exactly the ring lattice.
        let ring = watts_strogatz(10, 4, 0.0, &mut StdRng::seed_from_u64(2));
        assert!((0..10).all(|v| ring.degree(v) == 4));
        assert_eq!(ring.edge_count(), 20);
        // Rewired instances stay connected (patched) and seeded-equal.
        let a = watts_strogatz(16, 4, 0.3, &mut StdRng::seed_from_u64(8));
        let b = watts_strogatz(16, 4, 0.3, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b, "same seed must give the same graph");
        assert!(a.is_connected());
        // Rewiring never changes the vertex count and, pre-patch, keeps the
        // edge count; the patch can only add.
        assert!(a.edge_count() >= 16 * 4 / 2);
    }

    #[test]
    fn rgs_shape() {
        let g = repeater_graph_state(2);
        assert_eq!(g.vertex_count(), 8);
        // K4 core (6 edges) + 4 leaves.
        assert_eq!(g.edge_count(), 10);
        for v in 0..4 {
            assert_eq!(g.degree(v), 4);
        }
        for v in 4..8 {
            assert_eq!(g.degree(v), 1);
        }
    }
}
