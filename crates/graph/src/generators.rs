//! Benchmark graph families.
//!
//! These cover the paper's Fig. 9 workloads — 2D lattice (MBQC), trees (QRAM
//! routers / tree codes), and Waxman random graphs (distributed-QC
//! topologies) — plus the standard families used in unit tests and the
//! repeater graph state of Azuma et al.

use rand::Rng;

use crate::graph::Graph;

/// Linear cluster state graph (a path) on `n` vertices.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("path edges are in range")
}

/// Cycle on `n` vertices (`n ≥ 3` gives a ring; smaller n degenerates to a path).
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(n - 1, 0).expect("endpoints are in range");
    }
    g
}

/// Complete graph K_n (LC-equivalent to the GHZ-state star).
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b).expect("indices are in range");
        }
    }
    g
}

/// Star with hub `0` and `n - 1` leaves (the GHZ-state graph).
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (0, i))).expect("star edges are in range")
}

/// 2D square lattice with `rows` × `cols` vertices, the basic MBQC resource.
///
/// Vertex `(r, c)` has index `r * cols + c`.
pub fn lattice(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1).expect("in range");
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols).expect("in range");
            }
        }
    }
    g
}

/// Complete `arity`-ary tree truncated to exactly `n` vertices, breadth-first.
///
/// This is the QRAM-router / tree-code shape: vertex 0 is the root and vertex
/// `i > 0` hangs off vertex `(i - 1) / arity`.
///
/// # Panics
///
/// Panics if `arity == 0`.
pub fn tree(n: usize, arity: usize) -> Graph {
    assert!(arity > 0, "tree arity must be positive");
    Graph::from_edges(n, (1..n).map(|i| ((i - 1) / arity, i))).expect("tree edges are in range")
}

/// Uniformly random labelled tree on `n` vertices (random Prüfer sequence).
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]).expect("in range");
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut g = Graph::new(n);
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        g.add_edge(leaf, v).expect("in range");
        degree[leaf] -= 1;
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let remaining: Vec<usize> = (0..n).filter(|&v| degree[v] == 1).collect();
    debug_assert_eq!(remaining.len(), 2);
    g.add_edge(remaining[0], remaining[1]).expect("in range");
    g
}

/// Waxman random graph on `n` vertices in the unit square.
///
/// Vertices are placed uniformly; an edge `(u, v)` appears with probability
/// `alpha * exp(-d(u, v) / (beta * L))` where `L` is the maximum distance
/// (√2 for the unit square). Disconnected results are patched by linking each
/// later component to the first through its geometrically closest pair, which
/// preserves the distance-dependent flavor of the model while guaranteeing a
/// usable benchmark instance (the paper's workloads are connected).
pub fn waxman<R: Rng + ?Sized>(n: usize, alpha: f64, beta: f64, rng: &mut R) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pts[a].0 - pts[b].0;
        let dy = pts[a].1 - pts[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    let l = std::f64::consts::SQRT_2;
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let p = alpha * (-dist(a, b) / (beta * l)).exp();
            if rng.gen::<f64>() < p {
                g.add_edge(a, b).expect("in range");
            }
        }
    }
    // Patch connectivity: join every later component to the first via the
    // geometrically closest cross pair.
    loop {
        let comps = g.connected_components();
        if comps.len() <= 1 {
            break;
        }
        let base = &comps[0];
        let other = &comps[1];
        let (&a, &b) = base
            .iter()
            .flat_map(|a| other.iter().map(move |b| (a, b)))
            .min_by(|(a1, b1), (a2, b2)| {
                dist(**a1, **b1)
                    .partial_cmp(&dist(**a2, **b2))
                    .expect("distances are finite")
            })
            .expect("components are non-empty");
        g.add_edge(a, b).expect("in range");
    }
    g
}

/// Erdős–Rényi G(n, p) random graph.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(a, b).expect("in range");
            }
        }
    }
    g
}

/// Repeater graph state of Azuma et al.: a complete core on `2 m` vertices
/// with one leaf attached to each core vertex (total `4 m` vertices).
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn repeater_graph_state(m: usize) -> Graph {
    assert!(m > 0, "repeater graph state needs m ≥ 1");
    let core = 2 * m;
    let mut g = complete(core);
    for v in 0..core {
        let leaf = g.add_vertex();
        g.add_edge(v, leaf).expect("in range");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn path_degenerate_sizes() {
        assert_eq!(path(0).vertex_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert!((0..6).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn cycle_small_degenerates_to_path() {
        assert_eq!(cycle(2).edge_count(), 1);
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(7).edge_count(), 21);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn lattice_shape() {
        let g = lattice(3, 4);
        assert_eq!(g.vertex_count(), 12);
        // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert!(g.is_connected());
    }

    #[test]
    fn tree_shape() {
        let g = tree(7, 2);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 2);
        assert!(g.is_connected());
        // Leaves of the complete binary tree on 7 vertices.
        for v in 3..7 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2usize, 3, 8, 20] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.edge_count(), n - 1);
            assert!(g.is_connected(), "n={n}");
        }
    }

    #[test]
    fn waxman_is_connected_and_seeded() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let g1 = waxman(20, 0.4, 0.2, &mut r1);
        let g2 = waxman(20, 0.4, 0.2, &mut r2);
        assert_eq!(g1, g2, "same seed must give the same graph");
        assert!(g1.is_connected());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn rgs_shape() {
        let g = repeater_graph_state(2);
        assert_eq!(g.vertex_count(), 8);
        // K4 core (6 edges) + 4 leaves.
        assert_eq!(g.edge_count(), 10);
        for v in 0..4 {
            assert_eq!(g.degree(v), 4);
        }
        for v in 4..8 {
            assert_eq!(g.degree(v), 1);
        }
    }
}
