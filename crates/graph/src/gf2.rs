//! Dense linear algebra over GF(2) backed by 64-bit words.
//!
//! The compiler needs small, fast boolean matrix kernels in two places:
//! the *height function* of a graph state (rank of an off-diagonal adjacency
//! block, see [`crate::height`]) and the echelon-form manipulations of
//! stabilizer tableaux in `epgs-stabilizer`. Matrices here are dense and
//! row-major; all sizes in this workspace are at most a few hundred, so no
//! sparse representation is warranted.
//!
//! # Examples
//!
//! ```
//! use epgs_graph::gf2::BitMatrix;
//!
//! let mut m = BitMatrix::zeros(2, 3);
//! m.set(0, 0, true);
//! m.set(0, 2, true);
//! m.set(1, 2, true);
//! assert_eq!(m.rank(), 2);
//! ```

/// A dense boolean matrix over GF(2).
///
/// Rows are stored as contiguous 64-bit words; XOR of two rows is a word-wise
/// XOR. All mutating elementary operations (`xor_rows`, `swap_rows`) keep the
/// matrix dimensions fixed.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates a `rows` × `cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64).max(1);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Creates the `n` × `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from an iterator of rows, each row an iterator of bools.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows<I, R>(rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = bool>,
    {
        let rows: Vec<Vec<bool>> = rows.into_iter().map(|r| r.into_iter().collect()).collect();
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "all rows must have the same length"
        );
        let mut m = Self::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            for (j, &b) in row.iter().enumerate() {
                m.set(i, j, b);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> (usize, u64) {
        debug_assert!(r < self.rows && c < self.cols);
        (r * self.words_per_row + c / 64, 1u64 << (c % 64))
    }

    /// Returns the bit at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds (in debug builds).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        let (w, mask) = self.idx(r, c);
        self.data[w] & mask != 0
    }

    /// Sets the bit at (`r`, `c`) to `value`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        let (w, mask) = self.idx(r, c);
        if value {
            self.data[w] |= mask;
        } else {
            self.data[w] &= !mask;
        }
    }

    /// Flips the bit at (`r`, `c`).
    #[inline]
    pub fn flip(&mut self, r: usize, c: usize) {
        let (w, mask) = self.idx(r, c);
        self.data[w] ^= mask;
    }

    /// XORs row `src` into row `dst` (`dst ^= src`).
    ///
    /// # Panics
    ///
    /// Panics if `dst == src`.
    pub fn xor_rows(&mut self, dst: usize, src: usize) {
        assert_ne!(dst, src, "xor_rows requires distinct rows");
        let w = self.words_per_row;
        let (d, s) = (dst * w, src * w);
        for k in 0..w {
            let v = self.data[s + k];
            self.data[d + k] ^= v;
        }
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let w = self.words_per_row;
        for k in 0..w {
            self.data.swap(a * w + k, b * w + k);
        }
    }

    /// Returns true if row `r` is all zeros.
    pub fn row_is_zero(&self, r: usize) -> bool {
        let w = self.words_per_row;
        self.data[r * w..(r + 1) * w].iter().all(|&x| x == 0)
    }

    /// Reduces the matrix in place to reduced row-echelon form and returns the
    /// pivot columns in order.
    pub fn rref(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row >= self.rows {
                break;
            }
            // Find a row at or below pivot_row with a 1 in this column.
            let found = (pivot_row..self.rows).find(|&r| self.get(r, col));
            let Some(r) = found else { continue };
            self.swap_rows(pivot_row, r);
            for other in 0..self.rows {
                if other != pivot_row && self.get(other, col) {
                    self.xor_rows(other, pivot_row);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        pivots
    }

    /// Returns the GF(2) rank without mutating the matrix.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.rref().len()
    }

    /// Solves `A x = b` over GF(2), returning one solution if any exists.
    ///
    /// `b` must have length `self.rows()`. The returned vector has length
    /// `self.cols()` with free variables set to zero.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve(&self, b: &[bool]) -> Option<Vec<bool>> {
        assert_eq!(b.len(), self.rows, "rhs length must match row count");
        // Augment with b as an extra column, then RREF.
        let mut aug = BitMatrix::zeros(self.rows, self.cols + 1);
        for (r, &rhs) in b.iter().enumerate() {
            for w in 0..self.words_per_row {
                aug.data[r * aug.words_per_row + w] = self.data[r * self.words_per_row + w];
            }
            // Clear any stray bits beyond self.cols (none: zero-padded), set rhs.
            aug.set(r, self.cols, rhs);
        }
        let pivots = aug.rref();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.last() == Some(&self.cols) {
            return None;
        }
        let mut x = vec![false; self.cols];
        for (row, &col) in pivots.iter().enumerate() {
            x[col] = aug.get(row, self.cols);
        }
        Some(x)
    }

    /// Returns a basis of the null space (kernel) of the matrix, each element
    /// a vector of length `self.cols()`.
    pub fn null_space(&self) -> Vec<Vec<bool>> {
        let mut m = self.clone();
        let pivots = m.rref();
        let pivot_set: std::collections::BTreeSet<usize> = pivots.iter().copied().collect();
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set.contains(&free) {
                continue;
            }
            let mut v = vec![false; self.cols];
            v[free] = true;
            for (row, &pc) in pivots.iter().enumerate() {
                if m.get(row, free) {
                    v[pc] = true;
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Multiplies `self` by a column vector over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[bool]) -> Vec<bool> {
        assert_eq!(x.len(), self.cols, "vector length must match column count");
        (0..self.rows)
            .map(|r| {
                let mut acc = false;
                for (c, &xc) in x.iter().enumerate() {
                    if xc && self.get(r, c) {
                        acc = !acc;
                    }
                }
                acc
            })
            .collect()
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{}", if self.get(r, c) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_set_bits() {
        let m = BitMatrix::zeros(3, 70);
        for r in 0..3 {
            for c in 0..70 {
                assert!(!m.get(r, c));
            }
        }
    }

    #[test]
    fn set_get_flip_across_word_boundary() {
        let mut m = BitMatrix::zeros(2, 130);
        m.set(1, 129, true);
        assert!(m.get(1, 129));
        m.flip(1, 129);
        assert!(!m.get(1, 129));
        m.flip(0, 63);
        m.flip(0, 64);
        assert!(m.get(0, 63) && m.get(0, 64));
    }

    #[test]
    fn identity_rank_is_n() {
        assert_eq!(BitMatrix::identity(17).rank(), 17);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = BitMatrix::from_rows(vec![
            vec![true, false, true],
            vec![false, true, true],
            vec![true, true, false], // row0 ^ row1
        ]);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rref_pivots_are_increasing() {
        let mut m = BitMatrix::from_rows(vec![
            vec![false, true, true, false],
            vec![true, true, false, true],
            vec![true, false, true, true],
        ]);
        let pivots = m.rref();
        let mut sorted = pivots.clone();
        sorted.sort_unstable();
        assert_eq!(pivots, sorted);
    }

    #[test]
    fn solve_consistent_system() {
        // x0 ^ x2 = 1 ; x1 = 1 ; x0 ^ x1 ^ x2 = 0
        let a = BitMatrix::from_rows(vec![
            vec![true, false, true],
            vec![false, true, false],
            vec![true, true, true],
        ]);
        let b = vec![true, true, false];
        let x = a.solve(&b).expect("system is consistent");
        assert_eq!(a.mul_vec(&x), b);
    }

    #[test]
    fn solve_inconsistent_system() {
        // x0 = 0 and x0 = 1 cannot both hold.
        let a = BitMatrix::from_rows(vec![vec![true], vec![true]]);
        assert!(a.solve(&[false, true]).is_none());
    }

    #[test]
    fn null_space_vectors_are_in_kernel() {
        let a = BitMatrix::from_rows(vec![
            vec![true, true, false, true],
            vec![false, true, true, true],
        ]);
        let basis = a.null_space();
        assert_eq!(basis.len(), 2); // 4 cols - rank 2
        for v in &basis {
            assert!(a.mul_vec(v).iter().all(|&b| !b));
        }
    }

    #[test]
    fn swap_rows_is_involutive() {
        let mut m = BitMatrix::from_rows(vec![vec![true, false], vec![false, true]]);
        let orig = m.clone();
        m.swap_rows(0, 1);
        m.swap_rows(0, 1);
        assert_eq!(m, orig);
    }

    #[test]
    fn xor_rows_twice_restores() {
        let mut m = BitMatrix::from_rows(vec![vec![true, true, false], vec![false, true, true]]);
        let orig = m.clone();
        m.xor_rows(0, 1);
        m.xor_rows(0, 1);
        assert_eq!(m, orig);
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn xor_rows_same_row_panics() {
        let mut m = BitMatrix::zeros(2, 2);
        m.xor_rows(1, 1);
    }

    #[test]
    fn row_is_zero_detects() {
        let mut m = BitMatrix::zeros(2, 100);
        assert!(m.row_is_zero(0));
        m.set(0, 99, true);
        assert!(!m.row_is_zero(0));
        assert!(m.row_is_zero(1));
    }
}
