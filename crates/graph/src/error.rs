//! Error types for graph construction and transformation.

/// Errors raised by graph construction and graph-state transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex index was not below the graph's vertex count.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The graph's vertex count.
        count: usize,
    },
    /// An edge `(v, v)` was requested; graph states have no self-loops.
    SelfLoop {
        /// The offending vertex.
        vertex: usize,
    },
    /// A pivot `(u, v)` was requested on a non-edge.
    PivotRequiresEdge {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
    },
    /// An X-measurement rule needed a neighbor but the vertex was isolated.
    IsolatedVertex {
        /// The isolated vertex.
        vertex: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, count } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {count} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphError::PivotRequiresEdge { a, b } => {
                write!(f, "pivot requires an edge between {a} and {b}")
            }
            GraphError::IsolatedVertex { vertex } => {
                write!(f, "operation requires vertex {vertex} to have a neighbor")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = GraphError::VertexOutOfRange {
            vertex: 7,
            count: 3,
        };
        assert_eq!(
            e.to_string(),
            "vertex 7 out of range for graph with 3 vertices"
        );
        let e = GraphError::SelfLoop { vertex: 1 };
        assert!(e.to_string().contains("self-loop"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
