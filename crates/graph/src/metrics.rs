//! Structural summaries used by partitioning heuristics and reports.

use crate::graph::Graph;

/// Degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeStats {
    /// Smallest degree (0 for the empty graph).
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes degree statistics.
///
/// # Examples
///
/// ```
/// use epgs_graph::{generators, metrics};
///
/// let stats = metrics::degree_stats(&generators::star(5));
/// assert_eq!(stats.max, 4);
/// assert_eq!(stats.min, 1);
/// ```
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.vertex_count();
    if n == 0 {
        return DegreeStats::default();
    }
    let degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    DegreeStats {
        min: degrees.iter().copied().min().unwrap_or(0),
        max: degrees.iter().copied().max().unwrap_or(0),
        mean: degrees.iter().sum::<usize>() as f64 / n as f64,
    }
}

/// Edge density: `|E| / (n choose 2)`; zero for graphs with fewer than two
/// vertices.
pub fn density(g: &Graph) -> f64 {
    let n = g.vertex_count();
    if n < 2 {
        return 0.0;
    }
    let max = n * (n - 1) / 2;
    g.edge_count() as f64 / max as f64
}

/// Number of edges crossing a partition, where `block_of[v]` names v's block.
///
/// # Panics
///
/// Panics if `block_of.len() != g.vertex_count()`.
pub fn cut_edges(g: &Graph, block_of: &[usize]) -> usize {
    assert_eq!(
        block_of.len(),
        g.vertex_count(),
        "block assignment must cover every vertex"
    );
    g.edges()
        .filter(|&(a, b)| block_of[a] != block_of[b])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_stats_path() {
        let s = degree_stats(&generators::path(4));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        let s = degree_stats(&Graph::new(0));
        assert_eq!(s, DegreeStats::default());
    }

    #[test]
    fn density_bounds() {
        assert!((density(&generators::complete(5)) - 1.0).abs() < 1e-12);
        assert_eq!(density(&Graph::new(1)), 0.0);
        assert_eq!(density(&Graph::new(5)), 0.0);
    }

    #[test]
    fn cut_edges_counts_crossings() {
        let g = generators::path(4);
        // Blocks {0,1} and {2,3}: only edge (1,2) crosses.
        assert_eq!(cut_edges(&g, &[0, 0, 1, 1]), 1);
        // Alternating blocks: every edge crosses.
        assert_eq!(cut_edges(&g, &[0, 1, 0, 1]), 3);
        // One block: nothing crosses.
        assert_eq!(cut_edges(&g, &[0, 0, 0, 0]), 0);
    }
}
