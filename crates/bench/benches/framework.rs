//! Criterion benchmarks of the end-to-end framework: partition, subgraph
//! compilation, scheduling, and full compiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use epgs_bench::bench_framework;
use epgs_graph::generators;
use epgs_partition::{partition_with_lc, PartitionSpec};

fn bench_full_compile(c: &mut Criterion) {
    let fw = bench_framework();
    let mut group = c.benchmark_group("framework_compile");
    for (name, g) in [
        ("lattice4x4", generators::lattice(4, 4)),
        ("tree22", generators::tree(22, 2)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| fw.compile(g).expect("compiles"))
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let g = generators::lattice(5, 6);
    let spec = PartitionSpec {
        g_max: 7,
        lc_budget: 4,
        effort: 8,
        seed: 1,
        ..Default::default()
    };
    c.bench_function("partition_lattice5x6_lc4", |b| {
        b.iter(|| partition_with_lc(&g, &spec))
    });
    let spec0 = PartitionSpec {
        lc_budget: 0,
        ..spec
    };
    c.bench_function("partition_lattice5x6_lc0", |b| {
        b.iter(|| partition_with_lc(&g, &spec0))
    });
}

fn bench_budget_sweep(c: &mut Criterion) {
    // The staged sweep must come in well under k × a full compile: the
    // partition + leaf-compile prefix runs once, only schedule → recombine →
    // verify repeats per budget.
    let fw = bench_framework();
    let g = generators::lattice(4, 4);
    let budgets: Vec<usize> = (1..=4).collect();
    let mut group = c.benchmark_group("budget_sweep_lattice4x4");
    group.bench_function("pointwise_4_compiles", |b| {
        b.iter(|| {
            budgets
                .iter()
                .map(|&k| fw.compile_with_budget(&g, k).expect("compiles"))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("staged_reuse", |b| {
        b.iter(|| fw.sweep(&g, &budgets).expect("sweeps"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_full_compile, bench_partition, bench_budget_sweep
}
criterion_main!(benches);
