//! Criterion benchmarks of the end-to-end framework: partition, subgraph
//! compilation, scheduling, and full compiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use epgs_bench::bench_framework;
use epgs_graph::generators;
use epgs_partition::{partition_with_lc, PartitionSpec};

fn bench_full_compile(c: &mut Criterion) {
    let fw = bench_framework();
    let mut group = c.benchmark_group("framework_compile");
    for (name, g) in [
        ("lattice4x4", generators::lattice(4, 4)),
        ("tree22", generators::tree(22, 2)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| fw.compile(g).expect("compiles"))
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let g = generators::lattice(5, 6);
    let spec = PartitionSpec { g_max: 7, lc_budget: 4, effort: 8, seed: 1 };
    c.bench_function("partition_lattice5x6_lc4", |b| {
        b.iter(|| partition_with_lc(&g, &spec))
    });
    let spec0 = PartitionSpec { lc_budget: 0, ..spec };
    c.bench_function("partition_lattice5x6_lc0", |b| {
        b.iter(|| partition_with_lc(&g, &spec0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_full_compile, bench_partition
}
criterion_main!(benches);
