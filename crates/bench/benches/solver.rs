//! Criterion benchmarks of the time-reversed solver and its substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use epgs_graph::{generators, height};
use epgs_solver::reverse::{solve, SolveOptions};
use epgs_solver::{solve_baseline, BaselineOptions};
use epgs_stabilizer::Tableau;

fn bench_reverse_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("reverse_solve");
    let opts = SolveOptions {
        verify: false,
        ..SolveOptions::default()
    };
    for n in [8usize, 16, 24] {
        let g = generators::path(n);
        group.bench_with_input(BenchmarkId::new("path", n), &g, |b, g| {
            b.iter(|| solve(g, &opts).expect("solves"))
        });
    }
    for k in [3usize, 5] {
        let g = generators::lattice(4, k);
        group.bench_with_input(BenchmarkId::new("lattice4xk", 4 * k), &g, |b, g| {
            b.iter(|| solve(g, &opts).expect("solves"))
        });
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let hw = epgs_hardware::HardwareModel::quantum_dot();
    let opts = BaselineOptions {
        verify: false,
        restarts: 4,
        ..BaselineOptions::default()
    };
    let g = generators::lattice(4, 4);
    c.bench_function("baseline_lattice4x4", |b| {
        b.iter(|| solve_baseline(&g, &hw, &opts).expect("solves"))
    });
}

fn bench_substrates(c: &mut Criterion) {
    let g = generators::lattice(5, 5);
    c.bench_function("height_function_5x5", |b| {
        let ordering: Vec<usize> = (0..25).collect();
        b.iter(|| height::height_function(&g, &ordering))
    });
    c.bench_function("tableau_canonicalize_25q", |b| {
        let t = Tableau::graph_state(&g);
        b.iter(|| {
            let mut t2 = t.clone();
            t2.canonicalize();
            t2
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reverse_solver, bench_baseline, bench_substrates
}
criterion_main!(benches);
