//! Cross-process persistence: a second `corpus_run` process over the same
//! `--store` directory must serve the whole default corpus from disk.

use std::process::Command;

use epgs_corpus::json::Value;

fn run_corpus(store: &std::path::Path, out: &std::path::Path) -> Value {
    let status = Command::new(env!("CARGO_BIN_EXE_corpus_run"))
        .args([
            "--passes",
            "1",
            "--store",
            store.to_str().expect("utf-8 path"),
            "--out",
            out.to_str().expect("utf-8 path"),
        ])
        .status()
        .expect("spawn corpus_run");
    assert!(status.success(), "corpus_run exited with {status}");
    let text = std::fs::read_to_string(out).expect("report file");
    Value::parse(&text).expect("report is JSON")
}

#[test]
fn second_process_run_serves_the_default_corpus_from_disk() {
    let base = std::env::temp_dir().join(format!("epgs-corpus-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let store = base.join("store");
    std::fs::create_dir_all(&base).expect("temp base");

    // Process 1: cold — everything misses and is written through.
    let cold = run_corpus(&store, &base.join("cold.json"));
    let cold_report = &cold
        .get("reports")
        .and_then(Value::as_arr)
        .expect("reports")[0];
    let instances = cold_report
        .get("instances")
        .and_then(Value::as_arr)
        .expect("instances")
        .len();
    assert!(instances >= 20, "default corpus shrank to {instances}");
    assert_eq!(
        cold_report.get("disk_hits").and_then(Value::as_u64),
        Some(0),
        "cold run must not hit disk"
    );

    // Process 2: same store directory — every expensive prefix comes off
    // disk. Within-run duplicates promote to memory hits, so the check is
    // "no instance recompiled", with disk hits covering the distinct
    // content.
    let warm = run_corpus(&store, &base.join("warm.json"));
    let warm_report = &warm
        .get("reports")
        .and_then(Value::as_arr)
        .expect("reports")[0];
    let disk_hits = warm_report
        .get("disk_hits")
        .and_then(Value::as_u64)
        .expect("disk_hits") as usize;
    let misses = warm_report
        .get("cache_misses")
        .and_then(Value::as_u64)
        .expect("cache_misses");
    let distinct = warm_report
        .get("distinct_canonical")
        .and_then(Value::as_u64)
        .expect("distinct_canonical") as usize;
    assert_eq!(misses, 0, "second process recompiled something");
    assert!(
        disk_hits >= distinct,
        "expected ≥{distinct} disk hits, got {disk_hits}"
    );
    for inst in warm_report
        .get("instances")
        .and_then(Value::as_arr)
        .expect("instances")
    {
        let outcome = inst.get("cache").and_then(Value::as_str).expect("cache");
        assert!(
            outcome == "disk_hit" || outcome == "hit",
            "instance {:?} recompiled (outcome '{outcome}')",
            inst.get("id")
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
