//! Shared workloads and helpers for the evaluation harness.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's §V using
//! these fixed, seeded workloads (Fig. 9 families: 2D lattice for MBQC,
//! trees for QRAM/tree codes, Waxman random graphs for distributed QC).
//! Sizes track the paper's sweeps: lattices 12–60 qubits, trees 10–40,
//! Waxman 10–35. Beyond the figure binaries, `corpus_run` drives the batch
//! engine (`epgs::BatchCompiler`) over a serializable `epgs_corpus`
//! instance grid and emits per-pass JSON reports, including the artifact
//! cache's hit/miss counters.

use rand::rngs::StdRng;
use rand::SeedableRng;

use epgs::{Framework, FrameworkConfig};
use epgs_graph::{generators, Graph};
use epgs_hardware::HardwareModel;
use epgs_solver::BaselineOptions;

/// Benchmark RNG seed (fixed for reproducibility).
pub const SEED: u64 = 0xdac2025;

/// The pipeline stages whose wall times `runtime_scaling` records per
/// framework point and `bench_guard` diffs across trajectories. One list,
/// two bins — extending the breakdown means extending this.
pub const STAGES: [&str; 5] = ["partition", "plan", "schedule", "recombine", "verify"];

/// Lattice sweep: 4×k grids, 12–60 qubits (paper Fig. 10 a/d).
pub fn lattice_sweep() -> Vec<(usize, Graph)> {
    [3usize, 5, 7, 9, 11, 13, 15]
        .into_iter()
        .map(|k| (4 * k, generators::lattice(4, k)))
        .collect()
}

/// Tree sweep: complete binary trees truncated to n, 10–40 qubits
/// (paper Fig. 10 b/e).
pub fn tree_sweep() -> Vec<(usize, Graph)> {
    [10usize, 16, 22, 28, 34, 40]
        .into_iter()
        .map(|n| (n, generators::tree(n, 2)))
        .collect()
}

/// Waxman sweep: 10–35 qubits (paper Fig. 10 c/f), α = 0.5, β = 0.2.
pub fn waxman_sweep() -> Vec<(usize, Graph)> {
    [10usize, 15, 20, 25, 30, 35]
        .into_iter()
        .map(|n| {
            let mut rng = StdRng::seed_from_u64(SEED ^ n as u64);
            (n, generators::waxman(n, 0.5, 0.2, &mut rng))
        })
        .collect()
}

/// The three benchmark families with their display names.
pub fn all_families() -> Vec<(&'static str, Vec<(usize, Graph)>)> {
    vec![
        ("lattice", lattice_sweep()),
        ("tree", tree_sweep()),
        ("random", waxman_sweep()),
    ]
}

/// Framework configuration used across the evaluation: the paper's g_max = 7
/// and LC budget 15, with search effort sized so a full sweep runs in
/// minutes (the paper instead allows a 20-minute MIP timeout per graph).
pub fn bench_framework() -> Framework {
    Framework::new(FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 7,
            lc_budget: 8,
            effort: 8,
            seed: SEED,
            ..Default::default()
        },
        orderings_per_subgraph: 8,
        flexible_slack: 2,
        verify: true,
        ..FrameworkConfig::default()
    })
}

/// [`bench_framework`] pinned to the flat partition scheme — the
/// pre-multilevel engine, kept measurable so `runtime_scaling` can record
/// the flat-vs-multilevel partition-stage speedup in the same run, on the
/// same machine.
pub fn flat_framework() -> Framework {
    Framework::new(FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 7,
            lc_budget: 8,
            effort: 8,
            seed: SEED,
            scheme: epgs_partition::PartitionScheme::Flat,
        },
        orderings_per_subgraph: 8,
        flexible_slack: 2,
        verify: true,
        ..FrameworkConfig::default()
    })
}

/// Framework configuration for corpus batch runs ([`bench_framework`] with
/// the search effort trimmed so a 20+ instance corpus — see
/// `epgs_corpus::CorpusSpec::default_corpus` — compiles in seconds).
pub fn corpus_framework() -> Framework {
    Framework::new(FrameworkConfig {
        partition: epgs_partition::PartitionSpec {
            g_max: 6,
            lc_budget: 4,
            effort: 5,
            seed: SEED,
            ..Default::default()
        },
        orderings_per_subgraph: 6,
        flexible_slack: 1,
        verify: true,
        ..FrameworkConfig::default()
    })
}

/// Baseline configuration: GraphiQ-style alternate-target search.
pub fn bench_baseline() -> BaselineOptions {
    BaselineOptions {
        restarts: 8,
        lc_depth: 3,
        seed: SEED,
        emitters: None,
        verify: true,
    }
}

/// The quantum-dot hardware model used throughout §V.
pub fn hw() -> HardwareModel {
    HardwareModel::quantum_dot()
}

/// Percentage reduction of `ours` relative to `base` (positive = better).
pub fn reduction_pct(base: f64, ours: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (base - ours) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_cover_paper_ranges() {
        let lat = lattice_sweep();
        assert_eq!(lat.first().unwrap().0, 12);
        assert_eq!(lat.last().unwrap().0, 60);
        let tree = tree_sweep();
        assert!(tree.first().unwrap().0 >= 10 && tree.last().unwrap().0 <= 40);
        let wax = waxman_sweep();
        assert!(wax.iter().all(|(n, g)| g.vertex_count() == *n));
    }

    #[test]
    fn workloads_are_reproducible() {
        let a = waxman_sweep();
        let b = waxman_sweep();
        for ((n1, g1), (n2, g2)) in a.iter().zip(&b) {
            assert_eq!(n1, n2);
            assert_eq!(g1, g2);
        }
    }

    #[test]
    fn reduction_pct_math() {
        assert_eq!(reduction_pct(10.0, 5.0), 50.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
        assert!(reduction_pct(10.0, 12.0) < 0.0);
    }
}
