//! Batch-compiles a corpus of target graph states and writes a JSON report.
//!
//! Each pass compiles every instance of the corpus through one shared
//! [`BatchCompiler`]; pass 1 populates the content-addressed artifact cache
//! and later passes demonstrate it (every instance's partition +
//! leaf-planning prefix is served from the cache). The emitted JSON holds
//! one report per pass plus the cumulative cache counters.
//!
//! Run with:
//! `cargo run --release -p epgs-bench --bin corpus_run -- \
//!     [--spec FILE.json] [--out FILE.json] [--passes N] [--store DIR]`
//!
//! With `--store DIR` the compiler persists every artifact in a
//! content-addressed on-disk store, so a *second process* run over the
//! same corpus and directory serves its expensive prefixes from disk
//! (reported as `disk_hits`).

use std::fs;
use std::process::ExitCode;

use epgs::{BatchCompiler, BatchInstance, BatchReport};
use epgs_bench::corpus_framework;
use epgs_corpus::{CorpusSpec, Value};

fn usage() -> ExitCode {
    eprintln!("usage: corpus_run [--spec FILE.json] [--out FILE.json] [--passes N] [--store DIR]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut spec_path: Option<String> = None;
    let mut out_path = "target/corpus_run.json".to_string();
    let mut store_dir: Option<String> = None;
    let mut passes = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => match args.next() {
                Some(path) => spec_path = Some(path),
                None => {
                    eprintln!("--spec needs a file path");
                    return usage();
                }
            },
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a file path");
                    return usage();
                }
            },
            "--passes" => match args.next().map(|p| p.parse::<usize>()) {
                Some(Ok(p)) if p >= 1 => passes = p,
                _ => {
                    eprintln!("--passes needs a positive integer");
                    return usage();
                }
            },
            "--store" => match args.next() {
                Some(dir) => store_dir = Some(dir),
                None => {
                    eprintln!("--store needs a directory");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }

    let spec = match &spec_path {
        None => CorpusSpec::default_corpus(),
        Some(path) => {
            let text = match fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read spec {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match CorpusSpec::from_json(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot parse spec {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    // Generator preconditions (e.g. a Watts–Strogatz grid with
    // neighbors ≥ size) surface as panics from instances(); turn them into
    // the same diagnostic-and-exit path as every other bad input.
    let instances = match std::panic::catch_unwind(|| spec.instances()) {
        Ok(instances) => instances,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("generator precondition violated");
            eprintln!("spec '{}' names an invalid instance grid: {msg}", spec.name);
            return ExitCode::FAILURE;
        }
    };
    if instances.is_empty() {
        eprintln!("spec '{}' produced no instances", spec.name);
        return ExitCode::FAILURE;
    }
    let jobs: Vec<BatchInstance> = instances
        .into_iter()
        .map(|i| BatchInstance::new(i.id, i.family, i.graph))
        .collect();

    // A corpus may pin a hardware preset; it overrides the bench default
    // end to end (timings, loss figures, and any objective the config
    // carries). `from_json` validated the key, but specs built in code
    // reach here too.
    let mut config = corpus_framework().config().clone();
    match spec.hardware_model() {
        Ok(None) => {}
        Ok(Some(hw)) => config.set_platform(hw),
        Err(e) => {
            eprintln!("spec '{}': {e}", spec.name);
            return ExitCode::FAILURE;
        }
    }
    println!(
        "corpus '{}': {} families, {} instances, {} passes, hardware '{}'",
        spec.name,
        spec.families.len(),
        jobs.len(),
        passes,
        config.hardware.name,
    );

    // Size the cache to the corpus: the default 256-entry bound would
    // thrash (and fail the repeated-pass hit check below) on larger specs.
    let mut batch = BatchCompiler::with_cache_capacity(
        config,
        jobs.len().max(BatchCompiler::DEFAULT_CACHE_CAPACITY),
    );
    if let Some(dir) = &store_dir {
        match epgs::ArtifactStore::open(dir) {
            Ok(store) => batch.attach_store(store),
            Err(e) => {
                eprintln!("cannot open artifact store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut reports: Vec<BatchReport> = Vec::with_capacity(passes);
    for pass in 1..=passes {
        let report = batch.run(&jobs);
        println!(
            "pass {pass}: {}/{} ok, {} cache hits, {} disk hits, {} misses, Σ wall {:.2} s",
            report.succeeded,
            report.instances.len(),
            report.cache_hits,
            report.disk_hits,
            report.cache_misses,
            report.total_wall_micros as f64 / 1e6,
        );
        for f in &report.families {
            println!(
                "  {:<16} {:>2}/{:<2} ok  {:>2} hits  mean ee-CNOTs {:>6.2}  mean τ {:>7.2}",
                f.family, f.succeeded, f.instances, f.cache_hits, f.mean_ee_cnots, f.mean_duration
            );
        }
        reports.push(report);
    }

    let mut doc = String::from("{");
    doc.push_str(&format!(
        "\"corpus\":{},\"passes\":{passes},\"reports\":[",
        Value::Str(spec.name.clone())
    ));
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&r.to_json());
    }
    doc.push_str("]}");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(e) = fs::write(&out_path, &doc) {
        eprintln!("cannot write report {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out_path}");

    let failed: usize = reports.iter().map(|r| r.failed).sum();
    if failed > 0 {
        eprintln!("{failed} instance compilations failed");
        return ExitCode::FAILURE;
    }
    if passes >= 2
        && reports
            .last()
            .is_some_and(|r| r.cache_hits + r.disk_hits == 0)
    {
        eprintln!("repeated pass produced no cache hits — artifact cache is broken");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
