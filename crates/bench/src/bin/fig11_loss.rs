//! Regenerates paper Fig. 11 (a): photon loss rate of the generated state
//! (0.5 %/τ_QD storage loss, Ne_limit = 1.5 × Ne_min), baseline vs framework,
//! reported as the suppression factor ×.
//!
//! Run with: `cargo run --release -p epgs-bench --bin fig11_loss`

use std::process::ExitCode;

use epgs_bench::{all_families, bench_baseline, bench_framework, hw};
use epgs_circuit::circuit_metrics;
use epgs_solver::{solve_baseline, BaselineOptions};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig11_loss: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let fw = bench_framework();
    let hw = hw();
    for (family, sweep) in all_families() {
        println!("== Fig 11(a) photon loss (lower is better) — {family} graphs ==");
        println!(
            "{:>7} {:>12} {:>12} {:>12}",
            "#qubit", "base loss", "ours loss", "improvement"
        );
        let mut factors = Vec::new();
        for (n, g) in sweep {
            // One staged prefix per target; the budget point only schedules.
            let planned = fw
                .pipeline()
                .partition(&g)
                .plan_leaves()
                .map_err(|e| format!("{family} n={n}: leaf compilation failed: {e}"))?;
            let budget = ((planned.ne_min() as f64 * 1.5).ceil() as usize).max(1);
            let base_opts = BaselineOptions {
                emitters: Some(budget),
                ..bench_baseline()
            };
            let base = solve_baseline(&g, &hw, &base_opts)
                .map_err(|e| format!("{family} n={n}: baseline solve failed: {e}"))?;
            let base_loss = circuit_metrics(&hw, &base.circuit).loss.mean_photon_loss;
            let ours = planned
                .schedule(budget)
                .recombine()
                .and_then(|r| r.verify())
                .map_err(|e| format!("{family} n={n}: framework compile failed: {e}"))?;
            let ours_loss = ours.metrics.loss.mean_photon_loss;
            let factor = if ours_loss > 0.0 {
                base_loss / ours_loss
            } else {
                f64::INFINITY
            };
            factors.push(factor.min(10.0));
            println!("{n:>7} {base_loss:>12.5} {ours_loss:>12.5} {factor:>11.2}x");
        }
        let avg = factors.iter().sum::<f64>() / factors.len() as f64;
        println!("average suppression ×{avg:.2}\n");
    }
    println!("paper reports: ×1.3 / ×1.4 / ×1.9 average for lattice/tree/random");
    Ok(())
}
