//! Measures the staged pipeline's sweep fast path: a k-point Ne_limit sweep
//! (paper §V.B.2) that reuses one partition + leaf-compilation prefix versus
//! k independent full compiles.
//!
//! Run with: `cargo run --release -p epgs-bench --bin sweep_reuse`

use std::process::ExitCode;
use std::time::Instant;

use epgs_bench::bench_framework;
use epgs_graph::generators;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sweep_reuse: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let fw = bench_framework();
    let budgets: Vec<usize> = (1..=6).collect();
    println!(
        "== {}-point Ne_limit sweep: full recompiles vs staged reuse ==",
        budgets.len()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "target", "pointwise s", "staged s", "speedup"
    );
    for (name, g) in [
        ("lattice 4x5", generators::lattice(4, 5)),
        ("tree 22/2", generators::tree(22, 2)),
        ("rgs m=3", generators::repeater_graph_state(3)),
    ] {
        let t0 = Instant::now();
        let pointwise = budgets
            .iter()
            .map(|&b| {
                fw.compile_with_budget(&g, b)
                    .map_err(|e| format!("{name} budget={b}: pointwise compile failed: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let t_pointwise = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let staged = fw
            .sweep(&g, &budgets)
            .map_err(|e| format!("{name}: staged sweep failed: {e}"))?;
        let t_staged = t1.elapsed().as_secs_f64();

        // Same results either way — the sweep is purely a caching win.
        for (a, b) in pointwise.iter().zip(&staged) {
            if a.circuit != b.circuit {
                return Err(format!("{name}: staged sweep diverged from pointwise"));
            }
        }
        println!(
            "{name:<14} {t_pointwise:>12.2} {t_staged:>12.2} {:>8.1}x",
            t_pointwise / t_staged.max(1e-9)
        );
    }
    println!("\n(staged ≈ one partition + leaf compile, plus k cheap schedule/recombine passes)");
    Ok(())
}
