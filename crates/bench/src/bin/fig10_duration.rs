//! Regenerates paper Fig. 10 (d)–(f): circuit duration (in τ_QD) under
//! emitter budgets Ne_limit ∈ {1.5, 2} × Ne_min, baseline vs framework.
//!
//! The framework side runs through the staged pipeline: each target is
//! partitioned and leaf-compiled once, then both budget points reuse the
//! [`epgs::Planned`] artifact and only re-run schedule → recombine → verify.
//!
//! Run with: `cargo run --release -p epgs-bench --bin fig10_duration`

use std::process::ExitCode;

use epgs_bench::{all_families, bench_baseline, bench_framework, hw, reduction_pct};
use epgs_circuit::timeline;
use epgs_solver::{solve_baseline, BaselineOptions};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig10_duration: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let fw = bench_framework();
    let hw = hw();
    for (family, sweep) in all_families() {
        println!("== Fig 10 circuit duration (×τ_QD) — {family} graphs ==");
        println!(
            "{:>7} {:>6} | {:>11} {:>11} {:>10} | {:>11} {:>11} {:>10}",
            "#qubit",
            "Ne_min",
            "base(1.5x)",
            "ours(1.5x)",
            "red(1.5x)",
            "base(2x)",
            "ours(2x)",
            "red(2x)"
        );
        let mut reds = (Vec::new(), Vec::new());
        for (n, g) in sweep {
            // Partition + leaf compilation once per target; schedule,
            // recombine, and verify once per budget point.
            let planned = fw
                .pipeline()
                .partition(&g)
                .plan_leaves()
                .map_err(|e| format!("{family} n={n}: leaf compilation failed: {e}"))?;
            let ne_min = planned.ne_min();
            let mut row = Vec::new();
            for factor in [1.5f64, 2.0] {
                let budget = ((ne_min as f64 * factor).ceil() as usize).max(1);
                let base_opts = BaselineOptions {
                    emitters: Some(budget),
                    ..bench_baseline()
                };
                let base = solve_baseline(&g, &hw, &base_opts)
                    .map_err(|e| format!("{family} n={n}: baseline solve failed: {e}"))?;
                let base_dur = timeline(&hw, &base.circuit).duration;
                let ours = planned
                    .schedule(budget)
                    .recombine()
                    .and_then(|r| r.verify())
                    .map_err(|e| {
                        format!("{family} n={n} budget={budget}: framework compile failed: {e}")
                    })?;
                row.push((base_dur, ours.metrics.duration));
            }
            let r15 = reduction_pct(row[0].0, row[0].1);
            let r20 = reduction_pct(row[1].0, row[1].1);
            reds.0.push(r15);
            reds.1.push(r20);
            println!(
                "{n:>7} {ne_min:>6} | {:>11.2} {:>11.2} {r15:>9.1}% | {:>11.2} {:>11.2} {r20:>9.1}%",
                row[0].0, row[0].1, row[1].0, row[1].1
            );
        }
        let avg15 = reds.0.iter().sum::<f64>() / reds.0.len() as f64;
        let avg20 = reds.1.iter().sum::<f64>() / reds.1.len() as f64;
        println!("average reduction: {avg15:.1}% at 1.5×, {avg20:.1}% at 2×\n");
    }
    println!("paper reports: avg 33/32/39% at 1.5× and 38/38/43% at 2× (lattice/tree/random)");
    Ok(())
}
