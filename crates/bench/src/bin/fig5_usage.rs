//! Regenerates paper Fig. 5: the emitter-usage-over-time curve of a graph
//! state generation circuit, showing utilization before/after scheduling.
//!
//! Run with: `cargo run --release -p epgs-bench --bin fig5_usage`

use std::process::ExitCode;

use epgs_bench::{bench_baseline, bench_framework, hw};
use epgs_circuit::usage_curve;
use epgs_graph::generators;
use epgs_solver::{solve_baseline, BaselineOptions};

fn print_curve(label: &str, times: &[f64], counts: &[usize]) {
    println!("{label}:");
    println!("{:>10} {:>8}", "time (τ)", "#emitter");
    for (t, c) in times.iter().zip(counts) {
        println!("{t:>10.2} {c:>8}");
    }
    println!();
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig5_usage: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let g = generators::lattice(3, 5);
    let hw = hw();
    let fw = bench_framework();
    let planned = fw
        .pipeline()
        .partition(&g)
        .plan_leaves()
        .map_err(|e| format!("leaf compilation failed: {e}"))?;
    let budget = ((planned.ne_min() as f64 * 1.5).ceil() as usize).max(1);

    let base = solve_baseline(
        &g,
        &hw,
        &BaselineOptions {
            emitters: Some(budget),
            ..bench_baseline()
        },
    )
    .map_err(|e| format!("baseline solve failed: {e}"))?;
    let (bt, bc) = usage_curve(&hw, &base.circuit);
    print_curve(
        "baseline emitter usage (under-utilized stretches visible)",
        &bt,
        &bc,
    );

    let ours = planned
        .schedule(budget)
        .recombine()
        .and_then(|r| r.verify())
        .map_err(|e| format!("framework compile failed: {e}"))?;
    let (ot, oc) = usage_curve(&hw, &ours.circuit);
    print_curve("framework emitter usage (Tetris-packed)", &ot, &oc);

    let base_peak = bc.iter().copied().max().unwrap_or(0);
    let ours_peak = oc.iter().copied().max().unwrap_or(0);
    println!("budget {budget}, peak usage: baseline {base_peak}, framework {ours_peak}");
    Ok(())
}
